//! Authoring accuracy rules as text, translating constant CFDs, and mining
//! rule candidates from training data.
//!
//! This example shows the three ways a rule set can come into existence:
//! written by hand in the textual syntax, derived from existing constant CFDs
//! (Section 2.1's remark), or proposed by the discovery profiler from a handful
//! of entities whose true target is known (Section 4's remark).
//!
//! Run with: `cargo run --example rules_from_text`

use relacc::core::chase::is_cr;
use relacc::core::rules::{
    cfds_to_rules, discover_rules, format_rule, parse_ruleset, ConstantCfd, DiscoveryConfig,
};
use relacc::core::Specification;
use relacc::datagen::workloads::cfp;
use relacc::model::{DataType, EntityInstance, Schema, Value};

fn main() {
    // 1. Hand-written rules in the textual syntax.
    let schema = Schema::builder("listing")
        .attr("address", DataType::Text)
        .attr("updated", DataType::Int)
        .attr("price", DataType::Int)
        .attr("agency", DataType::Text)
        .build();
    let rules_text = "\
# newer listings supersede older ones, and price follows
rule newer: t1[updated] < t2[updated] -> t1 <= t2 on updated @currency
rule price_follows: t1 < t2 on updated -> t1 <= t2 on price @currency
";
    let mut rules = parse_ruleset(rules_text, &schema, &[]).expect("rules parse");
    println!("parsed {} hand-written rules", rules.len());

    // 2. Constant CFDs become form-(2) rules over a pattern tableau.
    let cfds = vec![ConstantCfd::new(
        vec![(schema.expect_attr("agency"), Value::text("ACME Realty"))],
        (schema.expect_attr("address"), Value::text("1 Main St")),
    )];
    let translation = cfds_to_rules(&schema, &cfds, 0);
    println!(
        "translated {} CFD(s) into {} rule(s) over a {}-tuple pattern tableau",
        cfds.len(),
        translation.rules.len(),
        translation.master.len()
    );
    for rule in &translation.rules {
        println!(
            "  {}",
            format_rule(
                &rule.clone().into(),
                &schema,
                &[translation.master.schema().clone()]
            )
        );
    }
    rules.extend(translation.rules.clone());

    // Chase a small listing entity with the combined rule set: both scraped
    // listings are missing the address, so only the CFD-derived rule can fill
    // it once the agency is pinned down.
    let ie = EntityInstance::from_rows(
        schema.clone(),
        vec![
            vec![
                Value::Null,
                Value::Int(1),
                Value::Int(980),
                Value::text("ACME Realty"),
            ],
            vec![
                Value::Null,
                Value::Int(4),
                Value::Int(1050),
                Value::text("ACME Realty"),
            ],
        ],
    )
    .unwrap();
    let spec = Specification::new(ie, rules).with_master(translation.master);
    let run = is_cr(&spec);
    match run.outcome.target() {
        Some(te) => println!("chase: Church-Rosser, deduced target = {te}"),
        None => println!(
            "chase: not Church-Rosser — {}",
            run.outcome.conflict().expect("conflict present")
        ),
    }
    println!();

    // 3. Mining rule candidates from entities with known truth.
    let data = cfp(0.25, 5);
    let training: Vec<_> = data
        .entities
        .iter()
        .take(20)
        .map(|e| (&e.instance, &e.truth))
        .collect();
    let mined = discover_rules(&training, &DiscoveryConfig::default());
    println!(
        "mined {} rule candidates from 20 training conferences; the strongest:",
        mined.len()
    );
    for proposal in mined.iter().take(5) {
        println!(
            "  {:<40} confidence={:.2} support={}",
            proposal.rule.name, proposal.confidence, proposal.support
        );
    }
}
