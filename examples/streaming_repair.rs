//! Streaming repair: keep a repaired relation live under typed updates.
//!
//! A repaired corpus is rarely final — new observations arrive, stale rows
//! are retracted, and curated master data grows.  This example opens an
//! [`IncrementalEngine`] over a `Med`-shaped corpus and applies a scripted
//! update stream (inserts, deletes and master appends), re-repairing only the
//! dirty entities of each batch, then verifies the final snapshot against a
//! from-scratch repair.
//!
//! Run with `cargo run --release --example streaming_repair`.

use relacc::datagen::streaming::{med_stream, StreamConfig, StreamOp};
use relacc::engine::{BatchEngine, IncrementalEngine};
use relacc::resolve::{BlockingStrategy, ResolveConfig};

fn main() {
    // a small Med-shaped corpus flattened into one dirty relation, plus a
    // stream of 6 update batches with interleaved master appends
    let config = StreamConfig {
        n_batches: 6,
        inserts_per_batch: 3,
        deletes_per_batch: 1,
        master_appends_per_batch: 2,
        fresh_entity_rate: 0.25,
        seed: 3,
        ..StreamConfig::default()
    };
    let stream = med_stream(0.01, 42, &config);
    let resolve = ResolveConfig::on_attrs(stream.match_attrs.clone())
        .with_strategy(BlockingStrategy::ExactKey);

    let engine = BatchEngine::new(
        stream.relation.schema().clone(),
        stream.rules.clone(),
        stream.master.clone().into_iter().collect(),
    )
    .expect("generated rules validate");
    let mut live = IncrementalEngine::open(
        engine,
        stream.name.clone(),
        &stream.relation,
        resolve.clone(),
    );

    let seed = live.snapshot();
    println!(
        "seed: {} rows resolved into {} entities ({} complete, {} suggested, {} open)",
        stream.relation.len(),
        seed.report.entities.len(),
        seed.report.complete,
        seed.report.suggested,
        seed.report.needs_user,
    );

    for (step, op) in stream.ops.iter().enumerate() {
        let outcome = match op {
            StreamOp::Rows(batch) => {
                let outcome = live.apply(batch).expect("scripted batches stay valid");
                println!(
                    "batch {step}: {:>2} inserts / {} deletes -> gen {:?}, \
                     {} of {} blocks dirty, re-repaired {} entities (reused {})",
                    batch.inserts.len(),
                    batch.deletes.len(),
                    outcome.generation,
                    outcome.dirty_blocks,
                    outcome.dirty_blocks + outcome.clean_blocks,
                    outcome.entities_rerepaired,
                    outcome.entities_reused,
                );
                outcome
            }
            StreamOp::MasterAppend(rows) => {
                let outcome = live
                    .apply_master_append(0, rows.clone())
                    .expect("scripted appends stay valid");
                println!(
                    "batch {step}: +{} master rows (plan v{}) -> re-repaired {} entities (reused {})",
                    rows.len(),
                    live.engine().plan().stamp().version,
                    outcome.entities_rerepaired,
                    outcome.entities_reused,
                );
                outcome
            }
        };
        let _ = outcome;
    }

    let final_snapshot = live.snapshot();
    println!(
        "final: {} entities ({} complete, {} suggested, {} open), {} repaired rows",
        final_snapshot.report.entities.len(),
        final_snapshot.report.complete,
        final_snapshot.report.suggested,
        final_snapshot.report.needs_user,
        final_snapshot.repaired.len(),
    );
    let stats = live.stats();
    println!(
        "lifetime: {} row batches + {} master deltas; {} entities re-repaired, {} reused",
        stats.batches_applied,
        stats.master_deltas_applied,
        stats.entities_rerepaired,
        stats.entities_reused,
    );

    // the living snapshot is semantically identical to repairing the final
    // relation state from scratch
    let full = live
        .engine()
        .repair_relation(&live.relation().snapshot(), &resolve);
    assert_eq!(
        final_snapshot.repaired.rows(),
        full.repaired.rows(),
        "incremental snapshot must match a from-scratch repair"
    );
    assert_eq!(final_snapshot.resolved.members, full.resolved.members);
    println!("verified: incremental snapshot == from-scratch repair of the final state");
}
