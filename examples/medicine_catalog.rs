//! A Med-like scenario: cleaning a medicine sales catalog.
//!
//! Generates a small Med-shaped workload (see `relacc-datagen`), compiles its
//! rules and master data into **one** chase plan, deduces target tuples for
//! every entity with the parallel batch engine (`relacc-engine`), suggests
//! top-k candidates for the entities that stay incomplete, and reports how
//! much of the (known) ground truth was recovered.
//!
//! Run with: `cargo run --release --example medicine_catalog`

use relacc::datagen::workloads::med;
use relacc::engine::BatchEngine;
use relacc::fusion::attribute_accuracy;
use relacc::model::EntityInstance;
use relacc::topk::{topkct, CandidateSearch, PreferenceModel};

fn main() {
    // 2% of the paper's 2.7K entities keeps the example fast; crank it up to
    // 1.0 to reproduce the full workload.
    let data = med(0.02, 7);
    println!(
        "generated Med-like workload: {} entities, {} tuples, {} master tuples, {} rules ({} form-1 / {} form-2)",
        data.entities.len(),
        data.total_tuples(),
        data.master.len(),
        data.rules.len(),
        data.rules.count_tuple_rules(),
        data.rules.count_master_rules(),
    );

    // Compile once, evaluate every entity over the shared plan in parallel.
    let engine = BatchEngine::new(
        data.schema.clone(),
        data.rules.clone(),
        vec![data.master.clone()],
    )
    .expect("generated rules validate")
    .with_suggestion_k(0);
    let instances: Vec<EntityInstance> = data.entities.iter().map(|e| e.instance.clone()).collect();
    let report = engine.run_owned(instances);

    let mut complete = 0usize;
    let mut accuracy_sum = 0.0;
    let mut incomplete_entities = Vec::new();
    for entity in &report.entities {
        let te = &entity.deduced;
        accuracy_sum += attribute_accuracy(te, &data.entities[entity.entity].truth);
        if te.is_complete() {
            complete += 1;
        } else {
            incomplete_entities.push(entity.entity);
        }
    }
    println!(
        "IsCR alone: {}/{} complete target tuples ({:.1}%), mean attribute accuracy {:.1}%",
        complete,
        data.entities.len(),
        100.0 * complete as f64 / data.entities.len() as f64,
        100.0 * accuracy_sum / data.entities.len() as f64,
    );
    println!(
        "batch totals: {} ground steps, {} steps applied on {} worker thread(s)",
        report.stats.ground_steps, report.stats.steps_applied, report.threads_used
    );

    // Top-k suggestions for the first few incomplete entities.
    println!();
    println!("top-3 candidate targets for the first incomplete entities:");
    for &idx in incomplete_entities.iter().take(3) {
        let spec = data.specification(idx);
        let search = CandidateSearch::prepare(&spec, PreferenceModel::occurrence(&spec, 3))
            .expect("Church-Rosser");
        let result = topkct(&search);
        let truth = &data.entities[idx].truth;
        println!(
            "  entity {} ({} tuples, {} open attributes):",
            data.entities[idx].key,
            data.entities[idx].instance.len(),
            search.z.len()
        );
        for (rank, candidate) in result.candidates.iter().enumerate() {
            let hit = if &candidate.target == truth {
                "  ← ground truth"
            } else {
                ""
            };
            println!(
                "    #{rank} score={:.1} checks_so_far={}{}",
                candidate.score, result.stats.checks, hit
            );
        }
    }
}
