//! Truth discovery on the Rest-like workload (Exp-5 / Table 4): which
//! restaurants have closed, according to twelve disagreeing web sources?
//!
//! Compares majority voting, DeduceOrder (currency + CFD reasoning), copyCEF
//! (Bayesian source accuracy with copy detection) and TopKCT with both
//! preference sources, reporting precision / recall / F1 against the known
//! ground truth, like Table 4 of the paper.
//!
//! Run with: `cargo run --release --example restaurant_truth_discovery`

use relacc::datagen::rest::{rest, RestConfig};
use relacc::fusion::{
    copy_cef, deduce_order, precision_recall, voting_over_sources, CopyCefConfig, ObjectId,
};
use relacc::model::Value;
use relacc::topk::{topkct, CandidateSearch, PreferenceModel};

fn main() {
    let data = rest(&RestConfig::scaled(0.05, 99));
    let truth = data.closed_truth();
    println!(
        "generated Rest-like workload: {} restaurants, {} sources ({} copiers), {} closed in truth",
        data.restaurants.len(),
        data.source_names.len(),
        data.copy_map.len(),
        truth.len()
    );

    // voting
    let votes = voting_over_sources(&data.observations);
    let voting_pred: Vec<usize> = votes
        .iter()
        .filter(|(_, v)| matches!(v, Some(Value::Bool(true))))
        .map(|(o, _)| o.0)
        .collect();

    // DeduceOrder on the per-restaurant entity view
    let closed_attr = data.schema.expect_attr("closed");
    let deduce_pred: Vec<usize> = (0..data.restaurants.len())
        .filter(|&i| {
            deduce_order(&data.restaurants[i].instance, &data.rules, &[])
                .resolved
                .value(closed_attr)
                .same(&Value::Bool(true))
        })
        .collect();

    // copyCEF on the flattened observations
    let cef = copy_cef(&data.observations, &CopyCefConfig::default());
    let cef_pred: Vec<usize> = cef
        .truths
        .iter()
        .filter(|(_, v)| matches!(v, Some(Value::Bool(true))))
        .map(|(o, _)| o.0)
        .collect();
    println!(
        "copyCEF detected {} copy relationship(s) in {} iterations",
        cef.copy_pairs.len(),
        cef.iterations
    );

    // TopKCT (k = 1) with copyCEF posteriors as preference weights
    let mut topk_pred = Vec::new();
    for idx in 0..data.restaurants.len() {
        let spec = data.specification(idx);
        let mut preference = PreferenceModel::occurrence(&spec, 1);
        for value in [Value::Bool(true), Value::Bool(false)] {
            preference.set_weight(
                closed_attr,
                value.clone(),
                cef.probability(ObjectId(idx), &value),
            );
        }
        let Ok(search) = CandidateSearch::prepare(&spec, preference) else {
            continue;
        };
        let closed = if search.deduced.is_null(closed_attr) {
            topkct(&search)
                .candidates
                .first()
                .map(|c| c.target.value(closed_attr).clone())
        } else {
            Some(search.deduced.value(closed_attr).clone())
        };
        if matches!(closed, Some(Value::Bool(true))) {
            topk_pred.push(idx);
        }
    }

    println!();
    println!(
        "{:<18} {:>9} {:>9} {:>9}",
        "method", "precision", "recall", "F1"
    );
    for (name, pred) in [
        ("voting", &voting_pred),
        ("DeduceOrder", &deduce_pred),
        ("copyCEF", &cef_pred),
        ("TopKCT(copyCEF)", &topk_pred),
    ] {
        let pr = precision_recall(pred, &truth);
        println!(
            "{name:<18} {:>9.3} {:>9.3} {:>9.3}",
            pr.precision, pr.recall, pr.f1
        );
    }
}
