//! Quickstart: reproduce the paper's running example end to end.
//!
//! The entity instance is Table 1 (four conflicting records about Michael
//! Jordan's 1994-95 season), the master relation is Table 2, and the rules are
//! ϕ1–ϕ11 of Table 3 / Example 3.  The chase deduces the complete target tuple
//! of Example 5; adding ϕ12 (Example 6) destroys the Church-Rosser property.
//!
//! Run with: `cargo run --example quickstart`

use relacc::core::chase::is_cr;
use relacc::core::rules::{format_ruleset, parse_rule};
use relacc::datagen::paper_example::{
    expected_target, nba_schema, paper_rules, paper_specification, stat_schema, PHI12,
};
use relacc::model::AttrId;

fn main() {
    let spec = paper_specification();
    let schema = spec.ie.schema().clone();

    println!("== entity instance stat (Table 1) ==");
    for (tid, tuple) in spec.ie.iter() {
        let rendered: Vec<String> = tuple.values().iter().map(ToString::to_string).collect();
        println!("  {tid}: ({})", rendered.join(", "));
    }
    println!();
    println!("== accuracy rules (Table 3 + Example 3; axioms ϕ7–ϕ9 are built in) ==");
    println!("{}", format_ruleset(&spec.rules, &schema, &[nba_schema()]));
    println!();

    let run = is_cr(&spec);
    println!("== IsCR ==");
    println!(
        "Church-Rosser: {} ({} ground steps, {} applied, {} order pairs)",
        run.outcome.is_church_rosser(),
        run.stats.ground_steps,
        run.stats.steps_applied,
        run.stats.order_pairs_added,
    );
    let target = run
        .outcome
        .target()
        .expect("Example 5's S is Church-Rosser");
    println!("deduced target tuple te:");
    for i in 0..schema.arity() {
        let a = AttrId(i);
        println!("  {:<10} = {}", schema.attr_name(a), target.value(a));
    }
    assert_eq!(target, &expected_target());
    println!("matches the target of Example 5 ✓");
    println!();

    // Example 6: adding ϕ12 breaks the Church-Rosser property.
    let mut rules = paper_rules();
    rules.push(parse_rule(PHI12, &stat_schema(), &[nba_schema()]).expect("ϕ12 parses"));
    let bad_spec =
        relacc::core::Specification::new(relacc::datagen::paper_example::stat_instance(), rules)
            .with_master(relacc::datagen::paper_example::nba_master());
    let bad_run = is_cr(&bad_spec);
    println!("== Example 6: S' = S + ϕ12 ==");
    match bad_run.outcome.conflict() {
        Some(conflict) => println!("not Church-Rosser, as the paper shows: {conflict}"),
        None => println!("unexpectedly Church-Rosser"),
    }
}
