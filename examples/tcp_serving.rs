//! End-to-end TCP serving: an incremental engine under a scripted Med
//! update stream, served over loopback TCP, consumed by a point-read client
//! and a subscribed change-feed client — the network half of the serving
//! story (`examples/streaming_repair.rs` is the in-process half).
//!
//! Run with `cargo run --example tcp_serving`.

use relacc::datagen::streaming::{med_stream, StreamConfig, StreamOp};
use relacc::engine::{BatchEngine, IncrementalEngine};
use relacc::net::{NetClient, NetServer};
use relacc::resolve::{BlockingStrategy, ResolveConfig};
use relacc::serve::{EntityChangeKind, Server};
use std::time::Duration;

fn main() {
    // a scripted Med workload: seed corpus + 4 update batches with reads
    let config = StreamConfig {
        n_batches: 4,
        inserts_per_batch: 4,
        deletes_per_batch: 2,
        master_appends_per_batch: 1,
        seed: 57,
        ..StreamConfig::default()
    }
    .with_reads(3);
    let stream = med_stream(0.02, 29, &config);
    let engine = BatchEngine::new(
        stream.relation.schema().clone(),
        stream.rules.clone(),
        stream.master.clone().into_iter().collect(),
    )
    .expect("stream rules validate");
    let mut engine = IncrementalEngine::open(
        engine,
        stream.name.clone(),
        &stream.relation,
        ResolveConfig::on_attrs(stream.match_attrs.clone())
            .with_strategy(BlockingStrategy::ExactKey),
    );

    // serve the engine's epochs on an ephemeral loopback port
    let mut net =
        NetServer::spawn(Server::new(&engine), "127.0.0.1:0").expect("bind a loopback port");
    println!(
        "serving {} ({} seed rows) on {}",
        stream.name,
        stream.relation.rows().len(),
        net.local_addr()
    );

    // one subscriber (feed mode) and one point-read client (request mode)
    let feed_client = NetClient::connect(net.local_addr()).expect("subscriber connects");
    let mut feed = feed_client.subscribe().expect("subscription accepted");
    let mut reader = NetClient::connect(net.local_addr()).expect("reader connects");
    println!(
        "clients attached; schema over the wire: {}",
        reader.schema()
    );

    // the writer replays the scripted stream; after each committed batch
    // the reader serves that batch's scripted point reads over TCP
    let mut batch_idx = 0usize;
    for op in &stream.ops {
        match op {
            StreamOp::Rows(batch) => {
                engine.apply(batch).expect("scripted batches stay valid");
                let generation = engine.current_epoch().generation();
                for &row in &stream.reads[batch_idx] {
                    let repaired = reader
                        .repaired_row(row, generation)
                        .expect("pinned read succeeds");
                    println!(
                        "  gen {} point read {row}: {}",
                        generation.0,
                        match &repaired {
                            Some(values) => values
                                .iter()
                                .map(|v| v.to_string())
                                .collect::<Vec<_>>()
                                .join("|"),
                            None => "(not live)".into(),
                        }
                    );
                }
                batch_idx += 1;
            }
            StreamOp::MasterAppend(rows) => {
                engine
                    .apply_master_append(0, rows.clone())
                    .expect("scripted appends stay valid");
            }
        }
    }

    // drain the change feed: every committed epoch arrives as entity changes
    let mut batches = 0usize;
    let (mut upserts, mut removes) = (0usize, 0usize);
    while let Some(batch) = feed
        .next_batch(Duration::from_millis(500))
        .expect("feed stays live")
    {
        batches += 1;
        for change in &batch.changes {
            match &change.kind {
                EntityChangeKind::Upserted(_) => upserts += 1,
                EntityChangeKind::Removed { .. } => removes += 1,
            }
        }
        if batch.to == engine.current_epoch().generation()
            && batch.to_epoch == engine.current_epoch().id()
        {
            break;
        }
    }
    println!("feed drained: {batches} pushed batches, {upserts} entity upserts, {removes} removes");
    assert!(batches > 0, "the feed must deliver the committed batches");

    feed.close();
    net.shutdown();
    println!("done");
}
