//! Database-level repair: from a dirty relation to per-entity target tuples.
//!
//! The paper's model starts from an entity instance that "is identified by
//! entity resolution techniques" and lists whole-database accuracy improvement
//! as ongoing work.  This example walks that full pipeline on a small player
//! statistics relation:
//!
//! 1. compile the rules + master data into a chase plan once
//!    (`relacc-engine`'s `BatchEngine`),
//! 2. resolve duplicate records into entities (`relacc-resolve`, used
//!    directly — the `relacc-db` facade that used to sit here is deleted) and
//!    chase every entity in parallel over the shared plan,
//! 3. print the repaired one-row-per-entity relation and the batch report.
//!
//! Run with `cargo run --example database_repair`.

use relacc::core::rules::parse_ruleset;
use relacc::engine::BatchEngine;
use relacc::model::{DataType, MasterRelation, Schema, Value};
use relacc::resolve::ResolveConfig;
use relacc::store::{to_csv, Relation};

fn main() {
    // A dirty relation: two spellings of the same player, stale season rows,
    // and a second player mixed in.
    let schema = Schema::builder("stat")
        .attr("name", DataType::Text)
        .attr("rnds", DataType::Int)
        .attr("totalPts", DataType::Int)
        .attr("team", DataType::Text)
        .attr("arena", DataType::Text)
        .build();
    let relation = Relation::from_rows(
        schema.clone(),
        vec![
            vec![
                Value::text("Michael Jordan"),
                Value::Int(16),
                Value::Int(424),
                Value::text("Chicago"),
                Value::text("Chicago Stadium"),
            ],
            vec![
                Value::text("Michael  Jordan"),
                Value::Int(27),
                Value::Int(772),
                Value::Null,
                Value::text("United Center"),
            ],
            vec![
                Value::text("michael jordan"),
                Value::Int(1),
                Value::Int(19),
                Value::text("Chicago Bulls"),
                Value::text("Chicago Stadium"),
            ],
            vec![
                Value::text("Scottie Pippen"),
                Value::Int(27),
                Value::Int(639),
                Value::text("Chicago Bulls"),
                Value::text("United Center"),
            ],
        ],
    )
    .expect("rows conform to the schema");

    // Master data: the curated team per player.
    let master_schema = Schema::builder("nba")
        .attr("name", DataType::Text)
        .attr("team", DataType::Text)
        .build();
    let master = MasterRelation::from_rows(
        master_schema.clone(),
        vec![
            vec![Value::text("Michael Jordan"), Value::text("Chicago Bulls")],
            vec![Value::text("Scottie Pippen"), Value::text("Chicago Bulls")],
        ],
    )
    .expect("master rows conform");

    // Accuracy rules in the textual syntax: rounds only grow, points and arena
    // follow the freshest rounds, and the team comes from master data once the
    // name is pinned down.
    let rules = parse_ruleset(
        "rule cur_rnds: t1[rnds] < t2[rnds] -> t1 <= t2 on rnds\n\
         rule pts_follow: t1 < t2 on rnds -> t1 <= t2 on totalPts\n\
         rule arena_follow: t1 < t2 on rnds -> t1 <= t2 on arena\n\
         master rule team_master over 0: te[name] = tm[name] -> te[team] := tm[team]\n",
        &schema,
        &[master_schema],
    )
    .expect("rules parse");

    // Compile once: rules validated, master data interned, form-(2) rules
    // pre-grounded.  Evaluation fans the resolved entities out over workers.
    let engine = BatchEngine::new(schema, rules, vec![master])
        .expect("rules validate against the schema")
        .with_threads(2);
    let repair = engine.repair_relation(
        &relation,
        &ResolveConfig::on_attrs(vec!["name".into()]).with_threshold(0.7),
    );
    let report = &repair.report;

    println!(
        "resolved {} records into {} entities",
        relation.len(),
        report.entities.len()
    );
    for entity in &report.entities {
        println!(
            "  entity {} (records {:?}): {:?}\n    deduced   {}\n    suggested {}",
            entity.entity,
            entity.records,
            entity.outcome,
            entity.deduced,
            entity
                .suggestion
                .as_ref()
                .map(|s| s.to_string())
                .unwrap_or_else(|| "-".into()),
        );
    }
    println!(
        "\ncomplete={} suggested={} needs_user={} not_church_rosser={} (automatic rate {:.0}%)",
        report.complete,
        report.suggested,
        report.needs_user,
        report.not_church_rosser,
        100.0 * report.automatic_rate()
    );
    println!(
        "chase totals: {} ground steps, {} applied, {} order pairs, on {} worker thread(s)",
        report.stats.ground_steps,
        report.stats.steps_applied,
        report.stats.order_pairs_added,
        report.threads_used
    );
    for skip in &repair.skipped {
        println!("entity {} skipped: {}", skip.entity, skip.reason);
    }
    println!("\nrepaired relation as CSV:\n{}", to_csv(&repair.repaired));
}
