//! A CFP-like scenario with user interaction: resolving conflicting calls for
//! papers for the same conference through the framework of Fig. 3.
//!
//! Each entity is a conference whose scraped CFP versions disagree on
//! deadlines, programme and venue.  The framework deduces what it can, shows
//! top-k candidates, and a simulated user (who knows the ground truth) either
//! accepts a suggestion or reveals the value of one attribute, until the true
//! target is found.
//!
//! Run with: `cargo run --release --example conference_cfp`

use relacc::datagen::workloads::cfp;
use relacc::framework::{run_session, GroundTruthOracle, SessionConfig, TopKAlgorithm};
use relacc::fusion::attribute_accuracy;
use relacc::topk::ScoreSource;

fn main() {
    let data = cfp(0.5, 11);
    println!(
        "generated CFP-like workload: {} conferences, {} tuples, {} master entries, {} rules",
        data.entities.len(),
        data.total_tuples(),
        data.master.len(),
        data.rules.len()
    );

    let config = SessionConfig {
        k: 15,
        max_rounds: 4,
        algorithm: TopKAlgorithm::TopKCT,
        score_source: ScoreSource::OccurrenceCounts,
    };

    let mut automatic = 0usize;
    let mut by_rounds = vec![0usize; config.max_rounds + 1];
    let mut unresolved = 0usize;
    for (idx, entity) in data.entities.iter().enumerate() {
        let spec = data.specification(idx);
        let mut oracle = GroundTruthOracle::new(entity.truth.clone(), 1000 + idx as u64);
        let report = run_session(&spec, &config, &mut oracle);
        let found = report
            .outcome
            .target()
            .map(|t| attribute_accuracy(t, &entity.truth) == 1.0)
            .unwrap_or(false);
        if found {
            if report.automatic {
                automatic += 1;
            }
            by_rounds[report.rounds.min(config.max_rounds)] += 1;
        } else {
            unresolved += 1;
        }
    }

    let n = data.entities.len();
    println!();
    println!(
        "true target found fully automatically : {automatic:>4} ({:.1}%)",
        100.0 * automatic as f64 / n as f64
    );
    let mut cumulative = 0usize;
    for (rounds, count) in by_rounds.iter().enumerate() {
        cumulative += count;
        println!(
            "  within {rounds} interaction round(s)      : {cumulative:>4} ({:.1}%)",
            100.0 * cumulative as f64 / n as f64
        );
    }
    println!(
        "not recovered within {} rounds        : {unresolved:>4} ({:.1}%)",
        config.max_rounds,
        100.0 * unresolved as f64 / n as f64
    );
    println!();
    println!(
        "(the unrecovered conferences carry a confidently wrong value — e.g. every scraped \
         version agrees on a stale room — which no amount of suggestion ranking can fix; the \
         user would edit Ie or Σ instead, the branch of Fig. 3 this example does not simulate)"
    );
}
