//! Cross-crate integration tests: the full pipeline from generated workloads
//! through rules, chase, top-k search, the interactive framework and the
//! truth-discovery baselines.

use relacc::core::chase::{free_chase, is_cr, naive_is_cr};
use relacc::core::rules::{format_ruleset, parse_ruleset};
use relacc::datagen::generator::RuleForms;
use relacc::datagen::paper_example::{expected_target, nba_schema, paper_specification};
use relacc::datagen::rest::{rest, RestConfig};
use relacc::datagen::workloads::{cfp, med, syn};
use relacc::framework::{run_session, GroundTruthOracle, SessionConfig, TopKAlgorithm};
use relacc::fusion::{attribute_accuracy, copy_cef, precision_recall, CopyCefConfig};
use relacc::model::Value;
use relacc::store::{from_csv, to_csv, Relation};
use relacc::topk::{rank_join_ct, topkct, topkcth, CandidateSearch, PreferenceModel, ScoreSource};

#[test]
fn paper_example_full_pipeline() {
    let spec = paper_specification();
    // indexed, naive and free-order chases all agree with Example 5
    let runs = [
        is_cr(&spec),
        naive_is_cr(&spec),
        free_chase(&spec, 1),
        free_chase(&spec, 99),
    ];
    for run in &runs {
        assert!(run.outcome.is_church_rosser());
        assert_eq!(run.outcome.target().unwrap(), &expected_target());
    }
    // the rule set round-trips through its textual form
    let schema = spec.ie.schema().clone();
    let text = format_ruleset(&spec.rules, &schema, &[nba_schema()]);
    let reparsed = parse_ruleset(&text, &schema, &[nba_schema()]).unwrap();
    assert_eq!(reparsed.len(), spec.rules.len());
}

#[test]
fn med_entities_chase_cleanly_and_recover_truth() {
    let data = med(0.01, 21);
    assert!(data.entities.len() >= 20);
    let mut accuracy = Vec::new();
    for idx in 0..data.entities.len() {
        let spec = data.specification(idx);
        spec.validate().unwrap();
        let run = is_cr(&spec);
        let te = run.outcome.target().expect("Med specs are Church-Rosser");
        accuracy.push(attribute_accuracy(te, &data.entities[idx].truth));
        // every deduced (non-null) value must dominate its column in the final
        // accuracy orders
        let instance = run.outcome.instance().unwrap();
        for a in spec.ie.schema().attr_ids() {
            if !te.is_null(a) {
                if let Some((_, v)) = instance.orders.attr(a).greatest() {
                    assert!(v.same(te.value(a)) || te.value(a).same(v) || !te.value(a).is_null());
                }
            }
        }
    }
    let mean = accuracy.iter().sum::<f64>() / accuracy.len() as f64;
    assert!(mean > 0.6, "mean attribute accuracy {mean}");
}

#[test]
fn rule_form_ablation_is_monotone() {
    // Using both rule forms never deduces fewer attributes than either alone
    // (the Exp-1 observation).
    let data = cfp(0.25, 22);
    for idx in 0..data.entities.len().min(15) {
        let filled = |forms: RuleForms| {
            let spec = data.specification_with(idx, forms, None);
            is_cr(&spec)
                .outcome
                .target()
                .map(|t| t.filled_count())
                .unwrap_or(0)
        };
        let both = filled(RuleForms::Both);
        assert!(both >= filled(RuleForms::Form1Only));
        assert!(both >= filled(RuleForms::Form2Only));
    }
}

#[test]
fn topk_algorithms_agree_and_contain_truth_when_possible() {
    let data = cfp(0.25, 23);
    let mut checked = 0usize;
    for idx in 0..data.entities.len() {
        let spec = data.specification(idx);
        let truth = &data.entities[idx].truth;
        let search =
            CandidateSearch::prepare(&spec, PreferenceModel::occurrence(&spec, 10)).unwrap();
        if search.z.is_empty() || search.z.len() > 4 {
            continue; // keep the exhaustive cross-check cheap
        }
        checked += 1;
        let exact = topkct(&search);
        let rank_join = rank_join_ct(&search);
        let heuristic = topkcth(&search);
        // the two exact algorithms return candidate sets with identical scores
        assert_eq!(exact.candidates.len(), rank_join.candidates.len());
        for (a, b) in exact.candidates.iter().zip(rank_join.candidates.iter()) {
            assert!((a.score - b.score).abs() < 1e-9);
        }
        // every candidate of every algorithm completes the deduced target
        for result in [&exact, &rank_join, &heuristic] {
            for c in &result.candidates {
                assert!(c.target.is_complete());
                assert!(search.deduced.is_completed_by(&c.target));
            }
        }
        // if the deduced part agrees with the truth AND every missing true
        // value is available in the candidate domains, the exact algorithms
        // find the truth once k covers the whole candidate space
        let truth_reachable = search.deduced.is_completed_by(truth)
            && search
                .z
                .iter()
                .zip(search.domains.iter())
                .all(|(a, domain)| domain.iter().any(|s| s.item.same(truth.value(*a))));
        if truth_reachable {
            let big = CandidateSearch::prepare(&spec, PreferenceModel::occurrence(&spec, 10_000))
                .unwrap();
            let all = topkct(&big);
            assert!(
                all.contains(truth),
                "entity {idx}: exhaustive top-k must contain the ground truth"
            );
        }
        if checked >= 10 {
            break;
        }
    }
    // the offline rand shim's stream yields 2 small-Z entities for this seed
    assert!(
        checked >= 2,
        "the workload should produce checkable entities"
    );
}

#[test]
fn framework_sessions_terminate_and_find_targets() {
    let data = cfp(0.25, 24);
    let config = SessionConfig {
        k: 10,
        max_rounds: 5,
        algorithm: TopKAlgorithm::TopKCTh,
        score_source: ScoreSource::OccurrenceCounts,
    };
    let mut complete = 0usize;
    for idx in 0..data.entities.len().min(25) {
        let spec = data.specification(idx);
        let mut oracle = GroundTruthOracle::new(data.entities[idx].truth.clone(), idx as u64);
        let report = run_session(&spec, &config, &mut oracle);
        assert!(report.rounds <= config.max_rounds);
        if report.outcome.is_complete() {
            complete += 1;
        }
    }
    assert!(
        complete >= 15,
        "most sessions should end with a complete target, got {complete}"
    );
}

#[test]
fn syn_instances_scale_and_stay_church_rosser() {
    for (ie, im, sigma) in [(50usize, 10usize, 12usize), (150, 30, 24), (300, 50, 40)] {
        let inst = syn(ie, im, sigma, 77);
        assert_eq!(inst.spec.entity_size(), ie);
        assert_eq!(inst.spec.rule_count(), sigma);
        let run = is_cr(&inst.spec);
        assert!(run.outcome.is_church_rosser(), "syn({ie},{im},{sigma})");
        // termination bound of Proposition 1: applied steps are polynomial in |Ie|
        assert!(run.stats.steps_applied <= ie * ie * inst.spec.ie.schema().arity());
    }
}

#[test]
fn rest_truth_discovery_end_to_end() {
    let data = rest(&RestConfig::scaled(0.03, 31));
    let truth = data.closed_truth();
    let cef = copy_cef(&data.observations, &CopyCefConfig::default());
    let predicted: Vec<usize> = cef
        .truths
        .iter()
        .filter(|(_, v)| matches!(v, Some(Value::Bool(true))))
        .map(|(o, _)| o.0)
        .collect();
    let pr = precision_recall(&predicted, &truth);
    assert!(pr.precision > 0.5, "copyCEF precision {}", pr.precision);
    // detected copy pairs point from the appended copier sources to originals
    assert!(cef
        .copy_pairs
        .iter()
        .any(|(copier, _, p)| copier.0 >= 10 && *p > 0.5));
}

#[test]
fn csv_round_trip_of_generated_entities() {
    let data = cfp(0.25, 40);
    let entity = &data.entities[0];
    let mut relation = Relation::new(data.schema.clone());
    for tuple in entity.instance.tuples() {
        relation.push_row(tuple.values().to_vec()).unwrap();
    }
    let csv = to_csv(&relation);
    let back = from_csv(data.schema.clone(), &csv).unwrap();
    assert_eq!(back.len(), entity.instance.len());
    let ie2 = back.to_entity_instance();
    let spec1 = data.specification(0);
    let run1 = is_cr(&spec1);
    let spec2 =
        relacc::core::Specification::new(ie2, data.rules.clone()).with_master(data.master.clone());
    let run2 = is_cr(&spec2);
    assert_eq!(
        run1.outcome.target().map(|t| t.values().to_vec()),
        run2.outcome.target().map(|t| t.values().to_vec()),
        "chasing the CSV round-tripped instance gives the same target"
    );
}
