//! Properties of the batch engine:
//!
//! * the parallel batch result is identical — per-entity outcome and target
//!   tuple — to a sequential `is_cr` loop over the same entities;
//! * `ChasePlan` reuse across entities gives the same result as building a
//!   fresh `Specification` per entity (the seed architecture);
//! * interning entity instances never changes any outcome.

use proptest::prelude::*;
use relacc::core::chase::is_cr;
use relacc::core::rules::{Predicate, RuleSet, TupleRule};
use relacc::core::{ChasePlan, Specification};
use relacc::engine::{BatchEngine, EntityOutcome};
use relacc::model::{
    AttrId, CmpOp, DataType, EntityInstance, MasterRelation, Schema, SchemaRef, Value,
};

/// A compact random corpus: each entity is a list of rows over
/// (name-class, seq, label) with optional nulls.
#[derive(Debug, Clone)]
struct RandomCorpus {
    entities: Vec<Vec<(Option<i64>, Option<u8>)>>,
    use_currency: bool,
    use_follow: bool,
    with_master: bool,
}

fn arb_corpus() -> impl Strategy<Value = RandomCorpus> {
    (
        prop::collection::vec(
            prop::collection::vec((prop::option::of(0i64..5), prop::option::of(0u8..3)), 1..6),
            1..12,
        ),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(
            |(entities, use_currency, use_follow, with_master)| RandomCorpus {
                entities,
                use_currency,
                use_follow,
                with_master,
            },
        )
}

fn schema() -> SchemaRef {
    Schema::builder("r")
        .attr("name", DataType::Text)
        .attr("seq", DataType::Int)
        .attr("label", DataType::Text)
        .build()
}

fn master_schema() -> SchemaRef {
    Schema::builder("m")
        .attr("name", DataType::Text)
        .attr("label", DataType::Text)
        .build()
}

fn build_rules(corpus: &RandomCorpus, s: &SchemaRef, ms: &SchemaRef) -> RuleSet {
    let mut rules = RuleSet::new();
    if corpus.use_currency {
        rules.push(TupleRule::new(
            "currency",
            vec![Predicate::cmp_attrs(s.expect_attr("seq"), CmpOp::Lt)],
            s.expect_attr("seq"),
        ));
    }
    if corpus.use_follow {
        rules.push(TupleRule::new(
            "follow",
            vec![Predicate::OrderLt {
                attr: s.expect_attr("seq"),
            }],
            s.expect_attr("label"),
        ));
    }
    if corpus.with_master {
        rules.push(relacc::core::rules::MasterRule::new(
            "master",
            vec![relacc::core::rules::MasterPremise::TargetEqMaster(
                s.expect_attr("name"),
                ms.expect_attr("name"),
            )],
            vec![(s.expect_attr("label"), ms.expect_attr("label"))],
        ));
    }
    rules
}

fn build_entities(corpus: &RandomCorpus, s: &SchemaRef) -> Vec<EntityInstance> {
    corpus
        .entities
        .iter()
        .enumerate()
        .map(|(e, rows)| {
            EntityInstance::from_rows(
                s.clone(),
                rows.iter()
                    .map(|(seq, label)| {
                        vec![
                            Value::text(format!("e{}", e % 4)),
                            seq.map_or(Value::Null, Value::Int),
                            label.map_or(Value::Null, |x| Value::text(format!("l{x}"))),
                        ]
                    })
                    .collect(),
            )
            .unwrap()
        })
        .collect()
}

fn build_master(ms: &SchemaRef) -> MasterRelation {
    MasterRelation::from_rows(
        ms.clone(),
        vec![
            vec![Value::text("e0"), Value::text("l0")],
            vec![Value::text("e1"), Value::text("l1")],
        ],
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The parallel batch output is bit-identical to the sequential oracle
    /// loop: same Church-Rosser verdicts, same target tuples, entity by entity.
    #[test]
    fn parallel_batch_equals_sequential_oracle(corpus in arb_corpus()) {
        let s = schema();
        let ms = master_schema();
        let rules = build_rules(&corpus, &s, &ms);
        let masters = if corpus.with_master { vec![build_master(&ms)] } else { vec![] };
        let entities = build_entities(&corpus, &s);

        // oracle: fresh Specification + is_cr per entity, sequentially
        let oracle: Vec<_> = entities
            .iter()
            .map(|ie| {
                let mut spec = Specification::new(ie.clone(), rules.clone());
                for im in &masters {
                    spec = spec.with_master(im.clone());
                }
                is_cr(&spec)
            })
            .collect();

        let engine = BatchEngine::new(s.clone(), rules.clone(), masters.clone())
            .unwrap()
            .with_threads(4)
            .with_suggestion_k(0);
        let report = engine.run_owned(entities.clone());

        prop_assert_eq!(report.entities.len(), oracle.len());
        for (reference, got) in oracle.iter().zip(report.entities.iter()) {
            prop_assert_eq!(
                reference.outcome.is_church_rosser(),
                got.outcome != EntityOutcome::NotChurchRosser
            );
            if let Some(te) = reference.outcome.target() {
                prop_assert_eq!(te, &got.deduced);
                prop_assert_eq!(
                    got.outcome == EntityOutcome::Complete,
                    te.is_complete()
                );
            }
            prop_assert_eq!(reference.stats.steps_applied, got.stats.steps_applied);
            prop_assert_eq!(reference.stats.ground_steps, got.stats.ground_steps);
        }
    }

    /// Reusing one ChasePlan (and one scratch) across entities produces the
    /// same result as compiling a fresh Specification per entity.
    #[test]
    fn plan_reuse_matches_fresh_specifications(corpus in arb_corpus()) {
        let s = schema();
        let ms = master_schema();
        let rules = build_rules(&corpus, &s, &ms);
        let masters = if corpus.with_master { vec![build_master(&ms)] } else { vec![] };
        let entities = build_entities(&corpus, &s);

        let plan = ChasePlan::compile(s.clone(), rules.clone(), masters.clone()).unwrap();
        let mut scratch = relacc::core::ChaseScratch::new();
        for ie in &entities {
            let mut spec = Specification::new(ie.clone(), rules.clone());
            for im in &masters {
                spec = spec.with_master(im.clone());
            }
            let fresh = is_cr(&spec);
            let planned = plan.is_cr_with(ie, &mut scratch);
            prop_assert_eq!(
                fresh.outcome.is_church_rosser(),
                planned.outcome.is_church_rosser()
            );
            prop_assert_eq!(fresh.outcome.target(), planned.outcome.target());
            prop_assert_eq!(fresh.stats.ground_steps, planned.stats.ground_steps);
            prop_assert_eq!(fresh.stats.pairs_considered, planned.stats.pairs_considered);
        }
    }

    /// Interning entities against the plan changes nothing observable.
    #[test]
    fn interning_is_transparent(corpus in arb_corpus()) {
        let s = schema();
        let ms = master_schema();
        let rules = build_rules(&corpus, &s, &ms);
        let masters = if corpus.with_master { vec![build_master(&ms)] } else { vec![] };
        let entities = build_entities(&corpus, &s);

        let engine = BatchEngine::new(s.clone(), rules, masters)
            .unwrap()
            .with_threads(1)
            .with_suggestion_k(2);
        let raw = engine.run(&entities);
        let interned = engine.run_owned(entities);
        for (a, b) in raw.entities.iter().zip(interned.entities.iter()) {
            prop_assert_eq!(a.outcome, b.outcome);
            prop_assert_eq!(&a.deduced, &b.deduced);
            prop_assert_eq!(&a.suggestion, &b.suggestion);
        }
    }
}

/// A plain (non-property) regression: an entity deduced through a plan whose
/// master data fills attributes must agree with the fresh-specification path,
/// attribute by attribute, including the master-assigned ones.
#[test]
fn plan_master_assignments_match_specification_path() {
    let s = schema();
    let ms = master_schema();
    let master = build_master(&ms);
    let rules = {
        let corpus = RandomCorpus {
            entities: vec![],
            use_currency: true,
            use_follow: false,
            with_master: true,
        };
        build_rules(&corpus, &s, &ms)
    };
    let ie = EntityInstance::from_rows(
        s.clone(),
        vec![
            vec![Value::text("e0"), Value::Int(1), Value::Null],
            vec![Value::text("e0"), Value::Int(3), Value::Null],
        ],
    )
    .unwrap();
    let spec = Specification::new(ie.clone(), rules.clone()).with_master(master.clone());
    let fresh = is_cr(&spec);
    let plan = ChasePlan::compile(s.clone(), rules, vec![master]).unwrap();
    let planned = plan.is_cr(&ie);
    let te = planned
        .outcome
        .target()
        .expect("plan path is Church-Rosser");
    assert_eq!(fresh.outcome.target(), Some(te));
    assert_eq!(te.value(AttrId(1)), &Value::Int(3));
    assert_eq!(te.value(AttrId(2)), &Value::text("l0"));
}
