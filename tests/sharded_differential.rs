//! Differential guard for sharded incremental repair: after applying any
//! prefix of a generated update stream, the [`ShardedEngine`] snapshot must
//! be **bit-identical** to a single [`IncrementalEngine`] over the same
//! stream and semantically identical to a from-scratch
//! `BatchEngine::repair_relation` over the same corpus state under the same
//! (delta-evolved) plan — across shard counts {1, 2, 4, 7}, at 1 and 4
//! worker threads, on the med stream (which includes mid-stream master
//! appends that broadcast to every shard) and the rest stream.
//!
//! As in `tests/incremental_differential.rs`, per-entity chase counters are
//! excluded: a cached entity reports the work of the run that produced it.

use relacc::datagen::streaming::{med_stream, rest_stream, StreamConfig, StreamOp, UpdateStream};
use relacc::engine::{BatchEngine, IncrementalEngine, RelationRepair, ShardedEngine};
use relacc::resolve::{BlockingStrategy, ResolveConfig};

fn resolve_config(stream: &UpdateStream) -> ResolveConfig {
    ResolveConfig::on_attrs(stream.match_attrs.clone()).with_strategy(BlockingStrategy::ExactKey)
}

fn open_batch_engine(stream: &UpdateStream, threads: usize) -> BatchEngine {
    BatchEngine::new(
        stream.relation.schema().clone(),
        stream.rules.clone(),
        stream.master.clone().into_iter().collect(),
    )
    .expect("stream rules validate")
    .with_threads(threads)
}

fn assert_semantically_equal(sharded: &RelationRepair, other: &RelationRepair, label: &str) {
    assert_eq!(
        sharded.resolved.members, other.resolved.members,
        "{label}: resolution membership"
    );
    assert_eq!(
        sharded.resolved.decisions, other.resolved.decisions,
        "{label}: match decisions"
    );
    for (i, (a, b)) in sharded
        .resolved
        .entities
        .iter()
        .zip(other.resolved.entities.iter())
        .enumerate()
    {
        assert_eq!(a.tuples(), b.tuples(), "{label}: entity {i} instance");
    }
    assert_eq!(
        sharded.report.entities.len(),
        other.report.entities.len(),
        "{label}: entity count"
    );
    for (a, b) in sharded
        .report
        .entities
        .iter()
        .zip(other.report.entities.iter())
    {
        assert_eq!(a.entity, b.entity, "{label}: entity index");
        assert_eq!(a.records, b.records, "{label}: entity {} records", a.entity);
        assert_eq!(a.outcome, b.outcome, "{label}: entity {} outcome", a.entity);
        assert_eq!(a.deduced, b.deduced, "{label}: entity {} deduced", a.entity);
        assert_eq!(
            a.suggestion, b.suggestion,
            "{label}: entity {} suggestion",
            a.entity
        );
        assert_eq!(
            a.suggestion_error, b.suggestion_error,
            "{label}: entity {} suggestion error",
            a.entity
        );
        assert_eq!(
            a.conflict.is_some(),
            b.conflict.is_some(),
            "{label}: entity {} conflict presence",
            a.entity
        );
    }
    assert_eq!(
        sharded.repaired.rows(),
        other.repaired.rows(),
        "{label}: repaired rows"
    );
    assert_eq!(
        sharded.row_entities, other.row_entities,
        "{label}: row/entity mapping"
    );
    assert_eq!(sharded.skipped, other.skipped, "{label}: skipped");
}

/// Apply the whole stream to a sharded engine and a single incremental
/// engine in lockstep, asserting sharded == single == from-scratch at the
/// seed state, two mid-stream checkpoints and the final state.
fn run_stream(stream: &UpdateStream, shards: usize, threads: usize, label: &str) {
    let resolve = resolve_config(stream);
    let mut sharded = ShardedEngine::open(
        open_batch_engine(stream, threads),
        stream.name.clone(),
        &stream.relation,
        resolve.clone(),
        shards,
    );
    let mut single = IncrementalEngine::open(
        open_batch_engine(stream, threads),
        stream.name.clone(),
        &stream.relation,
        resolve.clone(),
    );
    assert_eq!(sharded.shard_count(), shards, "{label}");

    let check = |sharded: &ShardedEngine, single: &IncrementalEngine, at: &str| {
        let snap = sharded.snapshot();
        assert_semantically_equal(
            &snap,
            &single.snapshot(),
            &format!("{label}/{at}/vs-single"),
        );
        let relation = sharded.snapshot_relation();
        assert_eq!(
            relation.rows(),
            single.relation().snapshot().rows(),
            "{label}/{at}: corpus states diverged"
        );
        let full = sharded.engine().repair_relation(&relation, &resolve);
        assert_semantically_equal(&snap, &full, &format!("{label}/{at}/vs-full"));
    };
    check(&sharded, &single, "seed");

    let last = stream.ops.len().saturating_sub(1);
    let checkpoints = [last / 2, last];
    let mut saw_master_append_before_last_checkpoint = false;
    for (step, op) in stream.ops.iter().enumerate() {
        match op {
            StreamOp::Rows(batch) => {
                let a = sharded
                    .apply(batch)
                    .unwrap_or_else(|e| panic!("{label}: sharded batch {step} rejected: {e}"));
                let b = single
                    .apply(batch)
                    .unwrap_or_else(|e| panic!("{label}: single batch {step} rejected: {e}"));
                // the routers agree on the corpus version and on how much
                // repair work the update could possibly reuse
                assert_eq!(a.generation, b.generation, "{label}: generation at {step}");
                assert_eq!(
                    a.entities_rerepaired + a.entities_reused,
                    b.entities_rerepaired + b.entities_reused,
                    "{label}: live entity count at {step}"
                );
            }
            StreamOp::MasterAppend(rows) => {
                if step < last {
                    saw_master_append_before_last_checkpoint = true;
                }
                sharded
                    .apply_master_append(0, rows.clone())
                    .unwrap_or_else(|e| panic!("{label}: sharded append {step} rejected: {e}"));
                single
                    .apply_master_append(0, rows.clone())
                    .unwrap_or_else(|e| panic!("{label}: single append {step} rejected: {e}"));
            }
        }
        if checkpoints.contains(&step) {
            check(&sharded, &single, &format!("step {step}"));
        }
    }
    if stream.master_appends() > 0 {
        assert!(
            saw_master_append_before_last_checkpoint,
            "{label}: the stream must exercise a mid-stream master append"
        );
    }
}

#[test]
fn sharded_matches_single_and_full_on_the_med_stream() {
    let stream = med_stream(0.01, 23, &StreamConfig::default());
    assert!(
        stream.master_appends() > 0,
        "med stream must exercise broadcast master deltas"
    );
    for threads in [1usize, 4] {
        for shards in [1usize, 2, 4, 7] {
            run_stream(
                &stream,
                shards,
                threads,
                &format!("med/shards={shards}/threads={threads}"),
            );
        }
    }
}

#[test]
fn sharded_matches_single_and_full_on_the_rest_stream() {
    let stream = rest_stream(0.002, 31, &StreamConfig::default());
    for threads in [1usize, 4] {
        for shards in [1usize, 2, 4, 7] {
            run_stream(
                &stream,
                shards,
                threads,
                &format!("rest/shards={shards}/threads={threads}"),
            );
        }
    }
}

#[test]
fn sharded_matches_single_on_the_skewed_stream() {
    // the hot-shard mix the sharded bench measures must stay differential
    let config = StreamConfig {
        master_appends_per_batch: 0,
        ..StreamConfig::default()
    }
    .with_hot_mix(2, 0.85);
    let stream = med_stream(0.01, 19, &config);
    run_stream(&stream, 4, 4, "med-skewed/shards=4/threads=4");
}
