//! Property-based tests of the chase's semantic guarantees on randomly
//! generated specifications:
//!
//! * the chase always terminates within the paper's step bound (Proposition 1);
//! * when IsCR reports Church-Rosser, every (seeded) free-order chase reaches
//!   exactly the same terminal instance (Theorem 2);
//! * the indexed and the naive schedulers agree;
//! * deduced target values always dominate their attribute's accuracy order;
//! * every candidate returned by the top-k algorithms passes the candidate
//!   check and completes the deduced target.

use proptest::prelude::*;
use relacc::core::chase::{free_chase, is_cr, naive_is_cr};
use relacc::core::rules::{Predicate, RuleSet, TupleRule};
use relacc::core::Specification;
use relacc::model::{AttrId, CmpOp, DataType, EntityInstance, Schema, Value};
use relacc::topk::{topkct, topkcth, CandidateSearch, PreferenceModel};

/// A compact description of a random specification: a 3-attribute instance
/// (one int "currency" column, two small text columns) plus a random subset of
/// rule templates.
#[derive(Debug, Clone)]
struct RandomSpec {
    rows: Vec<(Option<i64>, Option<u8>, Option<u8>)>,
    use_currency: bool,
    use_follow: bool,
    use_reverse: bool,
}

fn arb_spec() -> impl Strategy<Value = RandomSpec> {
    (
        prop::collection::vec(
            (
                prop::option::of(0i64..5),
                prop::option::of(0u8..3),
                prop::option::of(0u8..3),
            ),
            1..8,
        ),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(rows, use_currency, use_follow, use_reverse)| RandomSpec {
            rows,
            use_currency,
            use_follow,
            use_reverse,
        })
}

fn build_spec(input: &RandomSpec) -> Specification {
    let schema = Schema::builder("r")
        .attr("seq", DataType::Int)
        .attr("a", DataType::Text)
        .attr("b", DataType::Text)
        .build();
    let mut ie = EntityInstance::new(schema.clone());
    for (seq, a, b) in &input.rows {
        ie.push_row(vec![
            seq.map_or(Value::Null, Value::Int),
            a.map_or(Value::Null, |x| Value::text(format!("a{x}"))),
            b.map_or(Value::Null, |x| Value::text(format!("b{x}"))),
        ])
        .unwrap();
    }
    let mut rules = RuleSet::new();
    if input.use_currency {
        rules.push(TupleRule::new(
            "currency",
            vec![Predicate::cmp_attrs(AttrId(0), CmpOp::Lt)],
            AttrId(0),
        ));
    }
    if input.use_follow {
        rules.push(TupleRule::new(
            "follow",
            vec![Predicate::OrderLt { attr: AttrId(0) }],
            AttrId(1),
        ));
    }
    if input.use_reverse {
        // deliberately conflict-prone: order `b` against the currency direction
        rules.push(TupleRule::new(
            "reverse",
            vec![Predicate::cmp_attrs(AttrId(0), CmpOp::Gt)],
            AttrId(2),
        ));
    }
    Specification::new(ie, rules)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Proposition 1: the chase terminates, with polynomially many applied steps.
    #[test]
    fn chase_terminates_within_bounds(input in arb_spec()) {
        let spec = build_spec(&input);
        let n = spec.entity_size();
        let arity = spec.ie.schema().arity();
        let run = is_cr(&spec);
        prop_assert!(run.stats.steps_applied <= (n * n + n + 1) * arity + arity);
        prop_assert!(run.stats.order_pairs_added <= n * n * arity + arity);
    }

    /// Theorem 2: if IsCR says Church-Rosser, every chase order reaches the
    /// same terminal instance; the naive scheduler agrees as well.
    #[test]
    fn church_rosser_means_order_independence(input in arb_spec(), seeds in prop::collection::vec(any::<u64>(), 3)) {
        let spec = build_spec(&input);
        let reference = is_cr(&spec);
        if let Some(te) = reference.outcome.target() {
            let naive = naive_is_cr(&spec);
            prop_assert!(naive.outcome.is_church_rosser());
            prop_assert_eq!(naive.outcome.target().unwrap(), te);
            for seed in seeds {
                let free = free_chase(&spec, seed);
                prop_assert!(free.outcome.is_church_rosser());
                prop_assert_eq!(free.outcome.target().unwrap(), te);
                prop_assert_eq!(
                    free.outcome.instance().unwrap().orders.total_edges(),
                    reference.outcome.instance().unwrap().orders.total_edges()
                );
            }
        }
    }

    /// Every deduced non-null target value dominates its attribute order, and
    /// never contradicts the non-null values of the tuples it was drawn from.
    #[test]
    fn deduced_values_dominate_their_columns(input in arb_spec()) {
        let spec = build_spec(&input);
        let run = is_cr(&spec);
        if let Some(instance) = run.outcome.instance() {
            for a in spec.ie.schema().attr_ids() {
                let te_v = instance.target.value(a);
                if te_v.is_null() {
                    continue;
                }
                let ord = instance.orders.attr(a);
                if let Some(c) = ord.class_of_value(te_v) {
                    for other in 0..ord.num_classes() {
                        prop_assert!(
                            ord.class_le(relacc::model::ClassId(other), c),
                            "target value must dominate class {other} of {a}"
                        );
                    }
                }
            }
        }
    }

    /// Top-k candidates always pass the candidate-target check, complete the
    /// deduced target, and come out sorted by score.
    #[test]
    fn topk_candidates_are_valid(input in arb_spec(), k in 1usize..6) {
        let spec = build_spec(&input);
        let preference = PreferenceModel::occurrence(&spec, k);
        let Ok(search) = CandidateSearch::prepare(&spec, preference) else {
            return Ok(()); // not Church-Rosser: nothing to verify here
        };
        for result in [topkct(&search), topkcth(&search)] {
            prop_assert!(result.candidates.len() <= k.max(1));
            for w in result.candidates.windows(2) {
                prop_assert!(w[0].score >= w[1].score);
            }
            let mut stats = relacc::topk::TopKStats::default();
            let mut scratch = relacc::topk::CheckScratch::new();
            for c in &result.candidates {
                prop_assert!(c.target.is_complete());
                prop_assert!(search.deduced.is_completed_by(&c.target));
                prop_assert!(search.check(&c.target, &mut scratch, &mut stats));
                prop_assert!(search.check_full(&c.target, &mut stats));
            }
        }
    }
}
