//! Differential guard for the batch pipeline: a directly-constructed
//! `relacc_engine::BatchEngine::repair_relation` must agree, entity by
//! entity, with [`legacy_oracle`] — an independent replication of the
//! original recompiling pipeline (fresh `Specification` + `is_cr` per
//! entity, fresh `CandidateSearch::prepare` per suggestion) — on the
//! paper-example corpus and on a dirty relation flattened from the Rest
//! workload, single- and multi-threaded.
//!
//! This test used to route through the deprecated `relacc_db` facade; that
//! crate has since been deleted and the engine path is pinned directly.
//! The behavioral guard is unchanged and two-fold: the oracle
//! catches any semantic drift of the compile-once engine against the
//! per-entity pipeline it absorbed, and the paper-example test pins golden
//! outcomes (the paper's expected Jordan target, the outcome mix), so a
//! drift that moves engine and oracle together still trips the goldens.

use relacc::core::chase::is_cr;
use relacc::core::{RuleSet, Specification};
use relacc::datagen::paper_example::{
    expected_target, nba_master, paper_rules, stat_instance, stat_schema,
};
use relacc::datagen::rest::{rest, RestConfig};
use relacc::engine::{BatchEngine, EntityOutcome, RelationRepair};
use relacc::model::{DataType, MasterRelation, Schema, TargetTuple, Value};
use relacc::resolve::{resolve_relation, BlockingStrategy, ResolveConfig};
use relacc::store::Relation;
use relacc::topk::{topkct, CandidateSearch, PreferenceModel};

const SUGGESTION_K: usize = 5;

fn assert_same_repair(a: &RelationRepair, b: &RelationRepair, label: &str) {
    assert_eq!(
        a.report.entities.len(),
        b.report.entities.len(),
        "{label}: entity count"
    );
    for (x, y) in a.report.entities.iter().zip(b.report.entities.iter()) {
        assert_eq!(x.entity, y.entity, "{label}: entity index");
        assert_eq!(x.records, y.records, "{label}: entity {} records", x.entity);
        assert_eq!(x.outcome, y.outcome, "{label}: entity {} outcome", x.entity);
        assert_eq!(x.deduced, y.deduced, "{label}: entity {} deduced", x.entity);
        assert_eq!(
            x.suggestion, y.suggestion,
            "{label}: entity {} suggestion",
            x.entity
        );
        assert_eq!(
            x.suggestion_error, y.suggestion_error,
            "{label}: entity {} suggestion error",
            x.entity
        );
    }
    assert_eq!(a.report.complete, b.report.complete, "{label}: complete");
    assert_eq!(a.report.suggested, b.report.suggested, "{label}: suggested");
    assert_eq!(
        a.report.needs_user, b.report.needs_user,
        "{label}: needs_user"
    );
    assert_eq!(
        a.report.not_church_rosser, b.report.not_church_rosser,
        "{label}: not_church_rosser"
    );
    assert_eq!(
        a.report.suggestion_errors, b.report.suggestion_errors,
        "{label}: suggestion_errors"
    );
    assert_eq!(
        a.repaired.rows(),
        b.repaired.rows(),
        "{label}: repaired rows"
    );
    assert_eq!(
        a.row_entities, b.row_entities,
        "{label}: row/entity mapping"
    );
    assert_eq!(a.skipped, b.skipped, "{label}: skipped entities");
}

/// The retired per-entity pipeline, replicated independently of the engine:
/// fresh `Specification` + `is_cr` per entity, and a fresh
/// `CandidateSearch::prepare` (own grounding) for suggestions.  Returns
/// `(is_church_rosser, deduced, suggestion)` per resolved entity.
fn legacy_oracle(
    relation: &Relation,
    rules: &RuleSet,
    master: Option<&MasterRelation>,
    resolve: &ResolveConfig,
    suggestion_k: usize,
) -> Vec<(bool, Option<TargetTuple>, Option<TargetTuple>)> {
    let resolved = resolve_relation(relation, resolve);
    resolved
        .entities
        .iter()
        .map(|ie| {
            let mut spec = Specification::new(ie.clone(), rules.clone());
            if let Some(im) = master {
                spec = spec.with_master(im.clone());
            }
            let run = is_cr(&spec);
            let Some(instance) = run.outcome.instance() else {
                return (false, None, None);
            };
            let deduced = instance.target.clone();
            let suggestion = if !deduced.is_complete() && suggestion_k > 0 {
                let preference = PreferenceModel::occurrence(&spec, suggestion_k);
                CandidateSearch::prepare(&spec, preference)
                    .ok()
                    .and_then(|search| topkct(&search).candidates.into_iter().next())
                    .map(|c| c.target)
            } else {
                None
            };
            (true, Some(deduced), suggestion)
        })
        .collect()
}

fn run_differential(
    relation: &Relation,
    rules: &RuleSet,
    master: Option<&MasterRelation>,
    resolve: &ResolveConfig,
    label: &str,
) {
    // the engine must agree, entity by entity, with the retired recompiling
    // pipeline — this is the guard that the absorption preserved behavior
    let oracle = legacy_oracle(relation, rules, master, resolve, SUGGESTION_K);
    let mut single: Option<RelationRepair> = None;
    for threads in [1usize, 4] {
        let masters = master.map(|im| vec![im.clone()]).unwrap_or_default();
        let direct = BatchEngine::new(relation.schema().clone(), rules.clone(), masters)
            .expect("rules validate")
            .with_threads(threads)
            .with_suggestion_k(SUGGESTION_K)
            .repair_relation(relation, resolve);
        assert_eq!(
            direct.report.stats.full_checks, 0,
            "{label}/threads={threads}: the batch suggestion path must never \
             fall back to from-scratch candidate checks"
        );
        if direct.report.suggested > 0 {
            assert!(
                direct.report.stats.delta_checks >= direct.report.suggested,
                "{label}/threads={threads}: every suggested entity implies at \
                 least one accepted checkpointed check"
            );
        }
        assert_eq!(
            direct.report.entities.len(),
            oracle.len(),
            "{label}: oracle entity count"
        );
        for (result, (oracle_cr, oracle_deduced, oracle_suggestion)) in
            direct.report.entities.iter().zip(oracle.iter())
        {
            assert_eq!(
                result.outcome != EntityOutcome::NotChurchRosser,
                *oracle_cr,
                "{label}: entity {} Church-Rosser verdict vs legacy oracle",
                result.entity
            );
            if let Some(deduced) = oracle_deduced {
                assert_eq!(
                    &result.deduced, deduced,
                    "{label}: entity {} deduced target vs legacy oracle",
                    result.entity
                );
            }
            assert_eq!(
                &result.suggestion, oracle_suggestion,
                "{label}: entity {} suggestion vs legacy oracle",
                result.entity
            );
        }
        // thread count must not change the result either
        match &single {
            None => single = Some(direct),
            Some(reference) => assert_same_repair(
                reference,
                &direct,
                &format!("{label}/1-vs-{threads}-threads"),
            ),
        }
    }
}

/// The paper's running example (Tables 1–3) as a dirty relation: Michael
/// Jordan's rows plus a second fabricated player, repaired with the full rule
/// set ϕ1–ϕ11 and the `nba` master relation.
#[test]
fn engine_matches_oracle_on_the_paper_example() {
    let schema = stat_schema();
    let mut rows: Vec<Vec<Value>> = stat_instance()
        .tuples()
        .iter()
        .map(|t| t.values().to_vec())
        .collect();
    // a second entity with distinct names, cloned from the Jordan rows
    for base in stat_instance().tuples() {
        let mut row = base.values().to_vec();
        row[0] = Value::text("Scottie");
        row[2] = Value::text("Pippen");
        rows.push(row);
    }
    let relation = Relation::from_rows(schema.clone(), rows).unwrap();
    let rules = paper_rules();
    let master = nba_master();
    let resolve = ResolveConfig::on_attrs(vec!["FN".into(), "LN".into()]).with_threshold(0.5);
    run_differential(&relation, &rules, Some(&master), &resolve, "paper-example");

    // Golden behavior: the absorption must not change what gets repaired.
    // Resolution splits the corpus into the lone "MJ" record (LN null, its
    // own block), the three spelled-out Jordan rows and the four Pippen rows;
    // the Jordan entity must deduce exactly the paper's expected target
    // (Tables 1–3, Example 5).
    let repair = BatchEngine::new(schema, rules.clone(), vec![master.clone()])
        .unwrap()
        .repair_relation(&relation, &resolve);
    assert_eq!(repair.report.entities.len(), 3);
    assert_eq!(
        (
            repair.report.complete,
            repair.report.suggested,
            repair.report.needs_user,
            repair.report.not_church_rosser,
            repair.report.suggestion_errors,
            repair.skipped.len(),
        ),
        (1, 1, 1, 0, 0, 0)
    );
    let jordan = &repair.report.entities[1];
    assert_eq!(jordan.records, vec![1, 2, 3]);
    assert_eq!(jordan.deduced, expected_target());
    // the lone "MJ" record stays NeedsUser and its repaired row is its own
    // source record, not a fabricated null row
    let mj = &repair.report.entities[0];
    assert_eq!(mj.records, vec![0]);
    assert_eq!(
        repair.repaired.rows()[0].values(),
        stat_instance().tuples()[0].values()
    );
}

/// The Rest corpus flattened into one dirty relation: every listing row of the
/// first restaurants, tagged with the restaurant name so exact-key blocking
/// reconstructs the per-restaurant entities, repaired with the corpus rules.
#[test]
fn engine_matches_oracle_on_the_rest_corpus() {
    let data = rest(&RestConfig::scaled(0.01, 7));
    // extend the listing schema (source, snapshot, closed) with the restaurant
    // name; the corpus rules keep their attribute ids 0..2
    let schema = Schema::builder("listing")
        .attr("source", DataType::Text)
        .attr("snapshot", DataType::Int)
        .attr("closed", DataType::Bool)
        .attr("rname", DataType::Text)
        .build();
    let mut rows: Vec<Vec<Value>> = Vec::new();
    for restaurant in data.restaurants.iter().take(24) {
        for tuple in restaurant.instance.tuples() {
            let mut row = tuple.values().to_vec();
            row.push(Value::text(restaurant.name.clone()));
            rows.push(row);
        }
    }
    let relation = Relation::from_rows(schema, rows).unwrap();
    run_differential(
        &relation,
        &data.rules,
        None,
        &ResolveConfig::on_attrs(vec!["rname".into()]).with_strategy(BlockingStrategy::ExactKey),
        "rest-corpus",
    );
}
