//! Differential guard for the batch-pipeline absorption: the deprecated
//! `relacc_db::batch::repair_database` shim and a directly-constructed
//! `relacc_engine::BatchEngine::repair_relation` must produce identical
//! outcomes, repaired rows and counts — on the paper-example corpus and on a
//! dirty relation flattened from the Rest workload, single- and
//! multi-threaded.
//!
//! Since the shim *delegates* to the engine, the shim-vs-engine comparison
//! pins the `BatchConfig` → `EngineConfig` mapping and the delegation wiring
//! (plus thread-count invariance).  The behavioral guard against the
//! absorption itself is two-fold: [`legacy_oracle`] replicates the retired
//! `relacc_db::batch` pipeline (fresh `Specification` + `is_cr` per entity,
//! fresh `CandidateSearch::prepare` per suggestion) and every engine result
//! is compared against it entity by entity, and the paper-example test pins
//! golden outcomes (the paper's expected Jordan target, the outcome mix), so
//! a semantic drift that moves shim and engine together still trips the
//! oracle or the golden values.

#![allow(deprecated)]

use relacc::core::chase::is_cr;
use relacc::core::{RuleSet, Specification};
use relacc::datagen::paper_example::{
    expected_target, nba_master, paper_rules, stat_instance, stat_schema,
};
use relacc::datagen::rest::{rest, RestConfig};
use relacc::db::{repair_database, BatchConfig};
use relacc::engine::{BatchEngine, EntityOutcome, RelationRepair};
use relacc::model::{DataType, MasterRelation, Schema, TargetTuple, Value};
use relacc::resolve::{resolve_relation, BlockingStrategy, ResolveConfig};
use relacc::store::Relation;
use relacc::topk::{topkct, CandidateSearch, PreferenceModel};

fn assert_same_repair(shim: &RelationRepair, direct: &RelationRepair, label: &str) {
    assert_eq!(
        shim.report.entities.len(),
        direct.report.entities.len(),
        "{label}: entity count"
    );
    for (a, b) in shim
        .report
        .entities
        .iter()
        .zip(direct.report.entities.iter())
    {
        assert_eq!(a.entity, b.entity, "{label}: entity index");
        assert_eq!(a.records, b.records, "{label}: entity {} records", a.entity);
        assert_eq!(a.outcome, b.outcome, "{label}: entity {} outcome", a.entity);
        assert_eq!(a.deduced, b.deduced, "{label}: entity {} deduced", a.entity);
        assert_eq!(
            a.suggestion, b.suggestion,
            "{label}: entity {} suggestion",
            a.entity
        );
        assert_eq!(
            a.suggestion_error, b.suggestion_error,
            "{label}: entity {} suggestion error",
            a.entity
        );
    }
    assert_eq!(
        shim.report.complete, direct.report.complete,
        "{label}: complete"
    );
    assert_eq!(
        shim.report.suggested, direct.report.suggested,
        "{label}: suggested"
    );
    assert_eq!(
        shim.report.needs_user, direct.report.needs_user,
        "{label}: needs_user"
    );
    assert_eq!(
        shim.report.not_church_rosser, direct.report.not_church_rosser,
        "{label}: not_church_rosser"
    );
    assert_eq!(
        shim.report.suggestion_errors, direct.report.suggestion_errors,
        "{label}: suggestion_errors"
    );
    assert_eq!(
        shim.repaired.rows(),
        direct.repaired.rows(),
        "{label}: repaired rows"
    );
    assert_eq!(
        shim.row_entities, direct.row_entities,
        "{label}: row/entity mapping"
    );
    assert_eq!(shim.skipped, direct.skipped, "{label}: skipped entities");
}

/// The retired `relacc_db::batch::repair_entity` pipeline, replicated
/// independently of the engine: fresh `Specification` + `is_cr` per entity,
/// and a fresh `CandidateSearch::prepare` (own grounding) for suggestions.
/// Returns `(is_church_rosser, deduced, suggestion)` per resolved entity.
fn legacy_oracle(
    relation: &Relation,
    rules: &RuleSet,
    master: Option<&MasterRelation>,
    resolve: &ResolveConfig,
    suggestion_k: usize,
) -> Vec<(bool, Option<TargetTuple>, Option<TargetTuple>)> {
    let resolved = resolve_relation(relation, resolve);
    resolved
        .entities
        .iter()
        .map(|ie| {
            let mut spec = Specification::new(ie.clone(), rules.clone());
            if let Some(im) = master {
                spec = spec.with_master(im.clone());
            }
            let run = is_cr(&spec);
            let Some(instance) = run.outcome.instance() else {
                return (false, None, None);
            };
            let deduced = instance.target.clone();
            let suggestion = if !deduced.is_complete() && suggestion_k > 0 {
                let preference = PreferenceModel::occurrence(&spec, suggestion_k);
                CandidateSearch::prepare(&spec, preference)
                    .ok()
                    .and_then(|search| topkct(&search).candidates.into_iter().next())
                    .map(|c| c.target)
            } else {
                None
            };
            (true, Some(deduced), suggestion)
        })
        .collect()
}

fn run_differential(
    relation: &Relation,
    rules: &RuleSet,
    master: Option<&MasterRelation>,
    resolve: &ResolveConfig,
    label: &str,
) {
    // the engine must agree, entity by entity, with the retired recompiling
    // pipeline — this is the guard that the absorption preserved behavior
    let oracle = legacy_oracle(relation, rules, master, resolve, 5);
    let mut single: Option<RelationRepair> = None;
    for threads in [1usize, 4] {
        let config = BatchConfig::new(resolve.clone()).with_threads(threads);
        let shim = repair_database(relation, rules, master, &config);
        let masters = master.map(|im| vec![im.clone()]).unwrap_or_default();
        let direct = BatchEngine::new(relation.schema().clone(), rules.clone(), masters)
            .expect("rules validate")
            .with_threads(threads)
            .with_suggestion_k(config.suggestion_k)
            .repair_relation(relation, resolve);
        assert_same_repair(&shim, &direct, &format!("{label}/threads={threads}"));
        // Stats drift guard for the checkpointed-check counters: the shim is
        // a pure delegation, so its aggregated ChaseStats — including the new
        // full_checks / delta_checks / delta_steps_replayed — must be
        // bit-identical to the engine's.  (The legacy oracle below is only
        // compared on *outcomes*: its recompiling pipeline counts work
        // differently, and that is allowed — counters may differ, outcomes
        // may not.)
        assert_eq!(
            shim.report.stats, direct.report.stats,
            "{label}/threads={threads}: aggregated ChaseStats"
        );
        assert_eq!(
            direct.report.stats.full_checks, 0,
            "{label}/threads={threads}: the batch suggestion path must never \
             fall back to from-scratch candidate checks"
        );
        if direct.report.suggested > 0 {
            assert!(
                direct.report.stats.delta_checks >= direct.report.suggested,
                "{label}/threads={threads}: every suggested entity implies at \
                 least one accepted checkpointed check"
            );
        }
        assert_eq!(
            direct.report.entities.len(),
            oracle.len(),
            "{label}: oracle entity count"
        );
        for (result, (oracle_cr, oracle_deduced, oracle_suggestion)) in
            direct.report.entities.iter().zip(oracle.iter())
        {
            assert_eq!(
                result.outcome != EntityOutcome::NotChurchRosser,
                *oracle_cr,
                "{label}: entity {} Church-Rosser verdict vs legacy oracle",
                result.entity
            );
            if let Some(deduced) = oracle_deduced {
                assert_eq!(
                    &result.deduced, deduced,
                    "{label}: entity {} deduced target vs legacy oracle",
                    result.entity
                );
            }
            assert_eq!(
                &result.suggestion, oracle_suggestion,
                "{label}: entity {} suggestion vs legacy oracle",
                result.entity
            );
        }
        // thread count must not change the result either
        match &single {
            None => single = Some(shim),
            Some(reference) => {
                assert_same_repair(reference, &shim, &format!("{label}/1-vs-{threads}-threads"))
            }
        }
    }
}

/// The paper's running example (Tables 1–3) as a dirty relation: Michael
/// Jordan's rows plus a second fabricated player, repaired with the full rule
/// set ϕ1–ϕ11 and the `nba` master relation.
#[test]
fn shim_matches_engine_on_the_paper_example() {
    let schema = stat_schema();
    let mut rows: Vec<Vec<Value>> = stat_instance()
        .tuples()
        .iter()
        .map(|t| t.values().to_vec())
        .collect();
    // a second entity with distinct names, cloned from the Jordan rows
    for base in stat_instance().tuples() {
        let mut row = base.values().to_vec();
        row[0] = Value::text("Scottie");
        row[2] = Value::text("Pippen");
        rows.push(row);
    }
    let relation = Relation::from_rows(schema.clone(), rows).unwrap();
    let rules = paper_rules();
    let master = nba_master();
    let resolve = ResolveConfig::on_attrs(vec!["FN".into(), "LN".into()]).with_threshold(0.5);
    run_differential(&relation, &rules, Some(&master), &resolve, "paper-example");

    // Golden behavior: the absorption must not change what gets repaired.
    // Resolution splits the corpus into the lone "MJ" record (LN null, its
    // own block), the three spelled-out Jordan rows and the four Pippen rows;
    // the Jordan entity must deduce exactly the paper's expected target
    // (Tables 1–3, Example 5).
    let repair = BatchEngine::new(schema, rules.clone(), vec![master.clone()])
        .unwrap()
        .repair_relation(&relation, &resolve);
    assert_eq!(repair.report.entities.len(), 3);
    assert_eq!(
        (
            repair.report.complete,
            repair.report.suggested,
            repair.report.needs_user,
            repair.report.not_church_rosser,
            repair.report.suggestion_errors,
            repair.skipped.len(),
        ),
        (1, 1, 1, 0, 0, 0)
    );
    let jordan = &repair.report.entities[1];
    assert_eq!(jordan.records, vec![1, 2, 3]);
    assert_eq!(jordan.deduced, expected_target());
    // the lone "MJ" record stays NeedsUser and its repaired row is its own
    // source record, not a fabricated null row
    let mj = &repair.report.entities[0];
    assert_eq!(mj.records, vec![0]);
    assert_eq!(
        repair.repaired.rows()[0].values(),
        stat_instance().tuples()[0].values()
    );
}

/// The Rest corpus flattened into one dirty relation: every listing row of the
/// first restaurants, tagged with the restaurant name so exact-key blocking
/// reconstructs the per-restaurant entities, repaired with the corpus rules.
#[test]
fn shim_matches_engine_on_the_rest_corpus() {
    let data = rest(&RestConfig::scaled(0.01, 7));
    // extend the listing schema (source, snapshot, closed) with the restaurant
    // name; the corpus rules keep their attribute ids 0..2
    let schema = Schema::builder("listing")
        .attr("source", DataType::Text)
        .attr("snapshot", DataType::Int)
        .attr("closed", DataType::Bool)
        .attr("rname", DataType::Text)
        .build();
    let mut rows: Vec<Vec<Value>> = Vec::new();
    for restaurant in data.restaurants.iter().take(24) {
        for tuple in restaurant.instance.tuples() {
            let mut row = tuple.values().to_vec();
            row.push(Value::text(restaurant.name.clone()));
            rows.push(row);
        }
    }
    let relation = Relation::from_rows(schema, rows).unwrap();
    run_differential(
        &relation,
        &data.rules,
        None,
        &ResolveConfig::on_attrs(vec!["rname".into()]).with_strategy(BlockingStrategy::ExactKey),
        "rest-corpus",
    );
}
