//! Exactness guard for the fingerprint cascade: the cascade's upper bounds
//! may never prune a pair the full similarity computation would match, at
//! any threshold — otherwise pruning would change the clustering.
//!
//! Three layers:
//! * a property test over random value pairs (mixed-script strings with
//!   token structure, nulls, cross-width numerics) checking
//!   `stageN_upper_bound ≥ record_similarity` — the bound-domination
//!   invariant that makes `ub < threshold ⇒ unmatched` exact, plus the
//!   bit-parallel/DP Levenshtein agreement on the same inputs;
//! * differential resolutions (cascade vs. [`ResolveConfig::without_cascade`])
//!   on the Med and Rest streaming relations and the adversarial
//!   `large_blocks` shape, pinning identical `entities`/`members` and
//!   identical per-pair match verdicts;
//! * a prune-effectiveness floor on `large_blocks`, so the cascade cannot
//!   silently degrade into "never prunes" (which would keep outputs equal
//!   but erase the point of the PR).

use proptest::prelude::*;
use relacc::datagen::{large_blocks, med_stream, rest_stream, LargeBlocksConfig, StreamConfig};
use relacc::model::{AttrId, Tuple, Value};
use relacc::resolve::similarity::levenshtein_dp_with;
use relacc::resolve::{
    record_similarity, resolve_relation, RecordFingerprint, ResolveConfig, SimilarityScratch,
};
use relacc::store::Relation;

/// A small vocabulary mixing scripts, token lengths and whitespace so the
/// char/bigram/token fingerprints all get exercised, including multi-byte
/// chars and case-folding edge cases (final sigma).
const WORDS: &[&str] = &[
    "jordan",
    "Jordan",
    "bulls",
    "ΟΣ",
    "ος",
    "naïve",
    "日本語",
    "a",
    "zz",
    "chicago23",
    "",
    " ",
    "résumé",
];

fn arb_text() -> impl Strategy<Value = String> {
    prop::collection::vec(0usize..WORDS.len(), 0..6).prop_map(|picks| {
        let mut s = String::new();
        for (i, p) in picks.iter().enumerate() {
            if i > 0 {
                s.push(' ');
            }
            s.push_str(WORDS[*p]);
        }
        s
    })
}

fn arb_value() -> impl Strategy<Value = Value> {
    (0u8..5, arb_text(), any::<i64>(), any::<bool>()).prop_map(|(kind, text, n, b)| match kind {
        0 => Value::Null,
        1 => Value::Int(n % 7),
        2 => Value::Float((n % 7) as f64),
        3 => Value::Bool(b),
        _ => Value::text(text),
    })
}

proptest! {
    /// The cascade bounds dominate the true similarity on arbitrary record
    /// pairs — so no threshold can ever prune a matching pair.
    #[test]
    fn cascade_bounds_dominate_similarity(
        a0 in arb_value(), a1 in arb_value(),
        b0 in arb_value(), b1 in arb_value(),
    ) {
        let attrs = [AttrId(0), AttrId(1)];
        let ta = Tuple::new(vec![a0, a1]);
        let tb = Tuple::new(vec![b0, b1]);
        let fa = RecordFingerprint::of_tuple(&ta, &attrs);
        let fb = RecordFingerprint::of_tuple(&tb, &attrs);
        let actual = record_similarity(&ta, &tb, &attrs);
        let stage1 = fa.stage1_upper_bound(&fb);
        let stage2 = fa.stage2_upper_bound(&fb);
        // f64-exact comparisons: this is precisely the pruning predicate
        prop_assert!(stage1 >= actual, "stage1 {stage1} < actual {actual}");
        prop_assert!(stage2 >= actual, "stage2 {stage2} < actual {actual}");
        // and the bounds are symmetric, like the similarity itself
        prop_assert_eq!(stage1, fb.stage1_upper_bound(&fa));
        prop_assert_eq!(stage2, fb.stage2_upper_bound(&fa));
    }

    /// The bit-parallel Levenshtein dispatch agrees with the reference DP on
    /// arbitrary strings, across the ≤64 / >64 char boundary.
    #[test]
    fn myers_dispatch_matches_reference_dp(
        a in arb_text(),
        b in arb_text(),
        pad in 0usize..80,
    ) {
        let mut scratch = SimilarityScratch::new();
        let long_a = format!("{a}{}", "x".repeat(pad));
        prop_assert_eq!(
            relacc::resolve::levenshtein_with(&long_a, &b, &mut scratch),
            levenshtein_dp_with(&long_a, &b, &mut scratch)
        );
    }
}

fn assert_cascade_is_exact(relation: &Relation, config: &ResolveConfig, label: &str) {
    let cascade = resolve_relation(relation, config);
    let baseline = resolve_relation(relation, &config.clone().without_cascade());
    assert_eq!(cascade.members, baseline.members, "{label}: members");
    assert_eq!(
        cascade.entities.len(),
        baseline.entities.len(),
        "{label}: entity count"
    );
    for (c, b) in cascade.entities.iter().zip(baseline.entities.iter()) {
        assert_eq!(c.tuples(), b.tuples(), "{label}: entity rows");
    }
    assert_eq!(
        cascade.decisions.len(),
        baseline.decisions.len(),
        "{label}: pair count"
    );
    for (c, b) in cascade.decisions.iter().zip(baseline.decisions.iter()) {
        assert_eq!(
            (c.left, c.right, c.matched),
            (b.left, b.right, b.matched),
            "{label}: verdict of ({}, {})",
            c.left,
            c.right
        );
        if c.pruned.is_none() {
            assert_eq!(c.similarity, b.similarity, "{label}: exact similarity");
        }
    }
    // stats bookkeeping holds on every corpus
    let s = cascade.stats;
    assert_eq!(
        s.pruned_by_length + s.pruned_by_fingerprint + s.dp_runs,
        s.pairs_considered,
        "{label}: stats partition the pairs"
    );
}

#[test]
fn cascade_matches_baseline_on_med() {
    let stream = med_stream(0.02, 5, &StreamConfig::default());
    let config = ResolveConfig::on_attrs(stream.match_attrs.clone());
    assert_cascade_is_exact(&stream.relation, &config, "med/prefix");
    // exact-key blocking is what the differential suites run under
    let exact = config.with_strategy(relacc::resolve::BlockingStrategy::ExactKey);
    assert_cascade_is_exact(&stream.relation, &exact, "med/exact");
}

#[test]
fn cascade_matches_baseline_on_rest() {
    let stream = rest_stream(0.02, 9, &StreamConfig::default());
    let config = ResolveConfig::on_attrs(stream.match_attrs.clone());
    assert_cascade_is_exact(&stream.relation, &config, "rest/prefix");
}

#[test]
fn cascade_matches_baseline_and_prunes_on_large_blocks() {
    let data = large_blocks(&LargeBlocksConfig {
        n_blocks: 6,
        rows_per_block: 24,
        ..LargeBlocksConfig::default()
    });
    let config = ResolveConfig::on_attrs(data.match_attrs.clone()).with_threshold(data.threshold);
    assert_cascade_is_exact(&data.relation, &config, "large_blocks");
    // effectiveness floor: the shape is built so most pairs are prunable
    let resolved = resolve_relation(&data.relation, &config);
    assert!(
        resolved.stats.pruned_fraction() >= 0.5,
        "pruned fraction {:.3} below the gate floor",
        resolved.stats.pruned_fraction()
    );
    assert!(resolved.stats.dp_runs > 0, "true duplicates still align");
}
