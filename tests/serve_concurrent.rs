//! Concurrency stress for the serving layer: one writer thread replays an
//! update stream while N reader threads hammer pinned reads, point reads and
//! deltas.  Every pinned epoch must be **exactly** the committed state of
//! its generation — never a torn mix of two batches — which the test checks
//! against an offline replay of the same stream:
//!
//! * the epoch's live row-id set equals the scripted set of its generation;
//! * point reads on those rows succeed and report members from the same set;
//! * generations are monotone per reader (the hub never goes backwards);
//! * `changes_since(pinned generation)` stays available (retention covers
//!   the stream) and starts exactly at the pinned generation.
//!
//! Runs against a single [`IncrementalEngine`] and a 3-shard
//! [`ShardedEngine`]; the CI matrix repeats it at `RELACC_POOL_THREADS` ∈
//! {1, 4}.

use relacc::datagen::streaming::{med_stream, StreamConfig, StreamOp, UpdateStream};
use relacc::engine::{BatchEngine, IncrementalEngine, ShardedEngine};
use relacc::resolve::{BlockingStrategy, ResolveConfig};
use relacc::serve::{ServeBackend, Server};
use relacc::store::{Generation, RowId, VersionedRelation};
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;

const READERS: usize = 4;

fn resolve_config(stream: &UpdateStream) -> ResolveConfig {
    ResolveConfig::on_attrs(stream.match_attrs.clone()).with_strategy(BlockingStrategy::ExactKey)
}

fn open_batch_engine(stream: &UpdateStream) -> BatchEngine {
    BatchEngine::new(
        stream.relation.schema().clone(),
        stream.rules.clone(),
        stream.master.clone().into_iter().collect(),
    )
    .expect("stream rules validate")
}

/// Offline replay of the stream's row batches: the exact live row-id set at
/// every generation.
fn live_sets(stream: &UpdateStream) -> HashMap<Generation, BTreeSet<RowId>> {
    let mut versioned = VersionedRelation::from_relation(&stream.relation);
    let snapshot =
        |v: &VersionedRelation| -> BTreeSet<RowId> { v.rows().iter().map(|r| r.id).collect() };
    let mut sets = HashMap::new();
    sets.insert(Generation(0), snapshot(&versioned));
    for op in &stream.ops {
        if let StreamOp::Rows(batch) = op {
            versioned.apply(batch).expect("scripted batches stay valid");
            sets.insert(versioned.generation(), snapshot(&versioned));
        }
    }
    sets
}

/// The writer applies the stream; each reader keeps pinning epochs and
/// verifying them against the offline replay until the writer is done.
fn stress<B, W>(backend: &B, stream: &UpdateStream, write: W, label: &str)
where
    B: ServeBackend,
    W: FnOnce(),
{
    let expected = live_sets(stream);
    let server = Server::new(backend);
    let done = AtomicBool::new(false);
    let start = Barrier::new(READERS + 1);
    std::thread::scope(|scope| {
        for reader in 0..READERS {
            let server = server.clone();
            let (done, start, expected) = (&done, &start, &expected);
            let label = format!("{label}/reader-{reader}");
            scope.spawn(move || {
                start.wait();
                let mut last_generation = Generation(0);
                let mut iterations = 0usize;
                loop {
                    let finished = done.load(Ordering::Acquire);
                    let epoch = server.pin();
                    let generation = epoch.generation();
                    assert!(
                        generation >= last_generation,
                        "{label}: generation went backwards ({last_generation} -> {generation})"
                    );
                    last_generation = generation;
                    let live: BTreeSet<RowId> = epoch.live_rows().into_iter().collect();
                    let scripted = expected.get(&generation).unwrap_or_else(|| {
                        panic!("{label}: pinned unscripted generation {generation}")
                    });
                    assert_eq!(
                        &live,
                        scripted,
                        "{label}: epoch {} of generation {generation} is torn",
                        epoch.id()
                    );
                    // point reads on a sample of pinned rows: never block,
                    // always answer from the same epoch
                    for row in live.iter().step_by(7) {
                        let entity = epoch.entity_result(*row).unwrap_or_else(|| {
                            panic!("{label}: pinned row {row} unreadable at {generation}")
                        });
                        assert!(
                            entity.records.iter().all(|r| live.contains(r)),
                            "{label}: entity of {row} leaked rows from another epoch"
                        );
                        assert!(entity.records.contains(row), "{label}: {row} not a member");
                    }
                    // deltas from the pinned generation stay addressable
                    let delta = server.changes_since(generation).unwrap_or_else(|e| {
                        panic!("{label}: delta from pinned {generation} failed: {e}")
                    });
                    assert_eq!(delta.from, generation, "{label}: delta base");
                    iterations += 1;
                    if finished {
                        break;
                    }
                    std::thread::yield_now();
                }
                assert!(iterations > 0, "{label}: reader never ran");
            });
        }
        start.wait();
        write();
        done.store(true, Ordering::Release);
    });
}

fn stream() -> UpdateStream {
    let config = StreamConfig {
        n_batches: 10,
        inserts_per_batch: 5,
        deletes_per_batch: 2,
        ..StreamConfig::default()
    };
    med_stream(0.01, 41, &config)
}

#[test]
fn concurrent_reads_never_observe_torn_epochs_single() {
    let stream = stream();
    let mut engine = IncrementalEngine::open(
        open_batch_engine(&stream),
        stream.name.clone(),
        &stream.relation,
        resolve_config(&stream),
    );
    engine.set_epoch_retention(stream.ops.len() + 2);
    let hub = engine.epochs();
    stress(
        &hub,
        &stream,
        || {
            for op in &stream.ops {
                match op {
                    StreamOp::Rows(batch) => {
                        engine.apply(batch).expect("scripted batches stay valid");
                    }
                    StreamOp::MasterAppend(rows) => {
                        engine
                            .apply_master_append(0, rows.clone())
                            .expect("scripted appends stay valid");
                    }
                }
            }
        },
        "single",
    );
    assert_eq!(
        engine.current_epoch().generation(),
        Generation(stream.row_batches() as u64)
    );
}

#[test]
fn concurrent_reads_never_observe_torn_epochs_sharded() {
    let stream = stream();
    let mut engine = ShardedEngine::open(
        open_batch_engine(&stream),
        stream.name.clone(),
        &stream.relation,
        resolve_config(&stream),
        3,
    );
    engine.set_epoch_retention(stream.ops.len() + 2);
    let hub = engine.epochs();
    stress(
        &hub,
        &stream,
        || {
            for op in &stream.ops {
                match op {
                    StreamOp::Rows(batch) => {
                        engine.apply(batch).expect("scripted batches stay valid");
                    }
                    StreamOp::MasterAppend(rows) => {
                        engine
                            .apply_master_append(0, rows.clone())
                            .expect("scripted appends stay valid");
                    }
                }
            }
        },
        "sharded",
    );
    assert_eq!(
        engine.current_epoch().generation(),
        Generation(stream.row_batches() as u64)
    );
}

/// A subscription drained concurrently with the writer sees every committed
/// batch exactly once, in order, with contiguous epoch spans.
#[test]
fn concurrent_subscription_sees_contiguous_batches() {
    let stream = stream();
    let mut engine = IncrementalEngine::open(
        open_batch_engine(&stream),
        stream.name.clone(),
        &stream.relation,
        resolve_config(&stream),
    );
    engine.set_epoch_retention(stream.ops.len() + 2);
    let server = Server::new(&engine);
    let mut feed = server.subscribe();
    let final_generation = Generation(stream.row_batches() as u64);
    std::thread::scope(|scope| {
        scope.spawn(|| {
            let mut cursor = feed.last_seen().id();
            loop {
                let Some(batch) = feed.next_batch(std::time::Duration::from_secs(10)) else {
                    panic!("subscription starved while the writer was active");
                };
                assert!(!batch.resync, "retention covers the whole stream");
                assert_eq!(batch.from_epoch, cursor, "feed must be gapless");
                assert!(batch.to_epoch > batch.from_epoch);
                cursor = batch.to_epoch;
                if batch.to == final_generation {
                    break;
                }
            }
        });
        for op in &stream.ops {
            match op {
                StreamOp::Rows(batch) => {
                    engine.apply(batch).expect("scripted batches stay valid");
                }
                StreamOp::MasterAppend(rows) => {
                    engine
                        .apply_master_append(0, rows.clone())
                        .expect("scripted appends stay valid");
                }
            }
        }
    });
}
