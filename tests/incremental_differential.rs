//! Differential guard for the incremental-repair pipeline: after applying any
//! prefix of a generated update stream, the [`IncrementalEngine`] snapshot
//! must be semantically identical to a from-scratch
//! `BatchEngine::repair_relation` over the updated relation under the same
//! (delta-evolved) plan — same entities in the same order, same outcomes,
//! targets, suggestions, record membership, match decisions, repaired rows
//! and skip list, at 1 and N worker threads (same style as
//! `tests/batch_differential.rs`).
//!
//! Per-entity chase counters are deliberately **excluded**: a cached entity
//! reports the work of the run that produced it, and doing less work per
//! update is the entire point of incrementality.

use relacc::datagen::streaming::{med_stream, rest_stream, StreamConfig, StreamOp, UpdateStream};
use relacc::engine::{BatchEngine, IncrementalEngine, RelationRepair};
use relacc::resolve::{BlockingStrategy, ResolveConfig};

fn resolve_config(stream: &UpdateStream) -> ResolveConfig {
    ResolveConfig::on_attrs(stream.match_attrs.clone()).with_strategy(BlockingStrategy::ExactKey)
}

fn assert_semantically_equal(incremental: &RelationRepair, full: &RelationRepair, label: &str) {
    assert_eq!(
        incremental.resolved.members, full.resolved.members,
        "{label}: resolution membership"
    );
    assert_eq!(
        incremental.resolved.decisions, full.resolved.decisions,
        "{label}: match decisions"
    );
    assert_eq!(
        incremental.resolved.entities.len(),
        full.resolved.entities.len(),
        "{label}: resolved entity count"
    );
    for (i, (a, b)) in incremental
        .resolved
        .entities
        .iter()
        .zip(full.resolved.entities.iter())
        .enumerate()
    {
        assert_eq!(a.tuples(), b.tuples(), "{label}: entity {i} instance");
    }
    assert_eq!(
        incremental.report.entities.len(),
        full.report.entities.len(),
        "{label}: entity count"
    );
    for (a, b) in incremental
        .report
        .entities
        .iter()
        .zip(full.report.entities.iter())
    {
        assert_eq!(a.entity, b.entity, "{label}: entity index");
        assert_eq!(a.records, b.records, "{label}: entity {} records", a.entity);
        assert_eq!(a.outcome, b.outcome, "{label}: entity {} outcome", a.entity);
        assert_eq!(a.deduced, b.deduced, "{label}: entity {} deduced", a.entity);
        assert_eq!(
            a.suggestion, b.suggestion,
            "{label}: entity {} suggestion",
            a.entity
        );
        assert_eq!(
            a.suggestion_error, b.suggestion_error,
            "{label}: entity {} suggestion error",
            a.entity
        );
        assert_eq!(
            a.conflict.is_some(),
            b.conflict.is_some(),
            "{label}: entity {} conflict presence",
            a.entity
        );
    }
    assert_eq!(
        (
            incremental.report.complete,
            incremental.report.suggested,
            incremental.report.needs_user,
            incremental.report.not_church_rosser,
            incremental.report.suggestion_errors,
        ),
        (
            full.report.complete,
            full.report.suggested,
            full.report.needs_user,
            full.report.not_church_rosser,
            full.report.suggestion_errors,
        ),
        "{label}: outcome tallies"
    );
    assert_eq!(
        incremental.repaired.rows(),
        full.repaired.rows(),
        "{label}: repaired rows"
    );
    assert_eq!(
        incremental.row_entities, full.row_entities,
        "{label}: row/entity mapping"
    );
    assert_eq!(incremental.skipped, full.skipped, "{label}: skipped");
}

/// Apply the whole stream, asserting snapshot == full re-repair at the seed
/// state, at three mid-stream checkpoints and at the final state (the
/// from-scratch reference runs under the incremental engine's own evolved
/// plan, so master deltas are reflected on both sides; it is too expensive
/// for a debug-mode test to re-run after every single operation).
fn run_stream(stream: &UpdateStream, threads: usize, label: &str) {
    let resolve = resolve_config(stream);
    let masters = stream.master.clone().into_iter().collect();
    let engine = BatchEngine::new(
        stream.relation.schema().clone(),
        stream.rules.clone(),
        masters,
    )
    .expect("stream rules validate")
    .with_threads(threads);
    let mut incremental = IncrementalEngine::open(
        engine,
        stream.name.clone(),
        &stream.relation,
        resolve.clone(),
    );

    let full = incremental
        .engine()
        .repair_relation(&stream.relation, &resolve);
    assert_semantically_equal(&incremental.snapshot(), &full, &format!("{label}/seed"));

    let last = stream.ops.len().saturating_sub(1);
    let checkpoints = [last / 4, last / 2, (3 * last) / 4, last];
    for (step, op) in stream.ops.iter().enumerate() {
        match op {
            StreamOp::Rows(batch) => incremental
                .apply(batch)
                .unwrap_or_else(|e| panic!("{label}: scripted batch {step} rejected: {e}")),
            StreamOp::MasterAppend(rows) => incremental
                .apply_master_append(0, rows.clone())
                .unwrap_or_else(|e| panic!("{label}: master append {step} rejected: {e}")),
        };
        if checkpoints.contains(&step) {
            let relation = incremental.relation().snapshot();
            let full = incremental.engine().repair_relation(&relation, &resolve);
            assert_semantically_equal(
                &incremental.snapshot(),
                &full,
                &format!("{label}/step {step}"),
            );
        }
    }
    // the stream must have exercised real reuse, otherwise this test guards
    // nothing: some entities re-repaired, strictly more reused
    let stats = incremental.stats();
    assert!(
        stats.entities_rerepaired > 0,
        "{label}: no entity was ever re-repaired"
    );
    assert!(
        stats.entities_reused > stats.entities_rerepaired,
        "{label}: expected most work to be reused (reused {} vs re-repaired {})",
        stats.entities_reused,
        stats.entities_rerepaired
    );
}

#[test]
fn incremental_matches_full_on_the_med_stream() {
    let stream = med_stream(0.01, 23, &StreamConfig::default());
    assert!(
        stream.master_appends() > 0,
        "med stream must exercise master deltas"
    );
    for threads in [1usize, 4] {
        run_stream(&stream, threads, &format!("med/threads={threads}"));
    }
}

#[test]
fn incremental_matches_full_on_the_rest_stream() {
    let stream = rest_stream(0.002, 31, &StreamConfig::default());
    for threads in [1usize, 4] {
        run_stream(&stream, threads, &format!("rest/threads={threads}"));
    }
}

#[test]
fn incremental_is_thread_count_invariant() {
    let stream = med_stream(0.01, 41, &StreamConfig::default());
    let resolve = resolve_config(&stream);
    let mut snapshots = Vec::new();
    for threads in [1usize, 4] {
        let engine = BatchEngine::new(
            stream.relation.schema().clone(),
            stream.rules.clone(),
            stream.master.clone().into_iter().collect(),
        )
        .unwrap()
        .with_threads(threads);
        let mut incremental = IncrementalEngine::open(
            engine,
            stream.name.clone(),
            &stream.relation,
            resolve.clone(),
        );
        for op in &stream.ops {
            match op {
                StreamOp::Rows(batch) => {
                    incremental.apply(batch).unwrap();
                }
                StreamOp::MasterAppend(rows) => {
                    incremental.apply_master_append(0, rows.clone()).unwrap();
                }
            }
        }
        snapshots.push(incremental.snapshot());
    }
    let (one, many) = (&snapshots[0], &snapshots[1]);
    assert_semantically_equal(one, many, "1-vs-4-threads");
    // with an identical update schedule even the chase counters must agree
    assert_eq!(one.report.stats, many.report.stats, "aggregated stats");
}
