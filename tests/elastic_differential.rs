//! Differential guard for **elastic** sharded repair: a [`ShardedEngine`]
//! that splits shards, migrates blocks by hand ([`ShardedEngine::rebalance`])
//! and chases load automatically ([`ShardedEngine::rebalance_hot`]) in the
//! middle of an update stream must stay **bit-identical** to a single
//! [`IncrementalEngine`] over the same stream and semantically identical to a
//! from-scratch `BatchEngine::repair_relation` over the same corpus state —
//! elasticity is pure placement, never semantics.
//!
//! Also pinned here: epoch readers that race a rebalance.  An epoch pinned
//! *before* a block handoff keeps resolving the block at its old home (the
//! pinned per-shard views own the old caches), epoch ids stay monotone under
//! concurrent assembly, and every assembled snapshot is internally untorn.

use std::sync::atomic::{AtomicBool, Ordering};

use relacc::datagen::streaming::{med_stream, StreamConfig, StreamOp, UpdateStream};
use relacc::engine::{BatchEngine, IncrementalEngine, RelationRepair, ShardedEngine};
use relacc::resolve::{BlockKey, BlockingStrategy, ResolveConfig};
use relacc::store::RowId;

fn resolve_config(stream: &UpdateStream) -> ResolveConfig {
    ResolveConfig::on_attrs(stream.match_attrs.clone()).with_strategy(BlockingStrategy::ExactKey)
}

fn open_batch_engine(stream: &UpdateStream, threads: usize) -> BatchEngine {
    BatchEngine::new(
        stream.relation.schema().clone(),
        stream.rules.clone(),
        stream.master.clone().into_iter().collect(),
    )
    .expect("stream rules validate")
    .with_threads(threads)
}

/// The first keyed (non-singleton) block of the stream's seed corpus — a
/// block that is guaranteed to exist at open time and very likely to survive
/// the stream, used as the target of the scripted explicit migration.
fn probe_key(stream: &UpdateStream, resolve: &ResolveConfig) -> BlockKey {
    let blocker = resolve.blocker(stream.relation.schema());
    stream
        .relation
        .rows()
        .iter()
        .enumerate()
        .map(|(i, tuple)| BlockKey::of_row(&blocker, RowId(i as u64), tuple))
        .find(|key| matches!(key, BlockKey::Key(_)))
        .expect("seed corpus has at least one keyed block")
}

fn assert_semantically_equal(sharded: &RelationRepair, other: &RelationRepair, label: &str) {
    assert_eq!(
        sharded.resolved.members, other.resolved.members,
        "{label}: resolution membership"
    );
    assert_eq!(
        sharded.resolved.decisions, other.resolved.decisions,
        "{label}: match decisions"
    );
    for (i, (a, b)) in sharded
        .resolved
        .entities
        .iter()
        .zip(other.resolved.entities.iter())
        .enumerate()
    {
        assert_eq!(a.tuples(), b.tuples(), "{label}: entity {i} instance");
    }
    assert_eq!(
        sharded.report.entities.len(),
        other.report.entities.len(),
        "{label}: entity count"
    );
    for (a, b) in sharded
        .report
        .entities
        .iter()
        .zip(other.report.entities.iter())
    {
        assert_eq!(a.entity, b.entity, "{label}: entity index");
        assert_eq!(a.records, b.records, "{label}: entity {} records", a.entity);
        assert_eq!(a.outcome, b.outcome, "{label}: entity {} outcome", a.entity);
        assert_eq!(a.deduced, b.deduced, "{label}: entity {} deduced", a.entity);
        assert_eq!(
            a.suggestion, b.suggestion,
            "{label}: entity {} suggestion",
            a.entity
        );
        assert_eq!(
            a.suggestion_error, b.suggestion_error,
            "{label}: entity {} suggestion error",
            a.entity
        );
        assert_eq!(
            a.conflict.is_some(),
            b.conflict.is_some(),
            "{label}: entity {} conflict presence",
            a.entity
        );
    }
    assert_eq!(
        sharded.repaired.rows(),
        other.repaired.rows(),
        "{label}: repaired rows"
    );
    assert_eq!(
        sharded.row_entities, other.row_entities,
        "{label}: row/entity mapping"
    );
    assert_eq!(sharded.skipped, other.skipped, "{label}: skipped");
}

/// Apply the whole stream to an elastic sharded engine and a single
/// incremental engine in lockstep.  One third of the way through the stream
/// the sharded engine splits off a fresh empty shard; two thirds through it
/// migrates the probe block onto that shard by hand (checking that an epoch
/// pinned before the handoff still reads the block untorn); after **every**
/// row batch it lets the hot-shard policy move up to two blocks.  The
/// snapshot must stay bit-identical to the single engine and semantically
/// identical to a from-scratch repair at the seed, after the split, after
/// the explicit migration, mid-stream and at the end.
fn run_elastic_stream(stream: &UpdateStream, shards: usize, threads: usize, label: &str) {
    let resolve = resolve_config(stream);
    let probe = probe_key(stream, &resolve);
    let mut sharded = ShardedEngine::open(
        open_batch_engine(stream, threads),
        stream.name.clone(),
        &stream.relation,
        resolve.clone(),
        shards,
    );
    let mut single = IncrementalEngine::open(
        open_batch_engine(stream, threads),
        stream.name.clone(),
        &stream.relation,
        resolve.clone(),
    );
    assert_eq!(sharded.shard_count(), shards, "{label}");
    assert_eq!(
        sharded.routing_version(),
        0,
        "{label}: routing starts at v0"
    );

    let check = |sharded: &ShardedEngine, single: &IncrementalEngine, at: &str| {
        let snap = sharded.snapshot();
        assert_semantically_equal(
            &snap,
            &single.snapshot(),
            &format!("{label}/{at}/vs-single"),
        );
        let relation = sharded.snapshot_relation();
        assert_eq!(
            relation.rows(),
            single.relation().snapshot().rows(),
            "{label}/{at}: corpus states diverged"
        );
        let full = sharded.engine().repair_relation(&relation, &resolve);
        assert_semantically_equal(&snap, &full, &format!("{label}/{at}/vs-full"));
    };
    check(&sharded, &single, "seed");

    let last = stream.ops.len().saturating_sub(1);
    let split_at = stream.ops.len() / 3;
    let migrate_at = 2 * stream.ops.len() / 3;
    let checkpoints = [last / 2, last];
    let mut fresh_shard = None;
    for (step, op) in stream.ops.iter().enumerate() {
        match op {
            StreamOp::Rows(batch) => {
                let a = sharded
                    .apply(batch)
                    .unwrap_or_else(|e| panic!("{label}: sharded batch {step} rejected: {e}"));
                let b = single
                    .apply(batch)
                    .unwrap_or_else(|e| panic!("{label}: single batch {step} rejected: {e}"));
                assert_eq!(a.generation, b.generation, "{label}: generation at {step}");
                assert_eq!(
                    a.entities_rerepaired + a.entities_reused,
                    b.entities_rerepaired + b.entities_reused,
                    "{label}: live entity count at {step}"
                );
                // elastic policy runs after every batch: placement only,
                // so nothing downstream may notice
                sharded.rebalance_hot(2);
            }
            StreamOp::MasterAppend(rows) => {
                sharded
                    .apply_master_append(0, rows.clone())
                    .unwrap_or_else(|e| panic!("{label}: sharded append {step} rejected: {e}"));
                single
                    .apply_master_append(0, rows.clone())
                    .unwrap_or_else(|e| panic!("{label}: single append {step} rejected: {e}"));
            }
        }
        if step == split_at {
            let target = sharded.split_shard();
            assert_eq!(target, shards, "{label}: split appends the new shard");
            fresh_shard = Some(target);
            check(&sharded, &single, &format!("after-split@{step}"));
        }
        if step == migrate_at {
            let target =
                fresh_shard.unwrap_or_else(|| panic!("{label}: split must precede the migration"));
            // pin an epoch across the handoff: the pinned view must keep
            // serving the block from its old home, byte for byte
            let pinned = sharded.current_epoch();
            let before: Option<Vec<RowId>> = pinned
                .block_view(&probe)
                .map(|view| view.rows.iter().map(|(id, _)| *id).collect());
            let version = sharded.routing_version();
            let moved = sharded.rebalance(&[(probe.clone(), target)]);
            let after: Option<Vec<RowId>> = pinned
                .block_view(&probe)
                .map(|view| view.rows.iter().map(|(id, _)| *id).collect());
            assert_eq!(
                before, after,
                "{label}: pinned epoch saw a torn handoff at {step}"
            );
            if moved > 0 {
                assert_eq!(
                    sharded.routing_version(),
                    version + 1,
                    "{label}: a committed migration bumps the routing version once"
                );
            }
            check(&sharded, &single, &format!("after-migrate@{step}"));
        }
        if checkpoints.contains(&step) {
            check(&sharded, &single, &format!("step {step}"));
        }
    }

    let stats = sharded.sharded_stats();
    assert_eq!(
        stats.per_shard.len(),
        sharded.shard_count(),
        "{label}: one stat row per shard"
    );
    let dirty: usize = stats.per_shard.iter().map(|s| s.dirty_blocks).sum();
    assert!(dirty > 0, "{label}: the stream must dirty some blocks");
}

#[test]
fn elastic_matches_single_and_full_on_the_med_stream() {
    let stream = med_stream(0.01, 23, &StreamConfig::default());
    assert!(
        stream.master_appends() > 0,
        "med stream must exercise broadcast master deltas under elasticity"
    );
    for threads in [1usize, 4] {
        for shards in [1usize, 2, 4, 7] {
            run_elastic_stream(
                &stream,
                shards,
                threads,
                &format!("elastic-med/shards={shards}/threads={threads}"),
            );
        }
    }
}

#[test]
fn elastic_matches_single_on_the_drifting_hot_stream() {
    // the drifting skew the elastic bench measures must stay differential:
    // the hot window rotates every 3 batches, so rebalance_hot keeps chasing
    // a moving target while the differential pins semantics
    let config = StreamConfig {
        master_appends_per_batch: 0,
        ..StreamConfig::default()
    }
    .with_hot_mix(2, 0.85)
    .with_hot_drift(3);
    let stream = med_stream(0.01, 19, &config);
    for (shards, threads) in [(2usize, 1usize), (4, 4)] {
        run_elastic_stream(
            &stream,
            shards,
            threads,
            &format!("elastic-drift/shards={shards}/threads={threads}"),
        );
    }
}

#[test]
fn rebalances_race_pinned_epoch_readers() {
    let config = StreamConfig {
        master_appends_per_batch: 0,
        ..StreamConfig::default()
    }
    .with_hot_mix(2, 0.9)
    .with_hot_drift(3);
    let stream = med_stream(0.01, 41, &config);
    let resolve = resolve_config(&stream);
    let mut sharded = ShardedEngine::open(
        open_batch_engine(&stream, 4),
        stream.name.clone(),
        &stream.relation,
        resolve.clone(),
        3,
    );
    let mut single = IncrementalEngine::open(
        open_batch_engine(&stream, 4),
        stream.name.clone(),
        &stream.relation,
        resolve.clone(),
    );
    sharded.split_shard();

    let hub = sharded.epochs();
    let stop = AtomicBool::new(false);
    let assemblies = std::thread::scope(|scope| {
        let reader = scope.spawn(|| {
            let mut last = hub.current().id();
            let mut assemblies = 0usize;
            while !stop.load(Ordering::Relaxed) {
                let epoch = hub.current();
                assert!(
                    epoch.id().0 >= last.0,
                    "epoch ids regressed under concurrent rebalancing"
                );
                last = epoch.id();
                // a full assembly from a pinned epoch must be untorn even
                // while the writer splits shards and hands blocks off:
                // every live row resolves into exactly one entity, and
                // every materialized entity is accounted for
                let snap = epoch.snapshot();
                let resolved_rows: usize = snap.resolved.members.iter().map(Vec::len).sum();
                assert_eq!(
                    resolved_rows,
                    epoch.len(),
                    "pinned epoch assembled a torn snapshot"
                );
                assert_eq!(
                    snap.repaired.rows().len() + snap.skipped.len(),
                    snap.report.entities.len(),
                    "pinned epoch lost entities in assembly"
                );
                assemblies += 1;
            }
            assemblies
        });

        for op in &stream.ops {
            if let StreamOp::Rows(batch) = op {
                sharded.apply(batch).expect("sharded batch applies");
                single.apply(batch).expect("single batch applies");
                sharded.rebalance_hot(2);
            }
        }
        stop.store(true, Ordering::Relaxed);
        reader.join().expect("reader thread saw consistent epochs")
    });
    assert!(assemblies > 0, "the reader must observe at least one epoch");

    let snap = sharded.snapshot();
    assert_semantically_equal(&snap, &single.snapshot(), "after-race/vs-single");
    let relation = sharded.snapshot_relation();
    let full = sharded.engine().repair_relation(&relation, &resolve);
    assert_semantically_equal(&snap, &full, "after-race/vs-full");
}
