//! Layering guard: `relacc-resolve` exists as a dependency-light
//! entity-resolution substrate under `relacc-engine` (it originally broke the
//! engine → db → engine cycle of the now-deleted `relacc-db` facade).  That
//! only holds while `relacc-resolve` stays dependency-light: it must never
//! depend on `relacc-core` (the chase), `relacc-engine` (the batch driver),
//! or any resurrected facade, or the cycle this workspace removed could be
//! silently reintroduced.

use std::process::Command;

/// Split the top-level JSON objects of cargo metadata's `packages` array,
/// tracking string literals and escapes so braces inside strings don't count.
/// Avoids assuming anything about field order inside a package object.
fn package_objects(metadata: &str) -> Vec<&str> {
    let marker = "\"packages\":[";
    let start = metadata.find(marker).expect("metadata lists packages") + marker.len();
    let bytes = metadata.as_bytes();
    let mut objects = Vec::new();
    let (mut depth, mut in_str, mut escape, mut obj_start) = (0usize, false, false, 0usize);
    for (offset, &b) in bytes[start..].iter().enumerate() {
        let i = start + offset;
        if in_str {
            if escape {
                escape = false;
            } else if b == b'\\' {
                escape = true;
            } else if b == b'"' {
                in_str = false;
            }
            continue;
        }
        match b {
            b'"' => in_str = true,
            b'{' => {
                if depth == 0 {
                    obj_start = i;
                }
                depth += 1;
            }
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    objects.push(&metadata[obj_start..=i]);
                }
            }
            b']' if depth == 0 => break, // end of the packages array
            _ => {}
        }
    }
    objects
}

/// The `"dependencies":[...]` array of one package object (bracket-matched,
/// string-aware).
fn dependencies_array(package: &str) -> &str {
    let marker = "\"dependencies\":[";
    let start = package
        .find(marker)
        .expect("package object lists its dependencies");
    let bytes = package.as_bytes();
    let (mut depth, mut in_str, mut escape) = (0usize, false, false);
    for (offset, &b) in bytes[start + marker.len() - 1..].iter().enumerate() {
        let i = start + marker.len() - 1 + offset;
        if in_str {
            if escape {
                escape = false;
            } else if b == b'\\' {
                escape = true;
            } else if b == b'"' {
                in_str = false;
            }
            continue;
        }
        match b {
            b'"' => in_str = true,
            b'[' | b'{' => depth += 1,
            b']' | b'}' => {
                depth -= 1;
                if depth == 0 {
                    return &package[start..=i];
                }
            }
            _ => {}
        }
    }
    panic!("unterminated dependencies array in package object");
}

#[test]
fn relacc_resolve_does_not_depend_on_core_or_engine() {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let output = Command::new(cargo)
        .args(["metadata", "--format-version", "1", "--no-deps"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("cargo metadata runs");
    assert!(
        output.status.success(),
        "cargo metadata failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let metadata = String::from_utf8(output.stdout).expect("cargo metadata emits UTF-8");

    // Identify the relacc-resolve package by its manifest path (normalizing
    // JSON-escaped Windows separators), not by `"name":` — dependency entries
    // of other packages also carry the name.
    let packages = package_objects(&metadata);
    assert!(!packages.is_empty(), "cargo metadata lists packages");
    let resolve_pkg = packages
        .iter()
        .find(|p| p.replace("\\\\", "/").contains("crates/resolve/Cargo.toml"))
        .expect("relacc-resolve is a workspace member");
    let deps = dependencies_array(resolve_pkg);

    assert!(
        deps.contains("\"relacc-model\""),
        "sanity check failed: relacc-resolve should depend on relacc-model; got {deps}"
    );
    for forbidden in [
        "\"relacc-core\"",
        "\"relacc-engine\"",
        "\"relacc-db\"",
        "\"relacc-topk\"",
    ] {
        assert!(
            !deps.contains(forbidden),
            "relacc-resolve must stay dependency-light but declares a dependency on \
             {forbidden} — this reintroduces the resolution dependency cycle; \
             declared dependencies: {deps}"
        );
    }
}
