//! Fault injection for the TCP transport: misbehaving subscribers must
//! never leak back into the write path.
//!
//! The scenario: an engine with a **2-epoch retention window** serving
//! entities whose repaired rows carry a ~256 KiB payload (so pushed feed
//! batches are far larger than any socket buffer), and three clients —
//!
//! * client A subscribes, reads one batch, and is killed mid-subscription;
//! * client B subscribes and then stalls completely (reads nothing) while
//!   the writer commits ~48 epochs — tens of megabytes of feed — so B's
//!   handler blocks on the socket and B's pinned cursor is outrun;
//! * client C connects fresh after the dust settles.
//!
//! Asserted: every writer commit stays fast while A is dead and B is
//! stalled (a blocked handler thread never blocks the engine); B, once it
//! resumes draining, recovers through **exactly one** `resync: true` batch
//! that composes its stale state to the exact current state; and C gets
//! answers identical to the in-process server, proving neither fault
//! wedged the listener.

use relacc::core::rules::{Predicate, RuleSet, TupleRule};
use relacc::engine::{BatchEngine, EntityView, IncrementalEngine};
use relacc::model::{CmpOp, DataType, Schema, SchemaRef, Value};
use relacc::net::{NetClient, NetServer, ServeOptions};
use relacc::resolve::{BlockKey, BlockingStrategy, ResolveConfig};
use relacc::serve::{ChangeBatch, EntityChangeKind, Server};
use relacc::store::{Relation, RowId, UpdateBatch};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Payload size per row: big enough that a few batches overflow any
/// loopback socket buffering, so the stalled subscriber's handler really
/// blocks and its cursor really falls out of the retention window.
const PAYLOAD: usize = 256 * 1024;
const BATCHES: usize = 48;
/// Small enough that B's frozen cursor is hopelessly outrun, large enough
/// that a *live* handler (cycle ≈ read poll + feed poll, see `options` in
/// the test) never is — so the only resync in the run is B's recovery.
const RETENTION: usize = 6;
/// Writer pacing: slower than a live handler's push cycle, so a subscriber
/// that drains keeps up and a subscriber that stalls is the odd one out.
const PACE: Duration = Duration::from_millis(50);

fn payload(i: usize) -> Value {
    Value::text(format!("{i:08}{}", "x".repeat(PAYLOAD)))
}

fn schema() -> SchemaRef {
    Schema::builder("big")
        .attr("name", DataType::Text)
        .attr("payload", DataType::Text)
        .attr("seq", DataType::Int)
        .build()
}

fn open_engine() -> IncrementalEngine {
    let s = schema();
    // later observations (higher seq) carry the more accurate payload
    let rules = RuleSet::from_rules([
        TupleRule::new(
            "fresher-payload",
            vec![Predicate::cmp_attrs(s.expect_attr("seq"), CmpOp::Lt)],
            s.expect_attr("payload"),
        ),
        TupleRule::new(
            "fresher-seq",
            vec![Predicate::cmp_attrs(s.expect_attr("seq"), CmpOp::Lt)],
            s.expect_attr("seq"),
        ),
    ]);
    let engine = BatchEngine::new(s.clone(), rules, vec![]).expect("rules validate");
    let seed = Relation::from_rows(
        s.clone(),
        vec![
            vec![Value::text("hot"), payload(0), Value::Int(0)],
            vec![Value::text("cold"), payload(999), Value::Int(0)],
        ],
    )
    .expect("seed rows type-check");
    IncrementalEngine::open(
        engine,
        "big",
        &seed,
        ResolveConfig::on_attrs(vec!["name".into()]).with_strategy(BlockingStrategy::ExactKey),
    )
}

/// The update of epoch `i` (1-based): a fresh observation of the hot
/// entity, retiring the previous one so the block stays two rows wide.
/// Seed rows are 0..=1, so batch `i`'s insert gets global row id `1 + i`.
fn batch(i: usize) -> UpdateBatch {
    let b =
        UpdateBatch::new("big").insert(vec![Value::text("hot"), payload(i), Value::Int(i as i64)]);
    if i >= 2 {
        b.delete(RowId(i as u64))
    } else {
        b
    }
}

/// An entity map keyed the way the feed addresses entities: block key +
/// member-record set.  Values are `Debug` renderings, so comparing maps
/// compares full views bit-for-bit.
type EntityMap = BTreeMap<(BlockKey, Vec<RowId>), String>;

fn entity_map_of_epoch(server: &Server) -> EntityMap {
    let mut map = EntityMap::new();
    for (key, block) in server.pin().block_views() {
        for entity in &block.entities {
            map.insert((key.clone(), entity.records.clone()), debug_view(entity));
        }
    }
    map
}

fn debug_view(view: &EntityView) -> String {
    format!("{view:?}")
}

fn apply_feed_batch(map: &mut EntityMap, batch: &ChangeBatch) {
    for change in &batch.changes {
        match &change.kind {
            EntityChangeKind::Upserted(view) => {
                map.insert(
                    (change.block.clone(), view.records.clone()),
                    debug_view(view),
                );
            }
            EntityChangeKind::Removed { records } => {
                map.remove(&(change.block.clone(), records.clone()));
            }
        }
    }
}

#[test]
fn dead_and_stalled_subscribers_never_block_the_writer() {
    let mut engine = open_engine();
    engine.set_epoch_retention(RETENTION);
    let server = Server::new(&engine);
    let options = ServeOptions {
        // a tight feed cycle (~20 ms worst case) so a draining subscriber
        // outpaces the 50 ms writer cadence and never needs a resync …
        read_timeout: Duration::from_millis(10),
        feed_poll: Duration::from_millis(10),
        // … and a patient write timeout: B's stall lasts the writer's whole
        // replay, and the blocked push must survive it so B can recover
        write_timeout: Duration::from_secs(120),
    };
    let mut net = NetServer::spawn_with(server.clone(), "127.0.0.1:0", options)
        .expect("bind an ephemeral loopback port");
    let addr = net.local_addr();

    // client A: subscribes, sees one commit, dies mid-subscription
    let mut sub_a = NetClient::connect(addr)
        .expect("client A connects")
        .subscribe()
        .expect("client A subscribes");
    engine.apply(&batch(1)).expect("batch 1 applies");
    let first = sub_a
        .next_batch(Duration::from_secs(10))
        .expect("feed A live")
        .expect("batch 1 reaches client A");
    assert!(!first.resync, "nothing evicted yet");
    sub_a.close(); // killed: the server must shrug this off

    // client B: subscribes, then stalls without reading a single byte
    let mut sub_b = NetClient::connect(addr)
        .expect("client B connects")
        .subscribe()
        .expect("client B subscribes");
    // B's view of the world freezes here; remember it for the recovery check
    let mut b_state = entity_map_of_epoch(&server);

    // the writer replays ~46 more epochs — tens of MB of feed B never
    // drains — and every single commit must stay fast
    let mut slowest = Duration::ZERO;
    for i in 2..=BATCHES {
        let started = Instant::now();
        engine
            .apply(&batch(i))
            .expect("scripted batches stay valid");
        slowest = slowest.max(started.elapsed());
        std::thread::sleep(PACE);
    }
    assert!(
        slowest < Duration::from_secs(2),
        "a commit took {slowest:?} with a dead and a stalled subscriber attached — \
         the write path must not depend on connection handlers"
    );
    let final_epoch = engine.current_epoch().id();
    let final_state = entity_map_of_epoch(&server);

    // client B wakes up and drains: a few buffered pre-stall batches, then
    // exactly one resync batch that jumps the evicted history
    let mut resyncs = 0usize;
    let mut drained = 0usize;
    loop {
        let batch = sub_b
            .next_batch(Duration::from_secs(30))
            .expect("feed B must survive the stall")
            .expect("feed B must still deliver after the stall");
        drained += 1;
        if batch.resync {
            resyncs += 1;
        }
        apply_feed_batch(&mut b_state, &batch);
        if batch.to_epoch == final_epoch {
            break;
        }
        assert!(drained < 2 * BATCHES, "feed never converged on the head");
    }
    assert_eq!(
        resyncs, 1,
        "an outrun cursor must recover through exactly one resync batch"
    );
    assert_eq!(
        b_state, final_state,
        "composing the feed over B's stale state must reproduce the current epoch exactly"
    );
    sub_b.close();

    // client C: the listener took two misbehaving clients and is still fine
    let mut fresh = NetClient::connect(addr).expect("a fresh client still connects");
    let generation = engine.current_epoch().generation();
    let local = server
        .repaired_row(RowId(0), generation)
        .expect("current generation readable")
        .expect("the hot entity is live");
    let tcp = fresh
        .repaired_row(RowId(0), generation)
        .expect("TCP read succeeds")
        .expect("the hot entity is live over TCP");
    assert_eq!(format!("{local:?}"), format!("{tcp:?}"));
    assert_eq!(local[2], Value::Int(BATCHES as i64), "freshest seq won");

    net.shutdown();
}
