//! Loopback differential for the TCP transport: N [`NetClient`]s over
//! `127.0.0.1` and N in-process readers on the same [`Server`] must give
//! **bit-identical** answers for every read surface — pinned epochs,
//! repaired-row and entity point reads at every retained generation,
//! whole-block deltas, and pushed subscription batches — while the writer
//! replays a scripted Med update stream.  Checked for a single
//! [`IncrementalEngine`] and a 3-shard [`ShardedEngine`].
//!
//! Bit-identity is asserted via `Debug` formatting: the served types carry
//! `f64`s whose `Debug` prints the shortest round-trip representation, so
//! equal strings ⇔ equal bit patterns (the wire codec ships floats as raw
//! IEEE-754 bits for exactly this reason).

use relacc::datagen::streaming::{med_stream, StreamConfig, StreamOp, UpdateStream};
use relacc::engine::{BatchEngine, EpochId, IncrementalEngine, ShardedEngine};
use relacc::model::Value;
use relacc::net::{NetClient, NetError, NetServer};
use relacc::resolve::{BlockingStrategy, ResolveConfig};
use relacc::serve::Server;
use relacc::store::{Generation, RowId, UpdateBatch};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Generations stay addressable for the whole replay: eviction semantics
/// (the resync path) get their own test in `tests/net_faults.rs`.
const RETENTION: usize = 64;
const N_CLIENTS: usize = 3;

fn stream() -> UpdateStream {
    let config = StreamConfig {
        n_batches: 6,
        inserts_per_batch: 4,
        deletes_per_batch: 2,
        master_appends_per_batch: 1,
        seed: 57,
        ..StreamConfig::default()
    }
    .with_reads(3);
    med_stream(0.01, 41, &config)
}

fn open_batch_engine(stream: &UpdateStream) -> BatchEngine {
    BatchEngine::new(
        stream.relation.schema().clone(),
        stream.rules.clone(),
        stream.master.clone().into_iter().collect(),
    )
    .expect("stream rules validate")
    .with_threads(2)
}

fn resolve_config(stream: &UpdateStream) -> ResolveConfig {
    ResolveConfig::on_attrs(stream.match_attrs.clone()).with_strategy(BlockingStrategy::ExactKey)
}

/// One writer API over both engine shapes.
#[allow(clippy::large_enum_variant)] // one engine per test, never collected
enum AnyEngine {
    Single(IncrementalEngine),
    Sharded(ShardedEngine),
}

impl AnyEngine {
    fn server(&self) -> Server {
        match self {
            AnyEngine::Single(e) => Server::new(e),
            AnyEngine::Sharded(e) => Server::new(e),
        }
    }

    fn set_retention(&self, epochs: usize) {
        match self {
            AnyEngine::Single(e) => e.set_epoch_retention(epochs),
            AnyEngine::Sharded(e) => e.set_epoch_retention(epochs),
        }
    }

    fn apply(&mut self, batch: &UpdateBatch) {
        match self {
            AnyEngine::Single(e) => e.apply(batch).expect("scripted batches stay valid"),
            AnyEngine::Sharded(e) => e.apply(batch).expect("scripted batches stay valid"),
        };
    }

    fn master_append(&mut self, rows: &[Vec<Value>]) {
        match self {
            AnyEngine::Single(e) => e
                .apply_master_append(0, rows.to_vec())
                .expect("scripted appends stay valid"),
            AnyEngine::Sharded(e) => e
                .apply_master_append(0, rows.to_vec())
                .expect("scripted appends stay valid"),
        };
    }

    fn head(&self) -> (EpochId, Generation) {
        let epoch = match self {
            AnyEngine::Single(e) => e.current_epoch(),
            AnyEngine::Sharded(e) => e.current_epoch(),
        };
        (epoch.id(), epoch.generation())
    }
}

/// Unwrap a TCP answer into the in-process result shape so the two sides
/// compare directly.
fn remote<T>(result: Result<T, NetError>) -> T {
    match result {
        Ok(v) => v,
        Err(e) => panic!("TCP read failed where the in-process read succeeded: {e}"),
    }
}

/// The scripted reads addressing generation `g` (none for the seed).
fn reads_at(stream: &UpdateStream, g: u64) -> &[RowId] {
    if g == 0 {
        &[]
    } else {
        let idx = ((g - 1) as usize).min(stream.reads.len() - 1);
        &stream.reads[idx]
    }
}

/// Replay the stream with churn readers attached, holding one in-process
/// subscription and one TCP subscription in lockstep; then sweep every
/// retained generation with `N_CLIENTS` fresh TCP clients against the
/// in-process server.
fn run_differential(mut engine: AnyEngine, stream: &UpdateStream, label: &str) {
    engine.set_retention(RETENTION);
    let server = engine.server();
    let mut net =
        NetServer::spawn(server.clone(), "127.0.0.1:0").expect("bind an ephemeral loopback port");
    let addr = net.local_addr();

    // --- replay under churn: concurrent TCP readers pin and point-read
    // whatever generation is current while the writer commits ------------
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for reader_id in 0..2 {
            let server = server.clone();
            let stop = &stop;
            scope.spawn(move || {
                let mut client = NetClient::connect(addr).expect("churn reader connects");
                let mut observed = 0u64;
                while !stop.load(Ordering::SeqCst) {
                    let pinned = client.pin().expect("pin stays answerable under churn");
                    let g = pinned.generation;
                    if g.0 == 0 {
                        continue;
                    }
                    observed += 1;
                    for &row in reads_at(stream, g.0) {
                        let local = server
                            .repaired_row(row, g)
                            .expect("retention covers the replay");
                        let tcp = remote(client.repaired_row(row, g));
                        assert_eq!(
                            format!("{local:?}"),
                            format!("{tcp:?}"),
                            "{label}: churn reader {reader_id} diverged on {row:?} at {g:?}"
                        );
                    }
                }
                assert!(observed > 0, "churn reader {reader_id} never saw a commit");
            });
        }

        // the lockstep pair: one in-process subscription, one TCP
        // subscription, created back-to-back on the same epoch
        let mut local_sub = server.subscribe();
        let mut tcp_sub = NetClient::connect(addr)
            .expect("subscriber connects")
            .subscribe()
            .expect("subscription accepted");
        assert_eq!(
            tcp_sub.start().epoch,
            local_sub.last_seen().id(),
            "{label}: the two subscriptions must start on the same epoch"
        );

        let (mut last_epoch, _) = engine.head();
        for op in &stream.ops {
            match op {
                StreamOp::Rows(batch) => engine.apply(batch),
                StreamOp::MasterAppend(rows) => engine.master_append(rows),
            }
            let (head, _) = engine.head();
            if head == last_epoch {
                continue; // the op published nothing new
            }
            last_epoch = head;
            // the writer waits for both feeds before the next commit, so
            // each batch spans exactly one epoch and compares exactly
            let local_batch = local_sub
                .next_batch(Duration::from_secs(10))
                .expect("the commit must reach the in-process feed");
            let tcp_batch = remote(tcp_sub.next_batch(Duration::from_secs(10)))
                .expect("the commit must reach the TCP feed");
            assert_eq!(local_batch.to_epoch, head, "{label}: feed cursor lag");
            assert_eq!(
                format!("{local_batch:?}"),
                format!("{tcp_batch:?}"),
                "{label}: feed batches diverged at epoch {head:?}"
            );
            assert!(!local_batch.resync, "{label}: retention covers the replay");
        }
        tcp_sub.close();
        stop.store(true, Ordering::SeqCst);
    });

    // --- post-replay sweep: every client × every generation --------------
    let (_, final_generation) = engine.head();
    for client_id in 0..N_CLIENTS {
        let mut client = NetClient::connect(addr).expect("sweep client connects");
        assert_eq!(client.schema().name(), server.pin().schema().name());
        for g in 0..=final_generation.0 {
            let generation = Generation(g);
            let local_epoch = server.pin_at(generation).expect("generation retained");
            let tcp_epoch = remote(client.pin_at(generation));
            assert_eq!(
                tcp_epoch.epoch,
                local_epoch.id(),
                "{label}: pinned epoch id"
            );
            assert_eq!(
                tcp_epoch.generation,
                local_epoch.generation(),
                "{label}: pinned generation"
            );
            assert_eq!(
                tcp_epoch.rows as usize,
                local_epoch.len(),
                "{label}: pinned live-row count"
            );

            for &row in reads_at(stream, g) {
                let local_row = server.repaired_row(row, generation).unwrap();
                let tcp_row = remote(client.repaired_row(row, generation));
                assert_eq!(
                    format!("{local_row:?}"),
                    format!("{tcp_row:?}"),
                    "{label}: client {client_id} repaired_row({row:?}) at gen {g}"
                );
                let local_entity = server.entity_result(row, generation).unwrap();
                let tcp_entity = remote(client.entity_result(row, generation));
                assert_eq!(
                    format!("{local_entity:?}"),
                    format!("{tcp_entity:?}"),
                    "{label}: client {client_id} entity_result({row:?}) at gen {g}"
                );
            }
            // a row id that never existed answers None on both sides
            assert_eq!(
                server.repaired_row(RowId(u64::MAX), generation).unwrap(),
                remote(client.repaired_row(RowId(u64::MAX), generation)),
                "{label}: dead row reads must agree"
            );

            let local_delta = server.changes_since(generation).unwrap();
            let tcp_delta = remote(client.changes_since(generation));
            assert_eq!(
                format!("{local_delta:?}"),
                format!("{tcp_delta:?}"),
                "{label}: client {client_id} changes_since(gen {g})"
            );
        }

        // a generation that was never published errors identically
        let unknown = Generation(final_generation.0 + 999);
        let local_err = server.pin_at(unknown).unwrap_err();
        match client.pin_at(unknown) {
            Err(NetError::Remote(tcp_err)) => assert_eq!(
                tcp_err, local_err,
                "{label}: unknown-generation errors must agree"
            ),
            other => panic!("{label}: expected a remote epoch error, got {other:?}"),
        }
    }

    net.shutdown();
}

#[test]
fn tcp_equals_in_process_single_engine() {
    let stream = stream();
    let engine = IncrementalEngine::open(
        open_batch_engine(&stream),
        stream.name.clone(),
        &stream.relation,
        resolve_config(&stream),
    );
    run_differential(AnyEngine::Single(engine), &stream, "single");
}

#[test]
fn tcp_equals_in_process_sharded_engine() {
    let stream = stream();
    let engine = ShardedEngine::open(
        open_batch_engine(&stream),
        stream.name.clone(),
        &stream.relation,
        resolve_config(&stream),
        3,
    );
    run_differential(AnyEngine::Sharded(engine), &stream, "sharded");
}
