//! Differential guard for the serving layer: for **every** generation `G` of
//! a replayed update stream, `changes_since(G)` composed onto the `G`-pinned
//! epoch's block views and re-assembled must reproduce the engine's current
//! `snapshot()` bit-identically — for a single [`IncrementalEngine`] and for
//! a [`ShardedEngine`] (whose singleton block keys are remapped between
//! shard-local and global row ids on the way through the epoch API).
//!
//! This is the contract that lets a reader catch up from any retained
//! generation by fetching only the changed blocks instead of the corpus.

use relacc::datagen::streaming::{med_stream, StreamConfig, StreamOp, UpdateStream};
use relacc::engine::{
    assemble_views, BatchEngine, EpochHub, IncrementalEngine, RelationRepair, ShardedEngine,
};
use relacc::resolve::{BlockingStrategy, ResolveConfig};
use relacc::store::Generation;

fn resolve_config(stream: &UpdateStream) -> ResolveConfig {
    ResolveConfig::on_attrs(stream.match_attrs.clone()).with_strategy(BlockingStrategy::ExactKey)
}

fn open_batch_engine(stream: &UpdateStream) -> BatchEngine {
    BatchEngine::new(
        stream.relation.schema().clone(),
        stream.rules.clone(),
        stream.master.clone().into_iter().collect(),
    )
    .expect("stream rules validate")
    .with_threads(2)
}

fn assert_bit_identical(composed: &RelationRepair, current: &RelationRepair, label: &str) {
    assert_eq!(
        composed.resolved.members, current.resolved.members,
        "{label}: resolution membership"
    );
    assert_eq!(
        composed.resolved.decisions, current.resolved.decisions,
        "{label}: match decisions"
    );
    assert_eq!(
        composed.report.entities.len(),
        current.report.entities.len(),
        "{label}: entity count"
    );
    for (a, b) in composed
        .report
        .entities
        .iter()
        .zip(current.report.entities.iter())
    {
        assert_eq!(a.entity, b.entity, "{label}: entity index");
        assert_eq!(a.records, b.records, "{label}: entity {} records", a.entity);
        assert_eq!(a.outcome, b.outcome, "{label}: entity {} outcome", a.entity);
        assert_eq!(a.deduced, b.deduced, "{label}: entity {} deduced", a.entity);
        assert_eq!(
            a.suggestion, b.suggestion,
            "{label}: entity {} suggestion",
            a.entity
        );
    }
    assert_eq!(
        composed.repaired.rows(),
        current.repaired.rows(),
        "{label}: repaired rows"
    );
    assert_eq!(
        composed.row_entities, current.row_entities,
        "{label}: row/entity mapping"
    );
    assert_eq!(composed.skipped, current.skipped, "{label}: skipped");
}

/// Replay the stream, then catch up from every generation via
/// `changes_since` and demand bit-identity with the current snapshot.
fn check_catchup_from_every_generation(hub: &EpochHub, current: &RelationRepair, label: &str) {
    let final_generation = hub.current().generation();
    for g in 0..=final_generation.0 {
        let generation = Generation(g);
        let base = hub
            .at_generation(generation)
            .unwrap_or_else(|e| panic!("{label}: generation {g} must be retained: {e}"));
        let delta = hub
            .changes_since(generation)
            .unwrap_or_else(|e| panic!("{label}: delta from {g} must exist: {e}"));
        assert_eq!(delta.from, generation, "{label}: delta base generation");
        assert_eq!(delta.from_epoch, base.id(), "{label}: delta base epoch");
        assert_eq!(delta.to, final_generation, "{label}: delta target");
        let mut views = base.block_views();
        delta.apply_to(&mut views);
        let composed = assemble_views(base.schema().clone(), &views, 2);
        assert_bit_identical(&composed, current, &format!("{label}/from-gen-{g}"));
    }
}

#[test]
fn composed_deltas_reproduce_the_current_snapshot_single() {
    let stream = med_stream(0.01, 23, &StreamConfig::default());
    let mut engine = IncrementalEngine::open(
        open_batch_engine(&stream),
        stream.name.clone(),
        &stream.relation,
        resolve_config(&stream),
    );
    engine.set_epoch_retention(stream.ops.len() + 2);
    for op in &stream.ops {
        match op {
            StreamOp::Rows(batch) => {
                engine.apply(batch).expect("scripted batches stay valid");
            }
            StreamOp::MasterAppend(rows) => {
                engine
                    .apply_master_append(0, rows.clone())
                    .expect("scripted appends stay valid");
            }
        }
    }
    let current = engine.snapshot();
    // the epoch view of "now" agrees with the engine's own snapshot
    assert_bit_identical(
        &engine.current_epoch().snapshot(),
        &current,
        "single/current-epoch",
    );
    check_catchup_from_every_generation(&engine.epochs(), &current, "single");
}

#[test]
fn composed_deltas_reproduce_the_current_snapshot_sharded() {
    let stream = med_stream(0.01, 23, &StreamConfig::default());
    for shards in [1usize, 3] {
        let mut engine = ShardedEngine::open(
            open_batch_engine(&stream),
            stream.name.clone(),
            &stream.relation,
            resolve_config(&stream),
            shards,
        );
        engine.set_epoch_retention(stream.ops.len() + 2);
        for op in &stream.ops {
            match op {
                StreamOp::Rows(batch) => {
                    engine.apply(batch).expect("scripted batches stay valid");
                }
                StreamOp::MasterAppend(rows) => {
                    engine
                        .apply_master_append(0, rows.clone())
                        .expect("scripted appends stay valid");
                }
            }
        }
        let current = engine.snapshot();
        let label = format!("sharded/{shards}");
        assert_bit_identical(
            &engine.current_epoch().snapshot(),
            &current,
            &format!("{label}/current-epoch"),
        );
        check_catchup_from_every_generation(&engine.epochs(), &current, &label);
    }
}
