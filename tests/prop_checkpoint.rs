//! Equivalence guard for the checkpointed `check`: on randomized
//! specifications and candidates — including conflict-producing ones — the
//! resumed check (`CandidateSearch::check`, a delta replay from the base
//! fixpoint) and the from-scratch re-chase (`CandidateSearch::check_full`)
//! must agree on accept/reject, and an accepted candidate must be exactly the
//! terminal target of the from-scratch chase.
//!
//! The same scratch is threaded through every check of a case, so any state
//! leaked by a missed undo-log entry corrupts later verdicts and trips the
//! comparison.  A deterministic regression additionally pins an interleaved
//! accept → reject → accept sequence against one checkpoint.

use proptest::prelude::*;
use relacc::core::chase::chase_with_grounding;
use relacc::core::rules::{Predicate, RuleSet, TupleRule};
use relacc::core::{IsCrOutcome, Specification};
use relacc::model::{AttrId, CmpOp, DataType, EntityInstance, Schema, TargetTuple, Value};
use relacc::topk::{CandidateSearch, CheckScratch, PreferenceModel, TopKStats};

/// A compact random specification: a 3-attribute instance (one int "currency"
/// column, two small text columns) plus a random subset of rule templates —
/// `reverse` orders against the currency direction, so many candidates (and
/// some whole specifications) produce chase conflicts.
#[derive(Debug, Clone)]
struct RandomSpec {
    rows: Vec<(Option<i64>, Option<u8>, Option<u8>)>,
    use_currency: bool,
    use_follow: bool,
    use_reverse: bool,
}

fn arb_spec() -> impl Strategy<Value = RandomSpec> {
    (
        prop::collection::vec(
            (
                prop::option::of(0i64..5),
                prop::option::of(0u8..3),
                prop::option::of(0u8..3),
            ),
            1..8,
        ),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(rows, use_currency, use_follow, use_reverse)| RandomSpec {
            rows,
            use_currency,
            use_follow,
            use_reverse,
        })
}

fn build_spec(input: &RandomSpec) -> Specification {
    let schema = Schema::builder("r")
        .attr("seq", DataType::Int)
        .attr("a", DataType::Text)
        .attr("b", DataType::Text)
        .build();
    let mut ie = EntityInstance::new(schema.clone());
    for (seq, a, b) in &input.rows {
        ie.push_row(vec![
            seq.map_or(Value::Null, Value::Int),
            a.map_or(Value::Null, |x| Value::text(format!("a{x}"))),
            b.map_or(Value::Null, |x| Value::text(format!("b{x}"))),
        ])
        .unwrap();
    }
    let mut rules = RuleSet::new();
    if input.use_currency {
        rules.push(TupleRule::new(
            "currency",
            vec![Predicate::cmp_attrs(AttrId(0), CmpOp::Lt)],
            AttrId(0),
        ));
    }
    if input.use_follow {
        rules.push(TupleRule::new(
            "follow",
            vec![Predicate::OrderLt { attr: AttrId(0) }],
            AttrId(1),
        ));
    }
    if input.use_reverse {
        rules.push(TupleRule::new(
            "reverse",
            vec![Predicate::cmp_attrs(AttrId(0), CmpOp::Gt)],
            AttrId(2),
        ));
    }
    Specification::new(ie, rules)
}

/// Every completion of the deduced target drawing `Z` values from the
/// candidate domains, capped so degenerate cases stay fast.
fn enumerate_candidates(search: &CandidateSearch<'_>, cap: usize) -> Vec<TargetTuple> {
    let mut combos: Vec<Vec<Value>> = vec![Vec::new()];
    for domain in &search.domains {
        let mut next = Vec::new();
        for prefix in &combos {
            for entry in domain {
                let mut assignment = prefix.clone();
                assignment.push(entry.item.clone());
                next.push(assignment);
                if next.len() >= cap {
                    break;
                }
            }
            if next.len() >= cap {
                break;
            }
        }
        combos = next;
        if combos.is_empty() {
            break;
        }
    }
    combos
        .into_iter()
        .filter(|z| z.len() == search.arity())
        .map(|z| search.assemble(&z))
        .collect()
}

/// The from-scratch verdict *and* terminal target of a candidate chase.
fn full_verdict(
    spec: &Specification,
    search: &CandidateSearch<'_>,
    candidate: &TargetTuple,
) -> (bool, Option<TargetTuple>) {
    let run = chase_with_grounding(spec, &search.grounding, candidate);
    match run.outcome {
        IsCrOutcome::ChurchRosser(instance) => {
            (&instance.target == candidate, Some(instance.target))
        }
        IsCrOutcome::NotChurchRosser(_) => (false, None),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Resumed and from-scratch checks agree on accept/reject for every
    /// candidate in the cross-product of the domains (plus mutated
    /// candidates), and accepted candidates are exactly the terminal target
    /// of the from-scratch chase.
    #[test]
    fn resume_check_agrees_with_full_chase(input in arb_spec(), salt in 0usize..7) {
        let spec = build_spec(&input);
        let preference = PreferenceModel::occurrence(&spec, 3);
        let Ok(search) = CandidateSearch::prepare(&spec, preference) else {
            return Ok(()); // not Church-Rosser: no candidate search exists
        };
        let mut scratch = CheckScratch::new();
        let mut stats = TopKStats::default();
        let mut candidates = enumerate_candidates(&search, 48);
        // mutate a few candidates by rotating a Z value to another attribute's
        // domain, which produces rejections that never reach the chase and
        // (with `reverse` on) conflict-producing chases
        let mutated: Vec<TargetTuple> = candidates
            .iter()
            .take(4)
            .map(|c| {
                let mut twisted = c.clone();
                let arity = twisted.arity();
                let from = salt % arity;
                let to = (salt + 1) % arity;
                let v = twisted.value(AttrId(from)).clone();
                twisted.set(AttrId(to), v);
                twisted
            })
            .collect();
        candidates.extend(mutated);
        for candidate in &candidates {
            let resumed = search.check(candidate, &mut scratch, &mut stats);
            let (full, terminal) = full_verdict(&spec, &search, candidate);
            prop_assert_eq!(
                resumed, full,
                "resumed and full check disagree on {:?}", candidate
            );
            if resumed {
                prop_assert_eq!(terminal.as_ref(), Some(candidate));
            }
        }
        // every check went through the resumed path or was rejected before
        // reaching the chase (candidates not completing the deduction)
        prop_assert_eq!(stats.checks, candidates.len());
        prop_assert_eq!(stats.full_checks, 0);
        prop_assert!(stats.delta_checks <= stats.checks);
    }
}

/// A checkpoint must survive an interleaved accept → reject → accept sequence
/// without state leakage: repeating the sequence (and re-running it on a
/// fresh scratch) yields bit-identical verdicts.
#[test]
fn checkpoint_survives_interleaved_accept_reject_accept() {
    let schema = Schema::builder("r")
        .attr("rnds", DataType::Int)
        .attr("team", DataType::Text)
        .attr("arena", DataType::Text)
        .build();
    let ie = EntityInstance::from_rows(
        schema.clone(),
        vec![
            vec![
                Value::Int(16),
                Value::text("Chicago"),
                Value::text("Chicago Stadium"),
            ],
            vec![
                Value::Int(27),
                Value::text("Chicago Bulls"),
                Value::text("United Center"),
            ],
            vec![
                Value::Int(27),
                Value::text("Chicago Bulls"),
                Value::text("Regions Park"),
            ],
        ],
    )
    .unwrap();
    let rules = RuleSet::from_rules([
        TupleRule::new(
            "currency",
            vec![Predicate::cmp_attrs(AttrId(0), CmpOp::Lt)],
            AttrId(0),
        ),
        // correlated: the rnds order propagates to team, so the chase's delta
        // replay does real work on every check
        TupleRule::new(
            "follow",
            vec![Predicate::OrderLt { attr: AttrId(0) }],
            AttrId(1),
        ),
    ]);
    let spec = Specification::new(ie, rules);
    let search = CandidateSearch::prepare(&spec, PreferenceModel::occurrence(&spec, 3)).unwrap();

    // `follow` propagates the rnds winner to team = "Chicago Bulls", so team
    // is already deduced and only the arena stays open
    assert_eq!(
        search.deduced.value(AttrId(1)),
        &Value::text("Chicago Bulls")
    );
    assert_eq!(search.z, vec![AttrId(2)]);

    let accept_a = search.assemble(&[Value::text("United Center")]);
    let accept_b = search.assemble(&[Value::text("Regions Park")]);
    let mut reject = accept_a.clone();
    reject.set(AttrId(1), Value::text("Chicago")); // contradicts the deduction

    let run_sequence = |scratch: &mut CheckScratch| -> Vec<bool> {
        let mut stats = TopKStats::default();
        vec![
            search.check(&accept_a, scratch, &mut stats),
            search.check(&reject, scratch, &mut stats),
            search.check(&accept_b, scratch, &mut stats),
            search.check(&reject, scratch, &mut stats),
            search.check(&accept_a, scratch, &mut stats),
        ]
    };

    let mut scratch = CheckScratch::new();
    let first = run_sequence(&mut scratch);
    assert_eq!(first, vec![true, false, true, false, true]);
    // repeating on the same (rolled-back) scratch leaks nothing
    for _ in 0..50 {
        assert_eq!(run_sequence(&mut scratch), first);
    }
    // and a fresh scratch reproduces the same verdicts
    assert_eq!(run_sequence(&mut CheckScratch::new()), first);
    // the from-scratch reference agrees on all three tuples
    let mut stats = TopKStats::default();
    assert!(search.check_full(&accept_a, &mut stats));
    assert!(search.check_full(&accept_b, &mut stats));
    assert!(!search.check_full(&reject, &mut stats));
}
