//! `bench-gate`: the CI regression gate over the committed `BENCH_*.json`
//! perf reports at the repository root.
//!
//! Every perf-bearing bench group writes a small machine-readable report
//! (`BENCH_topk.json`, `BENCH_incremental.json`, …) whose real-run numbers
//! are committed.  This binary parses each report and fails (exit code 1)
//! when a structural invariant or a speedup floor regresses:
//!
//! * every report must be a real measurement (`"smoke": false`) — smoke runs
//!   write under `target/` and must never be committed;
//! * `BENCH_topk.json`: `delta_vs_full_speedup ≥ 3` (the checkpointed-chase
//!   floor established in PR 3);
//! * `BENCH_incremental.json`: `incremental_vs_full_speedup ≥ 3` on a
//!   ≤10%-dirty update batch (`max_dirty_fraction ≤ 0.10`);
//! * `BENCH_sharded.json`: `sharded_vs_single_speedup ≥ 2` at `shards ≥ 2`
//!   (the hot-shard Med stream, PR 5);
//! * `BENCH_resolve.json`: `resolve_speedup ≥ 3` with `pruned_fraction ≥ 0.5`
//!   (the fingerprint cascade on the adversarial large-block shape, PR 6) —
//!   the cascade must actually retire most candidate pairs, not just win on
//!   timing noise;
//! * `BENCH_serve.json`: `read_vs_snapshot_speedup ≥ 10` over at least one
//!   real read (`reads ≥ 1`, `batches ≥ 1`, `entities ≥ 1`) — the
//!   epoch-pinned point read must beat the snapshot-per-read baseline by an
//!   order of magnitude on the mixed Med stream (PR 7);
//! * `BENCH_net.json`: `mismatches ≤ 0` over at least one paired read
//!   (`reads ≥ 1`, `batches ≥ 1`, `entities ≥ 1`) plus
//!   `tcp_reads_per_sec ≥ 100` (PR 9) — every point read served over
//!   loopback TCP must be bit-identical to its in-process twin, and the
//!   deliberately generous absolute throughput floor catches a transport
//!   wedged on socket timeouts without ever judging machine speed;
//! * `BENCH_elastic.json`: `elastic_vs_static_speedup ≥ 1.5` on the drifting
//!   hot-shard Med stream with `master_ground_count == 1` (PR 8) — chasing
//!   the hot block onto a spare shard must beat static placement even with
//!   migration cost charged to the elastic engine, and a master append must
//!   ground its delta exactly once across all shards (one-shot grounding,
//!   not once per shard);
//! * every gated number must be present, finite and non-negative.
//!
//! Usage: `bench-gate [--root <dir>]` (the root defaults to the workspace
//! root this binary was built from).  Unknown `BENCH_*.json` files are only
//! smoke-checked, so new benches are gated on cleanliness by default and get
//! floors added here once their first real numbers are committed.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// A minimal scanner for the flat JSON objects the benches emit: string,
/// number and boolean values under string keys (no nesting, no arrays —
/// enough for `BENCH_*.json`, with no external dependencies).
#[derive(Debug, Clone, PartialEq)]
enum JsonValue {
    Number(f64),
    Bool(bool),
    Text(String),
}

#[derive(Debug, Default)]
struct FlatJson {
    fields: Vec<(String, JsonValue)>,
}

impl FlatJson {
    fn get(&self, key: &str) -> Option<&JsonValue> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    fn number(&self, key: &str) -> Option<f64> {
        match self.get(key)? {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    fn boolean(&self, key: &str) -> Option<bool> {
        match self.get(key)? {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parse a flat JSON object.  Returns an error message on malformed input;
/// nested objects/arrays are rejected (the bench reports never emit them).
fn parse_flat_json(text: &str) -> Result<FlatJson, String> {
    let mut out = FlatJson::default();
    let mut chars = text.chars().peekable();
    let skip_ws = |chars: &mut std::iter::Peekable<std::str::Chars>| {
        while matches!(chars.peek(), Some(c) if c.is_whitespace()) {
            chars.next();
        }
    };
    fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars>) -> Result<String, String> {
        if chars.next() != Some('"') {
            return Err("expected '\"'".into());
        }
        let mut s = String::new();
        for c in chars.by_ref() {
            match c {
                '"' => return Ok(s),
                '\\' => return Err("escape sequences are not supported".into()),
                other => s.push(other),
            }
        }
        Err("unterminated string".into())
    }

    skip_ws(&mut chars);
    if chars.next() != Some('{') {
        return Err("expected '{'".into());
    }
    loop {
        skip_ws(&mut chars);
        match chars.peek() {
            Some('}') => {
                chars.next();
                break;
            }
            Some('"') => {}
            other => return Err(format!("expected a key or '}}', found {other:?}")),
        }
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        if chars.next() != Some(':') {
            return Err(format!("expected ':' after key {key:?}"));
        }
        skip_ws(&mut chars);
        let value = match chars.peek() {
            Some('"') => JsonValue::Text(parse_string(&mut chars)?),
            Some('t' | 'f') => {
                let mut word = String::new();
                while matches!(chars.peek(), Some(c) if c.is_ascii_alphabetic()) {
                    word.push(chars.next().expect("peeked"));
                }
                match word.as_str() {
                    "true" => JsonValue::Bool(true),
                    "false" => JsonValue::Bool(false),
                    other => return Err(format!("unexpected literal {other:?}")),
                }
            }
            Some(c) if c.is_ascii_digit() || *c == '-' || *c == '+' => {
                let mut raw = String::new();
                while matches!(
                    chars.peek(),
                    Some(c) if c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E')
                ) {
                    raw.push(chars.next().expect("peeked"));
                }
                JsonValue::Number(
                    raw.parse::<f64>()
                        .map_err(|e| format!("bad number {raw:?}: {e}"))?,
                )
            }
            other => return Err(format!("unsupported value start {other:?} for key {key:?}")),
        };
        out.fields.push((key, value));
        skip_ws(&mut chars);
        match chars.peek() {
            Some(',') => {
                chars.next();
            }
            Some('}') => {}
            other => return Err(format!("expected ',' or '}}', found {other:?}")),
        }
    }
    Ok(out)
}

/// A numeric floor one report must clear.
struct Floor {
    field: &'static str,
    minimum: f64,
}

/// A numeric ceiling one report must stay under.
struct Ceiling {
    field: &'static str,
    maximum: f64,
}

/// The per-report gates.  Unknown reports get only the shared checks.
fn gates(file_name: &str) -> (Vec<Floor>, Vec<Ceiling>) {
    match file_name {
        "BENCH_topk.json" => (
            vec![Floor {
                field: "delta_vs_full_speedup",
                minimum: 3.0,
            }],
            vec![],
        ),
        "BENCH_incremental.json" => (
            vec![
                Floor {
                    field: "incremental_vs_full_speedup",
                    minimum: 3.0,
                },
                Floor {
                    field: "entities",
                    minimum: 1.0,
                },
                Floor {
                    field: "batches",
                    minimum: 1.0,
                },
            ],
            vec![Ceiling {
                field: "max_dirty_fraction",
                maximum: 0.10,
            }],
        ),
        "BENCH_resolve.json" => (
            vec![
                Floor {
                    field: "resolve_speedup",
                    minimum: 3.0,
                },
                Floor {
                    field: "pruned_fraction",
                    minimum: 0.5,
                },
                Floor {
                    field: "pairs",
                    minimum: 1.0,
                },
            ],
            vec![Ceiling {
                field: "pruned_fraction",
                maximum: 1.0,
            }],
        ),
        "BENCH_serve.json" => (
            vec![
                Floor {
                    field: "read_vs_snapshot_speedup",
                    minimum: 10.0,
                },
                Floor {
                    field: "entities",
                    minimum: 1.0,
                },
                Floor {
                    field: "batches",
                    minimum: 1.0,
                },
                Floor {
                    field: "reads",
                    minimum: 1.0,
                },
            ],
            vec![],
        ),
        "BENCH_net.json" => (
            vec![
                // a deliberately generous absolute floor: loopback TCP point
                // reads run ~10k/s on any hardware, so tripping 100/s means a
                // transport bug (a lost flush waiting out a socket timeout),
                // not a slow machine
                Floor {
                    field: "tcp_reads_per_sec",
                    minimum: 100.0,
                },
                Floor {
                    field: "entities",
                    minimum: 1.0,
                },
                Floor {
                    field: "batches",
                    minimum: 1.0,
                },
                Floor {
                    field: "reads",
                    minimum: 1.0,
                },
            ],
            // every TCP answer must be bit-identical to its in-process twin
            vec![Ceiling {
                field: "mismatches",
                maximum: 0.0,
            }],
        ),
        "BENCH_sharded.json" => (
            vec![
                Floor {
                    field: "sharded_vs_single_speedup",
                    minimum: 2.0,
                },
                Floor {
                    field: "shards",
                    minimum: 2.0,
                },
                Floor {
                    field: "entities",
                    minimum: 1.0,
                },
                Floor {
                    field: "batches",
                    minimum: 1.0,
                },
            ],
            vec![],
        ),
        "BENCH_elastic.json" => (
            vec![
                Floor {
                    field: "elastic_vs_static_speedup",
                    minimum: 1.5,
                },
                // exactly 1: a floor and a ceiling pin one grounding per
                // append summed across all shards
                Floor {
                    field: "master_ground_count",
                    minimum: 1.0,
                },
                Floor {
                    field: "shards",
                    minimum: 2.0,
                },
                Floor {
                    field: "entities",
                    minimum: 1.0,
                },
                Floor {
                    field: "batches",
                    minimum: 1.0,
                },
            ],
            vec![Ceiling {
                field: "master_ground_count",
                maximum: 1.0,
            }],
        ),
        _ => (vec![], vec![]),
    }
}

/// Check one report; returns the violations found.
fn check_report(file_name: &str, text: &str) -> Vec<String> {
    let report = match parse_flat_json(text) {
        Ok(report) => report,
        Err(e) => return vec![format!("{file_name}: malformed JSON: {e}")],
    };
    let mut violations = Vec::new();
    // shared structural invariants
    match report.boolean("smoke") {
        Some(false) => {}
        Some(true) => violations.push(format!(
            "{file_name}: committed report is a smoke run (\"smoke\": true) — \
             smoke runs must write under target/, never the repo root"
        )),
        None => violations.push(format!(
            "{file_name}: missing the \"smoke\": false marker of a real run"
        )),
    }
    for (key, value) in &report.fields {
        if let JsonValue::Number(n) = value {
            if !n.is_finite() || *n < 0.0 {
                violations.push(format!(
                    "{file_name}: field {key:?} is not a finite non-negative number ({n})"
                ));
            }
        }
    }
    let (floors, ceilings) = gates(file_name);
    for floor in floors {
        match report.number(floor.field) {
            Some(n) if n >= floor.minimum => {}
            Some(n) => violations.push(format!(
                "{file_name}: {} regressed below its floor: {n} < {}",
                floor.field, floor.minimum
            )),
            None => violations.push(format!(
                "{file_name}: gated field {:?} is missing or non-numeric",
                floor.field
            )),
        }
    }
    for ceiling in ceilings {
        match report.number(ceiling.field) {
            Some(n) if n <= ceiling.maximum => {}
            Some(n) => violations.push(format!(
                "{file_name}: {} exceeds its ceiling: {n} > {}",
                ceiling.field, ceiling.maximum
            )),
            None => violations.push(format!(
                "{file_name}: gated field {:?} is missing or non-numeric",
                ceiling.field
            )),
        }
    }
    violations
}

/// Gate every `BENCH_*.json` directly under `root`.
fn run(root: &Path) -> Result<Vec<String>, String> {
    let mut names: Vec<PathBuf> = std::fs::read_dir(root)
        .map_err(|e| format!("cannot read {}: {e}", root.display()))?
        .filter_map(|entry| entry.ok())
        .map(|entry| entry.path())
        .filter(|path| {
            path.is_file()
                && path
                    .file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    names.sort();
    if names.is_empty() {
        return Err(format!(
            "no BENCH_*.json reports found under {} — the gate would pass vacuously",
            root.display()
        ));
    }
    let mut violations = Vec::new();
    for path in names {
        let file_name = path
            .file_name()
            .and_then(|n| n.to_str())
            .expect("filtered on the file name")
            .to_string();
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let found = check_report(&file_name, &text);
        if found.is_empty() {
            println!("bench-gate: {file_name} ok");
        }
        violations.extend(found);
    }
    Ok(violations)
}

fn main() -> ExitCode {
    let mut root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("bench-gate: --root needs a directory");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("bench-gate: unknown argument {other:?}");
                return ExitCode::FAILURE;
            }
        }
    }
    match run(&root) {
        Ok(violations) if violations.is_empty() => {
            println!("bench-gate: all committed bench reports clear their gates");
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                eprintln!("bench-gate: FAIL {v}");
            }
            eprintln!("bench-gate: {} violation(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("bench-gate: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD_TOPK: &str = r#"{
  "bench": "topk_check",
  "corpus": "rest",
  "delta_vs_full_speedup": 9.81,
  "smoke": false
}"#;

    const GOOD_INCREMENTAL: &str = r#"{
  "bench": "incremental",
  "entities": 540,
  "batches": 24,
  "max_dirty_fraction": 0.031,
  "incremental_vs_full_speedup": 11.5,
  "smoke": false
}"#;

    const GOOD_RESOLVE: &str = r#"{
  "bench": "resolve",
  "corpus": "large_blocks",
  "rows": 576,
  "pairs": 13536,
  "pruned_fraction": 0.71,
  "resolve_speedup": 4.2,
  "smoke": false
}"#;

    const GOOD_SERVE: &str = r#"{
  "bench": "serve",
  "corpus": "med-mixed",
  "entities": 2158,
  "batches": 8,
  "reads": 64,
  "point_read_ms_median": 0.267,
  "snapshot_read_ms_median": 31.873,
  "read_vs_snapshot_speedup": 119.38,
  "smoke": false
}"#;

    const GOOD_NET: &str = r#"{
  "bench": "net",
  "corpus": "med-mixed",
  "entities": 2158,
  "batches": 8,
  "reads": 64,
  "tcp_read_ms_median": 0.0628,
  "inproc_read_ms_median": 0.0265,
  "tcp_reads_per_sec": 12121,
  "mismatches": 0,
  "smoke": false
}"#;

    const GOOD_SHARDED: &str = r#"{
  "bench": "sharded",
  "corpus": "med-hot",
  "shards": 4,
  "entities": 1400,
  "batches": 12,
  "sharded_vs_single_speedup": 3.4,
  "smoke": false
}"#;

    const GOOD_ELASTIC: &str = r#"{
  "bench": "elastic",
  "corpus": "med-hot-drift",
  "shards": 4,
  "entities": 5400,
  "batches": 12,
  "routing_version": 3,
  "elastic_vs_static_speedup": 2.8,
  "master_ground_count": 1.00,
  "smoke": false
}"#;

    #[test]
    fn parses_flat_reports() {
        let report = parse_flat_json(GOOD_INCREMENTAL).unwrap();
        assert_eq!(report.number("entities"), Some(540.0));
        assert_eq!(report.boolean("smoke"), Some(false));
        assert_eq!(
            report.get("bench"),
            Some(&JsonValue::Text("incremental".into()))
        );
        assert!(parse_flat_json("{").is_err());
        assert!(parse_flat_json(r#"{"a": [1]}"#).is_err());
    }

    #[test]
    fn clean_reports_pass() {
        assert!(check_report("BENCH_topk.json", GOOD_TOPK).is_empty());
        assert!(check_report("BENCH_incremental.json", GOOD_INCREMENTAL).is_empty());
        assert!(check_report("BENCH_sharded.json", GOOD_SHARDED).is_empty());
        assert!(check_report("BENCH_resolve.json", GOOD_RESOLVE).is_empty());
        assert!(check_report("BENCH_serve.json", GOOD_SERVE).is_empty());
        assert!(check_report("BENCH_elastic.json", GOOD_ELASTIC).is_empty());
        assert!(check_report("BENCH_net.json", GOOD_NET).is_empty());
        // unknown reports only need the shared invariants
        assert!(check_report("BENCH_new.json", r#"{"x": 1, "smoke": false}"#).is_empty());
    }

    #[test]
    fn sharded_gates_are_enforced() {
        // speedup floor: a 1.4x run regresses below the required 2x
        let regressed = GOOD_SHARDED.replace("3.4", "1.4");
        let violations = check_report("BENCH_sharded.json", &regressed);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("sharded_vs_single_speedup"));
        // a single-shard "sharded" run proves nothing
        let unsharded = GOOD_SHARDED.replace("\"shards\": 4", "\"shards\": 1");
        assert!(check_report("BENCH_sharded.json", &unsharded)
            .iter()
            .any(|v| v.contains("shards")));
        // smoke-marked sharded reports are rejected like every other report
        let smoked = GOOD_SHARDED.replace("\"smoke\": false", "\"smoke\": true");
        assert!(check_report("BENCH_sharded.json", &smoked)
            .iter()
            .any(|v| v.contains("smoke run")));
        // the gated field must be present
        let missing = GOOD_SHARDED.replace("sharded_vs_single_speedup", "other");
        assert!(!check_report("BENCH_sharded.json", &missing).is_empty());
    }

    #[test]
    fn resolve_gates_are_enforced() {
        // speedup floor: a 2.4x cascade regresses below the required 3x
        let regressed = GOOD_RESOLVE.replace("4.2", "2.4");
        let violations = check_report("BENCH_resolve.json", &regressed);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("resolve_speedup"));
        // prune floor: a cascade that stops pruning cannot hide behind noise
        let toothless = GOOD_RESOLVE.replace("0.71", "0.22");
        assert!(check_report("BENCH_resolve.json", &toothless)
            .iter()
            .any(|v| v.contains("pruned_fraction")));
        // prune ceiling: a fraction above 1 means the stats are corrupt
        let corrupt = GOOD_RESOLVE.replace("0.71", "1.31");
        assert!(check_report("BENCH_resolve.json", &corrupt)
            .iter()
            .any(|v| v.contains("pruned_fraction")));
        // the gated fields must be present
        let missing = GOOD_RESOLVE.replace("resolve_speedup", "other");
        assert!(!check_report("BENCH_resolve.json", &missing).is_empty());
        // smoke-marked resolve reports are rejected like every other report
        let smoked = GOOD_RESOLVE.replace("\"smoke\": false", "\"smoke\": true");
        assert!(check_report("BENCH_resolve.json", &smoked)
            .iter()
            .any(|v| v.contains("smoke run")));
    }

    #[test]
    fn serve_gates_are_enforced() {
        // speedup floor: a 6x serving layer regresses below the required 10x
        let regressed = GOOD_SERVE.replace("119.38", "6.0");
        let violations = check_report("BENCH_serve.json", &regressed);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("read_vs_snapshot_speedup"));
        // a zero-read run proves nothing about read latency
        let unread = GOOD_SERVE.replace("\"reads\": 64", "\"reads\": 0");
        assert!(check_report("BENCH_serve.json", &unread)
            .iter()
            .any(|v| v.contains("reads")));
        // the gated field must be present
        let missing = GOOD_SERVE.replace("read_vs_snapshot_speedup", "other");
        assert!(!check_report("BENCH_serve.json", &missing).is_empty());
        // smoke-marked serve reports are rejected like every other report
        let smoked = GOOD_SERVE.replace("\"smoke\": false", "\"smoke\": true");
        assert!(check_report("BENCH_serve.json", &smoked)
            .iter()
            .any(|v| v.contains("smoke run")));
    }

    #[test]
    fn net_gates_are_enforced() {
        // a single wire/in-process divergence fails the run: the transport's
        // whole claim is bit-identical answers
        let diverged = GOOD_NET.replace("\"mismatches\": 0", "\"mismatches\": 1");
        let violations = check_report("BENCH_net.json", &diverged);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("mismatches"));
        // the throughput floor catches a transport wedged on timeouts
        let wedged = GOOD_NET.replace("12121", "3");
        assert!(check_report("BENCH_net.json", &wedged)
            .iter()
            .any(|v| v.contains("tcp_reads_per_sec")));
        // a zero-read run proves nothing
        let unread = GOOD_NET.replace("\"reads\": 64", "\"reads\": 0");
        assert!(check_report("BENCH_net.json", &unread)
            .iter()
            .any(|v| v.contains("reads")));
        // the gated fields must be present
        let missing = GOOD_NET.replace("mismatches", "other");
        assert!(!check_report("BENCH_net.json", &missing).is_empty());
        // smoke-marked net reports are rejected like every other report
        let smoked = GOOD_NET.replace("\"smoke\": false", "\"smoke\": true");
        assert!(check_report("BENCH_net.json", &smoked)
            .iter()
            .any(|v| v.contains("smoke run")));
    }

    #[test]
    fn elastic_gates_are_enforced() {
        // speedup floor: a 1.2x run regresses below the required 1.5x
        let regressed = GOOD_ELASTIC.replace("2.8", "1.2");
        let violations = check_report("BENCH_elastic.json", &regressed);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("elastic_vs_static_speedup"));
        // per-shard grounding (N groundings per append) breaks the ceiling
        let per_shard = GOOD_ELASTIC.replace("1.00", "4.00");
        assert!(check_report("BENCH_elastic.json", &per_shard)
            .iter()
            .any(|v| v.contains("master_ground_count")));
        // zero groundings (appends never grounded) breaks the floor
        let ungrounded = GOOD_ELASTIC.replace("1.00", "0.00");
        assert!(check_report("BENCH_elastic.json", &ungrounded)
            .iter()
            .any(|v| v.contains("master_ground_count")));
        // a single-shard "elastic" run proves nothing
        let unsharded = GOOD_ELASTIC.replace("\"shards\": 4", "\"shards\": 1");
        assert!(check_report("BENCH_elastic.json", &unsharded)
            .iter()
            .any(|v| v.contains("shards")));
        // smoke-marked elastic reports are rejected like every other report
        let smoked = GOOD_ELASTIC.replace("\"smoke\": false", "\"smoke\": true");
        assert!(check_report("BENCH_elastic.json", &smoked)
            .iter()
            .any(|v| v.contains("smoke run")));
        // the gated fields must be present
        let missing = GOOD_ELASTIC.replace("elastic_vs_static_speedup", "other");
        assert!(!check_report("BENCH_elastic.json", &missing).is_empty());
    }

    #[test]
    fn smoke_marked_reports_fail() {
        let smoked = GOOD_TOPK.replace("\"smoke\": false", "\"smoke\": true");
        let violations = check_report("BENCH_topk.json", &smoked);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("smoke run"));
        // and so does a missing marker
        let missing = GOOD_TOPK.replace("  \"smoke\": false\n", "  \"x\": 1\n");
        assert!(!check_report("BENCH_topk.json", &missing).is_empty());
    }

    #[test]
    fn speedup_floors_are_enforced() {
        let regressed = GOOD_TOPK.replace("9.81", "2.99");
        let violations = check_report("BENCH_topk.json", &regressed);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("delta_vs_full_speedup"));

        let regressed = GOOD_INCREMENTAL.replace("11.5", "1.2");
        let violations = check_report("BENCH_incremental.json", &regressed);
        assert!(violations
            .iter()
            .any(|v| v.contains("incremental_vs_full_speedup")));

        let missing = GOOD_INCREMENTAL.replace("incremental_vs_full_speedup", "other");
        assert!(!check_report("BENCH_incremental.json", &missing).is_empty());
    }

    #[test]
    fn dirty_fraction_ceiling_is_enforced() {
        let too_dirty = GOOD_INCREMENTAL.replace("0.031", "0.4");
        let violations = check_report("BENCH_incremental.json", &too_dirty);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("max_dirty_fraction"));
    }

    #[test]
    fn structural_invariants_catch_bad_numbers() {
        let negative = GOOD_INCREMENTAL.replace("540", "-1");
        assert!(!check_report("BENCH_incremental.json", &negative).is_empty());
    }

    #[test]
    fn run_gates_a_directory_and_rejects_an_empty_one() {
        let dir = std::env::temp_dir().join(format!("bench_gate_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        assert!(run(&dir).is_err(), "no reports must not pass vacuously");
        std::fs::write(dir.join("BENCH_topk.json"), GOOD_TOPK).unwrap();
        std::fs::write(dir.join("BENCH_incremental.json"), GOOD_INCREMENTAL).unwrap();
        assert!(run(&dir).unwrap().is_empty());
        std::fs::write(
            dir.join("BENCH_incremental.json"),
            GOOD_INCREMENTAL.replace("11.5", "0.5"),
        )
        .unwrap();
        assert_eq!(run(&dir).unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
