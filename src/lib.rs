//! # relacc — determining the relative accuracy of attributes
//!
//! A Rust reproduction of Cao, Fan and Yu, *"Determining the Relative Accuracy
//! of Attributes"*, SIGMOD 2013.  Given a set of tuples that describe the same
//! real-world entity, a set of **accuracy rules** and optional **master
//! data**, the library infers which tuple is more accurate on which attribute
//! (strict partial orders `≺_A`), deduces a **target tuple** composed of the
//! most accurate values, decides whether the inference is **Church-Rosser**
//! (order-independent), and — when the target stays incomplete — proposes
//! **top-k candidate targets** under a preference model, optionally in an
//! interactive loop with a user.
//!
//! This crate is a thin facade re-exporting the workspace members:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`model`] | `relacc-model` | values, schemas, tuples, entity instances, master data, accuracy orders |
//! | [`heap`] | `relacc-heap` | pairing heap and ranked value heaps |
//! | [`store`] | `relacc-store` | in-memory relations, CSV, catalog |
//! | [`resolve`] | `relacc-resolve` | entity resolution: similarity, blocking, clustering |
//! | [`core`] | `relacc-core` | accuracy rules, the chase, Church-Rosser checking (IsCR), compile-once chase plans |
//! | [`engine`] | `relacc-engine` | the compile-once / evaluate-many parallel batch engine |
//! | [`serve`] | `relacc-serve` | concurrent serving: generation-pinned reads, snapshot deltas, change feeds |
//! | [`net`] | `relacc-net` | TCP transport: framed wire protocol, `serve_tcp` binary, typed client |
//! | [`topk`] | `relacc-topk` | preference model, RankJoinCT, TopKCT, TopKCTh |
//! | [`framework`] | `relacc-framework` | the interactive deduction framework (Fig. 3) |
//! | [`fusion`] | `relacc-fusion` | voting, DeduceOrder, copyCEF, evaluation metrics |
//! | [`datagen`] | `relacc-datagen` | the paper's running example and the Med/CFP/Rest/Syn workload generators |
//!
//! See the `examples/` directory for runnable end-to-end scenarios, and
//! `DESIGN.md` / `EXPERIMENTS.md` for the reproduction methodology.
//!
//! ## Quickstart
//!
//! ```
//! use relacc::core::chase::is_cr;
//! use relacc::datagen::paper_example::{expected_target, paper_specification};
//!
//! // Tables 1–3 of the paper: Michael Jordan's 1994-95 season.
//! let spec = paper_specification();
//! let run = is_cr(&spec);
//! assert!(run.outcome.is_church_rosser());
//! assert_eq!(run.outcome.target().unwrap(), &expected_target());
//! ```

#![forbid(unsafe_code)]

pub use relacc_core as core;
pub use relacc_datagen as datagen;
pub use relacc_engine as engine;
pub use relacc_framework as framework;
pub use relacc_fusion as fusion;
pub use relacc_heap as heap;
pub use relacc_model as model;
pub use relacc_net as net;
pub use relacc_resolve as resolve;
pub use relacc_serve as serve;
pub use relacc_store as store;
pub use relacc_topk as topk;
