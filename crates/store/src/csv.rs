//! Minimal CSV serialization for relations.
//!
//! The generated datasets (and any real data a user wants to plug in) are
//! exchanged as RFC-4180-style CSV: a header row with attribute names, fields
//! quoted when they contain separators, quotes doubled inside quoted fields.
//! Only the features the workloads need are implemented; the writer and reader
//! are exact inverses of each other (see the round-trip tests).

use crate::relation::Relation;
use relacc_model::{SchemaRef, Value};
use std::fmt::Write as _;

/// Errors raised while parsing CSV text into a relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvError {
    /// The input had no header line.
    MissingHeader,
    /// The header does not match the schema's attribute names.
    HeaderMismatch {
        /// Expected attribute names.
        expected: Vec<String>,
        /// Names found in the file.
        got: Vec<String>,
    },
    /// A data row has the wrong number of fields.
    FieldCount {
        /// 1-based line number.
        line: usize,
        /// Expected field count.
        expected: usize,
        /// Found field count.
        got: usize,
    },
    /// A field failed to parse as its attribute's type.
    BadValue {
        /// 1-based line number.
        line: usize,
        /// Attribute name.
        attribute: String,
        /// Parse failure description.
        message: String,
    },
    /// A quoted field was never closed.
    UnterminatedQuote {
        /// 1-based line number.
        line: usize,
    },
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::MissingHeader => write!(f, "missing CSV header"),
            CsvError::HeaderMismatch { expected, got } => {
                write!(f, "header mismatch: expected {expected:?}, got {got:?}")
            }
            CsvError::FieldCount {
                line,
                expected,
                got,
            } => write!(f, "line {line}: expected {expected} fields, got {got}"),
            CsvError::BadValue {
                line,
                attribute,
                message,
            } => write!(f, "line {line}, attribute {attribute}: {message}"),
            CsvError::UnterminatedQuote { line } => {
                write!(f, "line {line}: unterminated quoted field")
            }
        }
    }
}

impl std::error::Error for CsvError {}

fn needs_quoting(field: &str) -> bool {
    field.contains(',') || field.contains('"') || field.contains('\n') || field.contains('\r')
}

fn write_field(out: &mut String, field: &str) {
    if needs_quoting(field) {
        out.push('"');
        for c in field.chars() {
            if c == '"' {
                out.push('"');
            }
            out.push(c);
        }
        out.push('"');
    } else {
        out.push_str(field);
    }
}

/// Serialize a relation to CSV text (header + one line per row).
///
/// Null values serialize as the empty field, which [`Value::parse_as`] maps
/// back to `Value::Null`.
pub fn to_csv(relation: &Relation) -> String {
    let schema = relation.schema();
    let mut out = String::new();
    for (i, attr) in schema.attributes().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_field(&mut out, &attr.name);
    }
    out.push('\n');
    for row in relation.rows() {
        for (i, v) in row.values().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            match v {
                Value::Null => {}
                other => {
                    let mut s = String::new();
                    let _ = write!(s, "{other}");
                    write_field(&mut out, &s);
                }
            }
        }
        out.push('\n');
    }
    out
}

/// Split one CSV record into fields, honouring quotes.
fn split_record(line: &str, line_no: usize) -> Result<Vec<String>, CsvError> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            if c == '"' {
                if chars.peek() == Some(&'"') {
                    field.push('"');
                    chars.next();
                } else {
                    in_quotes = false;
                }
            } else {
                field.push(c);
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => {
                    fields.push(std::mem::take(&mut field));
                }
                _ => field.push(c),
            }
        }
    }
    if in_quotes {
        return Err(CsvError::UnterminatedQuote { line: line_no });
    }
    fields.push(field);
    Ok(fields)
}

/// Parse CSV text into a relation over `schema`.
///
/// The header must list exactly the schema's attribute names in order; data
/// fields are parsed with [`Value::parse_as`] against the declared types.
pub fn from_csv(schema: SchemaRef, text: &str) -> Result<Relation, CsvError> {
    let mut lines = text.lines().enumerate().filter(|(_, l)| !l.is_empty());
    let (header_no, header) = lines.next().ok_or(CsvError::MissingHeader)?;
    let header_fields = split_record(header, header_no + 1)?;
    let expected: Vec<String> = schema.attributes().iter().map(|a| a.name.clone()).collect();
    if header_fields != expected {
        return Err(CsvError::HeaderMismatch {
            expected,
            got: header_fields,
        });
    }

    let mut relation = Relation::new(schema.clone());
    for (idx, line) in lines {
        let line_no = idx + 1;
        let fields = split_record(line, line_no)?;
        if fields.len() != schema.arity() {
            return Err(CsvError::FieldCount {
                line: line_no,
                expected: schema.arity(),
                got: fields.len(),
            });
        }
        let mut row = Vec::with_capacity(fields.len());
        for (i, field) in fields.iter().enumerate() {
            let ty = schema.attr_type(relacc_model::AttrId(i));
            let value = if field.is_empty() {
                Value::Null
            } else {
                Value::parse_as(ty, field).map_err(|e| CsvError::BadValue {
                    line: line_no,
                    attribute: schema.attr_name(relacc_model::AttrId(i)).to_string(),
                    message: e.to_string(),
                })?
            };
            row.push(value);
        }
        relation.push_row(row).map_err(|e| CsvError::BadValue {
            line: line_no,
            attribute: "<row>".to_string(),
            message: e.to_string(),
        })?;
    }
    Ok(relation)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::relation_of;
    use relacc_model::{AttrId, DataType, Schema};

    fn sample() -> Relation {
        relation_of(
            "r",
            vec![
                ("name", DataType::Text),
                ("pts", DataType::Int),
                ("avg", DataType::Float),
            ],
            vec![
                vec![
                    Value::text("Michael Jordan"),
                    Value::Int(772),
                    Value::Float(28.5),
                ],
                vec![
                    Value::text("says \"hi\", ok"),
                    Value::Null,
                    Value::Float(-1.0),
                ],
                vec![Value::Null, Value::Int(0), Value::Null],
            ],
        )
    }

    #[test]
    fn round_trip_preserves_rows() {
        let r = sample();
        let csv = to_csv(&r);
        let back = from_csv(r.schema().clone(), &csv).unwrap();
        assert_eq!(back.len(), r.len());
        for (a, b) in r.rows().iter().zip(back.rows().iter()) {
            for (x, y) in a.values().iter().zip(b.values().iter()) {
                assert!(x.same(y), "{x} != {y}");
            }
        }
    }

    #[test]
    fn quoting_special_characters() {
        let r = sample();
        let csv = to_csv(&r);
        assert!(csv.contains("\"says \"\"hi\"\", ok\""));
        // header untouched
        assert!(csv.starts_with("name,pts,avg\n"));
    }

    #[test]
    fn header_mismatch_rejected() {
        let schema = Schema::builder("r")
            .attr("a", DataType::Int)
            .attr("b", DataType::Int)
            .build();
        let err = from_csv(schema, "a,c\n1,2\n").unwrap_err();
        assert!(matches!(err, CsvError::HeaderMismatch { .. }));
    }

    #[test]
    fn field_count_and_type_errors() {
        let schema = Schema::builder("r")
            .attr("a", DataType::Int)
            .attr("b", DataType::Int)
            .build();
        let err = from_csv(schema.clone(), "a,b\n1\n").unwrap_err();
        assert!(matches!(err, CsvError::FieldCount { line: 2, .. }));
        let err = from_csv(schema.clone(), "a,b\n1,xyz\n").unwrap_err();
        assert!(matches!(err, CsvError::BadValue { .. }));
        let err = from_csv(schema, "a,b\n\"1,2\n").unwrap_err();
        assert!(matches!(err, CsvError::UnterminatedQuote { .. }));
    }

    #[test]
    fn empty_fields_become_null() {
        let schema = Schema::builder("r")
            .attr("a", DataType::Int)
            .attr("b", DataType::Text)
            .build();
        let r = from_csv(schema, "a,b\n,hello\n5,\n").unwrap();
        assert!(r.row(0).value(AttrId(0)).is_null());
        assert_eq!(r.row(0).value(AttrId(1)), &Value::text("hello"));
        assert!(r.row(1).value(AttrId(1)).is_null());
    }

    #[test]
    fn missing_header_detected() {
        let schema = Schema::builder("r").attr("a", DataType::Int).build();
        assert_eq!(from_csv(schema, "").unwrap_err(), CsvError::MissingHeader);
    }
}
