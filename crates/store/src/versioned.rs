//! Versioned relations: the storage substrate of incremental repair.
//!
//! A repaired corpus is not a one-shot computation — input tuples and master
//! data keep arriving after the first repair.  A [`VersionedRelation`] wraps a
//! bag of rows with the two pieces of bookkeeping the incremental pipeline
//! needs:
//!
//! * a **stable row identity** ([`RowId`]): rows are addressed by an id that
//!   survives deletions of other rows, so an update stream can name the rows
//!   it removes without racing against positional shifts;
//! * a **per-tuple generation stamp** ([`Generation`]): every row records the
//!   relation generation it was inserted at, and every applied
//!   [`UpdateBatch`] advances the generation, so downstream caches can tell
//!   "unchanged since generation g" apart from "rebuilt".
//!
//! Updates are typed: an [`UpdateBatch`] names a catalog entry and carries
//! inserts (validated rows) and deletes (row ids).  A [`VersionedCatalog`]
//! routes batches to the named relation, mirroring [`crate::Catalog`] for the
//! versioned world.
//!
//! **Row-id contract.** Ids are assigned sequentially from 0 in insertion
//! order ([`VersionedRelation::from_relation`] stamps the seed rows
//! `0..n`, and each subsequent insert takes the next id; deletes never free
//! ids for reuse).  Deterministic workload generators rely on this contract
//! to script delete targets ahead of time.
//!
//! **Per-shard id spaces.** A [`RowId`] is only meaningful relative to the
//! relation that assigned it.  Sharded deployments (the engine's
//! `ShardedEngine`) give every shard its **own** `VersionedRelation` — and
//! therefore its own id space, each independently following the sequential
//! contract above — and keep the corpus-level view in a router that owns the
//! remapping: live *global* id → (shard, *local* id) for dispatching
//! deletes, and per shard local id → global id for reassembling snapshots.
//! Two consequences the router relies on, both guaranteed here: (a) ids are
//! handed out strictly in insertion order, so an external router that counts
//! a shard's inserts predicts the shard's next local id exactly; (b) deletes
//! preserve the relative order of the surviving rows, so shard-local row
//! order is always a subsequence of the order the shard *inserted* them in.
//! Update streams keep scripting deletes against *global* ids; translation
//! to shard-local ids is the router's job, never the generator's.
//!
//! **Block migration.** Elastic sharding (`ShardedEngine::rebalance`) moves
//! a whole block between shards by deleting its rows from the source
//! relation and re-inserting them on the target **in export order**
//! (ascending source-local id), where they take fresh ascending local ids
//! from the target's sequence — local ids are never recycled or
//! transplanted across id spaces.  Migration therefore weakens the global
//! picture from "every shard is a subsequence of global insertion order" to
//! a per-block guarantee: *within one block*, local id order always equals
//! the rows' global id order (imports preserve export order, and routing
//! sends every row of a block to the same shard), which is exactly what the
//! sharded snapshot merge needs to reassemble blocks order-preservingly.
//! The local→global remapping for migrated rows stays where it always was:
//! in the router, never in this crate.

use crate::relation::Relation;
use relacc_model::{SchemaError, SchemaRef, Tuple, Value};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

/// A relation generation: 0 for the seed state, +1 per applied update batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Generation(pub u64);

/// A stable row identity (see the row-id contract in the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RowId(pub u64);

impl fmt::Display for RowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for Generation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// One live row of a [`VersionedRelation`].
#[derive(Debug, Clone, PartialEq)]
pub struct VersionedRow {
    /// The row's stable identity.
    pub id: RowId,
    /// Generation the row was inserted at.
    pub inserted_at: Generation,
    /// The row's values.
    pub tuple: Tuple,
}

/// A typed batch of inserts and deletes against one catalog entry.
///
/// Within a batch, **deletes apply before inserts**: a batch can therefore
/// never delete a row it inserts itself, and the ids of its inserts are
/// assigned after all removals.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct UpdateBatch {
    /// Name of the target relation (a [`VersionedCatalog`] entry).
    pub relation: String,
    /// Rows to insert (validated against the relation schema on apply).
    pub inserts: Vec<Vec<Value>>,
    /// Ids of the rows to delete.
    pub deletes: Vec<RowId>,
}

impl UpdateBatch {
    /// An empty batch against the named relation.
    pub fn new(relation: impl Into<String>) -> Self {
        UpdateBatch {
            relation: relation.into(),
            inserts: Vec::new(),
            deletes: Vec::new(),
        }
    }

    /// Add an insert (builder style).
    pub fn insert(mut self, row: Vec<Value>) -> Self {
        self.inserts.push(row);
        self
    }

    /// Add a delete (builder style).
    pub fn delete(mut self, id: RowId) -> Self {
        self.deletes.push(id);
        self
    }

    /// True when the batch changes nothing.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }

    /// Number of operations in the batch.
    pub fn len(&self) -> usize {
        self.inserts.len() + self.deletes.len()
    }
}

/// What an applied [`UpdateBatch`] actually did.
#[derive(Debug, Clone, PartialEq)]
pub struct AppliedUpdate {
    /// The relation generation after the batch.
    pub generation: Generation,
    /// Ids assigned to the batch's inserts, in insert order.
    pub inserted: Vec<RowId>,
    /// The removed rows (id + former values), in the batch's delete order.
    pub deleted: Vec<(RowId, Tuple)>,
}

/// Errors raised by versioned-relation operations.
#[derive(Debug)]
pub enum UpdateError {
    /// The batch names a relation the catalog does not hold.
    NoSuchRelation(String),
    /// A delete names a row id that is not live (never existed, already
    /// deleted, or deleted twice within the batch).
    NoSuchRow(RowId),
    /// An insert does not conform to the relation schema.
    Schema(SchemaError),
}

impl fmt::Display for UpdateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UpdateError::NoSuchRelation(name) => write!(f, "relation {name:?} not found"),
            UpdateError::NoSuchRow(id) => write!(f, "row {id} is not live"),
            UpdateError::Schema(e) => write!(f, "insert rejected by the schema: {e}"),
        }
    }
}

impl std::error::Error for UpdateError {}

impl From<SchemaError> for UpdateError {
    fn from(e: SchemaError) -> Self {
        UpdateError::Schema(e)
    }
}

/// Validate an [`UpdateBatch`] without applying it: deletes first (liveness
/// via `is_live`, plus intra-batch duplicates), then insert rows against the
/// schema.  Returns the delete set on success.
///
/// This is the **single** validation prologue of batch application — shared
/// by [`VersionedRelation::apply`] and by routers that split batches across
/// several relations (the engine's `ShardedEngine`), so "a sharded deployment
/// rejects exactly what a single relation rejects, with the same error" holds
/// by construction rather than by keeping two copies in sync.
pub fn validate_batch(
    schema: &SchemaRef,
    mut is_live: impl FnMut(RowId) -> bool,
    batch: &UpdateBatch,
) -> Result<HashSet<RowId>, UpdateError> {
    let mut doomed: HashSet<RowId> = HashSet::with_capacity(batch.deletes.len());
    for &id in &batch.deletes {
        if !doomed.insert(id) || !is_live(id) {
            return Err(UpdateError::NoSuchRow(id));
        }
    }
    for row in &batch.inserts {
        schema.validate_row(row)?;
    }
    Ok(doomed)
}

/// A pinned, immutable view of a [`VersionedRelation`]'s rows at one
/// generation — the storage half of an engine *epoch*.
///
/// The handle is a cheap `Arc` clone of the relation's row vector: holding
/// one never blocks subsequent [`VersionedRelation::apply`] calls (the
/// relation copies on write when its rows are shared), and the pinned rows
/// never change underneath the holder.  Rows are in insertion order, which
/// by the row-id contract is ascending [`RowId`] order, so
/// [`RelationEpoch::row`] resolves an id by binary search — O(log n) with no
/// side index to pin.
#[derive(Debug, Clone)]
pub struct RelationEpoch {
    schema: SchemaRef,
    generation: Generation,
    rows: Arc<Vec<VersionedRow>>,
}

impl RelationEpoch {
    /// The relation schema.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// The generation this epoch pins.
    pub fn generation(&self) -> Generation {
        self.generation
    }

    /// The pinned live rows in insertion (= ascending id) order.
    pub fn rows(&self) -> &[VersionedRow] {
        &self.rows
    }

    /// Number of pinned rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the epoch pins no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The pinned row with the given id, if it was live at this epoch
    /// (binary search over the ascending-id row order).
    pub fn row(&self, id: RowId) -> Option<&VersionedRow> {
        self.rows
            .binary_search_by_key(&id, |r| r.id)
            .ok()
            .map(|pos| &self.rows[pos])
    }
}

/// A relation with stable row ids and per-tuple generation stamps.
///
/// Id lookups go through a maintained position index, so [`VersionedRelation::row`]
/// and delete validation stay O(1) per id regardless of relation size (the
/// index is rebuilt once per batch after deletes shift positions).
///
/// Rows are held behind an [`Arc`] so [`VersionedRelation::epoch`] can hand
/// out immutable pinned views for free; [`VersionedRelation::apply`] copies
/// the row vector on write only while an epoch actually pins it.
#[derive(Debug, Clone)]
pub struct VersionedRelation {
    schema: SchemaRef,
    /// Live rows in insertion order (deletes preserve relative order).
    rows: Arc<Vec<VersionedRow>>,
    /// Position of every live row id in `rows`.
    by_id: HashMap<RowId, usize>,
    generation: Generation,
    next_row: u64,
}

impl PartialEq for VersionedRelation {
    fn eq(&self, other: &Self) -> bool {
        // `by_id` is derived from `rows`
        self.schema == other.schema
            && self.rows == other.rows
            && self.generation == other.generation
            && self.next_row == other.next_row
    }
}

impl VersionedRelation {
    /// An empty versioned relation at generation 0.
    pub fn new(schema: SchemaRef) -> Self {
        VersionedRelation {
            schema,
            rows: Arc::new(Vec::new()),
            by_id: HashMap::new(),
            generation: Generation(0),
            next_row: 0,
        }
    }

    /// Wrap an existing relation: its rows become generation-0 rows with ids
    /// `0..n` in row order.
    pub fn from_relation(relation: &Relation) -> Self {
        let rows = relation
            .rows()
            .iter()
            .enumerate()
            .map(|(i, t)| VersionedRow {
                id: RowId(i as u64),
                inserted_at: Generation(0),
                tuple: t.clone(),
            })
            .collect::<Vec<_>>();
        VersionedRelation {
            schema: relation.schema().clone(),
            next_row: rows.len() as u64,
            by_id: rows.iter().enumerate().map(|(i, r)| (r.id, i)).collect(),
            rows: Arc::new(rows),
            generation: Generation(0),
        }
    }

    /// The relation schema.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// The current generation (0 = seed, +1 per applied batch).
    pub fn generation(&self) -> Generation {
        self.generation
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows are live.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The live rows in insertion order.
    pub fn rows(&self) -> &[VersionedRow] {
        &self.rows
    }

    /// The live row with the given id, if any (O(1) via the position index).
    pub fn row(&self, id: RowId) -> Option<&VersionedRow> {
        self.by_id.get(&id).map(|&pos| &self.rows[pos])
    }

    /// Pin the current rows as an immutable [`RelationEpoch`].
    ///
    /// O(1): the handle shares the row vector; a later [`Self::apply`]
    /// copies on write instead of mutating what the epoch pinned.
    pub fn epoch(&self) -> RelationEpoch {
        RelationEpoch {
            schema: self.schema.clone(),
            generation: self.generation,
            rows: Arc::clone(&self.rows),
        }
    }

    /// The current state as a plain [`Relation`] (live rows in insertion
    /// order) — the view the batch pipeline repairs.
    pub fn snapshot(&self) -> Relation {
        let mut out = Relation::new(self.schema.clone());
        for row in self.rows.iter() {
            out.push_row(row.tuple.values().to_vec())
                .expect("live rows were validated on insert");
        }
        out
    }

    /// Apply a batch of deletes-then-inserts, advancing the generation.
    ///
    /// The batch's `relation` name is **not** checked here (that is the
    /// [`VersionedCatalog`]'s job); only its operations are.  On any error
    /// the relation is left exactly as it was — batches apply atomically.
    pub fn apply(&mut self, batch: &UpdateBatch) -> Result<AppliedUpdate, UpdateError> {
        // validate everything before mutating
        let doomed = validate_batch(&self.schema, |id| self.by_id.contains_key(&id), batch)?;

        let mut deleted = Vec::with_capacity(batch.deletes.len());
        if !batch.deletes.is_empty() {
            // copy-on-write: clones the vector only while an epoch pins it
            let rows = Arc::make_mut(&mut self.rows);
            let mut removed: BTreeMap<RowId, Tuple> = BTreeMap::new();
            rows.retain(|r| {
                if doomed.contains(&r.id) {
                    removed.insert(r.id, r.tuple.clone());
                    false
                } else {
                    true
                }
            });
            for &id in &batch.deletes {
                let tuple = removed.remove(&id).expect("validated as live above");
                deleted.push((id, tuple));
            }
            // deletes shifted positions: rebuild the index once per batch
            self.by_id = self
                .rows
                .iter()
                .enumerate()
                .map(|(i, r)| (r.id, i))
                .collect();
        }

        self.generation = Generation(self.generation.0 + 1);
        let mut inserted = Vec::with_capacity(batch.inserts.len());
        let rows = Arc::make_mut(&mut self.rows);
        for row in &batch.inserts {
            let id = RowId(self.next_row);
            self.next_row += 1;
            self.by_id.insert(id, rows.len());
            rows.push(VersionedRow {
                id,
                inserted_at: self.generation,
                tuple: Tuple::new(row.clone()),
            });
            inserted.push(id);
        }
        Ok(AppliedUpdate {
            generation: self.generation,
            inserted,
            deleted,
        })
    }
}

/// A named collection of versioned relations that routes [`UpdateBatch`]es.
#[derive(Debug, Default, Clone)]
pub struct VersionedCatalog {
    relations: BTreeMap<String, VersionedRelation>,
}

impl VersionedCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        VersionedCatalog::default()
    }

    /// Register (or replace) a relation under `name`.
    pub fn register(&mut self, name: impl Into<String>, relation: VersionedRelation) {
        self.relations.insert(name.into(), relation);
    }

    /// Get a relation by name.
    pub fn get(&self, name: &str) -> Result<&VersionedRelation, UpdateError> {
        self.relations
            .get(name)
            .ok_or_else(|| UpdateError::NoSuchRelation(name.to_string()))
    }

    /// Names of all registered relations (sorted).
    pub fn names(&self) -> Vec<&str> {
        self.relations.keys().map(String::as_str).collect()
    }

    /// Number of registered relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// True if the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Apply a batch to the relation it names.
    pub fn apply(&mut self, batch: &UpdateBatch) -> Result<AppliedUpdate, UpdateError> {
        let relation = self
            .relations
            .get_mut(&batch.relation)
            .ok_or_else(|| UpdateError::NoSuchRelation(batch.relation.clone()))?;
        relation.apply(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::relation_of;
    use relacc_model::DataType;

    fn seed() -> Relation {
        relation_of(
            "r",
            vec![("name", DataType::Text), ("n", DataType::Int)],
            vec![
                vec![Value::text("a"), Value::Int(1)],
                vec![Value::text("b"), Value::Int(2)],
                vec![Value::text("c"), Value::Int(3)],
            ],
        )
    }

    #[test]
    fn from_relation_stamps_sequential_ids_at_generation_zero() {
        let v = VersionedRelation::from_relation(&seed());
        assert_eq!(v.len(), 3);
        assert_eq!(v.generation(), Generation(0));
        for (i, row) in v.rows().iter().enumerate() {
            assert_eq!(row.id, RowId(i as u64));
            assert_eq!(row.inserted_at, Generation(0));
        }
        assert_eq!(v.snapshot().rows(), seed().rows());
    }

    #[test]
    fn apply_deletes_then_inserts_and_advances_the_generation() {
        let mut v = VersionedRelation::from_relation(&seed());
        let batch = UpdateBatch::new("r")
            .delete(RowId(1))
            .insert(vec![Value::text("d"), Value::Int(4)])
            .insert(vec![Value::text("e"), Value::Int(5)]);
        let applied = v.apply(&batch).unwrap();
        assert_eq!(applied.generation, Generation(1));
        assert_eq!(applied.inserted, vec![RowId(3), RowId(4)]);
        assert_eq!(applied.deleted.len(), 1);
        assert_eq!(applied.deleted[0].0, RowId(1));
        assert_eq!(
            applied.deleted[0].1.value(relacc_model::AttrId(1)),
            &Value::Int(2)
        );
        // survivors keep relative order, inserts append, stamps record the batch
        let ids: Vec<RowId> = v.rows().iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![RowId(0), RowId(2), RowId(3), RowId(4)]);
        assert_eq!(v.row(RowId(3)).unwrap().inserted_at, Generation(1));
        assert_eq!(v.row(RowId(0)).unwrap().inserted_at, Generation(0));
        assert!(v.row(RowId(1)).is_none());
    }

    #[test]
    fn apply_is_atomic_on_errors() {
        let mut v = VersionedRelation::from_relation(&seed());
        let before = v.clone();
        // unknown delete id
        let bad = UpdateBatch::new("r")
            .insert(vec![Value::text("d"), Value::Int(4)])
            .delete(RowId(99));
        assert!(matches!(v.apply(&bad), Err(UpdateError::NoSuchRow(_))));
        assert_eq!(v, before);
        // duplicate delete within one batch
        let dup = UpdateBatch::new("r").delete(RowId(0)).delete(RowId(0));
        assert!(matches!(v.apply(&dup), Err(UpdateError::NoSuchRow(_))));
        assert_eq!(v, before);
        // schema-invalid insert
        let invalid = UpdateBatch::new("r").insert(vec![Value::Int(7), Value::Int(8)]);
        assert!(matches!(v.apply(&invalid), Err(UpdateError::Schema(_))));
        assert_eq!(v, before);
    }

    #[test]
    fn deleted_ids_are_never_reused() {
        let mut v = VersionedRelation::from_relation(&seed());
        v.apply(&UpdateBatch::new("r").delete(RowId(2))).unwrap();
        let applied = v
            .apply(&UpdateBatch::new("r").insert(vec![Value::text("d"), Value::Int(4)]))
            .unwrap();
        assert_eq!(applied.inserted, vec![RowId(3)]);
        assert_eq!(v.generation(), Generation(2));
    }

    #[test]
    fn epochs_pin_rows_across_later_batches() {
        let mut v = VersionedRelation::from_relation(&seed());
        let pinned = v.epoch();
        assert_eq!(pinned.generation(), Generation(0));
        assert_eq!(pinned.len(), 3);

        // mutate the relation underneath the pin: the epoch must not move
        v.apply(
            &UpdateBatch::new("r")
                .delete(RowId(1))
                .insert(vec![Value::text("d"), Value::Int(4)]),
        )
        .unwrap();
        assert_eq!(pinned.len(), 3, "pinned rows are immutable");
        assert_eq!(
            pinned.row(RowId(1)).unwrap().tuple.values()[1],
            Value::Int(2)
        );
        assert!(pinned.row(RowId(3)).is_none(), "insert is after the pin");

        // a fresh epoch sees the new state; id lookups binary-search the
        // ascending-id row order
        let now = v.epoch();
        assert_eq!(now.generation(), Generation(1));
        assert!(now.row(RowId(1)).is_none());
        assert_eq!(now.row(RowId(3)).unwrap().inserted_at, Generation(1));
        assert_eq!(now.rows().len(), v.rows().len());
        assert!(now.row(RowId(99)).is_none());
    }

    #[test]
    fn catalog_routes_batches_by_name() {
        let mut cat = VersionedCatalog::new();
        cat.register("r", VersionedRelation::from_relation(&seed()));
        let applied = cat
            .apply(&UpdateBatch::new("r").insert(vec![Value::text("d"), Value::Int(4)]))
            .unwrap();
        assert_eq!(applied.inserted, vec![RowId(3)]);
        assert_eq!(cat.get("r").unwrap().len(), 4);
        assert!(matches!(
            cat.apply(&UpdateBatch::new("nope")),
            Err(UpdateError::NoSuchRelation(_))
        ));
        assert!(matches!(
            cat.get("nope"),
            Err(UpdateError::NoSuchRelation(_))
        ));
        assert_eq!(cat.names(), vec!["r"]);
        assert!(!cat.is_empty());
        assert_eq!(cat.len(), 1);
    }
}
