//! A tiny named catalog of relations.
//!
//! The experiment harness keeps every workload's relations (the dirty entity
//! relation, the master relation, ground truth, per-source snapshots) in one
//! [`Catalog`], so datasets can be saved to / reloaded from a directory of CSV
//! files and inspected uniformly.

use crate::csv;
use crate::relation::Relation;
use relacc_model::SchemaRef;
use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

/// A named collection of relations.
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    relations: BTreeMap<String, Relation>,
}

/// Errors raised by catalog operations.
#[derive(Debug)]
pub enum CatalogError {
    /// A relation with this name is already registered.
    AlreadyExists(String),
    /// No relation with this name is registered.
    NotFound(String),
    /// An I/O error while loading or saving CSV files.
    Io(std::io::Error),
    /// A CSV parse error while loading.
    Csv(String, csv::CsvError),
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::AlreadyExists(n) => write!(f, "relation {n:?} already exists"),
            CatalogError::NotFound(n) => write!(f, "relation {n:?} not found"),
            CatalogError::Io(e) => write!(f, "I/O error: {e}"),
            CatalogError::Csv(name, e) => write!(f, "CSV error in {name:?}: {e}"),
        }
    }
}

impl std::error::Error for CatalogError {}

impl From<std::io::Error> for CatalogError {
    fn from(e: std::io::Error) -> Self {
        CatalogError::Io(e)
    }
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register a relation under `name`.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        relation: Relation,
    ) -> Result<(), CatalogError> {
        let name = name.into();
        if self.relations.contains_key(&name) {
            return Err(CatalogError::AlreadyExists(name));
        }
        self.relations.insert(name, relation);
        Ok(())
    }

    /// Replace (or insert) a relation under `name`.
    pub fn replace(&mut self, name: impl Into<String>, relation: Relation) {
        self.relations.insert(name.into(), relation);
    }

    /// Get a relation by name.
    pub fn get(&self, name: &str) -> Result<&Relation, CatalogError> {
        self.relations
            .get(name)
            .ok_or_else(|| CatalogError::NotFound(name.to_string()))
    }

    /// Remove a relation by name, returning it.
    pub fn drop_relation(&mut self, name: &str) -> Result<Relation, CatalogError> {
        self.relations
            .remove(name)
            .ok_or_else(|| CatalogError::NotFound(name.to_string()))
    }

    /// Names of all registered relations (sorted).
    pub fn names(&self) -> Vec<&str> {
        self.relations.keys().map(String::as_str).collect()
    }

    /// Number of registered relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// True if the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Write every relation to `<dir>/<name>.csv`.
    pub fn save_to_dir(&self, dir: &Path) -> Result<(), CatalogError> {
        std::fs::create_dir_all(dir)?;
        for (name, relation) in &self.relations {
            let path = dir.join(format!("{name}.csv"));
            std::fs::write(path, csv::to_csv(relation))?;
        }
        Ok(())
    }

    /// Load a single relation from `<dir>/<name>.csv` with the given schema and
    /// register it.
    pub fn load_csv(
        &mut self,
        dir: &Path,
        name: &str,
        schema: SchemaRef,
    ) -> Result<(), CatalogError> {
        let path = dir.join(format!("{name}.csv"));
        let text = std::fs::read_to_string(path)?;
        let relation =
            csv::from_csv(schema, &text).map_err(|e| CatalogError::Csv(name.to_string(), e))?;
        self.replace(name, relation);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::relation_of;
    use relacc_model::{DataType, Value};

    fn tiny() -> Relation {
        relation_of(
            "r",
            vec![("a", DataType::Int), ("b", DataType::Text)],
            vec![
                vec![Value::Int(1), Value::text("x")],
                vec![Value::Int(2), Value::Null],
            ],
        )
    }

    #[test]
    fn register_get_drop() {
        let mut cat = Catalog::new();
        cat.register("r", tiny()).unwrap();
        assert!(matches!(
            cat.register("r", tiny()),
            Err(CatalogError::AlreadyExists(_))
        ));
        assert_eq!(cat.get("r").unwrap().len(), 2);
        assert!(matches!(cat.get("s"), Err(CatalogError::NotFound(_))));
        assert_eq!(cat.names(), vec!["r"]);
        let dropped = cat.drop_relation("r").unwrap();
        assert_eq!(dropped.len(), 2);
        assert!(cat.is_empty());
    }

    #[test]
    fn save_and_reload_round_trip() {
        let dir = std::env::temp_dir().join(format!("relacc_store_test_{}", std::process::id()));
        let mut cat = Catalog::new();
        let r = tiny();
        let schema = r.schema().clone();
        cat.register("tiny", r).unwrap();
        cat.save_to_dir(&dir).unwrap();

        let mut reloaded = Catalog::new();
        reloaded.load_csv(&dir, "tiny", schema).unwrap();
        assert_eq!(reloaded.get("tiny").unwrap().len(), 2);
        assert_eq!(reloaded.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let mut cat = Catalog::new();
        let schema = tiny().schema().clone();
        let err = cat
            .load_csv(Path::new("/nonexistent-relacc-dir"), "nope", schema)
            .unwrap_err();
        assert!(matches!(err, CatalogError::Io(_)));
    }
}
