//! Typed in-memory relations.
//!
//! A [`Relation`] is a bag of rows conforming to a [`Schema`].  The experiments
//! of the paper operate on relations that are later split into per-entity
//! instances (`stat`, `Med`, `CFP`, `Rest` snapshots) or loaded as master data
//! (`nba`, reference data); this module provides the minimal relational
//! operations those workloads need — filter, project, group-by, sort and
//! distinct counting — without pulling in a full query engine.

use relacc_model::{
    AttrId, EntityInstance, MasterRelation, Schema, SchemaError, SchemaRef, Tuple, Value,
};
use std::collections::HashMap;
use std::sync::Arc;

/// A typed, in-memory relation (bag semantics).
#[derive(Debug, Clone, PartialEq)]
pub struct Relation {
    schema: SchemaRef,
    rows: Vec<Tuple>,
}

impl Relation {
    /// Create an empty relation over `schema`.
    pub fn new(schema: SchemaRef) -> Self {
        Relation {
            schema,
            rows: Vec::new(),
        }
    }

    /// Create a relation from rows, validating each against the schema.
    pub fn from_rows(schema: SchemaRef, rows: Vec<Vec<Value>>) -> Result<Self, SchemaError> {
        let mut r = Relation::new(schema);
        for row in rows {
            r.push_row(row)?;
        }
        Ok(r)
    }

    /// The relation's schema.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Append a row after validating it.
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<(), SchemaError> {
        self.schema.validate_row(&row)?;
        self.rows.push(Tuple::new(row));
        Ok(())
    }

    /// All rows.
    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    /// The row at `idx`.
    pub fn row(&self, idx: usize) -> &Tuple {
        &self.rows[idx]
    }

    /// Rows satisfying `pred`, as a new relation over the same schema.
    pub fn select<F>(&self, pred: F) -> Relation
    where
        F: Fn(&Tuple) -> bool,
    {
        Relation {
            schema: self.schema.clone(),
            rows: self.rows.iter().filter(|t| pred(t)).cloned().collect(),
        }
    }

    /// Project onto the named attributes, producing a relation with a derived
    /// schema (attribute order follows `attrs`).
    pub fn project(&self, attrs: &[&str]) -> Result<Relation, ProjectError> {
        let mut ids = Vec::with_capacity(attrs.len());
        let mut builder = Schema::builder(format!("{}_proj", self.schema.name()));
        for &name in attrs {
            let id = self
                .schema
                .attr_id(name)
                .ok_or_else(|| ProjectError::UnknownAttribute(name.to_string()))?;
            ids.push(id);
            builder = builder.attr(name, self.schema.attr_type(id));
        }
        let schema = builder.build();
        let rows = self
            .rows
            .iter()
            .map(|t| Tuple::new(ids.iter().map(|&a| t.value(a).clone()).collect()))
            .collect();
        Ok(Relation { schema, rows })
    }

    /// Group rows by the values of `key` attributes, returning the groups in
    /// first-seen key order.
    pub fn group_by(&self, key: &[AttrId]) -> Vec<(Vec<Value>, Vec<&Tuple>)> {
        let mut index: HashMap<Vec<Value>, usize> = HashMap::new();
        let mut groups: Vec<(Vec<Value>, Vec<&Tuple>)> = Vec::new();
        for t in &self.rows {
            let k: Vec<Value> = key.iter().map(|&a| t.value(a).clone()).collect();
            match index.get(&k) {
                Some(&g) => groups[g].1.push(t),
                None => {
                    index.insert(k.clone(), groups.len());
                    groups.push((k, vec![t]));
                }
            }
        }
        groups
    }

    /// Distinct non-null values of a column with their occurrence counts.
    pub fn value_counts(&self, a: AttrId) -> HashMap<Value, usize> {
        let mut counts = HashMap::new();
        for t in &self.rows {
            let v = t.value(a);
            if !v.is_null() {
                *counts.entry(v.clone()).or_insert(0usize) += 1;
            }
        }
        counts
    }

    /// Fraction of null cells over the whole relation (a data-quality summary
    /// used by the generators' self-checks).
    pub fn null_fraction(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        let cells = self.rows.len() * self.schema.arity();
        let nulls: usize = self
            .rows
            .iter()
            .map(|t| t.values().iter().filter(|v| v.is_null()).count())
            .sum();
        nulls as f64 / cells as f64
    }

    /// Sort rows by a key extracted from each tuple (stable).
    pub fn sort_by_key<K: Ord, F>(&mut self, f: F)
    where
        F: Fn(&Tuple) -> K,
    {
        self.rows.sort_by_key(|t| f(t));
    }

    /// Convert this relation into an [`EntityInstance`] (all rows are assumed
    /// to describe one entity — the caller has already grouped them).
    pub fn to_entity_instance(&self) -> EntityInstance {
        let mut ie = EntityInstance::new(self.schema.clone());
        for t in &self.rows {
            ie.push_tuple(t.clone()).expect("rows already validated");
        }
        ie
    }

    /// Convert this relation into a [`MasterRelation`].
    pub fn to_master_relation(&self) -> MasterRelation {
        let mut im = MasterRelation::new(self.schema.clone());
        for t in &self.rows {
            im.push_row(t.values().to_vec())
                .expect("rows already validated");
        }
        im
    }

    /// Split the relation into one [`EntityInstance`] per distinct value of the
    /// `entity_key` attributes, in first-seen order.  This mirrors the paper's
    /// assumption that entity resolution has already grouped tuples.
    pub fn split_entities(&self, entity_key: &[AttrId]) -> Vec<(Vec<Value>, EntityInstance)> {
        self.group_by(entity_key)
            .into_iter()
            .map(|(key, tuples)| {
                let mut ie = EntityInstance::new(self.schema.clone());
                for t in tuples {
                    ie.push_tuple(t.clone()).expect("rows already validated");
                }
                (key, ie)
            })
            .collect()
    }
}

/// Error from [`Relation::project`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProjectError {
    /// The named attribute does not exist in the schema.
    UnknownAttribute(String),
}

impl std::fmt::Display for ProjectError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProjectError::UnknownAttribute(name) => write!(f, "unknown attribute {name:?}"),
        }
    }
}

impl std::error::Error for ProjectError {}

/// Convenience: build a relation schema and rows in one call (used by tests).
pub fn relation_of(
    name: &str,
    attrs: Vec<(&str, relacc_model::DataType)>,
    rows: Vec<Vec<Value>>,
) -> Relation {
    let mut builder = Schema::builder(name);
    for (n, ty) in attrs {
        builder = builder.attr(n, ty);
    }
    let schema: SchemaRef = builder.build();
    Relation::from_rows(Arc::clone(&schema), rows).expect("rows conform to schema")
}

#[cfg(test)]
mod tests {
    use super::*;
    use relacc_model::DataType;

    fn people() -> Relation {
        relation_of(
            "people",
            vec![
                ("name", DataType::Text),
                ("team", DataType::Text),
                ("pts", DataType::Int),
            ],
            vec![
                vec![Value::text("mj"), Value::text("bulls"), Value::Int(772)],
                vec![Value::text("sp"), Value::text("bulls"), Value::Int(500)],
                vec![Value::text("mj"), Value::text("barons"), Value::Int(51)],
                vec![Value::text("xx"), Value::text("bulls"), Value::Null],
            ],
        )
    }

    #[test]
    fn select_and_project() {
        let r = people();
        let bulls = r.select(|t| t.value(AttrId(1)).same(&Value::text("bulls")));
        assert_eq!(bulls.len(), 3);
        let proj = bulls.project(&["name", "pts"]).unwrap();
        assert_eq!(proj.schema().arity(), 2);
        assert_eq!(proj.row(0).value(AttrId(0)), &Value::text("mj"));
        assert!(r.project(&["nope"]).is_err());
    }

    #[test]
    fn group_by_and_counts() {
        let r = people();
        let groups = r.group_by(&[AttrId(0)]);
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0].0, vec![Value::text("mj")]);
        assert_eq!(groups[0].1.len(), 2);
        let counts = r.value_counts(AttrId(1));
        assert_eq!(counts[&Value::text("bulls")], 3);
        assert_eq!(counts[&Value::text("barons")], 1);
    }

    #[test]
    fn null_fraction_counts_cells() {
        let r = people();
        assert!((r.null_fraction() - 1.0 / 12.0).abs() < 1e-12);
        let empty = Relation::new(r.schema().clone());
        assert_eq!(empty.null_fraction(), 0.0);
        assert!(empty.is_empty());
    }

    #[test]
    fn split_entities_by_key() {
        let r = people();
        let entities = r.split_entities(&[AttrId(0)]);
        assert_eq!(entities.len(), 3);
        let (key, ie) = &entities[0];
        assert_eq!(key, &vec![Value::text("mj")]);
        assert_eq!(ie.len(), 2);
    }

    #[test]
    fn conversions_to_model_types() {
        let r = people();
        let ie = r.to_entity_instance();
        assert_eq!(ie.len(), 4);
        let im = r.to_master_relation();
        assert_eq!(im.len(), 4);
    }

    #[test]
    fn sort_by_key_orders_rows() {
        let mut r = people();
        r.sort_by_key(|t| match t.value(AttrId(2)) {
            Value::Int(i) => *i,
            _ => i64::MIN,
        });
        assert_eq!(r.row(0).value(AttrId(0)), &Value::text("xx"));
        assert_eq!(r.row(3).value(AttrId(2)), &Value::Int(772));
    }

    #[test]
    fn push_row_validates() {
        let mut r = people();
        assert!(r
            .push_row(vec![
                Value::text("a"),
                Value::text("b"),
                Value::text("oops")
            ])
            .is_err());
        assert!(r
            .push_row(vec![Value::text("a"), Value::text("b"), Value::Int(1)])
            .is_ok());
    }
}
