//! # relacc-store
//!
//! A lightweight in-memory relational store: the substrate that holds the
//! workloads of the paper's experiments before they are turned into entity
//! instances and master relations.
//!
//! * [`Relation`] — typed rows over a [`relacc_model::Schema`] with selection,
//!   projection, group-by, entity splitting and conversion helpers;
//! * [`csv`] — CSV serialization (writer/reader are exact inverses);
//! * [`Catalog`] — a named collection of relations that can be saved to and
//!   loaded from a directory of CSV files;
//! * [`versioned`] — relations with stable row ids and per-tuple generation
//!   stamps, plus the typed [`UpdateBatch`] the incremental-repair pipeline
//!   consumes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod csv;
pub mod relation;
pub mod versioned;

pub use catalog::{Catalog, CatalogError};
pub use csv::{from_csv, to_csv, CsvError};
pub use relation::{relation_of, ProjectError, Relation};
pub use versioned::{
    validate_batch, AppliedUpdate, Generation, RelationEpoch, RowId, UpdateBatch, UpdateError,
    VersionedCatalog, VersionedRelation, VersionedRow,
};
