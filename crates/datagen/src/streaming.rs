//! Update-stream workloads: the input of the incremental-repair pipeline.
//!
//! The paper's experiments repair a corpus once; a served workload keeps
//! receiving data.  This module turns the `Med`-like and `Rest`-like corpora
//! into **streaming** workloads: a flattened dirty relation (every entity's
//! tuples tagged with its key attributes, so exact-key blocking reconstructs
//! the entities), the matching rules and master data, plus a deterministic
//! stream of [`StreamOp`]s — typed row batches
//! ([`relacc_store::UpdateBatch`]: inserts of new observations, deletes of
//! retracted ones) mixed with master-data appends (curated reference rows for
//! entities the master relation did not cover yet).
//!
//! The stream relies on the versioned-relation row-id contract (sequential
//! ids in insertion order, see [`relacc_store::versioned`]): the generator
//! simulates the same assignment, so its scripted deletes always name live
//! rows.  Everything is a pure function of the seed.

use crate::generator::Dataset;
use crate::rest::{rest, RestConfig};
use crate::workloads::med;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relacc_core::rules::RuleSet;
use relacc_model::{DataType, MasterRelation, Schema, Value};
use relacc_store::{Relation, RowId, UpdateBatch};

/// Configuration of an update stream.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Number of update batches.
    pub n_batches: usize,
    /// Row inserts per batch.
    pub inserts_per_batch: usize,
    /// Row deletes per batch.
    pub deletes_per_batch: usize,
    /// Master rows appended per batch (ignored for workloads without master
    /// data; stops when the pool of uncovered entities is exhausted).
    pub master_appends_per_batch: usize,
    /// Fraction of inserts that open a brand-new entity instead of extending
    /// an existing one.
    pub fresh_entity_rate: f64,
    /// Skew: fraction of operations steered at the **hot set** (the blocks of
    /// the first [`StreamConfig::hot_entities`] distinct key values).  A hot
    /// insert clones a hot-set row (same entity key, so the same block — and
    /// under sharding the same shard); a hot delete removes a live hot-set
    /// row.  `0.0` (the default) disables the skew entirely and leaves the
    /// scripted stream byte-identical to the pre-skew generator: no RNG draw
    /// is spent on the hot/cold decision.
    pub hot_entity_rate: f64,
    /// Number of distinct leading key values that form the hot set (ignored
    /// while [`StreamConfig::hot_entity_rate`] is `0.0`).
    pub hot_entities: usize,
    /// Rotate the hot set every this many batches
    /// ([`StreamConfig::with_hot_drift`]): batch `b` steers its hot
    /// operations at window `b / period` of the seed's distinct key values
    /// (wrapping), so the hot blocks *move* mid-stream — the workload an
    /// online rebalancer has to chase.  `0` (the default) disables the
    /// drift: the hot set is fixed for the whole stream and the scripted
    /// ops are byte-identical to the drift-free generator (the rotation
    /// spends no RNG draws).  Ignored while the hot mix itself is disabled.
    pub hot_drift_period: usize,
    /// Point reads scripted after each row batch ([`UpdateStream::reads`]):
    /// row ids sampled from the rows live right after the batch applies.
    /// Scripted from a **separate** RNG, so any value — including the
    /// default `0` — leaves the update ops byte-identical.
    pub reads_per_batch: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            n_batches: 8,
            inserts_per_batch: 4,
            deletes_per_batch: 2,
            master_appends_per_batch: 1,
            fresh_entity_rate: 0.25,
            hot_entity_rate: 0.0,
            hot_entities: 0,
            hot_drift_period: 0,
            reads_per_batch: 0,
            seed: 17,
        }
    }
}

impl StreamConfig {
    /// Steer `rate` of the operations at the blocks of the first
    /// `hot_entities` distinct key values (builder style) — the hot-shard
    /// skew mix of the sharded-repair benchmarks: under key-hash sharding
    /// the hot blocks pin to a fixed small set of shards, so most batches
    /// leave the other shards completely untouched.
    pub fn with_hot_mix(mut self, hot_entities: usize, rate: f64) -> Self {
        self.hot_entities = hot_entities;
        self.hot_entity_rate = rate;
        self
    }

    /// Rotate the hot set every `period` batches (builder style) — the
    /// drifting-hot-spot workload of the elastic-shards benchmark: a static
    /// placement keeps paying for yesterday's hot shard, while
    /// `ShardedEngine::rebalance_hot` chases the window.  A period of `0`
    /// disables the drift and leaves the scripted stream byte-identical to
    /// the fixed-hot-set generator.
    pub fn with_hot_drift(mut self, period: usize) -> Self {
        self.hot_drift_period = period;
        self
    }

    /// Script `reads` point reads after every row batch (builder style) —
    /// the read side of a mixed read/write serving workload.  The reads come
    /// from their own RNG, so the scripted update ops stay byte-identical to
    /// a read-free stream with the same seed.
    pub fn with_reads(mut self, reads: usize) -> Self {
        self.reads_per_batch = reads;
        self
    }
}

/// One operation of the stream, in application order.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamOp {
    /// A typed batch of row inserts + deletes against the dirty relation.
    Rows(UpdateBatch),
    /// Rows appended to the master relation (index 0 of the plan's masters).
    MasterAppend(Vec<Vec<Value>>),
}

/// A complete streaming workload: the seed state plus the scripted updates.
#[derive(Debug, Clone)]
pub struct UpdateStream {
    /// Catalog-entry name of the dirty relation (the one the batches address).
    pub name: String,
    /// The seed dirty relation (flattened, entity-key-tagged rows).
    pub relation: Relation,
    /// The seed master relation, when the workload has one.
    pub master: Option<MasterRelation>,
    /// The accuracy rules.
    pub rules: RuleSet,
    /// Attribute names resolution should match on (exact-key blocking over
    /// these reconstructs the generator's entities).
    pub match_attrs: Vec<String>,
    /// The scripted updates, in application order.
    pub ops: Vec<StreamOp>,
    /// Scripted point reads, one entry per [`StreamOp::Rows`] batch in
    /// stream order: row ids (sampled with replacement) that are live right
    /// after that batch applies — the read side of a mixed read/write
    /// serving workload.  Empty vectors when
    /// [`StreamConfig::reads_per_batch`] is `0`.
    pub reads: Vec<Vec<RowId>>,
}

impl UpdateStream {
    /// Number of row batches in the stream.
    pub fn row_batches(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, StreamOp::Rows(_)))
            .count()
    }

    /// Number of master appends in the stream.
    pub fn master_appends(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, StreamOp::MasterAppend(_)))
            .count()
    }
}

/// Script a stream over an already-flattened relation: per batch, deletes of
/// random live rows, inserts cloning (or re-keying) random seed rows, and —
/// when a pool of late-arriving master rows exists — master appends.
///
/// With a hot mix configured ([`StreamConfig::with_hot_mix`]) a
/// `hot_entity_rate` share of the deletes and inserts is steered at the hot
/// set's blocks instead, producing the hot-shard skew the sharded-repair
/// bench measures.  The skew path draws from the RNG only when enabled, so a
/// rate of `0.0` scripts exactly the legacy stream.
fn script_ops(
    name: &str,
    relation: &Relation,
    key_attr: relacc_model::AttrId,
    mut master_pool: Vec<Vec<Value>>,
    config: &StreamConfig,
) -> (Vec<StreamOp>, Vec<Vec<RowId>>) {
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5EED_57EA);
    // the read script draws from its own RNG so the update ops stay
    // byte-identical whether or not reads are requested
    let mut read_rng = StdRng::seed_from_u64(config.seed ^ 0x0BEE_F00D_5EED);
    let seed_rows: Vec<Vec<Value>> = relation
        .rows()
        .iter()
        .map(|t| t.values().to_vec())
        .collect();

    // the hot set: seed rows carrying the first `hot_entities` distinct key
    // values (their blocks — and under sharding their shards — are fixed)
    let skew = config.hot_entity_rate > 0.0 && config.hot_entities > 0;
    let mut hot_keys: Vec<&Value> = Vec::new();
    let mut hot_seed: Vec<usize> = Vec::new();
    if skew {
        for (idx, row) in seed_rows.iter().enumerate() {
            let key = &row[key_attr.0];
            if !hot_keys.iter().any(|k| k.same(key)) && hot_keys.len() < config.hot_entities {
                hot_keys.push(key);
            }
            if hot_keys.iter().any(|k| k.same(key)) {
                hot_seed.push(idx);
            }
        }
    }

    // the drift bookkeeping: the full distinct-key list the hot window
    // rotates over, each seed row's key index, and each live row's key
    // index.  All of it is RNG-free, so enabling the drift perturbs only
    // *which* pools the existing draws sample from — and a period of 0
    // touches nothing at all.
    let drift = skew && config.hot_drift_period > 0;
    let mut distinct_keys = 0usize;
    let mut key_of_seed: Vec<usize> = Vec::new();
    if drift {
        let mut keys: Vec<&Value> = Vec::new();
        for row in &seed_rows {
            let key = &row[key_attr.0];
            let idx = match keys.iter().position(|k| k.same(key)) {
                Some(i) => i,
                None => {
                    keys.push(key);
                    keys.len() - 1
                }
            };
            key_of_seed.push(idx);
        }
        distinct_keys = keys.len();
    }
    // key index of every simulated live row (`usize::MAX` = a stream-fresh
    // key, never hot); only maintained while drifting
    let mut key_ix: std::collections::HashMap<RowId, usize> = std::collections::HashMap::new();

    // simulate the versioned relation's id assignment, live ids split by
    // temperature (everything is "cold" while the skew is disabled)
    let mut hot_live: Vec<RowId> = Vec::new();
    let mut cold_live: Vec<RowId> = Vec::new();
    #[allow(clippy::needless_range_loop)] // `idx` is the row id and the key index at once
    for idx in 0..relation.len() {
        if skew && hot_seed.contains(&idx) {
            hot_live.push(RowId(idx as u64));
        } else {
            cold_live.push(RowId(idx as u64));
        }
        if drift {
            key_ix.insert(RowId(idx as u64), key_of_seed[idx]);
        }
    }
    let mut next_id = relation.len() as u64;
    let mut fresh_entities = 0usize;
    let mut current_window = 0usize;

    let mut ops = Vec::new();
    let mut reads: Vec<Vec<RowId>> = Vec::new();
    for batch_idx in 0..config.n_batches {
        // advance the hot window at a drift boundary: recompute the hot key
        // mask and seed pool, and repartition the live ids by their tracked
        // keys — window 0 is exactly the drift-free hot set, so the first
        // period of a drifting stream matches the fixed-set stream
        if drift {
            let window = batch_idx / config.hot_drift_period;
            if window != current_window {
                current_window = window;
                let mut hot_mask = vec![false; distinct_keys];
                for j in 0..config.hot_entities.min(distinct_keys) {
                    hot_mask[(window * config.hot_entities + j) % distinct_keys] = true;
                }
                hot_seed = (0..seed_rows.len())
                    .filter(|&idx| hot_mask[key_of_seed[idx]])
                    .collect();
                let all: Vec<RowId> = hot_live.drain(..).chain(cold_live.drain(..)).collect();
                for id in all {
                    let kx = key_ix[&id];
                    if kx != usize::MAX && hot_mask[kx] {
                        hot_live.push(id);
                    } else {
                        cold_live.push(id);
                    }
                }
            }
        }
        let mut batch = UpdateBatch::new(name);
        // deletes: sample live ids without replacement, keeping the relation
        // from draining (never drop below half the seed size)
        let floor = seed_rows.len() / 2;
        for _ in 0..config.deletes_per_batch {
            if hot_live.len() + cold_live.len() <= floor.max(1) {
                break;
            }
            let from_hot =
                skew && !hot_live.is_empty() && rng.gen::<f64>() < config.hot_entity_rate;
            let victim = if from_hot || cold_live.is_empty() {
                hot_live.swap_remove(rng.gen_range(0..hot_live.len()))
            } else {
                cold_live.swap_remove(rng.gen_range(0..cold_live.len()))
            };
            batch = batch.delete(victim);
        }
        // inserts: clone a hot-set row (skew) or a random seed row, the
        // latter sometimes re-keyed into a brand-new entity
        for _ in 0..config.inserts_per_batch {
            let is_hot = skew && !hot_seed.is_empty() && rng.gen::<f64>() < config.hot_entity_rate;
            let (row, kx) = if is_hot {
                let pick = hot_seed[rng.gen_range(0..hot_seed.len())];
                let kx = if drift { key_of_seed[pick] } else { 0 };
                (seed_rows[pick].clone(), kx)
            } else {
                let pick = rng.gen_range(0..seed_rows.len());
                let mut row = seed_rows[pick].clone();
                let mut kx = if drift { key_of_seed[pick] } else { 0 };
                if rng.gen::<f64>() < config.fresh_entity_rate {
                    fresh_entities += 1;
                    row[key_attr.0] = Value::text(format!("stream_fresh_{fresh_entities}"));
                    kx = usize::MAX;
                }
                (row, kx)
            };
            batch = batch.insert(row);
            let id = RowId(next_id);
            next_id += 1;
            if is_hot {
                hot_live.push(id);
            } else {
                cold_live.push(id);
            }
            if drift {
                key_ix.insert(id, kx);
            }
        }
        if !batch.is_empty() {
            ops.push(StreamOp::Rows(batch));
            // reads against the rows live right after this batch, sampled
            // with replacement from the simulated live-id set
            let mut sample = Vec::with_capacity(config.reads_per_batch);
            for _ in 0..config.reads_per_batch {
                let pick = read_rng.gen_range(0..hot_live.len() + cold_live.len());
                sample.push(if pick < hot_live.len() {
                    hot_live[pick]
                } else {
                    cold_live[pick - hot_live.len()]
                });
            }
            reads.push(sample);
        }
        if config.master_appends_per_batch > 0 && !master_pool.is_empty() {
            let take = config.master_appends_per_batch.min(master_pool.len());
            let rows: Vec<Vec<Value>> = master_pool.drain(..take).collect();
            ops.push(StreamOp::MasterAppend(rows));
        }
    }
    (ops, reads)
}

/// Flatten a generated dataset into one dirty relation (all entity tuples,
/// row order follows entity order) and collect the late-arriving master rows:
/// the ground-truth master tuples of the entities the seed master relation
/// does **not** cover, which is exactly the curated data a streaming master
/// feed would deliver.
fn flatten(data: &Dataset) -> (Relation, Vec<Vec<Value>>) {
    let mut relation = Relation::new(data.schema.clone());
    for entity in &data.entities {
        for tuple in entity.instance.tuples() {
            relation
                .push_row(tuple.values().to_vec())
                .expect("generated rows conform");
        }
    }
    let key_attrs: Vec<_> = data.master_schema.attr_ids().collect();
    let late_master: Vec<Vec<Value>> = data
        .entities
        .iter()
        .filter(|e| !e.in_master)
        .map(|e| {
            key_attrs
                .iter()
                .map(|a| {
                    let name = data.master_schema.attr_name(*a);
                    e.truth.value(data.schema.expect_attr(name)).clone()
                })
                .collect()
        })
        .collect();
    (relation, late_master)
}

/// The `Med`-shaped update stream: the scaled `Med` corpus flattened into a
/// dirty relation, its rules and (partial) master relation, and a scripted
/// insert/delete/master-append mix.  Master appends deliver the reference
/// rows of initially uncovered entities, so applying the stream makes more
/// entities completable over time.
pub fn med_stream(scale: f64, seed: u64, config: &StreamConfig) -> UpdateStream {
    let data = med(scale, seed);
    let (relation, late_master) = flatten(&data);
    let key_attr = data.schema.expect_attr("name");
    let (ops, reads) = script_ops("med", &relation, key_attr, late_master, config);
    UpdateStream {
        name: "med".into(),
        relation,
        master: Some(data.master.clone()),
        rules: data.rules.clone(),
        match_attrs: vec!["name".into()],
        ops,
        reads,
    }
}

/// The `Rest`-shaped update stream: every restaurant's listings tagged with
/// the restaurant name in an extra `rname` column (exact-key blocking over it
/// reconstructs the entities), the corpus currency rules, and a scripted
/// insert/delete mix.  The Rest workload has no master data, so its stream
/// contains no master appends.
pub fn rest_stream(scale: f64, seed: u64, config: &StreamConfig) -> UpdateStream {
    let data = rest(&RestConfig::scaled(scale, seed));
    let schema = Schema::builder("listing")
        .attr("source", DataType::Text)
        .attr("snapshot", DataType::Int)
        .attr("closed", DataType::Bool)
        .attr("rname", DataType::Text)
        .build();
    let mut relation = Relation::new(schema.clone());
    for restaurant in &data.restaurants {
        for tuple in restaurant.instance.tuples() {
            let mut row = tuple.values().to_vec();
            row.push(Value::text(restaurant.name.clone()));
            relation.push_row(row).expect("generated rows conform");
        }
    }
    let key_attr = schema.expect_attr("rname");
    let (ops, reads) = script_ops("rest", &relation, key_attr, Vec::new(), config);
    UpdateStream {
        name: "rest".into(),
        relation,
        master: None,
        rules: data.rules.clone(),
        match_attrs: vec!["rname".into()],
        ops,
        reads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn med_stream_is_deterministic_and_well_formed() {
        let config = StreamConfig::default();
        let a = med_stream(0.02, 5, &config);
        let b = med_stream(0.02, 5, &config);
        assert_eq!(a.relation.rows(), b.relation.rows());
        assert_eq!(a.ops, b.ops);
        assert_eq!(a.row_batches(), config.n_batches);
        assert!(a.master_appends() > 0);
        assert!(a.master.is_some());
        // every scripted insert conforms to the schema, every delete is
        // unique within its batch
        for op in &a.ops {
            if let StreamOp::Rows(batch) = op {
                assert_eq!(batch.relation, "med");
                for row in &batch.inserts {
                    a.relation.schema().validate_row(row).unwrap();
                }
                let mut seen = std::collections::HashSet::new();
                for id in &batch.deletes {
                    assert!(seen.insert(*id), "duplicate delete {id}");
                }
            }
        }
    }

    #[test]
    fn med_master_appends_conform_to_the_master_schema() {
        let stream = med_stream(0.02, 9, &StreamConfig::default());
        let master = stream.master.as_ref().unwrap();
        for op in &stream.ops {
            if let StreamOp::MasterAppend(rows) = op {
                for row in rows {
                    master.schema().validate_row(row).unwrap();
                }
            }
        }
    }

    #[test]
    fn scripted_deletes_replay_cleanly_on_a_versioned_relation() {
        use relacc_store::VersionedRelation;
        let stream = med_stream(0.02, 11, &StreamConfig::default());
        let mut versioned = VersionedRelation::from_relation(&stream.relation);
        for op in &stream.ops {
            if let StreamOp::Rows(batch) = op {
                versioned.apply(batch).expect("scripted batches stay valid");
            }
        }
        assert!(versioned.generation().0 as usize >= stream.row_batches());
    }

    /// The hot-shard skew mix: most scripted operations must land on the hot
    /// set's blocks, the stream stays deterministic, and a zero rate scripts
    /// exactly the legacy (unskewed) stream.
    #[test]
    fn hot_mix_concentrates_operations_on_the_hot_blocks() {
        let config = StreamConfig {
            n_batches: 12,
            inserts_per_batch: 6,
            deletes_per_batch: 2,
            master_appends_per_batch: 0,
            ..StreamConfig::default()
        }
        .with_hot_mix(2, 0.9);
        let stream = med_stream(0.02, 5, &config);
        assert_eq!(
            stream.ops,
            med_stream(0.02, 5, &config).ops,
            "deterministic"
        );

        // the hot keys are the first two distinct names of the seed relation
        let key = stream.relation.schema().expect_attr("name");
        let mut hot_keys: Vec<Value> = Vec::new();
        for row in stream.relation.rows() {
            let v = row.value(key);
            if !hot_keys.iter().any(|k| k.same(v)) {
                hot_keys.push(v.clone());
                if hot_keys.len() == 2 {
                    break;
                }
            }
        }
        let (mut hot, mut total) = (0usize, 0usize);
        for op in &stream.ops {
            if let StreamOp::Rows(batch) = op {
                for row in &batch.inserts {
                    total += 1;
                    if hot_keys.iter().any(|k| k.same(&row[key.0])) {
                        hot += 1;
                    }
                }
            }
        }
        assert!(total > 0);
        assert!(
            hot as f64 >= 0.7 * total as f64,
            "a 0.9 hot rate must concentrate inserts on the hot blocks \
             ({hot}/{total} were hot)"
        );

        // rate 0.0 (or an empty hot set) scripts the legacy stream
        let plain = med_stream(0.02, 5, &StreamConfig::default());
        let zero_rate = med_stream(0.02, 5, &StreamConfig::default().with_hot_mix(4, 0.0));
        let zero_set = med_stream(0.02, 5, &StreamConfig::default().with_hot_mix(0, 0.9));
        assert_eq!(plain.ops, zero_rate.ops);
        assert_eq!(plain.ops, zero_set.ops);
    }

    /// Skewed scripted deletes still honor the row-id contract: they replay
    /// cleanly on a versioned relation.
    #[test]
    fn skewed_deletes_replay_cleanly() {
        use relacc_store::VersionedRelation;
        let config = StreamConfig {
            master_appends_per_batch: 0,
            ..StreamConfig::default()
        }
        .with_hot_mix(1, 0.8);
        let stream = med_stream(0.02, 13, &config);
        let mut versioned = VersionedRelation::from_relation(&stream.relation);
        for op in &stream.ops {
            if let StreamOp::Rows(batch) = op {
                versioned.apply(batch).expect("scripted batches stay valid");
            }
        }
    }

    /// The scripted read side: one read set per row batch, every read id
    /// live at that point of the replay, and requesting reads leaves the
    /// update ops byte-identical.
    #[test]
    fn scripted_reads_name_live_rows_and_leave_ops_unchanged() {
        use relacc_store::VersionedRelation;
        let plain = med_stream(0.02, 11, &StreamConfig::default());
        assert!(plain.reads.iter().all(|r| r.is_empty()));
        let config = StreamConfig::default().with_reads(5);
        let stream = med_stream(0.02, 11, &config);
        assert_eq!(stream.ops, plain.ops, "reads must not perturb the ops");
        assert_eq!(stream.reads, med_stream(0.02, 11, &config).reads);
        assert_eq!(stream.reads.len(), stream.row_batches());

        let mut versioned = VersionedRelation::from_relation(&stream.relation);
        let mut batch_idx = 0;
        for op in &stream.ops {
            if let StreamOp::Rows(batch) = op {
                versioned.apply(batch).expect("scripted batches stay valid");
                let reads = &stream.reads[batch_idx];
                assert_eq!(reads.len(), 5);
                for id in reads {
                    assert!(
                        versioned.row(*id).is_some(),
                        "read {id} must be live after batch {batch_idx}"
                    );
                }
                batch_idx += 1;
            }
        }
    }

    /// The drifting hot window: period 0 (or no hot mix at all) is
    /// byte-identical to the fixed-set generator, a real period rotates the
    /// concentration onto later key windows, and the scripted deletes still
    /// honor the row-id contract.
    #[test]
    fn hot_drift_rotates_the_window_and_zero_is_byte_identical() {
        let hot = StreamConfig {
            n_batches: 12,
            inserts_per_batch: 6,
            deletes_per_batch: 2,
            master_appends_per_batch: 0,
            ..StreamConfig::default()
        }
        .with_hot_mix(2, 0.9);

        // pinned: a zero period — and a drift without a hot mix — scripts
        // exactly the undrifted stream
        let fixed = med_stream(0.02, 5, &hot);
        let zero_period = med_stream(0.02, 5, &hot.clone().with_hot_drift(0));
        assert_eq!(
            fixed.ops, zero_period.ops,
            "period 0 must be byte-identical"
        );
        assert_eq!(
            med_stream(0.02, 5, &StreamConfig::default().with_hot_drift(3)).ops,
            med_stream(0.02, 5, &StreamConfig::default()).ops,
            "drift without a hot mix must be byte-identical"
        );

        let config = hot.clone().with_hot_drift(4);
        let drifted = med_stream(0.02, 5, &config);
        assert_eq!(
            drifted.ops,
            med_stream(0.02, 5, &config).ops,
            "deterministic"
        );
        assert_ne!(
            drifted.ops, fixed.ops,
            "a rotating window must actually move the hot operations"
        );

        // per window, inserts concentrate on that window's key pair
        let key = drifted.relation.schema().expect_attr("name");
        let mut distinct: Vec<Value> = Vec::new();
        for row in drifted.relation.rows() {
            let v = row.value(key);
            if !distinct.iter().any(|k| k.same(v)) {
                distinct.push(v.clone());
            }
        }
        let row_batches: Vec<&UpdateBatch> = drifted
            .ops
            .iter()
            .filter_map(|op| match op {
                StreamOp::Rows(b) => Some(b),
                _ => None,
            })
            .collect();
        assert_eq!(row_batches.len(), 12);
        for window in 0..3usize {
            let window_keys: Vec<&Value> = (0..2)
                .map(|j| &distinct[(window * 2 + j) % distinct.len()])
                .collect();
            let (mut hot_count, mut total) = (0usize, 0usize);
            for batch in &row_batches[window * 4..window * 4 + 4] {
                for row in &batch.inserts {
                    total += 1;
                    if window_keys.iter().any(|k| k.same(&row[key.0])) {
                        hot_count += 1;
                    }
                }
            }
            assert!(
                hot_count as f64 >= 0.6 * total as f64,
                "window {window}: inserts must chase the rotated hot keys \
                 ({hot_count}/{total} were hot)"
            );
        }

        // the simulated id assignment survives the repartitions: every
        // scripted delete names a live row
        use relacc_store::VersionedRelation;
        let mut versioned = VersionedRelation::from_relation(&drifted.relation);
        for op in &drifted.ops {
            if let StreamOp::Rows(batch) = op {
                versioned.apply(batch).expect("drifted batches stay valid");
            }
        }
    }

    #[test]
    fn rest_stream_has_no_master_appends() {
        let stream = rest_stream(0.005, 3, &StreamConfig::default());
        assert_eq!(stream.master_appends(), 0);
        assert!(stream.master.is_none());
        assert!(stream.row_batches() > 0);
        assert_eq!(stream.relation.schema().arity(), 4);
    }
}
