//! Update-stream workloads: the input of the incremental-repair pipeline.
//!
//! The paper's experiments repair a corpus once; a served workload keeps
//! receiving data.  This module turns the `Med`-like and `Rest`-like corpora
//! into **streaming** workloads: a flattened dirty relation (every entity's
//! tuples tagged with its key attributes, so exact-key blocking reconstructs
//! the entities), the matching rules and master data, plus a deterministic
//! stream of [`StreamOp`]s — typed row batches
//! ([`relacc_store::UpdateBatch`]: inserts of new observations, deletes of
//! retracted ones) mixed with master-data appends (curated reference rows for
//! entities the master relation did not cover yet).
//!
//! The stream relies on the versioned-relation row-id contract (sequential
//! ids in insertion order, see [`relacc_store::versioned`]): the generator
//! simulates the same assignment, so its scripted deletes always name live
//! rows.  Everything is a pure function of the seed.

use crate::generator::Dataset;
use crate::rest::{rest, RestConfig};
use crate::workloads::med;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relacc_core::rules::RuleSet;
use relacc_model::{DataType, MasterRelation, Schema, Value};
use relacc_store::{Relation, RowId, UpdateBatch};

/// Configuration of an update stream.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Number of update batches.
    pub n_batches: usize,
    /// Row inserts per batch.
    pub inserts_per_batch: usize,
    /// Row deletes per batch.
    pub deletes_per_batch: usize,
    /// Master rows appended per batch (ignored for workloads without master
    /// data; stops when the pool of uncovered entities is exhausted).
    pub master_appends_per_batch: usize,
    /// Fraction of inserts that open a brand-new entity instead of extending
    /// an existing one.
    pub fresh_entity_rate: f64,
    /// Skew: fraction of operations steered at the **hot set** (the blocks of
    /// the first [`StreamConfig::hot_entities`] distinct key values).  A hot
    /// insert clones a hot-set row (same entity key, so the same block — and
    /// under sharding the same shard); a hot delete removes a live hot-set
    /// row.  `0.0` (the default) disables the skew entirely and leaves the
    /// scripted stream byte-identical to the pre-skew generator: no RNG draw
    /// is spent on the hot/cold decision.
    pub hot_entity_rate: f64,
    /// Number of distinct leading key values that form the hot set (ignored
    /// while [`StreamConfig::hot_entity_rate`] is `0.0`).
    pub hot_entities: usize,
    /// Point reads scripted after each row batch ([`UpdateStream::reads`]):
    /// row ids sampled from the rows live right after the batch applies.
    /// Scripted from a **separate** RNG, so any value — including the
    /// default `0` — leaves the update ops byte-identical.
    pub reads_per_batch: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            n_batches: 8,
            inserts_per_batch: 4,
            deletes_per_batch: 2,
            master_appends_per_batch: 1,
            fresh_entity_rate: 0.25,
            hot_entity_rate: 0.0,
            hot_entities: 0,
            reads_per_batch: 0,
            seed: 17,
        }
    }
}

impl StreamConfig {
    /// Steer `rate` of the operations at the blocks of the first
    /// `hot_entities` distinct key values (builder style) — the hot-shard
    /// skew mix of the sharded-repair benchmarks: under key-hash sharding
    /// the hot blocks pin to a fixed small set of shards, so most batches
    /// leave the other shards completely untouched.
    pub fn with_hot_mix(mut self, hot_entities: usize, rate: f64) -> Self {
        self.hot_entities = hot_entities;
        self.hot_entity_rate = rate;
        self
    }

    /// Script `reads` point reads after every row batch (builder style) —
    /// the read side of a mixed read/write serving workload.  The reads come
    /// from their own RNG, so the scripted update ops stay byte-identical to
    /// a read-free stream with the same seed.
    pub fn with_reads(mut self, reads: usize) -> Self {
        self.reads_per_batch = reads;
        self
    }
}

/// One operation of the stream, in application order.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamOp {
    /// A typed batch of row inserts + deletes against the dirty relation.
    Rows(UpdateBatch),
    /// Rows appended to the master relation (index 0 of the plan's masters).
    MasterAppend(Vec<Vec<Value>>),
}

/// A complete streaming workload: the seed state plus the scripted updates.
#[derive(Debug, Clone)]
pub struct UpdateStream {
    /// Catalog-entry name of the dirty relation (the one the batches address).
    pub name: String,
    /// The seed dirty relation (flattened, entity-key-tagged rows).
    pub relation: Relation,
    /// The seed master relation, when the workload has one.
    pub master: Option<MasterRelation>,
    /// The accuracy rules.
    pub rules: RuleSet,
    /// Attribute names resolution should match on (exact-key blocking over
    /// these reconstructs the generator's entities).
    pub match_attrs: Vec<String>,
    /// The scripted updates, in application order.
    pub ops: Vec<StreamOp>,
    /// Scripted point reads, one entry per [`StreamOp::Rows`] batch in
    /// stream order: row ids (sampled with replacement) that are live right
    /// after that batch applies — the read side of a mixed read/write
    /// serving workload.  Empty vectors when
    /// [`StreamConfig::reads_per_batch`] is `0`.
    pub reads: Vec<Vec<RowId>>,
}

impl UpdateStream {
    /// Number of row batches in the stream.
    pub fn row_batches(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, StreamOp::Rows(_)))
            .count()
    }

    /// Number of master appends in the stream.
    pub fn master_appends(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, StreamOp::MasterAppend(_)))
            .count()
    }
}

/// Script a stream over an already-flattened relation: per batch, deletes of
/// random live rows, inserts cloning (or re-keying) random seed rows, and —
/// when a pool of late-arriving master rows exists — master appends.
///
/// With a hot mix configured ([`StreamConfig::with_hot_mix`]) a
/// `hot_entity_rate` share of the deletes and inserts is steered at the hot
/// set's blocks instead, producing the hot-shard skew the sharded-repair
/// bench measures.  The skew path draws from the RNG only when enabled, so a
/// rate of `0.0` scripts exactly the legacy stream.
fn script_ops(
    name: &str,
    relation: &Relation,
    key_attr: relacc_model::AttrId,
    mut master_pool: Vec<Vec<Value>>,
    config: &StreamConfig,
) -> (Vec<StreamOp>, Vec<Vec<RowId>>) {
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5EED_57EA);
    // the read script draws from its own RNG so the update ops stay
    // byte-identical whether or not reads are requested
    let mut read_rng = StdRng::seed_from_u64(config.seed ^ 0x0BEE_F00D_5EED);
    let seed_rows: Vec<Vec<Value>> = relation
        .rows()
        .iter()
        .map(|t| t.values().to_vec())
        .collect();

    // the hot set: seed rows carrying the first `hot_entities` distinct key
    // values (their blocks — and under sharding their shards — are fixed)
    let skew = config.hot_entity_rate > 0.0 && config.hot_entities > 0;
    let mut hot_keys: Vec<&Value> = Vec::new();
    let mut hot_seed: Vec<usize> = Vec::new();
    if skew {
        for (idx, row) in seed_rows.iter().enumerate() {
            let key = &row[key_attr.0];
            if !hot_keys.iter().any(|k| k.same(key)) && hot_keys.len() < config.hot_entities {
                hot_keys.push(key);
            }
            if hot_keys.iter().any(|k| k.same(key)) {
                hot_seed.push(idx);
            }
        }
    }

    // simulate the versioned relation's id assignment, live ids split by
    // temperature (everything is "cold" while the skew is disabled)
    let mut hot_live: Vec<RowId> = Vec::new();
    let mut cold_live: Vec<RowId> = Vec::new();
    for idx in 0..relation.len() {
        if skew && hot_seed.contains(&idx) {
            hot_live.push(RowId(idx as u64));
        } else {
            cold_live.push(RowId(idx as u64));
        }
    }
    let mut next_id = relation.len() as u64;
    let mut fresh_entities = 0usize;

    let mut ops = Vec::new();
    let mut reads: Vec<Vec<RowId>> = Vec::new();
    for _ in 0..config.n_batches {
        let mut batch = UpdateBatch::new(name);
        // deletes: sample live ids without replacement, keeping the relation
        // from draining (never drop below half the seed size)
        let floor = seed_rows.len() / 2;
        for _ in 0..config.deletes_per_batch {
            if hot_live.len() + cold_live.len() <= floor.max(1) {
                break;
            }
            let from_hot =
                skew && !hot_live.is_empty() && rng.gen::<f64>() < config.hot_entity_rate;
            let victim = if from_hot || cold_live.is_empty() {
                hot_live.swap_remove(rng.gen_range(0..hot_live.len()))
            } else {
                cold_live.swap_remove(rng.gen_range(0..cold_live.len()))
            };
            batch = batch.delete(victim);
        }
        // inserts: clone a hot-set row (skew) or a random seed row, the
        // latter sometimes re-keyed into a brand-new entity
        for _ in 0..config.inserts_per_batch {
            let is_hot = skew && !hot_seed.is_empty() && rng.gen::<f64>() < config.hot_entity_rate;
            let row = if is_hot {
                seed_rows[hot_seed[rng.gen_range(0..hot_seed.len())]].clone()
            } else {
                let mut row = seed_rows[rng.gen_range(0..seed_rows.len())].clone();
                if rng.gen::<f64>() < config.fresh_entity_rate {
                    fresh_entities += 1;
                    row[key_attr.0] = Value::text(format!("stream_fresh_{fresh_entities}"));
                }
                row
            };
            batch = batch.insert(row);
            let id = RowId(next_id);
            next_id += 1;
            if is_hot {
                hot_live.push(id);
            } else {
                cold_live.push(id);
            }
        }
        if !batch.is_empty() {
            ops.push(StreamOp::Rows(batch));
            // reads against the rows live right after this batch, sampled
            // with replacement from the simulated live-id set
            let mut sample = Vec::with_capacity(config.reads_per_batch);
            for _ in 0..config.reads_per_batch {
                let pick = read_rng.gen_range(0..hot_live.len() + cold_live.len());
                sample.push(if pick < hot_live.len() {
                    hot_live[pick]
                } else {
                    cold_live[pick - hot_live.len()]
                });
            }
            reads.push(sample);
        }
        if config.master_appends_per_batch > 0 && !master_pool.is_empty() {
            let take = config.master_appends_per_batch.min(master_pool.len());
            let rows: Vec<Vec<Value>> = master_pool.drain(..take).collect();
            ops.push(StreamOp::MasterAppend(rows));
        }
    }
    (ops, reads)
}

/// Flatten a generated dataset into one dirty relation (all entity tuples,
/// row order follows entity order) and collect the late-arriving master rows:
/// the ground-truth master tuples of the entities the seed master relation
/// does **not** cover, which is exactly the curated data a streaming master
/// feed would deliver.
fn flatten(data: &Dataset) -> (Relation, Vec<Vec<Value>>) {
    let mut relation = Relation::new(data.schema.clone());
    for entity in &data.entities {
        for tuple in entity.instance.tuples() {
            relation
                .push_row(tuple.values().to_vec())
                .expect("generated rows conform");
        }
    }
    let key_attrs: Vec<_> = data.master_schema.attr_ids().collect();
    let late_master: Vec<Vec<Value>> = data
        .entities
        .iter()
        .filter(|e| !e.in_master)
        .map(|e| {
            key_attrs
                .iter()
                .map(|a| {
                    let name = data.master_schema.attr_name(*a);
                    e.truth.value(data.schema.expect_attr(name)).clone()
                })
                .collect()
        })
        .collect();
    (relation, late_master)
}

/// The `Med`-shaped update stream: the scaled `Med` corpus flattened into a
/// dirty relation, its rules and (partial) master relation, and a scripted
/// insert/delete/master-append mix.  Master appends deliver the reference
/// rows of initially uncovered entities, so applying the stream makes more
/// entities completable over time.
pub fn med_stream(scale: f64, seed: u64, config: &StreamConfig) -> UpdateStream {
    let data = med(scale, seed);
    let (relation, late_master) = flatten(&data);
    let key_attr = data.schema.expect_attr("name");
    let (ops, reads) = script_ops("med", &relation, key_attr, late_master, config);
    UpdateStream {
        name: "med".into(),
        relation,
        master: Some(data.master.clone()),
        rules: data.rules.clone(),
        match_attrs: vec!["name".into()],
        ops,
        reads,
    }
}

/// The `Rest`-shaped update stream: every restaurant's listings tagged with
/// the restaurant name in an extra `rname` column (exact-key blocking over it
/// reconstructs the entities), the corpus currency rules, and a scripted
/// insert/delete mix.  The Rest workload has no master data, so its stream
/// contains no master appends.
pub fn rest_stream(scale: f64, seed: u64, config: &StreamConfig) -> UpdateStream {
    let data = rest(&RestConfig::scaled(scale, seed));
    let schema = Schema::builder("listing")
        .attr("source", DataType::Text)
        .attr("snapshot", DataType::Int)
        .attr("closed", DataType::Bool)
        .attr("rname", DataType::Text)
        .build();
    let mut relation = Relation::new(schema.clone());
    for restaurant in &data.restaurants {
        for tuple in restaurant.instance.tuples() {
            let mut row = tuple.values().to_vec();
            row.push(Value::text(restaurant.name.clone()));
            relation.push_row(row).expect("generated rows conform");
        }
    }
    let key_attr = schema.expect_attr("rname");
    let (ops, reads) = script_ops("rest", &relation, key_attr, Vec::new(), config);
    UpdateStream {
        name: "rest".into(),
        relation,
        master: None,
        rules: data.rules.clone(),
        match_attrs: vec!["rname".into()],
        ops,
        reads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn med_stream_is_deterministic_and_well_formed() {
        let config = StreamConfig::default();
        let a = med_stream(0.02, 5, &config);
        let b = med_stream(0.02, 5, &config);
        assert_eq!(a.relation.rows(), b.relation.rows());
        assert_eq!(a.ops, b.ops);
        assert_eq!(a.row_batches(), config.n_batches);
        assert!(a.master_appends() > 0);
        assert!(a.master.is_some());
        // every scripted insert conforms to the schema, every delete is
        // unique within its batch
        for op in &a.ops {
            if let StreamOp::Rows(batch) = op {
                assert_eq!(batch.relation, "med");
                for row in &batch.inserts {
                    a.relation.schema().validate_row(row).unwrap();
                }
                let mut seen = std::collections::HashSet::new();
                for id in &batch.deletes {
                    assert!(seen.insert(*id), "duplicate delete {id}");
                }
            }
        }
    }

    #[test]
    fn med_master_appends_conform_to_the_master_schema() {
        let stream = med_stream(0.02, 9, &StreamConfig::default());
        let master = stream.master.as_ref().unwrap();
        for op in &stream.ops {
            if let StreamOp::MasterAppend(rows) = op {
                for row in rows {
                    master.schema().validate_row(row).unwrap();
                }
            }
        }
    }

    #[test]
    fn scripted_deletes_replay_cleanly_on_a_versioned_relation() {
        use relacc_store::VersionedRelation;
        let stream = med_stream(0.02, 11, &StreamConfig::default());
        let mut versioned = VersionedRelation::from_relation(&stream.relation);
        for op in &stream.ops {
            if let StreamOp::Rows(batch) = op {
                versioned.apply(batch).expect("scripted batches stay valid");
            }
        }
        assert!(versioned.generation().0 as usize >= stream.row_batches());
    }

    /// The hot-shard skew mix: most scripted operations must land on the hot
    /// set's blocks, the stream stays deterministic, and a zero rate scripts
    /// exactly the legacy (unskewed) stream.
    #[test]
    fn hot_mix_concentrates_operations_on_the_hot_blocks() {
        let config = StreamConfig {
            n_batches: 12,
            inserts_per_batch: 6,
            deletes_per_batch: 2,
            master_appends_per_batch: 0,
            ..StreamConfig::default()
        }
        .with_hot_mix(2, 0.9);
        let stream = med_stream(0.02, 5, &config);
        assert_eq!(
            stream.ops,
            med_stream(0.02, 5, &config).ops,
            "deterministic"
        );

        // the hot keys are the first two distinct names of the seed relation
        let key = stream.relation.schema().expect_attr("name");
        let mut hot_keys: Vec<Value> = Vec::new();
        for row in stream.relation.rows() {
            let v = row.value(key);
            if !hot_keys.iter().any(|k| k.same(v)) {
                hot_keys.push(v.clone());
                if hot_keys.len() == 2 {
                    break;
                }
            }
        }
        let (mut hot, mut total) = (0usize, 0usize);
        for op in &stream.ops {
            if let StreamOp::Rows(batch) = op {
                for row in &batch.inserts {
                    total += 1;
                    if hot_keys.iter().any(|k| k.same(&row[key.0])) {
                        hot += 1;
                    }
                }
            }
        }
        assert!(total > 0);
        assert!(
            hot as f64 >= 0.7 * total as f64,
            "a 0.9 hot rate must concentrate inserts on the hot blocks \
             ({hot}/{total} were hot)"
        );

        // rate 0.0 (or an empty hot set) scripts the legacy stream
        let plain = med_stream(0.02, 5, &StreamConfig::default());
        let zero_rate = med_stream(0.02, 5, &StreamConfig::default().with_hot_mix(4, 0.0));
        let zero_set = med_stream(0.02, 5, &StreamConfig::default().with_hot_mix(0, 0.9));
        assert_eq!(plain.ops, zero_rate.ops);
        assert_eq!(plain.ops, zero_set.ops);
    }

    /// Skewed scripted deletes still honor the row-id contract: they replay
    /// cleanly on a versioned relation.
    #[test]
    fn skewed_deletes_replay_cleanly() {
        use relacc_store::VersionedRelation;
        let config = StreamConfig {
            master_appends_per_batch: 0,
            ..StreamConfig::default()
        }
        .with_hot_mix(1, 0.8);
        let stream = med_stream(0.02, 13, &config);
        let mut versioned = VersionedRelation::from_relation(&stream.relation);
        for op in &stream.ops {
            if let StreamOp::Rows(batch) = op {
                versioned.apply(batch).expect("scripted batches stay valid");
            }
        }
    }

    /// The scripted read side: one read set per row batch, every read id
    /// live at that point of the replay, and requesting reads leaves the
    /// update ops byte-identical.
    #[test]
    fn scripted_reads_name_live_rows_and_leave_ops_unchanged() {
        use relacc_store::VersionedRelation;
        let plain = med_stream(0.02, 11, &StreamConfig::default());
        assert!(plain.reads.iter().all(|r| r.is_empty()));
        let config = StreamConfig::default().with_reads(5);
        let stream = med_stream(0.02, 11, &config);
        assert_eq!(stream.ops, plain.ops, "reads must not perturb the ops");
        assert_eq!(stream.reads, med_stream(0.02, 11, &config).reads);
        assert_eq!(stream.reads.len(), stream.row_batches());

        let mut versioned = VersionedRelation::from_relation(&stream.relation);
        let mut batch_idx = 0;
        for op in &stream.ops {
            if let StreamOp::Rows(batch) = op {
                versioned.apply(batch).expect("scripted batches stay valid");
                let reads = &stream.reads[batch_idx];
                assert_eq!(reads.len(), 5);
                for id in reads {
                    assert!(
                        versioned.row(*id).is_some(),
                        "read {id} must be live after batch {batch_idx}"
                    );
                }
                batch_idx += 1;
            }
        }
    }

    #[test]
    fn rest_stream_has_no_master_appends() {
        let stream = rest_stream(0.005, 3, &StreamConfig::default());
        assert_eq!(stream.master_appends(), 0);
        assert!(stream.master.is_none());
        assert!(stream.row_batches() > 0);
        assert_eq!(stream.relation.schema().arity(), 4);
    }
}
