//! A configurable generator of entity collections with known ground truth.
//!
//! The paper's real-life workloads (`Med`, proprietary medicine sales data, and
//! `CFP`, scraped calls for papers) are not publicly available; this generator
//! reproduces their published *shape* — number of attributes, entity counts,
//! entity-size distribution, master-data coverage and rule-set size — and
//! injects the error classes the paper's accuracy rules exploit:
//!
//! * **currency errors**: numeric attributes whose stale values are smaller
//!   than the true (latest) value;
//! * **correlated staleness**: attributes whose value changes together with a
//!   currency driver (the paper's ϕ2/ϕ3/ϕ10/ϕ11 pattern);
//! * **master-covered attributes**: resolvable by joining curated reference
//!   data on the entity's key attributes (form-(2) rules);
//! * **master-follower attributes**: only resolvable once a master-covered
//!   pivot attribute is known (the paper's ϕ4 pattern, `league → rnds/team/…`),
//!   which is what makes form-(1) and form-(2) rules *interact* — together they
//!   deduce more than the sum of what either form deduces alone (Fig. 6(e));
//! * **sparse random errors and nulls** on the remaining attributes.
//!
//! Entities come in two flavours.  *Clean* entities are fully covered by the
//! rules (possibly via master data), so the chase alone deduces their complete
//! target.  *Messy* entities carry a few genuinely ambiguous attributes whose
//! true value cannot be pinned down by any rule — they are what the top-k
//! candidate search and the user-interaction rounds of Exp-2/Exp-3 are for.
//! The `messy_rate` therefore directly controls the complete-target percentage
//! of Fig. 6(a).
//!
//! Each generated entity carries its ground-truth target tuple, so the
//! experiment harness can measure exactly what the paper measures: how much of
//! the truth the chase and the top-k algorithms recover.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relacc_core::rules::{
    ConstantCfd, MasterPremise, MasterRule, Operand, Predicate, RuleSet, TupleRef, TupleRule,
};
use relacc_core::Specification;
use relacc_model::{
    AttrId, CmpOp, DataType, EntityInstance, MasterRelation, Schema, SchemaRef, TargetTuple, Value,
};

/// The role an attribute plays in the generated workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttrKind {
    /// Identifying attribute: consistent across the entity's tuples (up to
    /// nulls / rare variants) and used to join master data.
    Key,
    /// Numeric attribute whose true value is the most recent (largest) one;
    /// stale tuples carry smaller values.  Generates a ϕ1-style rule.
    Currency,
    /// Attribute whose value follows a [`AttrKind::Currency`] driver; stale
    /// tuples carry the driver-consistent old value.  Generates a ϕ2-style
    /// rule.
    Correlated {
        /// Name of the driving currency attribute.
        driver: String,
    },
    /// Attribute whose true value is recorded in the master relation and
    /// recovered through a form-(2) rule joining on the key attributes.
    MasterCovered,
    /// Attribute whose value is tied to a [`AttrKind::MasterCovered`] pivot:
    /// tuples that carry the wrong pivot value also carry a wrong follower
    /// value.  Generates a ϕ4-style form-(1) rule whose premise compares the
    /// pivot against the *target* value, so it only fires once `te[pivot]` is
    /// known (usually via a form-(2) rule).
    MasterFollower {
        /// Name of the master-covered pivot attribute.
        pivot: String,
    },
    /// Attribute with no rules: only sparse errors/nulls; resolvable when all
    /// tuples agree, otherwise left to the top-k search / the user.
    Free,
}

/// One attribute of the generated schema.
#[derive(Debug, Clone)]
pub struct AttrSpec {
    /// Attribute name.
    pub name: String,
    /// Its role.
    pub kind: AttrKind,
}

impl AttrSpec {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, kind: AttrKind) -> Self {
        AttrSpec {
            name: name.into(),
            kind,
        }
    }
}

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Workload name (becomes the schema name).
    pub name: String,
    /// The attributes and their roles.
    pub attrs: Vec<AttrSpec>,
    /// Number of entities to generate.
    pub n_entities: usize,
    /// Minimum tuples per entity.
    pub min_tuples: usize,
    /// Maximum tuples per entity (sizes are skewed towards the minimum).
    pub max_tuples: usize,
    /// Fraction of entities that have a master tuple.
    pub master_coverage: f64,
    /// Probability that a non-latest tuple's value is missing.
    pub null_rate: f64,
    /// Probability that a non-latest tuple's master-covered value is stale
    /// (wrong), per tuple.  Stale covered values are what the form-(2) rules
    /// repair; without master data they force a top-k search.
    pub covered_error_rate: f64,
    /// Probability that a key attribute value is replaced by a variant
    /// spelling (which blocks master joins for that entity).
    pub key_noise: f64,
    /// Fraction of entities that are *messy*: they carry `1..=max_ambiguous`
    /// attributes with genuinely conflicting values that no rule resolves.
    pub messy_rate: f64,
    /// Maximum number of ambiguous attributes per messy entity.
    pub max_ambiguous: usize,
    /// Number of distinct buckets for currency / correlated histories (bounds
    /// the number of value classes per attribute).
    pub history_buckets: usize,
    /// Pad the rule set with semantically redundant variants until it reaches
    /// this many form-(1) rules (0 = no padding).
    pub target_form1_rules: usize,
    /// Pad the rule set until it reaches this many form-(2) rules (0 = no
    /// padding).
    pub target_form2_rules: usize,
    /// RNG seed (the whole dataset is a pure function of the config).
    pub seed: u64,
}

impl GeneratorConfig {
    /// A tiny smoke-test configuration used by unit tests.
    pub fn tiny(seed: u64) -> Self {
        GeneratorConfig {
            name: "tiny".into(),
            attrs: vec![
                AttrSpec::new("name", AttrKind::Key),
                AttrSpec::new("rnds", AttrKind::Currency),
                AttrSpec::new(
                    "pts",
                    AttrKind::Correlated {
                        driver: "rnds".into(),
                    },
                ),
                AttrSpec::new("team", AttrKind::MasterCovered),
                AttrSpec::new(
                    "arena",
                    AttrKind::MasterFollower {
                        pivot: "team".into(),
                    },
                ),
                AttrSpec::new("note", AttrKind::Free),
            ],
            n_entities: 20,
            min_tuples: 1,
            max_tuples: 6,
            master_coverage: 0.8,
            null_rate: 0.1,
            covered_error_rate: 0.2,
            key_noise: 0.02,
            messy_rate: 0.3,
            max_ambiguous: 2,
            history_buckets: 4,
            target_form1_rules: 0,
            target_form2_rules: 0,
            seed,
        }
    }
}

/// A generated entity: its dirty tuples plus its ground-truth target.
#[derive(Debug, Clone)]
pub struct GeneratedEntity {
    /// A stable identifier (the value of the first key attribute).
    pub key: String,
    /// The dirty entity instance `Ie`.
    pub instance: EntityInstance,
    /// The ground-truth target tuple.
    pub truth: TargetTuple,
    /// Whether the master relation covers this entity.
    pub in_master: bool,
    /// Whether the entity was generated as messy (carries ambiguous attributes
    /// that no rule resolves).
    pub messy: bool,
    /// The attributes that were made ambiguous (empty for clean entities).
    pub ambiguous_attrs: Vec<AttrId>,
}

/// Which rule forms a specification should include (Exp-1 / Exp-2 ablations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RuleForms {
    /// Both form-(1) and form-(2) rules.
    #[default]
    Both,
    /// Only form-(1) rules.
    Form1Only,
    /// Only form-(2) rules.
    Form2Only,
}

/// A complete generated workload.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Workload name.
    pub name: String,
    /// Entity schema `R`.
    pub schema: SchemaRef,
    /// Master schema `Rm` (key attributes + master-covered attributes).
    pub master_schema: SchemaRef,
    /// The generated entities with ground truth.
    pub entities: Vec<GeneratedEntity>,
    /// The master relation `Im`.
    pub master: MasterRelation,
    /// The emitted accuracy rules `Σ`.
    pub rules: RuleSet,
    /// Constant CFDs relating master-covered attributes (used by the
    /// DeduceOrder baseline and available for consistency checking).
    pub cfds: Vec<ConstantCfd>,
}

impl Dataset {
    /// Total number of tuples across all entities.
    pub fn total_tuples(&self) -> usize {
        self.entities.iter().map(|e| e.instance.len()).sum()
    }

    /// Build the specification of entity `idx` with the full rule set and the
    /// full master relation.
    pub fn specification(&self, idx: usize) -> Specification {
        self.specification_with(idx, RuleForms::Both, None)
    }

    /// Build the specification of entity `idx`, optionally restricting the rule
    /// forms and truncating the master relation to its first `master_limit`
    /// tuples (the `‖Im‖` sweeps of Exp-2 / Exp-4).
    pub fn specification_with(
        &self,
        idx: usize,
        forms: RuleForms,
        master_limit: Option<usize>,
    ) -> Specification {
        let rules = match forms {
            RuleForms::Both => self.rules.clone(),
            RuleForms::Form1Only => self.rules.only_tuple_rules(),
            RuleForms::Form2Only => self.rules.only_master_rules(),
        };
        let mut master = self.master.clone();
        if let Some(limit) = master_limit {
            master.truncate(limit);
        }
        Specification::new(self.entities[idx].instance.clone(), rules).with_master(master)
    }
}

struct AttrPlan {
    id: AttrId,
    kind: AttrKind,
}

/// Generate a dataset from a configuration.
#[allow(clippy::needless_range_loop)] // tuple index `t` addresses several parallel plans
pub fn generate(config: &GeneratorConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(config.seed);

    // --- schema -----------------------------------------------------------
    let mut builder = Schema::builder(config.name.clone());
    for spec in &config.attrs {
        let ty = match spec.kind {
            AttrKind::Currency => DataType::Int,
            _ => DataType::Text,
        };
        builder = builder.attr(spec.name.clone(), ty);
    }
    let schema = builder.build();
    let plans: Vec<AttrPlan> = config
        .attrs
        .iter()
        .map(|spec| AttrPlan {
            id: schema.expect_attr(&spec.name),
            kind: spec.kind.clone(),
        })
        .collect();

    let key_attrs: Vec<AttrId> = plans
        .iter()
        .filter(|p| p.kind == AttrKind::Key)
        .map(|p| p.id)
        .collect();
    let covered_attrs: Vec<AttrId> = plans
        .iter()
        .filter(|p| p.kind == AttrKind::MasterCovered)
        .map(|p| p.id)
        .collect();
    // Attributes that may be made ambiguous in messy entities: the ones a rule
    // can repair only through master data, plus the free attributes.  Master
    // followers are excluded — conflicting follower values combined with a
    // resolved pivot would make the ϕ4-style rule derive opposite orders and
    // the specification would (correctly but unhelpfully) stop being
    // Church-Rosser.
    let ambiguable: Vec<AttrId> = plans
        .iter()
        .filter(|p| matches!(p.kind, AttrKind::MasterCovered | AttrKind::Free))
        .map(|p| p.id)
        .collect();

    // master schema: key attributes + master-covered attributes (same names)
    let mut mbuilder = Schema::builder(format!("{}_master", config.name));
    for a in key_attrs.iter().chain(covered_attrs.iter()) {
        mbuilder = mbuilder.attr(schema.attr_name(*a), schema.attr_type(*a));
    }
    let master_schema = mbuilder.build();

    // --- entities ----------------------------------------------------------
    let buckets = config.history_buckets.max(1);
    let mut entities = Vec::with_capacity(config.n_entities);
    let mut master = MasterRelation::new(master_schema.clone());

    for e in 0..config.n_entities {
        // skewed entity size: most entities are small, a few are large
        let span = config.max_tuples.saturating_sub(config.min_tuples);
        let size = if span == 0 {
            config.min_tuples
        } else {
            let r: f64 = rng.gen::<f64>();
            config.min_tuples + ((r * r * r) * (span as f64 + 0.999)) as usize
        };
        let size = size.max(1);
        let in_master = rng.gen::<f64>() < config.master_coverage;
        let messy = size > 1 && rng.gen::<f64>() < config.messy_rate;

        // pick the ambiguous attributes of a messy entity
        let mut ambiguous: Vec<AttrId> = Vec::new();
        if messy && !ambiguable.is_empty() {
            let n_ambig = rng.gen_range(1..=config.max_ambiguous.max(1));
            let mut pool = ambiguable.clone();
            for _ in 0..n_ambig.min(pool.len()) {
                let i = rng.gen_range(0..pool.len());
                ambiguous.push(pool.swap_remove(i));
            }
        }

        // ground truth per attribute
        let mut truth = vec![Value::Null; schema.arity()];
        for plan in &plans {
            let name = schema.attr_name(plan.id);
            truth[plan.id.0] = match &plan.kind {
                AttrKind::Key => Value::text(format!("{name}_e{e}")),
                AttrKind::Currency => Value::Int(((size.min(buckets)).saturating_sub(1)) as i64),
                AttrKind::Correlated { .. } => {
                    let top_bucket = (size.min(buckets)).saturating_sub(1);
                    Value::text(format!("{name}_e{e}_h{top_bucket}"))
                }
                AttrKind::MasterCovered => Value::text(format!("{name}_v{}", e % 17)),
                AttrKind::MasterFollower { .. } => Value::text(format!("{name}_w{}", e % 17)),
                AttrKind::Free => Value::text(format!("{name}_e{e}_true")),
            };
        }
        let truth = TargetTuple::from_values(truth);

        // Pre-plan the ambiguity of messy entities: for each ambiguous
        // attribute decide which tuples carry the truth and which carry one of
        // two wrong variants, so that the truth's occurrence count is close to
        // (sometimes below) the best wrong value — this is what makes the rank
        // of the true target inside the top-k candidates vary with k.
        let mut ambiguous_values: Vec<Vec<Value>> = vec![Vec::new(); schema.arity()];
        for &a in &ambiguous {
            let name = schema.attr_name(a);
            let truth_value = truth.value(a).clone();
            let wrong_a = Value::text(format!("{name}_e{e}_alt0"));
            let wrong_b = Value::text(format!("{name}_e{e}_alt1"));
            // How often the truth shows up relative to the two wrong variants:
            // sometimes it is the clear majority, sometimes it ties, sometimes a
            // wrong value dominates — this spread is what makes the rank of the
            // true target inside the candidate list (and thus the k-sweep of
            // Fig. 6(b)/(f)) vary.
            let truth_weight: u8 = match rng.gen_range(0..3u8) {
                0 => 4, // truth-favoured: truth ~50% of tuples
                1 => 3, // tied with the leading wrong value
                _ => 2, // wrong value favoured: truth is a minority
            };
            let mut per_tuple = Vec::with_capacity(size);
            for t in 0..size {
                // the truth always appears at least once (in the first tuple)
                let v = if t == 0 {
                    truth_value.clone()
                } else {
                    let roll = rng.gen_range(0..8u8);
                    if roll < truth_weight {
                        truth_value.clone()
                    } else if roll < truth_weight + 3 {
                        wrong_a.clone()
                    } else {
                        wrong_b.clone()
                    }
                };
                per_tuple.push(v);
            }
            ambiguous_values[a.0] = per_tuple;
        }

        // dirty tuples: tuple `t` observes history version `versions[t]`
        let mut instance = EntityInstance::new(schema.clone());
        for t in 0..size {
            // version 0 = oldest, size-1 = newest; exactly one tuple is newest
            let version = if t == size - 1 {
                size - 1
            } else {
                rng.gen_range(0..size)
            };
            let bucket = (version * buckets.min(size)) / size.max(1);
            let bucket = bucket.min(buckets - 1);
            let is_latest = version == size - 1;
            // Decide up-front which currency attributes this tuple is missing:
            // their correlated followers must then be missing too, otherwise a
            // stale-looking tuple could be pushed above a fresher one by ϕ7 and
            // the specification would (correctly) stop being Church-Rosser.
            let mut missing_drivers: Vec<&str> = Vec::new();
            for plan in &plans {
                if matches!(plan.kind, AttrKind::Currency)
                    && !is_latest
                    && rng.gen::<f64>() < config.null_rate
                {
                    missing_drivers.push(schema.attr_name(plan.id));
                }
            }
            // Does this tuple carry the correct value for each master-covered
            // pivot?  Followers of a wrong pivot carry the matching wrong value.
            let mut covered_is_stale: Vec<bool> = vec![false; schema.arity()];
            for plan in &plans {
                if plan.kind == AttrKind::MasterCovered
                    && !ambiguous.contains(&plan.id)
                    && t > 0
                    && rng.gen::<f64>() < config.covered_error_rate
                {
                    covered_is_stale[plan.id.0] = true;
                }
            }
            // First pass: every attribute except the master followers, which
            // need to see the pivot value this tuple actually carries.
            let mut row = vec![Value::Null; schema.arity()];
            for plan in &plans {
                if matches!(plan.kind, AttrKind::MasterFollower { .. }) {
                    continue;
                }
                let name = schema.attr_name(plan.id);
                let truth_value = truth.value(plan.id).clone();
                if ambiguous.contains(&plan.id) {
                    row[plan.id.0] = ambiguous_values[plan.id.0][t].clone();
                    continue;
                }
                let value = match &plan.kind {
                    AttrKind::Key => {
                        let r: f64 = rng.gen();
                        if !is_latest && r < config.key_noise {
                            Value::text(format!("{name}_e{e}~variant"))
                        } else if !is_latest && r < config.key_noise + config.null_rate {
                            Value::Null
                        } else {
                            truth_value
                        }
                    }
                    AttrKind::Currency => {
                        let latest_bucket = (size.min(buckets)) - 1;
                        if missing_drivers.contains(&name) {
                            Value::Null
                        } else if is_latest {
                            Value::Int(latest_bucket as i64)
                        } else {
                            Value::Int(bucket.min(latest_bucket) as i64)
                        }
                    }
                    AttrKind::Correlated { driver } => {
                        let latest_bucket = (size.min(buckets)) - 1;
                        let b = if is_latest {
                            latest_bucket
                        } else {
                            bucket.min(latest_bucket)
                        };
                        if missing_drivers.contains(&driver.as_str()) {
                            // the driver is missing in this tuple, so its
                            // followers are missing too (see above)
                            Value::Null
                        } else if b == 0 && !is_latest && rng.gen::<f64>() < config.null_rate {
                            // only the oldest history bucket may otherwise be
                            // nulled-out: nulling a newer tuple would push a
                            // null above a non-null value under a ϕ2-style rule
                            Value::Null
                        } else {
                            Value::text(format!("{name}_e{e}_h{b}"))
                        }
                    }
                    AttrKind::MasterCovered => {
                        // the first tuple always carries the truth so that a
                        // lone wrong value can never be "deduced" and then
                        // contradicted by master data
                        if t == 0 {
                            truth_value
                        } else if covered_is_stale[plan.id.0] {
                            Value::text(format!("{name}_v{}", (e + 1 + t) % 17))
                        } else if rng.gen::<f64>() < config.null_rate {
                            Value::Null
                        } else {
                            truth_value
                        }
                    }
                    AttrKind::MasterFollower { .. } => unreachable!("filled in the second pass"),
                    AttrKind::Free => {
                        if !is_latest && rng.gen::<f64>() < config.null_rate {
                            Value::Null
                        } else {
                            truth_value
                        }
                    }
                };
                row[plan.id.0] = value;
            }
            // Second pass: master followers mirror the pivot value this tuple
            // ended up with.  A correct pivot always comes with the true
            // follower value (never null), so the ϕ4-style rule can promote
            // those tuples without ever conflicting with ϕ7; a wrong pivot
            // carries a matching wrong follower value; a null pivot nulls the
            // follower as well.
            for plan in &plans {
                let AttrKind::MasterFollower { pivot } = &plan.kind else {
                    continue;
                };
                let name = schema.attr_name(plan.id);
                let pivot_id = schema.expect_attr(pivot);
                let pivot_value = &row[pivot_id.0];
                row[plan.id.0] = if pivot_value.is_null() {
                    Value::Null
                } else if pivot_value.same(truth.value(pivot_id)) {
                    truth.value(plan.id).clone()
                } else {
                    Value::text(format!("{name}_w{}", (e + 1 + t) % 17))
                };
            }
            instance.push_row(row).expect("generated rows conform");
        }

        if in_master {
            let mut mrow = Vec::with_capacity(master_schema.arity());
            for a in key_attrs.iter().chain(covered_attrs.iter()) {
                mrow.push(truth.value(*a).clone());
            }
            master.push_row(mrow).expect("master rows conform");
        }

        entities.push(GeneratedEntity {
            key: format!("{}_e{e}", schema.attr_name(key_attrs[0])),
            instance,
            truth,
            in_master,
            messy,
            ambiguous_attrs: ambiguous,
        });
    }

    // --- rules --------------------------------------------------------------
    let mut rules = RuleSet::new();
    let mut form1: Vec<TupleRule> = Vec::new();
    for plan in &plans {
        match &plan.kind {
            AttrKind::Currency => {
                form1.push(
                    TupleRule::new(
                        format!("cur[{}]", schema.attr_name(plan.id)),
                        vec![Predicate::cmp_attrs(plan.id, CmpOp::Lt)],
                        plan.id,
                    )
                    .with_tag("currency"),
                );
            }
            AttrKind::Correlated { driver } => {
                let driver_id = schema.expect_attr(driver);
                form1.push(
                    TupleRule::new(
                        format!(
                            "corr[{}->{}]",
                            schema.attr_name(driver_id),
                            schema.attr_name(plan.id)
                        ),
                        vec![Predicate::OrderLt { attr: driver_id }],
                        plan.id,
                    )
                    .with_tag("currency"),
                );
            }
            AttrKind::MasterFollower { pivot } => {
                let pivot_id = schema.expect_attr(pivot);
                // ϕ4 pattern: a tuple whose pivot disagrees with the (deduced)
                // target pivot value is less accurate on the follower than a
                // tuple whose pivot agrees with it.
                form1.push(
                    TupleRule::new(
                        format!(
                            "pivot[{}->{}]",
                            schema.attr_name(pivot_id),
                            schema.attr_name(plan.id)
                        ),
                        vec![
                            Predicate::Cmp {
                                left: Operand::Attr(TupleRef::T1, pivot_id),
                                op: CmpOp::Ne,
                                right: Operand::Target(pivot_id),
                            },
                            Predicate::Cmp {
                                left: Operand::Attr(TupleRef::T2, pivot_id),
                                op: CmpOp::Eq,
                                right: Operand::Target(pivot_id),
                            },
                        ],
                        plan.id,
                    )
                    .with_tag("pivot"),
                );
            }
            _ => {}
        }
    }
    // pad form-(1) rules with redundant variants carrying an extra benign
    // key-equality premise (the paper notes its hand-written ARs "often share
    // the same LHS"; padding mirrors the reported rule-set sizes)
    let base_form1 = form1.clone();
    let mut variant = 0usize;
    while config.target_form1_rules > 0 && form1.len() < config.target_form1_rules {
        let template = &base_form1[variant % base_form1.len()];
        let key = key_attrs[variant % key_attrs.len()];
        let mut premises = template.premises.clone();
        premises.push(Predicate::cmp_attrs(key, CmpOp::Eq));
        form1.push(
            TupleRule::new(
                format!("{}#v{variant}", template.name),
                premises,
                template.conclusion,
            )
            .with_tag("variant"),
        );
        variant += 1;
    }
    for r in form1 {
        rules.push(r);
    }

    let mut form2: Vec<MasterRule> = Vec::new();
    for (ci, covered) in covered_attrs.iter().enumerate() {
        let premises: Vec<MasterPremise> = key_attrs
            .iter()
            .map(|k| {
                MasterPremise::TargetEqMaster(*k, master_schema.expect_attr(schema.attr_name(*k)))
            })
            .collect();
        form2.push(MasterRule::new(
            format!("master[{}]", schema.attr_name(*covered)),
            premises,
            vec![(
                *covered,
                master_schema.expect_attr(schema.attr_name(*covered)),
            )],
        ));
        let _ = ci;
    }
    let base_form2 = form2.clone();
    let mut variant = 0usize;
    while !base_form2.is_empty()
        && config.target_form2_rules > 0
        && form2.len() < config.target_form2_rules
    {
        let template = &base_form2[variant % base_form2.len()];
        // redundant variant: same premises restricted to a single key attribute
        let key = key_attrs[variant % key_attrs.len()];
        let mut premises = template.premises.clone();
        premises.push(MasterPremise::TargetEqMaster(
            key,
            master_schema.expect_attr(schema.attr_name(key)),
        ));
        let mut rule = MasterRule::new(
            format!("{}#v{variant}", template.name),
            premises,
            template.assignments.clone(),
        );
        rule.tag = Some("variant".into());
        form2.push(rule);
        variant += 1;
    }
    for r in form2 {
        rules.push(r);
    }

    // --- constant CFDs relating master-covered attributes -------------------
    let mut cfds = Vec::new();
    if covered_attrs.len() >= 2 {
        let lhs = covered_attrs[0];
        let rhs = covered_attrs[1];
        for pool in 0..17usize {
            cfds.push(ConstantCfd::new(
                vec![(
                    lhs,
                    Value::text(format!("{}_v{}", schema.attr_name(lhs), pool)),
                )],
                (
                    rhs,
                    Value::text(format!("{}_v{}", schema.attr_name(rhs), pool)),
                ),
            ));
        }
    }

    Dataset {
        name: config.name.clone(),
        schema,
        master_schema,
        entities,
        master,
        rules,
        cfds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relacc_core::chase::is_cr;
    use relacc_fusion_metrics_shim::attribute_accuracy;

    /// tiny shim so the generator tests don't depend on relacc-fusion (which
    /// would create a dependency cycle); mirrors `relacc_fusion::metrics`.
    mod relacc_fusion_metrics_shim {
        use relacc_model::{AttrId, TargetTuple};
        pub fn attribute_accuracy(deduced: &TargetTuple, truth: &TargetTuple) -> f64 {
            let mut judged = 0usize;
            let mut correct = 0usize;
            for i in 0..truth.arity() {
                let t = truth.value(AttrId(i));
                if t.is_null() {
                    continue;
                }
                judged += 1;
                let d = deduced.value(AttrId(i));
                if !d.is_null() && d.same(t) {
                    correct += 1;
                }
            }
            if judged == 0 {
                1.0
            } else {
                correct as f64 / judged as f64
            }
        }
    }

    #[test]
    fn generation_is_deterministic_and_well_formed() {
        let config = GeneratorConfig::tiny(7);
        let a = generate(&config);
        let b = generate(&config);
        assert_eq!(a.entities.len(), 20);
        assert_eq!(a.total_tuples(), b.total_tuples());
        assert_eq!(a.master.len(), b.master.len());
        assert!(a.master.len() <= a.entities.len());
        assert_eq!(a.rules.len(), b.rules.len());
        assert!(a.rules.count_tuple_rules() >= 2);
        assert!(a.rules.count_master_rules() >= 1);
        // rules validate against the schemas
        a.rules
            .validate(&a.schema, &[a.master_schema.arity()])
            .unwrap();
        for (x, y) in a.entities.iter().zip(b.entities.iter()) {
            assert_eq!(x.instance, y.instance);
            assert_eq!(x.truth, y.truth);
            assert_eq!(x.messy, y.messy);
        }
    }

    #[test]
    fn every_specification_is_church_rosser_and_mostly_accurate() {
        let config = GeneratorConfig::tiny(11);
        let data = generate(&config);
        let mut cr = 0usize;
        let mut accuracy_sum = 0.0;
        for idx in 0..data.entities.len() {
            let spec = data.specification(idx);
            let run = is_cr(&spec);
            if let Some(te) = run.outcome.target() {
                cr += 1;
                accuracy_sum += attribute_accuracy(te, &data.entities[idx].truth);
            }
        }
        // the generator is designed so that every entity chases cleanly
        assert_eq!(cr, data.entities.len());
        let avg_accuracy = accuracy_sum / cr as f64;
        assert!(
            avg_accuracy > 0.5,
            "deduced values should mostly match the ground truth, got {avg_accuracy}"
        );
    }

    #[test]
    fn clean_entities_with_master_coverage_deduce_complete_targets() {
        let mut config = GeneratorConfig::tiny(13);
        config.messy_rate = 0.0;
        config.key_noise = 0.0;
        config.master_coverage = 1.0;
        let data = generate(&config);
        let mut complete = 0usize;
        for idx in 0..data.entities.len() {
            let spec = data.specification(idx);
            let run = is_cr(&spec);
            let te = run.outcome.target().expect("clean entities are CR");
            for a in data.schema.attr_ids() {
                let d = te.value(a);
                let t = data.entities[idx].truth.value(a);
                assert!(
                    d.is_null() || d.same(t),
                    "entity {idx}, attribute {}: deduced {d} but the truth is {t}\ninstance: {:?}",
                    data.schema.attr_name(a),
                    data.entities[idx].instance
                );
            }
            if te.is_complete() {
                complete += 1;
            }
        }
        // The only reason a clean, master-covered entity stays incomplete is an
        // attribute for which every tuple is null (no information at all).
        assert!(
            complete * 10 >= data.entities.len() * 8,
            "with full master coverage and no messy entities almost every target \
             is complete: {complete}/{}",
            data.entities.len()
        );
    }

    #[test]
    fn messy_entities_leave_their_ambiguous_attributes_undeduced() {
        let mut config = GeneratorConfig::tiny(17);
        config.messy_rate = 1.0;
        config.min_tuples = 4;
        config.max_tuples = 6;
        let data = generate(&config);
        let mut saw_incomplete = false;
        for (idx, entity) in data.entities.iter().enumerate() {
            if entity.ambiguous_attrs.is_empty() {
                continue;
            }
            let spec = data.specification(idx);
            let run = is_cr(&spec);
            let te = run.outcome.target().expect("messy entities stay CR");
            // an ambiguous attribute may never be deduced *wrong*
            for &a in &entity.ambiguous_attrs {
                if !te.is_null(a) {
                    assert!(te.value(a).same(entity.truth.value(a)));
                } else {
                    saw_incomplete = true;
                }
            }
        }
        assert!(
            saw_incomplete,
            "some ambiguous attribute should remain open"
        );
    }

    #[test]
    fn rule_padding_reaches_requested_counts() {
        let mut config = GeneratorConfig::tiny(3);
        config.target_form1_rules = 12;
        config.target_form2_rules = 5;
        let data = generate(&config);
        assert_eq!(data.rules.count_tuple_rules(), 12);
        assert_eq!(data.rules.count_master_rules(), 5);
        data.rules
            .validate(&data.schema, &[data.master_schema.arity()])
            .unwrap();
    }

    #[test]
    fn specification_variants_restrict_rules_and_master() {
        let data = generate(&GeneratorConfig::tiny(5));
        let both = data.specification(0);
        let f1 = data.specification_with(0, RuleForms::Form1Only, None);
        let f2 = data.specification_with(0, RuleForms::Form2Only, Some(1));
        assert!(both.rule_count() >= f1.rule_count());
        assert_eq!(f1.rules.count_master_rules(), 0);
        assert_eq!(f2.rules.count_tuple_rules(), 0);
        assert!(f2.master_size() <= 1);
    }

    #[test]
    fn master_data_unlocks_follower_attributes() {
        // With both rule forms the pivot rule resolves `arena` through the
        // master-assigned `team`; with form-(1) rules alone it usually cannot.
        let mut config = GeneratorConfig::tiny(23);
        config.messy_rate = 0.0;
        config.key_noise = 0.0;
        config.master_coverage = 1.0;
        config.covered_error_rate = 0.6;
        config.min_tuples = 3;
        config.max_tuples = 6;
        let data = generate(&config);
        let arena = data.schema.expect_attr("arena");
        let mut resolved_both = 0usize;
        let mut resolved_f1 = 0usize;
        for idx in 0..data.entities.len() {
            let both = is_cr(&data.specification_with(idx, RuleForms::Both, None));
            let f1 = is_cr(&data.specification_with(idx, RuleForms::Form1Only, None));
            if both
                .outcome
                .target()
                .map(|t| !t.is_null(arena))
                .unwrap_or(false)
            {
                resolved_both += 1;
            }
            if f1
                .outcome
                .target()
                .map(|t| !t.is_null(arena))
                .unwrap_or(false)
            {
                resolved_f1 += 1;
            }
        }
        assert!(
            resolved_both > resolved_f1,
            "form-(2) master data should unlock follower attributes: both={resolved_both} f1={resolved_f1}"
        );
    }

    #[test]
    fn cfds_hold_on_the_ground_truth() {
        let mut config = GeneratorConfig::tiny(9);
        config
            .attrs
            .push(AttrSpec::new("league", AttrKind::MasterCovered));
        let data = generate(&config);
        assert!(!data.cfds.is_empty());
        for entity in &data.entities {
            for cfd in &data.cfds {
                assert!(cfd.satisfied_by(|a| entity.truth.value(a).clone()));
            }
        }
    }
}
