//! Concrete workload configurations matching the shape parameters published in
//! Section 7 of the paper: `Med`, `CFP` and the synthetic `Syn` workload.
//!
//! The real `Med` and `CFP` datasets are proprietary / scraped and not
//! available; these configurations reproduce their published statistics
//! (attribute counts, entity counts, entity-size ranges, master-data sizes,
//! rule-set sizes and form split) on top of the generic generator.  A `scale`
//! parameter shrinks the entity count proportionally so the full experiment
//! suite stays fast on a laptop; `scale = 1.0` reproduces the paper's sizes.

use crate::generator::{generate, AttrKind, AttrSpec, Dataset, GeneratorConfig};

fn scaled(count: usize, scale: f64) -> usize {
    ((count as f64 * scale).round() as usize).max(1)
}

/// The `Med`-like workload: 30 attributes, 2.7K entities / 10K tuples at full
/// scale, entity sizes 1..83 (average ≈ 4), 2.4K-tuple master relation with 5
/// attributes, and 105 ARs (90 of form (1), 15 of form (2)).
pub fn med_config(scale: f64, seed: u64) -> GeneratorConfig {
    let mut attrs = vec![
        AttrSpec::new("name", AttrKind::Key),
        AttrSpec::new("regNo", AttrKind::Key),
        AttrSpec::new("batchSeq", AttrKind::Currency),
        AttrSpec::new("stockAge", AttrKind::Currency),
        AttrSpec::new("priceRev", AttrKind::Currency),
        AttrSpec::new("saleRound", AttrKind::Currency),
        AttrSpec::new(
            "price",
            AttrKind::Correlated {
                driver: "priceRev".into(),
            },
        ),
        AttrSpec::new(
            "packaging",
            AttrKind::Correlated {
                driver: "batchSeq".into(),
            },
        ),
        AttrSpec::new(
            "stockLevel",
            AttrKind::Correlated {
                driver: "stockAge".into(),
            },
        ),
        AttrSpec::new(
            "distributor",
            AttrKind::Correlated {
                driver: "saleRound".into(),
            },
        ),
        AttrSpec::new(
            "warehouse",
            AttrKind::Correlated {
                driver: "saleRound".into(),
            },
        ),
        AttrSpec::new(
            "expiry",
            AttrKind::Correlated {
                driver: "batchSeq".into(),
            },
        ),
        AttrSpec::new("manufacturer", AttrKind::MasterCovered),
        AttrSpec::new("approvalClass", AttrKind::MasterCovered),
        AttrSpec::new("dosageForm", AttrKind::MasterCovered),
        AttrSpec::new(
            "manufCountry",
            AttrKind::MasterFollower {
                pivot: "manufacturer".into(),
            },
        ),
        AttrSpec::new(
            "manufLicense",
            AttrKind::MasterFollower {
                pivot: "manufacturer".into(),
            },
        ),
        AttrSpec::new(
            "otcFlag",
            AttrKind::MasterFollower {
                pivot: "approvalClass".into(),
            },
        ),
        AttrSpec::new(
            "prescriptionTier",
            AttrKind::MasterFollower {
                pivot: "approvalClass".into(),
            },
        ),
        AttrSpec::new(
            "unitShape",
            AttrKind::MasterFollower {
                pivot: "dosageForm".into(),
            },
        ),
        AttrSpec::new(
            "storageClass",
            AttrKind::MasterFollower {
                pivot: "dosageForm".into(),
            },
        ),
        AttrSpec::new(
            "batchCode",
            AttrKind::Correlated {
                driver: "batchSeq".into(),
            },
        ),
        AttrSpec::new(
            "lotNumber",
            AttrKind::Correlated {
                driver: "batchSeq".into(),
            },
        ),
        AttrSpec::new(
            "wholesalePrice",
            AttrKind::Correlated {
                driver: "priceRev".into(),
            },
        ),
        AttrSpec::new(
            "stockSite",
            AttrKind::Correlated {
                driver: "stockAge".into(),
            },
        ),
        AttrSpec::new(
            "salesRegion",
            AttrKind::Correlated {
                driver: "saleRound".into(),
            },
        ),
        AttrSpec::new(
            "coldChain",
            AttrKind::MasterFollower {
                pivot: "dosageForm".into(),
            },
        ),
        AttrSpec::new(
            "importFlag",
            AttrKind::MasterFollower {
                pivot: "manufacturer".into(),
            },
        ),
    ];
    // remaining free attributes up to 30 in total
    for i in 0..2 {
        attrs.push(AttrSpec::new(format!("note{i}"), AttrKind::Free));
    }
    GeneratorConfig {
        name: "med".into(),
        attrs,
        n_entities: scaled(2700, scale),
        min_tuples: 1,
        max_tuples: 83,
        master_coverage: 2400.0 / 2700.0,
        null_rate: 0.08,
        covered_error_rate: 0.35,
        key_noise: 0.01,
        messy_rate: 0.25,
        max_ambiguous: 3,
        history_buckets: 5,
        target_form1_rules: 90,
        target_form2_rules: 15,
        seed,
    }
}

/// Generate the `Med`-like dataset.
pub fn med(scale: f64, seed: u64) -> Dataset {
    generate(&med_config(scale, seed))
}

/// The `CFP`-like workload: 22 attributes, 100 entities / ~500 tuples, entity
/// sizes 1..15 (average ≈ 5), a 55-entry master relation with 17 attributes'
/// worth of curated data, and 43 ARs (28 form (1), 15 form (2)).
pub fn cfp_config(scale: f64, seed: u64) -> GeneratorConfig {
    let mut attrs = vec![
        AttrSpec::new("acronym", AttrKind::Key),
        AttrSpec::new("year", AttrKind::Key),
        AttrSpec::new("cfpVersion", AttrKind::Currency),
        AttrSpec::new("editRound", AttrKind::Currency),
        AttrSpec::new(
            "deadline",
            AttrKind::Correlated {
                driver: "cfpVersion".into(),
            },
        ),
        AttrSpec::new(
            "notification",
            AttrKind::Correlated {
                driver: "cfpVersion".into(),
            },
        ),
        AttrSpec::new(
            "cameraReady",
            AttrKind::Correlated {
                driver: "cfpVersion".into(),
            },
        ),
        AttrSpec::new(
            "program",
            AttrKind::Correlated {
                driver: "editRound".into(),
            },
        ),
        AttrSpec::new(
            "keynotes",
            AttrKind::Correlated {
                driver: "editRound".into(),
            },
        ),
        AttrSpec::new("venue", AttrKind::MasterCovered),
        AttrSpec::new("city", AttrKind::MasterCovered),
        AttrSpec::new("organizer", AttrKind::MasterCovered),
        AttrSpec::new(
            "country",
            AttrKind::MasterFollower {
                pivot: "city".into(),
            },
        ),
        AttrSpec::new(
            "timezone",
            AttrKind::MasterFollower {
                pivot: "city".into(),
            },
        ),
        AttrSpec::new(
            "hotelBlock",
            AttrKind::MasterFollower {
                pivot: "venue".into(),
            },
        ),
        AttrSpec::new(
            "sponsorTier",
            AttrKind::MasterFollower {
                pivot: "organizer".into(),
            },
        ),
        AttrSpec::new(
            "registrationSite",
            AttrKind::MasterFollower {
                pivot: "organizer".into(),
            },
        ),
        AttrSpec::new(
            "proceedings",
            AttrKind::MasterFollower {
                pivot: "venue".into(),
            },
        ),
        AttrSpec::new(
            "submissionSite",
            AttrKind::Correlated {
                driver: "cfpVersion".into(),
            },
        ),
        AttrSpec::new(
            "pageLimit",
            AttrKind::Correlated {
                driver: "cfpVersion".into(),
            },
        ),
        AttrSpec::new(
            "workshopList",
            AttrKind::Correlated {
                driver: "editRound".into(),
            },
        ),
    ];
    for i in 0..1 {
        attrs.push(AttrSpec::new(format!("topic{i}"), AttrKind::Free));
    }
    GeneratorConfig {
        name: "cfp".into(),
        attrs,
        n_entities: scaled(100, scale),
        min_tuples: 1,
        max_tuples: 15,
        master_coverage: 0.55,
        null_rate: 0.10,
        covered_error_rate: 0.15,
        key_noise: 0.01,
        messy_rate: 0.15,
        max_ambiguous: 4,
        history_buckets: 4,
        target_form1_rules: 28,
        target_form2_rules: 15,
        seed,
    }
}

/// Generate the `CFP`-like dataset.
pub fn cfp(scale: f64, seed: u64) -> Dataset {
    generate(&cfp_config(scale, seed))
}

/// The synthetic `Syn` workload of Exp-4: a single entity instance of `ie_size`
/// tuples over 20 attributes (extending the `stat`/`nba` shape), `im_size`
/// master tuples and `sigma_size` rules (75% form (1), 25% form (2)).
pub fn syn_config(ie_size: usize, im_size: usize, sigma_size: usize, seed: u64) -> GeneratorConfig {
    let form2 = (sigma_size / 4).max(1);
    let form1 = sigma_size.saturating_sub(form2).max(1);
    let attrs = vec![
        AttrSpec::new("FN", AttrKind::Key),
        AttrSpec::new("LN", AttrKind::Key),
        AttrSpec::new("rnds", AttrKind::Currency),
        AttrSpec::new("games", AttrKind::Currency),
        AttrSpec::new("minutes", AttrKind::Currency),
        AttrSpec::new("season", AttrKind::Currency),
        AttrSpec::new(
            "totalPts",
            AttrKind::Correlated {
                driver: "rnds".into(),
            },
        ),
        AttrSpec::new(
            "J#",
            AttrKind::Correlated {
                driver: "rnds".into(),
            },
        ),
        AttrSpec::new(
            "assists",
            AttrKind::Correlated {
                driver: "games".into(),
            },
        ),
        AttrSpec::new(
            "rebounds",
            AttrKind::Correlated {
                driver: "games".into(),
            },
        ),
        AttrSpec::new(
            "fouls",
            AttrKind::Correlated {
                driver: "minutes".into(),
            },
        ),
        AttrSpec::new(
            "salary",
            AttrKind::Correlated {
                driver: "season".into(),
            },
        ),
        AttrSpec::new("league", AttrKind::MasterCovered),
        AttrSpec::new("team", AttrKind::MasterCovered),
        AttrSpec::new(
            "arena",
            AttrKind::MasterFollower {
                pivot: "team".into(),
            },
        ),
        AttrSpec::new(
            "division",
            AttrKind::MasterFollower {
                pivot: "league".into(),
            },
        ),
        AttrSpec::new("coach", AttrKind::Free),
        AttrSpec::new("captain", AttrKind::Free),
        AttrSpec::new("sponsor", AttrKind::Free),
        AttrSpec::new("city", AttrKind::Free),
    ];
    GeneratorConfig {
        name: "syn".into(),
        attrs,
        // one big entity instance plus enough extra entities to fill the
        // requested master size (master tuples come from covered entities)
        n_entities: 1 + im_size,
        min_tuples: 1,
        max_tuples: 1,
        master_coverage: 1.0,
        null_rate: 0.08,
        covered_error_rate: 0.25,
        key_noise: 0.0,
        messy_rate: 0.35,
        max_ambiguous: 3,
        history_buckets: 12,
        target_form1_rules: form1,
        target_form2_rules: form2,
        seed: seed ^ (ie_size as u64).wrapping_mul(0x9E37_79B9),
    }
}

/// A synthetic Exp-4 instance: the specification of a single large entity with
/// the requested `‖Ie‖`, `‖Im‖` and `‖Σ‖`.
#[derive(Debug, Clone)]
pub struct SynInstance {
    /// The generated specification.
    pub spec: relacc_core::Specification,
    /// The ground truth of the big entity.
    pub truth: relacc_model::TargetTuple,
}

/// Trim a generated rule set to exactly `form1` form-(1) rules and `form2`
/// form-(2) rules (the generator never produces fewer than the base rules, so
/// small `‖Σ‖` requests need truncation).
fn trim_rules(rules: &relacc_core::RuleSet, form1: usize, form2: usize) -> relacc_core::RuleSet {
    let mut out = relacc_core::RuleSet::new();
    out.axioms = rules.axioms;
    let mut kept1 = 0usize;
    let mut kept2 = 0usize;
    for rule in rules.rules() {
        match rule {
            relacc_core::AccuracyRule::Tuple(_) if kept1 < form1 => {
                kept1 += 1;
                out.push(rule.clone());
            }
            relacc_core::AccuracyRule::Master(_) if kept2 < form2 => {
                kept2 += 1;
                out.push(rule.clone());
            }
            _ => {}
        }
    }
    out
}

/// Generate a `Syn` instance.  The big entity's instance has exactly `ie_size`
/// tuples; the master relation is truncated to `im_size` tuples (always keeping
/// the big entity's own master tuple first so form-(2) rules stay applicable).
pub fn syn(ie_size: usize, im_size: usize, sigma_size: usize, seed: u64) -> SynInstance {
    // generate the surrounding collection for master data
    let mut config = syn_config(ie_size, im_size, sigma_size, seed);
    let data = generate(&config);

    // regenerate the big entity alone with the requested instance size
    config.n_entities = 1;
    config.min_tuples = ie_size;
    config.max_tuples = ie_size;
    config.seed ^= 0xABCD_EF01;
    let big = generate(&config);

    let mut master = relacc_model::MasterRelation::new(data.master_schema.clone());
    // the big entity's master tuple first
    if let Some(first) = big.master.tuples().first() {
        master.push_row(first.values().to_vec()).expect("conforms");
    }
    for t in data.master.tuples() {
        if master.len() >= im_size.max(1) {
            break;
        }
        master.push_row(t.values().to_vec()).expect("conforms");
    }

    let form2 = (sigma_size / 4).max(1);
    let form1 = sigma_size.saturating_sub(form2).max(1);
    let rules = trim_rules(&big.rules, form1, form2);
    let spec = relacc_core::Specification::new(big.entities[0].instance.clone(), rules)
        .with_master(master);
    SynInstance {
        spec,
        truth: big.entities[0].truth.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relacc_core::chase::is_cr;

    #[test]
    fn med_and_cfp_shapes_match_the_paper() {
        let med = med(0.02, 1); // 2% scale for the unit test
        assert_eq!(med.schema.arity(), 30);
        assert_eq!(med.master_schema.arity(), 5);
        assert_eq!(med.rules.count_tuple_rules(), 90);
        assert_eq!(med.rules.count_master_rules(), 15);
        assert_eq!(med.entities.len(), 54);

        let cfp = cfp(1.0, 2);
        assert_eq!(cfp.schema.arity(), 22);
        assert_eq!(cfp.entities.len(), 100);
        assert_eq!(cfp.rules.count_tuple_rules(), 28);
        assert_eq!(cfp.rules.count_master_rules(), 15);
        let avg = cfp.total_tuples() as f64 / cfp.entities.len() as f64;
        assert!(avg > 1.5 && avg < 10.0, "average entity size {avg}");
    }

    #[test]
    fn syn_instance_has_requested_sizes_and_chases() {
        let inst = syn(60, 10, 20, 7);
        assert_eq!(inst.spec.entity_size(), 60);
        assert!(inst.spec.master_size() <= 10);
        assert_eq!(inst.spec.rule_count(), 20);
        let run = is_cr(&inst.spec);
        assert!(run.outcome.is_church_rosser());
        let te = run.outcome.target().unwrap();
        // the currency attributes must be deduced correctly
        let rnds = inst.spec.ie.schema().expect_attr("rnds");
        assert_eq!(te.value(rnds), inst.truth.value(rnds));
    }
}
