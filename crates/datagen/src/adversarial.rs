//! Adversarial resolution workloads: shapes chosen to stress the
//! `O(block²)` pairwise-comparison path rather than the chase.
//!
//! The paper's workloads (`Med`, `CFP`, `Rest`) block into many small
//! entity-sized groups, so resolution cost is dominated by block count, not
//! block size.  [`large_blocks`] inverts that: a handful of hot blocking
//! keys, each shared by many rows with *long* string payloads — a mix of
//! near-duplicates (small edit distance, real matches that must survive the
//! fingerprint cascade) and unrelated strings of the same shape (which the
//! cascade should prune before any alignment).  This is the benchmark shape
//! for `crates/bench/benches/resolve.rs` and the differential tests of the
//! cascade.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relacc_model::{DataType, Schema, Value};
use relacc_store::Relation;

/// Configuration of the [`large_blocks`] shape (a pure function of this
/// config — same config, same dataset).
#[derive(Debug, Clone)]
pub struct LargeBlocksConfig {
    /// Number of hot blocking keys (blocks).  Every row lands in one of
    /// them, so pair count grows with `rows_per_block²`.
    pub n_blocks: usize,
    /// Rows per hot block.
    pub rows_per_block: usize,
    /// Whitespace-separated tokens per payload.  Every third block doubles
    /// this so its strings exceed 64 chars and exercise the DP fallback
    /// behind the bit-parallel path.
    pub tokens_per_payload: usize,
    /// Fraction of a block's rows that are near-duplicates of the block's
    /// base string (1–2 char edits, above any sane match threshold); the
    /// rest are unrelated strings of the same length and token shape.
    pub near_dup_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LargeBlocksConfig {
    fn default() -> Self {
        LargeBlocksConfig {
            n_blocks: 12,
            rows_per_block: 48,
            tokens_per_payload: 6,
            near_dup_rate: 0.5,
            seed: 7,
        }
    }
}

impl LargeBlocksConfig {
    /// A tiny configuration for smoke tests.
    pub fn tiny(seed: u64) -> Self {
        LargeBlocksConfig {
            n_blocks: 3,
            rows_per_block: 6,
            tokens_per_payload: 4,
            near_dup_rate: 0.5,
            seed,
        }
    }
}

/// The [`large_blocks`] output: a relation plus the resolution parameters
/// the shape is calibrated for.
#[derive(Debug, Clone)]
pub struct LargeBlocksDataset {
    /// The rows: `name` (the hot-key-prefixed payload) and `obs` (an
    /// unmatched running observation counter).
    pub relation: Relation,
    /// Attribute names to match on (`["name"]`) — under the default
    /// 6-char-prefix blocking the leading `k____ ` tag groups each block.
    pub match_attrs: Vec<String>,
    /// Match threshold the near-duplicate edit budget is calibrated
    /// against: near-duplicates land well above it, unrelated payloads well
    /// below.
    pub threshold: f64,
}

const TOKEN_LEN: usize = 7;
const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789";

fn random_payload(rng: &mut StdRng, tokens: usize) -> String {
    let mut out = String::with_capacity(tokens * (TOKEN_LEN + 1));
    for t in 0..tokens {
        if t > 0 {
            out.push(' ');
        }
        for _ in 0..TOKEN_LEN {
            out.push(ALPHABET[rng.gen_range(0..ALPHABET.len())] as char);
        }
    }
    out
}

/// Apply 1–2 random in-place char substitutions, never touching the token
/// separators (so the token shape survives and similarity stays high).
fn near_duplicate(rng: &mut StdRng, base: &str) -> String {
    let mut chars: Vec<char> = base.chars().collect();
    let edits = 1 + rng.gen_range(0..2usize);
    for _ in 0..edits {
        let pos = rng.gen_range(0..chars.len());
        if chars[pos] == ' ' {
            continue;
        }
        chars[pos] = ALPHABET[rng.gen_range(0..ALPHABET.len())] as char;
    }
    chars.into_iter().collect()
}

/// Generate the adversarial large-block relation.
///
/// Rows are named `k<block:04> <payload>`: under the default
/// `BlockingStrategy::Prefix(6)` the normalized key prefix is exactly the
/// block tag, so all `rows_per_block` rows of a block collide into one hot
/// block.  Within a block, a `near_dup_rate` fraction of rows are 1–2-edit
/// variants of the block's base payload (true duplicates) and the rest are
/// fresh random payloads (true non-matches sharing only the tag).
pub fn large_blocks(config: &LargeBlocksConfig) -> LargeBlocksDataset {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let schema = Schema::builder("large_blocks")
        .attr("name", DataType::Text)
        .attr("obs", DataType::Int)
        .build();
    let mut relation = Relation::new(schema);
    let mut obs = 0i64;
    for block in 0..config.n_blocks {
        // every third block doubles the payload so its strings exceed the
        // 64-char bit-parallel limit and take the DP fallback
        let tokens = if block % 3 == 2 {
            config.tokens_per_payload * 2
        } else {
            config.tokens_per_payload
        };
        let base = random_payload(&mut rng, tokens);
        for _ in 0..config.rows_per_block {
            let payload = if rng.gen_bool(config.near_dup_rate) {
                near_duplicate(&mut rng, &base)
            } else {
                random_payload(&mut rng, tokens)
            };
            relation
                .push_row(vec![
                    Value::text(format!("k{block:04} {payload}")),
                    Value::Int(obs),
                ])
                .expect("generated rows conform to the schema");
            obs += 1;
        }
    }
    LargeBlocksDataset {
        relation,
        match_attrs: vec!["name".into()],
        threshold: 0.85,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relacc_resolve::{resolve_relation, ResolveConfig};

    #[test]
    fn large_blocks_is_deterministic_and_well_formed() {
        let config = LargeBlocksConfig::default();
        let a = large_blocks(&config);
        let b = large_blocks(&config);
        assert_eq!(a.relation.rows(), b.relation.rows(), "deterministic");
        assert_eq!(a.relation.len(), config.n_blocks * config.rows_per_block);
        // a different seed produces a different dataset
        let other = large_blocks(&LargeBlocksConfig {
            seed: config.seed + 1,
            ..config.clone()
        });
        assert_ne!(a.relation.rows(), other.relation.rows());
        // every third block carries >64-char names (DP fallback), the rest
        // stay within the bit-parallel budget
        let name_len = |row: usize| match a.relation.rows()[row].value(relacc_model::AttrId(0)) {
            relacc_model::Value::Str(s) => s.chars().count(),
            other => panic!("name must be text, got {other:?}"),
        };
        assert!(name_len(2 * config.rows_per_block) > 64, "long block");
        assert!(name_len(0) <= 64, "short block");
    }

    #[test]
    fn shape_concentrates_pairs_into_hot_blocks() {
        let config = LargeBlocksConfig::tiny(11);
        let data = large_blocks(&config);
        let resolve =
            ResolveConfig::on_attrs(data.match_attrs.clone()).with_threshold(data.threshold);
        let resolved = resolve_relation(&data.relation, &resolve);
        // all pairs come from the n_blocks hot blocks
        let per_block = config.rows_per_block * (config.rows_per_block - 1) / 2;
        assert_eq!(
            resolved.stats.pairs_considered,
            config.n_blocks * per_block,
            "prefix blocking collapses each tag into one hot block"
        );
        // near-duplicates merge, unrelated payloads stay apart: strictly
        // fewer entities than rows, strictly more than blocks
        assert!(resolved.entities.len() < data.relation.len());
        assert!(resolved.entities.len() > config.n_blocks);
        // the cascade must prune a substantial share of the hot-block pairs
        assert!(
            resolved.stats.pruned_fraction() > 0.3,
            "pruned {:.2}",
            resolved.stats.pruned_fraction()
        );
    }
}
