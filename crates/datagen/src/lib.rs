//! # relacc-datagen
//!
//! Workload generators with ground truth for the experimental study of
//! *"Determining the Relative Accuracy of Attributes"* (SIGMOD 2013):
//!
//! * [`paper_example`] — the running example (`stat`, `nba`, ϕ1–ϕ11) of
//!   Tables 1–3, hard-coded;
//! * [`generator`] — a configurable entity-collection generator with currency,
//!   correlated, master-covered and free attributes, sparse errors/nulls, and
//!   automatically emitted rule sets;
//! * [`workloads`] — the `Med`-like, `CFP`-like and `Syn` configurations
//!   matching the paper's published shape parameters;
//! * [`mod@rest`] — the multi-source, multi-snapshot restaurant workload used
//!   for the truth-discovery comparison (Exp-5 / Table 4);
//! * [`streaming`] — update-stream versions of the workloads
//!   (insert/delete/master-append mixes) for the incremental-repair pipeline;
//! * [`adversarial`] — resolution stress shapes (few hot blocking keys, long
//!   near-duplicate strings) for the fingerprint-cascade benchmarks.
//!
//! The real `Med`, `CFP` and `Rest` datasets are not publicly available; the
//! substitutions and their rationale are documented in `DESIGN.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversarial;
pub mod generator;
pub mod paper_example;
pub mod rest;
pub mod streaming;
pub mod workloads;

pub use adversarial::{large_blocks, LargeBlocksConfig, LargeBlocksDataset};
pub use generator::{
    generate, AttrKind, AttrSpec, Dataset, GeneratedEntity, GeneratorConfig, RuleForms,
};
pub use rest::{rest, RestConfig, RestDataset, Restaurant};
pub use streaming::{med_stream, rest_stream, StreamConfig, StreamOp, UpdateStream};
pub use workloads::{cfp, cfp_config, med, med_config, syn, syn_config, SynInstance};
