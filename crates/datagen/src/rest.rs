//! The `Rest`-like workload: multi-source, multi-snapshot restaurant listings
//! with a single Boolean attribute (`closed?`) to resolve.
//!
//! The original data (Dong et al.'s Manhattan restaurant feed: 8 weekly
//! snapshots of 12 web sources covering 5 149 restaurants) is mirrored here
//! synthetically, preserving the error structure that drives Table 4:
//!
//! * most sources are **static**: they report the same belief in every
//!   snapshot, so within-source listings carry *no currency signal* — this is
//!   why `DeduceOrder`, which only reasons about currency and consistency,
//!   finds very few closures (but never a wrong one: perfect precision, low
//!   recall);
//! * a small number of `(source, restaurant)` pairs are **trackers** whose
//!   listing flips from open to closed at the closure date — the only currency
//!   evidence in the data, and the extra signal the accuracy rules contribute
//!   on top of plain voting;
//! * sources split into a **reliable** and an **unreliable** tier; unreliable
//!   sources frequently list *confusable* open restaurants (renamed, moved,
//!   duplicate listings) as closed, which is what drags the precision of
//!   majority voting down;
//! * some sources **copy** an unreliable source verbatim, amplifying its
//!   mistakes — the phenomenon `copyCEF` detects and discounts;
//! * **recent closures** (at the very end of the window) are missed by almost
//!   every source, bounding everyone's recall.
//!
//! The generator emits both views used in Exp-5:
//!
//! * [`RestDataset::observations`] — the flattened source claims consumed by
//!   `voting` and `copyCEF`;
//! * per-restaurant entity instances (source, snapshot, closed) with a currency
//!   rule on `snapshot`, consumed by `DeduceOrder` and `TopKCT`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relacc_core::rules::{Predicate, RuleSet, TupleRule};
use relacc_core::Specification;
use relacc_fusion::{ObjectId, SourceId, SourceObservations};
use relacc_model::{CmpOp, DataType, EntityInstance, Schema, SchemaRef, TargetTuple, Value};

/// Configuration of the restaurant workload.
#[derive(Debug, Clone)]
pub struct RestConfig {
    /// Number of restaurants.
    pub n_restaurants: usize,
    /// Number of independent sources (before copiers are added).
    pub n_sources: usize,
    /// Number of sources in the *unreliable* tier (taken from the end of the
    /// independent-source range).
    pub n_unreliable: usize,
    /// Number of sources that copy an unreliable source verbatim.
    pub n_copiers: usize,
    /// Number of weekly snapshots.
    pub n_snapshots: usize,
    /// Fraction of restaurants that close during the observation window.
    pub closure_rate: f64,
    /// Fraction of closures that happen at the very last snapshot (too recent
    /// for any source to have noticed).
    pub recent_closure_rate: f64,
    /// Probability that a `(source, restaurant)` pair *tracks* the closure,
    /// i.e. the source's listing visibly flips from open to closed.
    pub tracker_rate: f64,
    /// Fraction of open restaurants that are confusable (renamed / moved /
    /// duplicate listings) and therefore often wrongly listed as closed.
    pub confusable_rate: f64,
    /// Probability that a reliable source misses a (non-recent) closure.
    pub reliable_miss_rate: f64,
    /// Probability that an unreliable source misses a (non-recent) closure.
    pub unreliable_miss_rate: f64,
    /// Probability that a reliable source lists a confusable open restaurant
    /// as closed.
    pub reliable_confusion_rate: f64,
    /// Probability that an unreliable source lists a confusable open
    /// restaurant as closed.
    pub unreliable_confusion_rate: f64,
    /// Probability that a source wrongly lists an ordinary open restaurant as
    /// closed.
    pub base_false_closed_rate: f64,
    /// Probability that a source misses a restaurant in a snapshot.
    pub missing_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RestConfig {
    fn default() -> Self {
        RestConfig {
            n_restaurants: 5149,
            n_sources: 10,
            n_unreliable: 4,
            n_copiers: 2,
            n_snapshots: 8,
            closure_rate: 0.12,
            recent_closure_rate: 0.06,
            tracker_rate: 0.03,
            confusable_rate: 0.14,
            reliable_miss_rate: 0.12,
            unreliable_miss_rate: 0.45,
            reliable_confusion_rate: 0.22,
            unreliable_confusion_rate: 0.80,
            base_false_closed_rate: 0.01,
            missing_rate: 0.10,
            seed: 42,
        }
    }
}

impl RestConfig {
    /// A scaled-down configuration (fewer restaurants), keeping everything else.
    pub fn scaled(scale: f64, seed: u64) -> Self {
        RestConfig {
            n_restaurants: ((5149.0 * scale).round() as usize).max(10),
            seed,
            ..RestConfig::default()
        }
    }
}

/// One generated restaurant.
#[derive(Debug, Clone)]
pub struct Restaurant {
    /// Restaurant name.
    pub name: String,
    /// Whether it is closed at the end of the window (the truth of `closed?`).
    pub closed: bool,
    /// Whether it is an open restaurant that sources tend to confuse with a
    /// closed one (renamed / moved / duplicate listing).
    pub confusable: bool,
    /// The per-source, per-snapshot entity instance over
    /// `(source, snapshot, closed)`.
    pub instance: EntityInstance,
    /// The ground-truth target tuple of that instance.
    pub truth: TargetTuple,
}

/// The generated restaurant workload.
#[derive(Debug, Clone)]
pub struct RestDataset {
    /// Schema of the per-restaurant entity instances.
    pub schema: SchemaRef,
    /// The restaurants.
    pub restaurants: Vec<Restaurant>,
    /// Flattened latest-snapshot claims per source (input of voting/copyCEF).
    pub observations: SourceObservations,
    /// Names of the sources (copiers carry a `copy_of_<i>` suffix).
    pub source_names: Vec<String>,
    /// The accuracy rules for the entity-instance view (a currency rule on
    /// `snapshot` and a per-source rule pushing `closed` along with it).
    pub rules: RuleSet,
    /// Which source each copier copies (`copier index → original index`).
    pub copy_map: Vec<(usize, usize)>,
}

impl RestDataset {
    /// Build the specification of restaurant `idx` (no master data).
    pub fn specification(&self, idx: usize) -> Specification {
        Specification::new(self.restaurants[idx].instance.clone(), self.rules.clone())
    }

    /// Ground-truth set of closed restaurant indices.
    pub fn closed_truth(&self) -> Vec<usize> {
        self.restaurants
            .iter()
            .enumerate()
            .filter(|(_, r)| r.closed)
            .map(|(i, _)| i)
            .collect()
    }
}

/// Generate the restaurant workload.
pub fn rest(config: &RestConfig) -> RestDataset {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let total_sources = config.n_sources + config.n_copiers;
    let n_unreliable = config.n_unreliable.min(config.n_sources);
    let first_unreliable = config.n_sources - n_unreliable;

    // copiers replicate an unreliable source (or any source when there is no
    // unreliable tier)
    let copy_map: Vec<(usize, usize)> = (0..config.n_copiers)
        .map(|c| {
            let original = if n_unreliable > 0 {
                first_unreliable + rng.gen_range(0..n_unreliable)
            } else {
                rng.gen_range(0..config.n_sources.max(1))
            };
            (config.n_sources + c, original)
        })
        .collect();

    let mut source_names: Vec<String> = (0..config.n_sources).map(|i| format!("src{i}")).collect();
    for (copier, original) in &copy_map {
        source_names.push(format!("src{copier}_copy_of_{original}"));
    }

    let schema = Schema::builder("rest")
        .attr("source", DataType::Text)
        .attr("snapshot", DataType::Int)
        .attr("closed", DataType::Bool)
        .build();
    let snapshot_attr = schema.expect_attr("snapshot");
    let closed_attr = schema.expect_attr("closed");
    let source_attr = schema.expect_attr("source");

    let rules = RuleSet::from_rules([
        TupleRule::new(
            "snapshot_currency",
            vec![Predicate::cmp_attrs(snapshot_attr, CmpOp::Lt)],
            snapshot_attr,
        )
        .with_tag("currency"),
        // Within one source, a later snapshot's closed? flag supersedes an
        // earlier one.  The paper's 131 Rest ARs are per-source currency rules
        // of this shape; restricting the premise to a single source is what
        // keeps the specifications Church-Rosser despite disagreeing sources.
        TupleRule::new(
            "closed_follows_snapshot",
            vec![
                Predicate::cmp_attrs(source_attr, CmpOp::Eq),
                Predicate::OrderLt {
                    attr: snapshot_attr,
                },
            ],
            closed_attr,
        )
        .with_tag("currency"),
    ]);

    let restaurant_names: Vec<String> = (0..config.n_restaurants)
        .map(|i| format!("restaurant{i}"))
        .collect();
    let mut observations = SourceObservations::new(source_names.clone(), restaurant_names.clone());

    let mut restaurants = Vec::with_capacity(config.n_restaurants);
    for (r_idx, name) in restaurant_names.iter().enumerate() {
        let closes = rng.gen::<f64>() < config.closure_rate;
        let recent = closes && rng.gen::<f64>() < config.recent_closure_rate;
        // closure happens strictly inside the window (so trackers can observe
        // both states), except for recent closures which happen at the very end
        let closure_snapshot = if !closes {
            usize::MAX
        } else if recent {
            config.n_snapshots - 1
        } else {
            rng.gen_range(1..config.n_snapshots.saturating_sub(1).max(2))
        };
        let confusable = !closes && rng.gen::<f64>() < config.confusable_rate;

        let mut instance = EntityInstance::new(schema.clone());
        // final (latest-snapshot) claim per source, used for voting / copyCEF
        let mut final_claims: Vec<Option<bool>> = vec![None; total_sources];
        for s in 0..config.n_sources {
            let unreliable = s >= first_unreliable;
            // the source's static belief about this restaurant
            let belief = if closes {
                if recent {
                    // nobody has caught a closure that just happened
                    false
                } else {
                    let miss = if unreliable {
                        config.unreliable_miss_rate
                    } else {
                        config.reliable_miss_rate
                    };
                    rng.gen::<f64>() >= miss
                }
            } else if confusable {
                let confusion = if unreliable {
                    config.unreliable_confusion_rate
                } else {
                    config.reliable_confusion_rate
                };
                rng.gen::<f64>() < confusion
            } else {
                rng.gen::<f64>() < config.base_false_closed_rate
            };
            // A tracker pair: the source's listing visibly flips from open to
            // closed at the closure date.  Only sources that did catch the
            // closure can have tracked it, so the flip is always genuine —
            // currency evidence never lies (DeduceOrder's perfect precision).
            let tracks = closes && !recent && belief && rng.gen::<f64>() < config.tracker_rate;
            for snapshot in 0..config.n_snapshots {
                if rng.gen::<f64>() < config.missing_rate {
                    continue;
                }
                let reported = if tracks {
                    snapshot >= closure_snapshot
                } else {
                    belief
                };
                instance
                    .push_row(vec![
                        Value::text(source_names[s].clone()),
                        Value::Int(snapshot as i64),
                        Value::Bool(reported),
                    ])
                    .expect("rest rows conform");
                final_claims[s] = Some(reported);
            }
        }
        // copiers replicate their original's latest claim (and one row)
        for (copier, original) in &copy_map {
            if let Some(claim) = final_claims[*original] {
                final_claims[*copier] = Some(claim);
                instance
                    .push_row(vec![
                        Value::text(source_names[*copier].clone()),
                        Value::Int((config.n_snapshots - 1) as i64),
                        Value::Bool(claim),
                    ])
                    .expect("rest rows conform");
            }
        }
        for (s, claim) in final_claims.iter().enumerate() {
            if let Some(c) = claim {
                observations.record(ObjectId(r_idx), SourceId(s), Value::Bool(*c));
            }
        }

        let truth = TargetTuple::from_values(vec![
            Value::Null, // no single true "source"
            Value::Int((config.n_snapshots - 1) as i64),
            Value::Bool(closes),
        ]);
        restaurants.push(Restaurant {
            name: name.clone(),
            closed: closes,
            confusable,
            instance,
            truth,
        });
    }

    RestDataset {
        schema,
        restaurants,
        observations,
        source_names,
        rules,
        copy_map,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relacc_core::chase::is_cr;
    use relacc_fusion::{copy_cef, voting_over_sources, CopyCefConfig};

    fn small() -> RestDataset {
        rest(&RestConfig {
            n_restaurants: 300,
            seed: 9,
            ..RestConfig::default()
        })
    }

    #[test]
    fn shapes_and_determinism() {
        let a = small();
        let b = small();
        assert_eq!(a.restaurants.len(), 300);
        assert_eq!(a.source_names.len(), 12);
        assert_eq!(a.observations.source_count(), 12);
        assert_eq!(a.observations.object_count(), 300);
        assert_eq!(a.copy_map.len(), 2);
        assert_eq!(a.closed_truth(), b.closed_truth());
        assert!(!a.closed_truth().is_empty());
    }

    #[test]
    fn copiers_agree_with_their_original() {
        let d = small();
        for (copier, original) in &d.copy_map {
            let agreement = d
                .observations
                .agreement(SourceId(*copier), SourceId(*original))
                .unwrap();
            assert!(agreement > 0.95, "copier agreement {agreement}");
            // copiers copy the unreliable tier
            assert!(
                *original >= RestConfig::default().n_sources - RestConfig::default().n_unreliable
            );
        }
    }

    #[test]
    fn every_restaurant_specification_is_church_rosser() {
        let d = small();
        for i in 0..d.restaurants.len().min(60) {
            let run = is_cr(&d.specification(i));
            assert!(run.outcome.is_church_rosser(), "restaurant {i}");
        }
    }

    #[test]
    fn currency_evidence_is_scarce_but_never_wrong() {
        // DeduceOrder's behaviour on this workload: the chase with the currency
        // rules alone concludes "closed" for only a small fraction of the
        // closed restaurants, and never for an open one that some source still
        // lists as open.
        let d = small();
        let closed_attr = d.schema.expect_attr("closed");
        let mut concluded_closed = 0usize;
        let mut wrong = 0usize;
        let mut closed_total = 0usize;
        for (i, r) in d.restaurants.iter().enumerate() {
            if r.closed {
                closed_total += 1;
            }
            let run = is_cr(&d.specification(i));
            let te = run.outcome.target().unwrap();
            if te.value(closed_attr).same(&Value::Bool(true)) {
                concluded_closed += 1;
                if !r.closed {
                    wrong += 1;
                }
            }
        }
        assert_eq!(
            wrong, 0,
            "currency evidence must never conclude a wrong closure"
        );
        assert!(closed_total > 0);
        assert!(
            concluded_closed < closed_total / 2,
            "most closures have no currency evidence: {concluded_closed}/{closed_total}"
        );
    }

    #[test]
    fn entity_view_chases_and_truth_discovery_works() {
        let d = small();
        // copyCEF runs end-to-end on the observation view
        let result = copy_cef(&d.observations, &CopyCefConfig::default());
        assert_eq!(result.truths.len(), 300);
        let votes = voting_over_sources(&d.observations);
        assert_eq!(votes.len(), 300);
    }
}
