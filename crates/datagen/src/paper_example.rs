//! The paper's running example: relation `stat` (Table 1), master relation
//! `nba` (Table 2) and the accuracy rules ϕ1–ϕ11 (Table 3 / Example 3), all
//! hard-coded so that examples and tests can reproduce Examples 1–10 verbatim.

use relacc_core::rules::parse_ruleset;
use relacc_core::{RuleSet, Specification};
use relacc_model::{
    DataType, EntityInstance, MasterRelation, Schema, SchemaRef, TargetTuple, Value,
};

/// The schema of the `stat` relation (Table 1).
pub fn stat_schema() -> SchemaRef {
    Schema::builder("stat")
        .attr("FN", DataType::Text)
        .attr("MN", DataType::Text)
        .attr("LN", DataType::Text)
        .attr("rnds", DataType::Int)
        .attr("totalPts", DataType::Int)
        .attr("J#", DataType::Int)
        .attr("league", DataType::Text)
        .attr("team", DataType::Text)
        .attr("arena", DataType::Text)
        .build()
}

/// The schema of the `nba` master relation (Table 2).
pub fn nba_schema() -> SchemaRef {
    Schema::builder("nba")
        .attr("FN", DataType::Text)
        .attr("LN", DataType::Text)
        .attr("league", DataType::Text)
        .attr("season", DataType::Text)
        .attr("team", DataType::Text)
        .build()
}

/// The entity instance `stat` for Michael Jordan in the 1994-95 season
/// (tuples t1–t4 of Table 1).
pub fn stat_instance() -> EntityInstance {
    let t = Value::text;
    EntityInstance::from_rows(
        stat_schema(),
        vec![
            vec![
                t("MJ"),
                Value::Null,
                Value::Null,
                Value::Int(16),
                Value::Int(424),
                Value::Int(45),
                t("NBA"),
                t("Chicago"),
                t("Chicago Stadium"),
            ],
            vec![
                t("Michael"),
                Value::Null,
                t("Jordan"),
                Value::Int(27),
                Value::Int(772),
                Value::Int(23),
                t("NBA"),
                t("Chicago Bulls"),
                t("United Center"),
            ],
            vec![
                t("Michael"),
                Value::Null,
                t("Jordan"),
                Value::Int(1),
                Value::Int(19),
                Value::Int(45),
                t("NBA"),
                t("Chicago Bulls"),
                t("United Center"),
            ],
            vec![
                t("Michael"),
                t("Jeffrey"),
                t("Jordan"),
                Value::Int(127),
                Value::Int(51),
                Value::Int(45),
                t("SL"),
                t("Birmingham Barons"),
                t("Regions Park"),
            ],
        ],
    )
    .expect("Table 1 rows conform to the stat schema")
}

/// The master relation `nba` (tuples s1–s2 of Table 2).
pub fn nba_master() -> MasterRelation {
    let t = Value::text;
    MasterRelation::from_rows(
        nba_schema(),
        vec![
            vec![
                t("Michael"),
                t("Jordan"),
                t("NBA"),
                t("1994-95"),
                t("Chicago Bulls"),
            ],
            vec![
                t("Michael"),
                t("Jordan"),
                t("NBA"),
                t("2001-02"),
                t("Washington Wizards"),
            ],
        ],
    )
    .expect("Table 2 rows conform to the nba schema")
}

/// The rule text for ϕ1–ϕ6 (Table 3) and ϕ10–ϕ11 (Example 3), in the syntax of
/// `relacc_core::rules::parser`.  The axioms ϕ7–ϕ9 are built into every rule
/// set and therefore not listed.
pub const PAPER_RULES: &str = "\
# Table 3 of the paper
rule phi1: t1[league] = t2[league] && t1[rnds] < t2[rnds] -> t1 <= t2 on rnds @currency
rule phi2: t1 < t2 on rnds -> t1 <= t2 on J# @currency
rule phi3: t1 < t2 on rnds -> t1 <= t2 on totalPts @currency
rule phi4: t1 < t2 on league -> t1 <= t2 on rnds
rule phi5: t1 < t2 on MN -> t1 <= t2 on FN
master rule phi6: te[FN] = tm[FN] && te[LN] = tm[LN] && tm[season] = \"1994-95\" -> te[league] := tm[league], te[team] := tm[team]
# Example 3 extras
rule phi10: t1 < t2 on MN -> t1 <= t2 on LN
rule phi11: t1 < t2 on team -> t1 <= t2 on arena
";

/// The parsed rule set ϕ1–ϕ11 (axioms included via the default
/// [`relacc_core::AxiomConfig`]).
pub fn paper_rules() -> RuleSet {
    parse_ruleset(PAPER_RULES, &stat_schema(), &[nba_schema()]).expect("the paper's rules parse")
}

/// The specification `S` of Example 5: `stat`, `nba` and ϕ1–ϕ11.
pub fn paper_specification() -> Specification {
    Specification::new(stat_instance(), paper_rules()).with_master(nba_master())
}

/// The complete target tuple deduced in Example 5:
/// (Michael, Jeffrey, Jordan, 27, 772, 23, NBA, Chicago Bulls, United Center).
pub fn expected_target() -> TargetTuple {
    let t = Value::text;
    TargetTuple::from_values(vec![
        t("Michael"),
        t("Jeffrey"),
        t("Jordan"),
        Value::Int(27),
        Value::Int(772),
        Value::Int(23),
        t("NBA"),
        t("Chicago Bulls"),
        t("United Center"),
    ])
}

/// The extra rule ϕ12 of Example 6, which makes the specification *not*
/// Church-Rosser when added (it orders `league` in the direction opposite to
/// what ϕ4 + master data imply).
pub const PHI12: &str =
    "rule phi12: t1[league] = \"NBA\" && t2[league] = \"SL\" -> t1 <= t2 on league";

#[cfg(test)]
mod tests {
    use super::*;
    use relacc_core::chase::{free_chase, is_cr};
    use relacc_core::rules::parse_rule;

    #[test]
    fn example5_deduces_the_complete_target() {
        let spec = paper_specification();
        spec.validate().unwrap();
        let run = is_cr(&spec);
        assert!(
            run.outcome.is_church_rosser(),
            "Example 5's S is Church-Rosser"
        );
        let te = run.outcome.target().unwrap();
        assert_eq!(te, &expected_target());
        assert!(te.is_complete());
    }

    #[test]
    fn example6_phi12_breaks_church_rosser() {
        let mut rules = paper_rules();
        rules.push(
            match parse_rule(PHI12, &stat_schema(), &[nba_schema()]).unwrap() {
                relacc_core::rules::AccuracyRule::Tuple(r) => r,
                _ => unreachable!(),
            },
        );
        let spec = Specification::new(stat_instance(), rules).with_master(nba_master());
        let run = is_cr(&spec);
        assert!(
            !run.outcome.is_church_rosser(),
            "Example 6's S' must not be Church-Rosser"
        );
        let conflict = run.outcome.conflict().unwrap();
        assert_eq!(
            stat_schema().attr_name(conflict.attr),
            "league",
            "the conflict is on the league attribute: {conflict}"
        );
    }

    #[test]
    fn every_chase_order_reaches_the_same_target() {
        let spec = paper_specification();
        for seed in 0..10u64 {
            let run = free_chase(&spec, seed);
            assert!(run.outcome.is_church_rosser());
            assert_eq!(run.outcome.target().unwrap(), &expected_target());
        }
    }

    #[test]
    fn dropping_phi11_leaves_arena_undeduced() {
        // Section 3 (3): without ϕ11 the reduced specification is still
        // Church-Rosser but its deduced target is incomplete on arena.
        let text: String = PAPER_RULES
            .lines()
            .filter(|l| !l.contains("phi11"))
            .collect::<Vec<_>>()
            .join("\n");
        let rules = parse_ruleset(&text, &stat_schema(), &[nba_schema()]).unwrap();
        let spec = Specification::new(stat_instance(), rules).with_master(nba_master());
        let run = is_cr(&spec);
        assert!(run.outcome.is_church_rosser());
        let te = run.outcome.target().unwrap();
        assert!(te.is_null(stat_schema().expect_attr("arena")));
        assert!(!te.is_null(stat_schema().expect_attr("team")));
    }
}
