//! # relacc-framework
//!
//! The interactive target-deduction framework of Fig. 3 in *"Determining the
//! Relative Accuracy of Attributes"* (SIGMOD 2013): Church-Rosser checking,
//! chase-based deduction, top-k candidate suggestion and user feedback rounds.
//!
//! The "user" is abstracted behind the [`UserOracle`] trait; the experiments
//! use [`GroundTruthOracle`], which simulates the protocol of Exp-3 (accept the
//! truth when it is suggested, otherwise reveal the accurate value of one
//! random attribute).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod oracle;
pub mod session;

pub use oracle::{GroundTruthOracle, SilentOracle, UserOracle, UserResponse};
pub use session::{run_session, SessionConfig, SessionOutcome, SessionReport, TopKAlgorithm};
