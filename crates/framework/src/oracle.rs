//! User oracles: how the framework's "user feedback" step is answered.
//!
//! The framework of Fig. 3 suggests top-k candidate targets and lets the user
//! either pick one, fill in the accurate value of some attribute, or revise the
//! specification.  In the experiments (Exp-3) the user is simulated: when the
//! true target is among the suggestions it is accepted, otherwise the accurate
//! value of one randomly chosen null attribute is revealed.  This module
//! defines the oracle trait plus the two oracles used by the test-suite and the
//! experiment harness.

use relacc_model::{AttrId, TargetTuple, Value};
use relacc_topk::ScoredCandidate;

/// A user response to a round of suggestions.
#[derive(Debug, Clone, PartialEq)]
pub enum UserResponse {
    /// Accept the `i`-th suggested candidate as the final target tuple.
    Accept(usize),
    /// Reveal the accurate value of one attribute (the framework re-runs the
    /// chase with this value fixed in the target template).
    ProvideValue(AttrId, Value),
    /// Stop interacting (the framework returns the best partial result).
    GiveUp,
}

/// Something that can answer the framework's feedback requests.
pub trait UserOracle {
    /// Inspect the deduced (possibly incomplete) target and the suggested
    /// candidates, and answer.
    fn respond(&mut self, deduced: &TargetTuple, suggestions: &[ScoredCandidate]) -> UserResponse;
}

/// An oracle that knows the ground-truth target tuple (the simulated user of
/// Exp-3): accepts a suggestion iff it equals the truth, otherwise reveals the
/// true value of one still-null attribute, chosen pseudo-randomly.
#[derive(Debug, Clone)]
pub struct GroundTruthOracle {
    truth: TargetTuple,
    state: u64,
}

impl GroundTruthOracle {
    /// Create an oracle for a known ground truth; `seed` drives the choice of
    /// which attribute to reveal when no suggestion matches.
    pub fn new(truth: TargetTuple, seed: u64) -> Self {
        GroundTruthOracle { truth, state: seed }
    }

    /// The ground truth this oracle answers from.
    pub fn truth(&self) -> &TargetTuple {
        &self.truth
    }

    fn next_random(&mut self) -> u64 {
        // SplitMix64, same generator as the free-order chase.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl UserOracle for GroundTruthOracle {
    fn respond(&mut self, deduced: &TargetTuple, suggestions: &[ScoredCandidate]) -> UserResponse {
        if let Some(pos) = suggestions.iter().position(|c| c.target == self.truth) {
            return UserResponse::Accept(pos);
        }
        // reveal the true value of one randomly picked null attribute that the
        // truth actually defines
        let revealable: Vec<AttrId> = deduced
            .null_attrs()
            .into_iter()
            .filter(|a| !self.truth.value(*a).is_null())
            .collect();
        if revealable.is_empty() {
            return UserResponse::GiveUp;
        }
        let pick = revealable[(self.next_random() % revealable.len() as u64) as usize];
        UserResponse::ProvideValue(pick, self.truth.value(pick).clone())
    }
}

/// An oracle that never helps: it always gives up.  Useful to measure what the
/// system deduces fully automatically.
#[derive(Debug, Clone, Default)]
pub struct SilentOracle;

impl UserOracle for SilentOracle {
    fn respond(
        &mut self,
        _deduced: &TargetTuple,
        _suggestions: &[ScoredCandidate],
    ) -> UserResponse {
        UserResponse::GiveUp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth() -> TargetTuple {
        TargetTuple::from_values(vec![Value::Int(1), Value::text("x"), Value::text("y")])
    }

    #[test]
    fn accepts_matching_suggestion() {
        let mut oracle = GroundTruthOracle::new(truth(), 7);
        let deduced = TargetTuple::from_values(vec![Value::Int(1), Value::Null, Value::Null]);
        let suggestions = vec![
            ScoredCandidate {
                target: TargetTuple::from_values(vec![
                    Value::Int(1),
                    Value::text("wrong"),
                    Value::text("y"),
                ]),
                score: 5.0,
            },
            ScoredCandidate {
                target: truth(),
                score: 4.0,
            },
        ];
        assert_eq!(
            oracle.respond(&deduced, &suggestions),
            UserResponse::Accept(1)
        );
        assert_eq!(oracle.truth(), &truth());
    }

    #[test]
    fn reveals_a_true_value_when_no_suggestion_matches() {
        let mut oracle = GroundTruthOracle::new(truth(), 7);
        let deduced = TargetTuple::from_values(vec![Value::Int(1), Value::Null, Value::Null]);
        match oracle.respond(&deduced, &[]) {
            UserResponse::ProvideValue(attr, value) => {
                assert!(attr == AttrId(1) || attr == AttrId(2));
                assert_eq!(&value, truth().value(attr));
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn gives_up_when_nothing_can_be_revealed() {
        let partial_truth = TargetTuple::from_values(vec![Value::Int(1), Value::Null, Value::Null]);
        let mut oracle = GroundTruthOracle::new(partial_truth, 3);
        let deduced = TargetTuple::from_values(vec![Value::Int(1), Value::Null, Value::Null]);
        assert_eq!(oracle.respond(&deduced, &[]), UserResponse::GiveUp);
        assert_eq!(SilentOracle.respond(&deduced, &[]), UserResponse::GiveUp);
    }
}
