//! The interactive deduction framework of Fig. 3.
//!
//! A session repeatedly (1) checks the Church-Rosser property, (2) deduces as
//! much of the target tuple as possible with the chase, (3) computes top-k
//! candidate targets under the preference model, and (4) consults the user
//! oracle, until a complete target tuple is found, the oracle gives up, or the
//! round limit is reached.  Exp-3 of the paper measures how many rounds are
//! needed until the true target is found.

use crate::oracle::{UserOracle, UserResponse};
use relacc_core::{Conflict, Specification};
use relacc_engine::EntitySession;
use relacc_model::TargetTuple;
use relacc_topk::{
    rank_join_ct_with, topkct_with, topkcth_with, PreferenceModel, ScoreSource, TopKStats,
};

/// Which top-k algorithm the framework uses in step (3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TopKAlgorithm {
    /// `TopKCT` (the default; exact, no ranked lists needed).
    #[default]
    TopKCT,
    /// `TopKCTh` (PTIME heuristic).
    TopKCTh,
    /// `RankJoinCT` (rank-join baseline).
    RankJoinCT,
}

/// Configuration of an interactive session.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Number of candidate targets suggested per round.
    pub k: usize,
    /// Maximum number of user-interaction rounds.
    pub max_rounds: usize,
    /// Which algorithm computes the suggestions.
    pub algorithm: TopKAlgorithm,
    /// How attribute-value weights are derived.
    pub score_source: ScoreSource,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            k: 15,
            max_rounds: 10,
            algorithm: TopKAlgorithm::TopKCT,
            score_source: ScoreSource::OccurrenceCounts,
        }
    }
}

/// How a session ended.
#[derive(Debug, Clone)]
pub enum SessionOutcome {
    /// A complete target tuple was found (deduced, accepted, or completed
    /// through user-provided values).
    Complete(TargetTuple),
    /// The specification is not Church-Rosser; the user must revise `Σ`.
    NotChurchRosser(Conflict),
    /// The round limit was hit or the oracle gave up; the best (possibly
    /// incomplete) deduced target is attached.
    Incomplete(TargetTuple),
}

impl SessionOutcome {
    /// The resulting target tuple, if any.
    pub fn target(&self) -> Option<&TargetTuple> {
        match self {
            SessionOutcome::Complete(t) | SessionOutcome::Incomplete(t) => Some(t),
            SessionOutcome::NotChurchRosser(_) => None,
        }
    }

    /// True if a complete target was found.
    pub fn is_complete(&self) -> bool {
        matches!(self, SessionOutcome::Complete(_))
    }
}

/// The record of one finished session.
#[derive(Debug, Clone)]
pub struct SessionReport {
    /// How the session ended.
    pub outcome: SessionOutcome,
    /// Number of user-interaction rounds performed (0 = fully automatic).
    pub rounds: usize,
    /// Accumulated top-k work counters across all rounds.
    pub topk_stats: TopKStats,
    /// True if the complete target was deduced with no interaction at all.
    pub automatic: bool,
}

/// Run one interactive session for a specification.
///
/// The session goes through the engine's [`EntitySession`]: the specification
/// is grounded **once** when the session opens, and every round's deduction
/// and candidate search reuse that grounding — only the initial-target
/// template changes between rounds.  Each round's deduction is captured as a
/// chase checkpoint and every candidate `check` of the round resumes from it;
/// the resumed-check scratch lives in the session and is reused across all
/// interaction rounds.
pub fn run_session<O: UserOracle>(
    spec: &Specification,
    config: &SessionConfig,
    oracle: &mut O,
) -> SessionReport {
    let mut session = EntitySession::open(spec.clone());
    let mut total_stats = TopKStats::default();
    let mut rounds = 0usize;

    loop {
        // Steps (1) + (2): Church-Rosser check and target deduction.
        let preference =
            PreferenceModel::new(session.spec(), config.k, config.score_source.clone());
        let (search, check_scratch) = match session.search_with_scratch(preference) {
            Ok(s) => s,
            Err(relacc_topk::TopKError::NotChurchRosser(conflict)) => {
                return SessionReport {
                    outcome: SessionOutcome::NotChurchRosser(conflict),
                    rounds,
                    topk_stats: total_stats,
                    automatic: rounds == 0,
                };
            }
        };
        if search.deduced.is_complete() {
            return SessionReport {
                outcome: SessionOutcome::Complete(search.deduced.clone()),
                rounds,
                topk_stats: total_stats,
                automatic: rounds == 0,
            };
        }
        if rounds >= config.max_rounds {
            return SessionReport {
                outcome: SessionOutcome::Incomplete(search.deduced.clone()),
                rounds,
                topk_stats: total_stats,
                automatic: false,
            };
        }

        // Step (3): compute suggestions, resuming every check from the
        // round's checkpoint with the session-owned scratch.
        let result = match config.algorithm {
            TopKAlgorithm::TopKCT => topkct_with(&search, check_scratch),
            TopKAlgorithm::TopKCTh => topkcth_with(&search, check_scratch),
            TopKAlgorithm::RankJoinCT => rank_join_ct_with(&search, check_scratch),
        };
        total_stats.merge(&result.stats);

        // Step (4): user feedback.
        rounds += 1;
        match oracle.respond(&search.deduced, &result.candidates) {
            UserResponse::Accept(i) => {
                let chosen = result.candidates[i].target.clone();
                return SessionReport {
                    outcome: SessionOutcome::Complete(chosen),
                    rounds,
                    topk_stats: total_stats,
                    automatic: false,
                };
            }
            UserResponse::ProvideValue(attr, value) => {
                let mut template = search.spec.initial_target.clone();
                // the revealed value joins whatever the chase already deduced
                for a in spec.ie.schema().attr_ids() {
                    if template.is_null(a) && !search.deduced.is_null(a) {
                        template.set(a, search.deduced.value(a).clone());
                    }
                }
                template.set(attr, value);
                drop(search);
                session.set_template(template);
            }
            UserResponse::GiveUp => {
                return SessionReport {
                    outcome: SessionOutcome::Incomplete(search.deduced.clone()),
                    rounds,
                    topk_stats: total_stats,
                    automatic: false,
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{GroundTruthOracle, SilentOracle};
    use relacc_core::rules::{Predicate, RuleSet, TupleRule};
    use relacc_model::{AttrId, CmpOp, DataType, EntityInstance, Schema, Value};

    /// rnds deducible; team/arena open with the truth being the most frequent
    /// team but a less frequent arena, so at least one interaction is needed
    /// for small k.
    fn spec() -> (Specification, TargetTuple) {
        let schema = Schema::builder("r")
            .attr("rnds", DataType::Int)
            .attr("team", DataType::Text)
            .attr("arena", DataType::Text)
            .build();
        let ie = EntityInstance::from_rows(
            schema.clone(),
            vec![
                vec![
                    Value::Int(16),
                    Value::text("Chicago"),
                    Value::text("Chicago Stadium"),
                ],
                vec![
                    Value::Int(27),
                    Value::text("Chicago Bulls"),
                    Value::text("United Center"),
                ],
                vec![
                    Value::Int(27),
                    Value::text("Chicago Bulls"),
                    Value::text("Regions Park"),
                ],
                vec![
                    Value::Int(20),
                    Value::text("Chicago Bulls"),
                    Value::text("Regions Park"),
                ],
            ],
        )
        .unwrap();
        let rules = RuleSet::from_rules([TupleRule::new(
            "phi1",
            vec![Predicate::cmp_attrs(schema.expect_attr("rnds"), CmpOp::Lt)],
            schema.expect_attr("rnds"),
        )]);
        let truth = TargetTuple::from_values(vec![
            Value::Int(27),
            Value::text("Chicago Bulls"),
            Value::text("United Center"),
        ]);
        (Specification::new(ie, rules), truth)
    }

    #[test]
    fn oracle_session_finds_the_truth() {
        let (spec, truth) = spec();
        let mut oracle = GroundTruthOracle::new(truth.clone(), 11);
        let config = SessionConfig {
            k: 2,
            ..SessionConfig::default()
        };
        let report = run_session(&spec, &config, &mut oracle);
        assert!(report.outcome.is_complete());
        assert_eq!(report.outcome.target().unwrap(), &truth);
        assert!(report.rounds >= 1);
        assert!(report.rounds <= 4);
        assert!(!report.automatic);
        assert!(report.topk_stats.checks > 0);
    }

    #[test]
    fn silent_oracle_reports_incomplete() {
        let (spec, _) = spec();
        let report = run_session(&spec, &SessionConfig::default(), &mut SilentOracle);
        match report.outcome {
            SessionOutcome::Incomplete(te) => {
                assert_eq!(te.value(AttrId(0)), &Value::Int(27));
                assert!(te.is_null(AttrId(2)));
            }
            other => panic!("unexpected outcome {other:?}"),
        }
        assert_eq!(report.rounds, 1);
    }

    #[test]
    fn already_complete_specs_need_zero_rounds() {
        let schema = Schema::builder("r").attr("a", DataType::Int).build();
        let ie = EntityInstance::from_rows(
            schema.clone(),
            vec![vec![Value::Int(1)], vec![Value::Int(5)]],
        )
        .unwrap();
        let rules = RuleSet::from_rules([TupleRule::new(
            "up",
            vec![Predicate::cmp_attrs(AttrId(0), CmpOp::Lt)],
            AttrId(0),
        )]);
        let spec = Specification::new(ie, rules);
        let truth = TargetTuple::from_values(vec![Value::Int(5)]);
        let mut oracle = GroundTruthOracle::new(truth.clone(), 1);
        let report = run_session(&spec, &SessionConfig::default(), &mut oracle);
        assert!(report.automatic);
        assert_eq!(report.rounds, 0);
        assert_eq!(report.outcome.target().unwrap(), &truth);
    }

    #[test]
    fn all_algorithms_complete_the_session() {
        let (spec, truth) = spec();
        for algorithm in [
            TopKAlgorithm::TopKCT,
            TopKAlgorithm::TopKCTh,
            TopKAlgorithm::RankJoinCT,
        ] {
            let mut oracle = GroundTruthOracle::new(truth.clone(), 5);
            let config = SessionConfig {
                k: 6,
                algorithm,
                ..SessionConfig::default()
            };
            let report = run_session(&spec, &config, &mut oracle);
            assert!(report.outcome.is_complete(), "{algorithm:?}");
            assert_eq!(report.outcome.target().unwrap(), &truth, "{algorithm:?}");
        }
    }
}
