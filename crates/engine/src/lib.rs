//! # relacc-engine
//!
//! The **compile-once / evaluate-many** execution layer of the `relacc`
//! workspace, which reproduces *"Determining the Relative Accuracy of
//! Attributes"* (Cao, Fan, Yu — SIGMOD 2013).
//!
//! The paper's algorithms are defined per entity instance; a real corpus (the
//! Med / CFP / Rest workloads of Section 7, or a whole dirty relation) runs
//! them over thousands of entities that all share one rule set `Σ` and one
//! master relation `Im`.  This crate separates the two phases, following the
//! once-per-program / per-instance split familiar from Datalog engines:
//!
//! * **compile** — [`relacc_core::chase::ChasePlan`] validates the rules,
//!   interns all master-data and rule-constant strings, and pre-grounds the
//!   form-(2) rules, once per workload;
//! * **evaluate** — [`BatchEngine::run`] fans the entities out over a scoped
//!   worker pool (one [`relacc_core::chase::ChaseScratch`] per worker, so the
//!   grounding buffer, dedup set and event index are reused across entities),
//!   runs `IsCR` per entity, optionally completes open targets from a top-k
//!   suggestion search reusing the entity's grounding, and aggregates
//!   [`relacc_core::ChaseStats`].
//!
//! Entry points:
//!
//! * [`BatchEngine::run`] — evaluate a slice of pre-resolved
//!   [`relacc_model::EntityInstance`]s;
//! * [`BatchEngine::repair_relation`] — resolve a dirty
//!   [`relacc_store::Relation`] into entities (blocking + matching from
//!   `relacc-resolve`) and repair every entity;
//! * [`IncrementalEngine`] — keep a repaired snapshot live under a stream of
//!   typed [`relacc_store::UpdateBatch`]es and master-data appends,
//!   re-repairing only the dirty entities of each update ("one workload,
//!   many versions");
//! * [`ShardedEngine`] — scale the incremental pipeline out across `N`
//!   shards (each "an [`IncrementalEngine`] plus its block cache"), routing
//!   rows by blocking key, splitting row batches / broadcasting master
//!   deltas, and merging per-shard caches back into the canonical snapshot;
//! * [`EntitySession`] — ground-once state for the interactive framework
//!   (`relacc_framework::run_session` opens one per session and reuses its
//!   `Γ` across user rounds);
//! * [`EpochHub`] / [`Epoch`] — the concurrent read path: every mutation of
//!   an incremental or sharded engine publishes an immutable epoch (pinned
//!   row set + block cache), so readers get O(block) point reads
//!   ([`Epoch::repaired_row`], [`Epoch::entity_result`]) and snapshot
//!   deltas ([`EpochHub::changes_since`]) without ever blocking the writer.
//!   The `relacc-serve` crate wraps this into a serving API with change
//!   feeds.
//!
//! The parallel batch output is deterministic: results come back in input
//! order and are bit-identical to a sequential `is_cr` loop over the same
//! entities (property-tested in `tests/engine_batch.rs` at the workspace
//! root).
//!
//! ```
//! use relacc_engine::BatchEngine;
//! use relacc_core::rules::{Predicate, RuleSet, TupleRule};
//! use relacc_model::{CmpOp, DataType, EntityInstance, Schema, Value};
//!
//! let schema = Schema::builder("stat")
//!     .attr("rnds", DataType::Int)
//!     .attr("pts", DataType::Int)
//!     .build();
//! let rules = RuleSet::from_rules([TupleRule::new(
//!     "cur",
//!     vec![Predicate::cmp_attrs(schema.expect_attr("rnds"), CmpOp::Lt)],
//!     schema.expect_attr("rnds"),
//! )]);
//! let engine = BatchEngine::new(schema.clone(), rules, vec![]).unwrap();
//! let entities: Vec<EntityInstance> = (0..100)
//!     .map(|e| {
//!         EntityInstance::from_rows(
//!             schema.clone(),
//!             vec![
//!                 vec![Value::Int(e), Value::Int(10)],
//!                 vec![Value::Int(e + 1), Value::Int(20)],
//!             ],
//!         )
//!         .unwrap()
//!     })
//!     .collect();
//! let report = engine.run_owned(entities);
//! assert_eq!(report.entities.len(), 100);
//! assert_eq!(report.complete + report.suggested + report.needs_user, 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod epoch;
pub mod incremental;
pub mod pool;
pub mod session;
pub mod sharded;

pub use batch::{
    BatchEngine, BatchReport, EngineConfig, EntityOutcome, EntityResult, RelationRepair, RepairSkip,
};
pub use epoch::{
    assemble_views, BlockChange, BlockView, EntityView, Epoch, EpochError, EpochHub, EpochId,
    SnapshotDelta,
};
pub use incremental::{IncrementalEngine, IncrementalError, IncrementalStats, UpdateOutcome};
pub use pool::par_map_with;
pub use session::EntitySession;
pub use sharded::{ShardStats, ShardedEngine, ShardedStats};
