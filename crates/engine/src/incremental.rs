//! Incremental repair for streaming updates: the "one workload, many
//! versions" axis of evaluate-many.
//!
//! [`BatchEngine::repair_relation`] answers "repair this relation, once".
//! Served workloads do not stop there: input tuples and master data keep
//! arriving, and re-running the full pipeline per update wastes almost all of
//! its work — a small batch touches a handful of entities while thousands of
//! others are untouched.  An [`IncrementalEngine`] keeps a repaired snapshot
//! **live** under a stream of [`UpdateBatch`]es:
//!
//! * the input relation is held as a [`VersionedRelation`] (stable row ids,
//!   generation stamps), so updates are typed deletes + inserts;
//! * a [`relacc_resolve::IncrementalBlockingIndex`] maps each update to its
//!   **dirty blocks** — blocking partitions the records and resolution never
//!   merges across blocks, so entities are per-block objects and only dirty
//!   blocks can change;
//! * dirty blocks are re-resolved locally and their entities re-repaired in
//!   **one** [`BatchEngine::run`] over the existing worker pool; every clean
//!   block keeps its cached per-entity results;
//! * master-data **appends** evolve the compiled plan in place
//!   ([`relacc_core::chase::ChasePlan::apply_master_delta`] — monotone: new
//!   form-(2) steps are
//!   only added) and re-repair exactly the entities the new steps can touch:
//!   by chase monotonicity, a new step with premise `te[A] = c` can never
//!   fire for an entity whose deduced `te[A]` is a different constant, and an
//!   assignment equal to an already-deduced value is a no-op, so entities
//!   failing both tests keep their cached results verbatim.  Master deletes
//!   (like rule changes) are not monotone and invalidate to a recompile,
//!   which re-repairs everything under a fresh plan identity.
//!
//! [`IncrementalEngine::snapshot`] reassembles a [`RelationRepair`] that is
//! **semantically identical** to a from-scratch
//! [`BatchEngine::repair_relation`] over the current relation state: same
//! entities in the same order, same outcomes/targets/suggestions, same match
//! decisions, same repaired rows (the row-materialization policy is shared
//! code).  Only the per-entity chase counters differ — cached entities report
//! the work of the run that produced them, which is the point of
//! incrementality.  The equivalence is enforced by
//! `tests/incremental_differential.rs` at the workspace root.

use crate::batch::EntityOutcome;
use crate::batch::{materialize_rows, BatchEngine, BatchReport, EntityResult, RelationRepair};
use crate::epoch::{Epoch, EpochHub, EpochId, ShardView, SnapshotDelta};
use crate::pool::{effective_threads, par_map_with};
use relacc_core::chase::{
    GroundStep, GroundedMasterDelta, MasterUpdate, PendingPred, PlanDeltaError, PlanStamp,
    StepAction,
};
use relacc_model::{EntityInstance, SchemaRef, TargetTuple, Tuple, Value};
use relacc_resolve::{
    resolve_relation, resolve_relation_with_fingerprints, BlockKey, Blocker,
    IncrementalBlockingIndex, MatchDecision, RecordFingerprint, ResolveConfig, ResolveStats,
    ResolvedEntities,
};
use relacc_store::{Generation, Relation, RowId, UpdateBatch, UpdateError, VersionedRelation};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;
use std::time::Instant;

/// The cached repair of one block: its rows (in snapshot order at repair
/// time), the local resolution output and the per-entity results, all under
/// block-local indices; [`IncrementalEngine::snapshot`] rebases them to
/// global indices.
///
/// Cached per block behind an `Arc`: published epochs pin the same
/// allocation, and the engine copies a block on write only while an epoch
/// actually shares it.  All cached repairs are valid under one engine-level
/// [`PlanStamp`] — every mutation path re-repairs or revalidates *all* live
/// blocks before returning, so the stamp lives on the engine, not per block.
#[derive(Debug, Clone)]
pub(crate) struct BlockRepair {
    /// The block's live rows at repair time, in snapshot order.
    pub(crate) rows: Vec<RowId>,
    /// Pairwise match decisions, with indices local to `rows`.
    pub(crate) decisions: Vec<MatchDecision>,
    /// The block's entities in ascending-smallest-member order.
    pub(crate) entities: Vec<BlockEntity>,
    /// Fingerprints of `rows` (parallel), reused verbatim across
    /// re-resolutions so steady-state streaming only fingerprints inserted
    /// rows.  Empty when the resolve config runs without the cascade.
    pub(crate) fingerprints: Vec<RecordFingerprint>,
    /// Cascade counters of the resolution that produced `decisions`.
    pub(crate) stats: ResolveStats,
}

#[derive(Debug, Clone)]
pub(crate) struct BlockEntity {
    /// Member positions into [`BlockRepair::rows`], ascending.
    pub(crate) members: Vec<usize>,
    /// The repair result.  `entity` / `records` are meaningless here and are
    /// rewritten during snapshot assembly.
    pub(crate) result: EntityResult,
}

/// One keyed block in transit between shards (see
/// [`IncrementalEngine::export_block`] /
/// [`IncrementalEngine::import_block`]): its rows in export order plus the
/// cached repair, whose position-indexed contents survive the move verbatim.
#[derive(Debug)]
pub(crate) struct ExportedBlock {
    /// The block's rows in snapshot order (ascending source-local id).
    pub(crate) rows: Vec<Tuple>,
    /// The cached repair; `rows` ids are rewritten on import.
    pub(crate) repair: Arc<BlockRepair>,
}

/// One dirty block's re-repair input, self-contained (rows cloned out of the
/// relation, previous repair pinned by `Arc`): the unit of the block-level
/// work list.  Because a job borrows nothing from its engine, jobs of *many*
/// shards can be flattened into one slice and dispatched over the shared
/// worker pool — `par_map_with`'s dynamic `fetch_add` loop then steals at
/// block granularity, so one hot shard's backlog spreads across all workers.
#[derive(Debug)]
pub(crate) struct BlockJob {
    /// The block's key.
    pub(crate) key: BlockKey,
    /// The block's live rows at prepare time, in snapshot order.
    pub(crate) row_ids: Vec<RowId>,
    /// The tuples of `row_ids` (parallel).
    pub(crate) rows: Vec<Tuple>,
    /// The block's previous repair, when cached (fingerprint reuse on the
    /// re-resolve path; the member partition on the cached-resolution path).
    pub(crate) cached: Option<Arc<BlockRepair>>,
    /// Re-resolve membership (row updates) or reuse the cached resolution
    /// and re-run only the chase (master deltas)?
    pub(crate) reresolve: bool,
}

/// Stage-1 output of a re-repair (see
/// [`IncrementalEngine::prepare_rerepair`]): the dirty keys, their
/// self-contained jobs, and the membership-derived outcome counters.
#[derive(Debug)]
pub(crate) struct PreparedRepair {
    /// The dirty block keys (including ones whose block was dropped).
    pub(crate) dirty: BTreeSet<BlockKey>,
    /// One job per dirty block that still has live rows, in ascending key
    /// order.
    pub(crate) jobs: Vec<BlockJob>,
    /// Blocks that lost their last live row and were dropped from the cache.
    pub(crate) dropped_blocks: usize,
    /// Live blocks whose cached repair is reused untouched.
    pub(crate) clean_blocks: usize,
    /// Entities of the clean blocks.
    pub(crate) entities_reused: usize,
}

/// Stage-2 output for one [`BlockJob`]: the block's (fresh or reused)
/// resolution plus the entity instances to chase.  The instances are drained
/// into one flat chase batch before stage 3; `entity_count` survives the
/// drain so stage 4 can split the chase results back per job.
#[derive(Debug)]
pub(crate) struct ResolvedJob {
    /// Fresh local resolution + fingerprints (`None` on the
    /// cached-resolution path, which updates results copy-on-write instead).
    pub(crate) fresh: Option<(ResolvedEntities, Vec<RecordFingerprint>)>,
    /// The block's entity instances, in block-entity order.
    pub(crate) entities: Vec<EntityInstance>,
    /// `entities.len()` at resolution time.
    pub(crate) entity_count: usize,
    /// Rows fingerprinted by this job.
    pub(crate) rows_fingerprinted: usize,
    /// Rows whose cached fingerprint was reused by this job.
    pub(crate) fingerprints_reused: usize,
    /// Wall-clock nanoseconds this job's resolution took (per-shard
    /// [`crate::sharded::ShardStats::batch_ns`] attribution).
    pub(crate) resolve_ns: u64,
}

/// Stage 2 of a re-repair: resolve every job's block **in parallel at block
/// granularity** over the shared pool.  Per-block resolution is a pure
/// function of the job (rows + cached fingerprints + config), so the output
/// is identical at every thread count and the pool's dynamic loop can hand
/// blocks to whichever worker is free.
pub(crate) fn resolve_block_jobs(
    jobs: &[&BlockJob],
    resolve: &ResolveConfig,
    schema: &SchemaRef,
    threads: usize,
) -> Vec<ResolvedJob> {
    let similarity_attrs = if resolve.cascade && jobs.iter().any(|j| j.reresolve) {
        resolve.similarity_attrs(schema)
    } else {
        Vec::new()
    };
    let threads = effective_threads(threads, jobs.len());
    par_map_with(
        jobs,
        threads,
        || (),
        |_, _, job| resolve_one_job(job, resolve, &similarity_attrs, schema),
    )
}

/// Resolve one block job (see [`resolve_block_jobs`]).
fn resolve_one_job(
    job: &BlockJob,
    resolve: &ResolveConfig,
    similarity_attrs: &[relacc_model::AttrId],
    schema: &SchemaRef,
) -> ResolvedJob {
    let started = Instant::now();
    if job.reresolve {
        let mut local = Relation::new(schema.clone());
        for tuple in &job.rows {
            local
                .push_row(tuple.values().to_vec())
                .expect("live rows conform to the schema");
        }
        let (mut fresh, fingerprints, rows_fingerprinted, fingerprints_reused) = if resolve.cascade
        {
            // reuse cached fingerprints for rows that survived from the
            // block's previous repair; only inserted rows are fingerprinted
            // (a fingerprint is a pure function of the row, so reuse is
            // exact)
            let cached = job.cached.as_deref();
            let prev_pos: HashMap<RowId, usize> = cached
                .map(|b| b.rows.iter().enumerate().map(|(i, &r)| (r, i)).collect())
                .unwrap_or_default();
            let mut fingerprints = Vec::with_capacity(job.rows.len());
            let (mut computed, mut reused) = (0usize, 0usize);
            for (id, tuple) in job.row_ids.iter().zip(&job.rows) {
                match cached.and_then(|b| prev_pos.get(id).and_then(|&i| b.fingerprints.get(i))) {
                    Some(fp) => {
                        reused += 1;
                        fingerprints.push(fp.clone());
                    }
                    None => {
                        computed += 1;
                        fingerprints.push(RecordFingerprint::of_tuple(tuple, similarity_attrs));
                    }
                }
            }
            (
                resolve_relation_with_fingerprints(&local, resolve, &fingerprints),
                fingerprints,
                computed,
                reused,
            )
        } else {
            (resolve_relation(&local, resolve), Vec::new(), 0, 0)
        };
        let entities = std::mem::take(&mut fresh.entities);
        let entity_count = entities.len();
        ResolvedJob {
            fresh: Some((fresh, fingerprints)),
            entities,
            entity_count,
            rows_fingerprinted,
            fingerprints_reused,
            resolve_ns: started.elapsed().as_nanos() as u64,
        }
    } else {
        let repair = job
            .cached
            .as_deref()
            .expect("plan-delta dirty blocks are cached");
        let mut entities = Vec::with_capacity(repair.entities.len());
        for be in &repair.entities {
            let mut instance = EntityInstance::new(schema.clone());
            for &local in &be.members {
                instance
                    .push_tuple(job.rows[local].clone())
                    .expect("live rows conform to the schema");
            }
            entities.push(instance);
        }
        let entity_count = entities.len();
        ResolvedJob {
            fresh: None,
            entities,
            entity_count,
            rows_fingerprinted: 0,
            fingerprints_reused: 0,
            resolve_ns: started.elapsed().as_nanos() as u64,
        }
    }
}

/// What one applied update did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateOutcome {
    /// The relation generation after the update (unchanged for pure master
    /// deltas).
    pub generation: Generation,
    /// Blocks that were re-repaired (for row updates also re-resolved).
    pub dirty_blocks: usize,
    /// Blocks that lost their last live row and were dropped from the cache.
    pub dropped_blocks: usize,
    /// Blocks whose cached repair was reused untouched.
    pub clean_blocks: usize,
    /// Entities re-repaired through the worker pool.
    pub entities_rerepaired: usize,
    /// Entities whose cached result was reused.
    pub entities_reused: usize,
}

/// Cumulative counters of an engine's lifetime.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IncrementalStats {
    /// Row update batches applied.
    pub batches_applied: usize,
    /// Master deltas applied in place.
    pub master_deltas_applied: usize,
    /// Master deltas **ground** by this engine (the `|Σ2| × |Δ|` grounding
    /// loop).  Adopting a delta ground elsewhere
    /// ([`relacc_core::chase::ChasePlan::adopt_master_delta`]) bumps
    /// [`IncrementalStats::master_deltas_applied`] but not this — under the
    /// sharded engine exactly one shard grounds each append, so the summed
    /// count stays 1 per append regardless of shard count.
    pub master_groundings: usize,
    /// Plan recompiles forced by non-monotone master updates.
    pub recompiles: usize,
    /// Total entities re-repaired across all updates (including the initial
    /// full repair).
    pub entities_rerepaired: usize,
    /// Total entities reused from cache across all updates.
    pub entities_reused: usize,
    /// Rows fingerprinted for the resolution cascade (initial repair plus
    /// every row inserted into a re-resolved block).
    pub rows_fingerprinted: usize,
    /// Rows whose cached fingerprint was reused during a block
    /// re-resolution — the steady-state streaming case.
    pub fingerprints_reused: usize,
}

/// Errors of the incremental engine.
#[derive(Debug)]
pub enum IncrementalError {
    /// A row update failed (wrong relation name, dead row id, schema
    /// violation).
    Update(UpdateError),
    /// A master delta failed.
    Plan(PlanDeltaError),
}

impl std::fmt::Display for IncrementalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IncrementalError::Update(e) => write!(f, "update rejected: {e}"),
            IncrementalError::Plan(e) => write!(f, "master delta rejected: {e}"),
        }
    }
}

impl std::error::Error for IncrementalError {}

impl From<UpdateError> for IncrementalError {
    fn from(e: UpdateError) -> Self {
        IncrementalError::Update(e)
    }
}

impl From<PlanDeltaError> for IncrementalError {
    fn from(e: PlanDeltaError) -> Self {
        IncrementalError::Plan(e)
    }
}

/// A live repaired snapshot of one relation, maintained under a stream of
/// typed updates.  See the module docs for the design.
#[derive(Debug)]
pub struct IncrementalEngine {
    engine: BatchEngine,
    resolve: ResolveConfig,
    /// Catalog-entry name updates must address.
    name: String,
    relation: VersionedRelation,
    index: IncrementalBlockingIndex,
    blocks: HashMap<BlockKey, Arc<BlockRepair>>,
    /// Plan state every cached block repair is valid under (see
    /// [`BlockRepair`]): refreshed at the end of each re-repair.
    stamp: PlanStamp,
    /// Shared blocker for epoch point reads (identical to the index's own).
    blocker: Arc<Blocker>,
    /// The publish/pin rendezvous with concurrent readers.
    hub: EpochHub,
    stats: IncrementalStats,
}

impl IncrementalEngine {
    /// Open an engine over the seed state of a relation (registered under
    /// `name`, the catalog entry its [`UpdateBatch`]es must address) and run
    /// the initial full repair.
    pub fn open(
        engine: BatchEngine,
        name: impl Into<String>,
        relation: &Relation,
        resolve: ResolveConfig,
    ) -> Self {
        let versioned = VersionedRelation::from_relation(relation);
        let blocker = resolve.blocker(relation.schema());
        let index = IncrementalBlockingIndex::build(
            blocker.clone(),
            versioned.rows().iter().map(|r| (r.id, &r.tuple)),
        );
        let stamp = engine.plan().stamp();
        let mut this = IncrementalEngine {
            engine,
            resolve,
            name: name.into(),
            relation: versioned,
            index,
            blocks: HashMap::new(),
            stamp,
            blocker: Arc::new(blocker),
            hub: EpochHub::new(),
            stats: IncrementalStats::default(),
        };
        // initial repair: every block is dirty
        let all: BTreeSet<BlockKey> = this
            .relation
            .rows()
            .iter()
            .filter_map(|r| this.index.block_of_row(r.id).cloned())
            .collect();
        this.rerepair(all, true);
        this
    }

    /// The batch engine (and through it the compiled plan).
    pub fn engine(&self) -> &BatchEngine {
        &self.engine
    }

    /// The current relation state.
    pub fn relation(&self) -> &VersionedRelation {
        &self.relation
    }

    /// Lifetime counters.
    pub fn stats(&self) -> &IncrementalStats {
        &self.stats
    }

    /// Apply a typed batch of row deletes + inserts and re-repair exactly the
    /// dirty blocks.  The batch must address this engine's relation by name.
    pub fn apply(&mut self, batch: &UpdateBatch) -> Result<UpdateOutcome, IncrementalError> {
        let dirty = self.begin_batch(batch)?;
        Ok(self.rerepair(dirty, true))
    }

    /// The mutation half of [`IncrementalEngine::apply`]: apply the batch to
    /// the versioned relation and the blocking index and return the dirty
    /// block keys, without re-repairing anything yet.  The sharded engine
    /// runs this per shard, then pools the dirty blocks of *all* shards into
    /// one block-granular work list.
    pub(crate) fn begin_batch(
        &mut self,
        batch: &UpdateBatch,
    ) -> Result<BTreeSet<BlockKey>, IncrementalError> {
        if batch.relation != self.name {
            return Err(IncrementalError::Update(UpdateError::NoSuchRelation(
                batch.relation.clone(),
            )));
        }
        let applied = self
            .relation
            .apply(batch)
            .map_err(IncrementalError::Update)?;
        let inserted: Vec<(RowId, Tuple)> = applied
            .inserted
            .iter()
            .map(|&id| {
                let row = self.relation.row(id).expect("freshly inserted");
                (id, row.tuple.clone())
            })
            .collect();
        let dirty = self.index.apply(
            applied.deleted.iter().map(|(id, _)| *id),
            inserted.iter().map(|(id, tuple)| (*id, tuple)),
        );
        self.stats.batches_applied += 1;
        Ok(dirty.blocks)
    }

    /// Append rows to master relation `master`, evolving the compiled plan in
    /// place, and re-repair only the entities the new form-(2) steps can
    /// affect (see the module docs for why the filter is exact).
    pub fn apply_master_append(
        &mut self,
        master: usize,
        rows: Vec<Vec<Value>>,
    ) -> Result<UpdateOutcome, IncrementalError> {
        let delta = self.ground_master_delta(&MasterUpdate::append(master, rows))?;
        self.adopt_master_delta(&delta)
    }

    /// Ground a master delta against this engine's plan — once.  The result
    /// can be adopted here *and* by every sibling shard still in stamp
    /// lockstep ([`IncrementalEngine::adopt_master_delta`]); only the
    /// grounding engine pays the `|Σ2| × |Δ|` loop (counted by
    /// [`IncrementalStats::master_groundings`]).
    pub(crate) fn ground_master_delta(
        &mut self,
        update: &MasterUpdate,
    ) -> Result<GroundedMasterDelta, IncrementalError> {
        let delta = self.engine.plan_mut().ground_master_delta(update)?;
        self.stats.master_groundings += 1;
        Ok(delta)
    }

    /// Adopt a delta ground by [`IncrementalEngine::ground_master_delta`]
    /// (possibly on a sibling shard): stamp bump + shared step block append
    /// on the plan, then the exact invalidation filter and a cached-resolution
    /// re-repair of the affected blocks.
    pub(crate) fn adopt_master_delta(
        &mut self,
        delta: &GroundedMasterDelta,
    ) -> Result<UpdateOutcome, IncrementalError> {
        let dirty = self.adopt_master_dirty(delta)?;
        // block membership is untouched by a master delta: reuse the cached
        // resolution (members + match decisions) and re-run only the chase
        Ok(self.rerepair(dirty, false))
    }

    /// The adoption + invalidation half of
    /// [`IncrementalEngine::adopt_master_delta`], without the re-repair: the
    /// sharded engine pools the returned dirty blocks across shards.
    pub(crate) fn adopt_master_dirty(
        &mut self,
        delta: &GroundedMasterDelta,
    ) -> Result<BTreeSet<BlockKey>, IncrementalError> {
        self.engine.plan_mut().adopt_master_delta(delta)?;
        self.stats.master_deltas_applied += 1;
        let new_steps: &[GroundStep] = delta.steps().as_slice();
        let mut dirty: BTreeSet<BlockKey> = BTreeSet::new();
        for (key, repair) in &self.blocks {
            // unaffected blocks keep their cached results verbatim (even the
            // allocation: published epochs share it); the engine-level stamp
            // revalidates them wholesale at the end of the re-repair
            let affected = !new_steps.is_empty()
                && repair
                    .entities
                    .iter()
                    .any(|be| step_set_may_affect(new_steps, &be.result));
            if affected {
                dirty.insert(key.clone());
            }
        }
        Ok(dirty)
    }

    /// Replace the plan's master data wholesale (the non-monotone path:
    /// deletions or arbitrary edits).  The plan is recompiled — fresh
    /// identity, so every cached checkpoint and block result is stale — and
    /// the whole relation is re-repaired.
    pub fn replace_masters(
        &mut self,
        masters: Vec<relacc_model::MasterRelation>,
    ) -> Result<UpdateOutcome, IncrementalError> {
        let plan = self.engine.plan();
        let recompiled = relacc_core::chase::ChasePlan::compile(
            plan.schema().clone(),
            (**plan.rules()).clone(),
            masters,
        )
        .map_err(|_| IncrementalError::Plan(PlanDeltaError::RequiresRecompile))?;
        let config = self.engine.config().clone();
        self.engine = BatchEngine::from_plan(recompiled).with_config(config);
        self.stats.recompiles += 1;
        let all: BTreeSet<BlockKey> = self.blocks.keys().cloned().collect();
        // rows are untouched, so the cached resolution stays valid here too
        let mut outcome = self.rerepair(all, false);
        outcome.generation = self.relation.generation();
        Ok(outcome)
    }

    /// Re-repair the given blocks; everything else keeps its cached repair.
    /// Blocks that no longer have live rows are dropped.
    ///
    /// With `reresolve` the dirty blocks are re-resolved first (the row-update
    /// path: membership changed).  Without it the cached resolution — member
    /// partition and match decisions — is reused and only the chase re-runs
    /// (the master-delta paths: rows are untouched, and match decisions
    /// depend only on row contents, never on the plan).
    ///
    /// Internally this is the prepare → resolve → chase → commit staging the
    /// sharded engine drives across shards; run standalone it behaves exactly
    /// like the historical monolithic re-repair.
    fn rerepair(&mut self, dirty: BTreeSet<BlockKey>, reresolve: bool) -> UpdateOutcome {
        let prepared = self.prepare_rerepair(dirty, reresolve);
        let job_refs: Vec<&BlockJob> = prepared.jobs.iter().collect();
        let mut resolved = resolve_block_jobs(
            &job_refs,
            &self.resolve,
            self.relation.schema(),
            self.engine.config().threads,
        );
        drop(job_refs);
        let mut batch_entities: Vec<EntityInstance> = Vec::new();
        for job in &mut resolved {
            batch_entities.append(&mut job.entities);
        }
        let report: BatchReport = self.engine.run_owned(batch_entities);
        self.commit_rerepair(prepared, resolved, &report.entities)
    }

    /// Stage 1 of a re-repair: snapshot every dirty block into a
    /// self-contained [`BlockJob`] (rows cloned, cached repair pinned), drop
    /// blocks that lost their last live row, and pre-compute the
    /// membership-derived outcome counters.  Cheap and sequential; the
    /// expensive stages operate on the returned jobs without borrowing the
    /// engine, which is what lets the sharded engine flatten jobs of many
    /// shards into one stolen work list.
    pub(crate) fn prepare_rerepair(
        &mut self,
        dirty: BTreeSet<BlockKey>,
        reresolve: bool,
    ) -> PreparedRepair {
        let membership = self.block_membership();
        let mut dropped_blocks = 0usize;
        let mut jobs: Vec<BlockJob> = Vec::new();
        for key in &dirty {
            let Some(globals) = membership.get(key) else {
                self.blocks.remove(key);
                dropped_blocks += 1;
                continue;
            };
            let mut row_ids = Vec::with_capacity(globals.len());
            let mut rows = Vec::with_capacity(globals.len());
            for &(global, id) in globals {
                row_ids.push(id);
                rows.push(self.relation.rows()[global].tuple.clone());
            }
            let cached = self.blocks.get(key).cloned();
            if !reresolve {
                let repair = cached.as_ref().expect("plan-delta dirty blocks are cached");
                debug_assert_eq!(repair.rows.len(), rows.len(), "membership drifted");
            }
            jobs.push(BlockJob {
                key: key.clone(),
                row_ids,
                rows,
                cached,
                reresolve,
            });
        }
        let alive_dirty = dirty.len() - dropped_blocks;
        let clean_blocks = membership.len() - alive_dirty;
        let entities_reused: usize = membership
            .iter()
            .filter(|(key, _)| !dirty.contains(*key))
            .map(|(key, _)| self.blocks.get(key).map_or(0, |b| b.entities.len()))
            .sum();
        PreparedRepair {
            dirty,
            jobs,
            dropped_blocks,
            clean_blocks,
            entities_reused,
        }
    }

    /// Stage 4 of a re-repair: write the per-block results back into the
    /// cache (fresh resolutions replace the entry; cached-resolution blocks
    /// are updated copy-on-write), refresh the engine stamp, publish the
    /// epoch and account the outcome.  `results` holds this engine's chase
    /// results flattened in job order — exactly
    /// `resolved[i].entity_count` entries per job.
    ///
    /// Sequential and owned by the shard: under block-level stealing the
    /// *resolution and chase* of many shards interleave freely, but each
    /// shard's cache writes happen here, in canonical (ascending block key)
    /// order, so snapshot assembly stays bit-identical.
    pub(crate) fn commit_rerepair(
        &mut self,
        prepared: PreparedRepair,
        resolved: Vec<ResolvedJob>,
        results: &[EntityResult],
    ) -> UpdateOutcome {
        let PreparedRepair {
            dirty,
            jobs,
            dropped_blocks,
            clean_blocks,
            entities_reused,
        } = prepared;
        debug_assert_eq!(jobs.len(), resolved.len(), "job/resolution mismatch");
        let entities_rerepaired = results.len();
        let mut cursor = 0usize;
        for (job, rjob) in jobs.into_iter().zip(resolved) {
            let results = &results[cursor..cursor + rjob.entity_count];
            cursor += rjob.entity_count;
            self.stats.rows_fingerprinted += rjob.rows_fingerprinted;
            self.stats.fingerprints_reused += rjob.fingerprints_reused;
            match rjob.fresh {
                Some((fresh, fingerprints)) => {
                    let entities = fresh
                        .members
                        .iter()
                        .zip(results.iter())
                        .map(|(members, result)| BlockEntity {
                            members: members.clone(),
                            result: result.clone(),
                        })
                        .collect();
                    self.blocks.insert(
                        job.key,
                        Arc::new(BlockRepair {
                            rows: job.row_ids,
                            decisions: fresh.decisions,
                            entities,
                            fingerprints,
                            stats: fresh.stats,
                        }),
                    );
                }
                None => {
                    // copy-on-write: clones the block only while a published
                    // epoch still pins the old allocation
                    let repair =
                        Arc::make_mut(self.blocks.get_mut(&job.key).expect("cached above"));
                    for (be, result) in repair.entities.iter_mut().zip(results.iter()) {
                        be.result = result.clone();
                    }
                }
            }
        }
        debug_assert_eq!(cursor, results.len(), "chase results drifted from jobs");
        self.stamp = self.engine.plan().stamp();
        self.publish(&dirty);

        self.stats.entities_rerepaired += entities_rerepaired;
        self.stats.entities_reused += entities_reused;
        UpdateOutcome {
            generation: self.relation.generation(),
            dirty_blocks: dirty.len() - dropped_blocks,
            dropped_blocks,
            clean_blocks,
            entities_rerepaired,
            entities_reused,
        }
    }

    /// Publish the engine's current state as an immutable epoch: pinned
    /// rows, pinned block cache, and the keys this mutation dirtied.  One
    /// shard, identity id maps — the sharded engine builds its own combined
    /// epochs from the per-shard ones.
    fn publish(&self, dirty: &BTreeSet<BlockKey>) {
        let dirty_map: BTreeMap<BlockKey, (usize, BlockKey)> = dirty
            .iter()
            .map(|key| (key.clone(), (0, key.clone())))
            .collect();
        self.hub.publish(Epoch {
            id: EpochId(0), // assigned by the hub
            generation: self.relation.generation(),
            stamp: self.stamp,
            schema: self.relation.schema().clone(),
            blocker: Arc::clone(&self.blocker),
            threads: self.engine.config().threads,
            shards: vec![ShardView {
                rows: self.relation.epoch(),
                blocks: Arc::new(self.blocks.clone()),
                to_global: None,
            }],
            route: None,
            routing: None,
            dirty: Arc::new(dirty_map),
        });
    }

    /// A cloneable handle to this engine's epoch hub — the read side of the
    /// serving layer.  Readers on other threads pin epochs and compute
    /// deltas through it without ever borrowing the engine.
    pub fn epochs(&self) -> EpochHub {
        self.hub.clone()
    }

    /// Pin the engine's current epoch.
    pub fn current_epoch(&self) -> Arc<Epoch> {
        self.hub.current()
    }

    /// Everything that changed since generation `since`, at block
    /// granularity (see [`EpochHub::changes_since`]).
    pub fn changes_since(
        &self,
        since: Generation,
    ) -> Result<SnapshotDelta, crate::epoch::EpochError> {
        self.hub.changes_since(since)
    }

    /// How many epochs stay reachable for generation-addressed reads.
    pub fn set_epoch_retention(&self, epochs: usize) {
        self.hub.set_retention(epochs);
    }

    /// The live blocks with their member rows as `(global index, row id)`
    /// pairs, keyed by block, membership in snapshot order.
    fn block_membership(&self) -> HashMap<BlockKey, Vec<(usize, RowId)>> {
        let mut membership: HashMap<BlockKey, Vec<(usize, RowId)>> = HashMap::new();
        for (global, row) in self.relation.rows().iter().enumerate() {
            let key = self
                .index
                .block_of_row(row.id)
                .expect("every live row is indexed")
                .clone();
            membership.entry(key).or_default().push((global, row.id));
        }
        membership
    }

    /// The cached repairs of every live block, rebased from block-local to
    /// this engine's relation row positions, in no particular order.
    ///
    /// This is the merge currency of snapshot assembly: [`Self::snapshot`]
    /// sorts one engine's blocks and hands them to [`assemble_repair`]; the
    /// sharded engine remaps each shard's positions to corpus-global ones
    /// first and merges all shards' blocks into the same canonical order.
    pub(crate) fn assembled_blocks(&self) -> Vec<AssembledBlock> {
        let membership = self.block_membership();
        let mut out = Vec::with_capacity(membership.len());
        for (key, globals) in &membership {
            let repair = self
                .blocks
                .get(key)
                .expect("every live block has a cached repair");
            debug_assert_eq!(repair.rows.len(), globals.len(), "stale block cache");
            debug_assert_eq!(
                self.stamp,
                self.engine.plan().stamp(),
                "block cache is stale relative to the plan — was the plan \
                 mutated without going through apply_master_append?"
            );
            let decisions = repair
                .decisions
                .iter()
                .map(|d| MatchDecision {
                    left: globals[d.left].0,
                    right: globals[d.right].0,
                    similarity: d.similarity,
                    matched: d.matched,
                    pruned: d.pruned,
                })
                .collect();
            let entities = repair
                .entities
                .iter()
                .map(|be| {
                    let members: Vec<usize> = be.members.iter().map(|&l| globals[l].0).collect();
                    (members, be.result.clone())
                })
                .collect();
            out.push(AssembledBlock {
                first_row: globals.first().map_or(usize::MAX, |&(g, _)| g),
                decisions,
                entities,
                stats: repair.stats,
            });
        }
        out
    }

    /// Number of blocks with a live cached repair.
    pub fn cached_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Number of live rows in the cached block with this key, if any.
    pub(crate) fn cached_block_len(&self, key: &BlockKey) -> Option<usize> {
        self.blocks.get(key).map(|b| b.rows.len())
    }

    /// Extract one keyed block wholesale for migration to a sibling shard:
    /// remove its cached repair, delete its rows from the relation and the
    /// blocking index, and hand everything to the caller.  `None` when no
    /// such block is cached.  Only [`BlockKey::Key`] blocks migrate — a
    /// singleton block's key embeds the shard-local row id and cannot move
    /// id spaces.
    ///
    /// The repair (decisions, entities, fingerprints, stats) travels with
    /// the rows: all of it is indexed by *position* within the block, and
    /// [`IncrementalEngine::import_block`] re-inserts the rows in the same
    /// order, so every cached index stays valid without recomputation.
    pub(crate) fn export_block(&mut self, key: &BlockKey) -> Option<ExportedBlock> {
        debug_assert!(
            matches!(key, BlockKey::Key(_)),
            "singleton blocks are pinned to their shard"
        );
        let repair = self.blocks.remove(key)?;
        let rows: Vec<Tuple> = repair
            .rows
            .iter()
            .map(|&id| {
                self.relation
                    .row(id)
                    .expect("cached block rows are live")
                    .tuple
                    .clone()
            })
            .collect();
        let mut batch = UpdateBatch::new(self.name.clone());
        batch.deletes = repair.rows.clone();
        let applied = self
            .relation
            .apply(&batch)
            .expect("cached block rows are live");
        self.index.apply(
            applied.deleted.iter().map(|(id, _)| *id),
            std::iter::empty::<(RowId, &Tuple)>(),
        );
        // refresh this shard's pinned epoch so the router's next combined
        // epoch sees the post-handoff rows; nothing is dirty — the block's
        // repair is unchanged, it merely changed shards
        self.publish(&BTreeSet::new());
        Some(ExportedBlock { rows, repair })
    }

    /// Adopt a block exported by a sibling shard: insert its rows **in
    /// export order** (fresh ascending local ids), install the travelled
    /// repair rewritten to the new ids, and return those ids (parallel to
    /// the exported row order, for the router's id-map handoff).
    ///
    /// Order preservation is the whole correctness argument: the exported
    /// row order is ascending source-local id, which is ascending global id
    /// (ids are assigned in insertion order on every shard), so the fresh
    /// ascending local ids keep the block's position-indexed repair valid
    /// *and* keep local row order a subsequence of global row order within
    /// the block — exactly what canonical snapshot assembly needs.
    pub(crate) fn import_block(&mut self, key: &BlockKey, exported: ExportedBlock) -> Vec<RowId> {
        debug_assert!(
            !self.blocks.contains_key(key),
            "a block lives wholly inside one shard"
        );
        let ExportedBlock { rows, repair } = exported;
        let mut batch = UpdateBatch::new(self.name.clone());
        batch.inserts = rows.iter().map(|t| t.values().to_vec()).collect();
        let applied = self
            .relation
            .apply(&batch)
            .expect("migrated rows conform to the shared schema");
        let inserted = applied.inserted.clone();
        debug_assert_eq!(inserted.len(), repair.rows.len(), "migration lost rows");
        let pairs: Vec<(RowId, Tuple)> = inserted
            .iter()
            .zip(&rows)
            .map(|(&id, tuple)| (id, tuple.clone()))
            .collect();
        let dirty = self.index.apply(
            std::iter::empty::<RowId>(),
            pairs.iter().map(|(id, tuple)| (*id, tuple)),
        );
        debug_assert!(
            dirty.blocks.iter().all(|k| k == key),
            "an imported block's rows must all carry its key"
        );
        let mut repair = (*repair).clone();
        repair.rows = inserted.clone();
        self.blocks.insert(key.clone(), Arc::new(repair));
        self.publish(&BTreeSet::new());
        inserted
    }

    /// Number of entities across all cached block repairs.
    pub fn cached_entities(&self) -> usize {
        self.blocks.values().map(|b| b.entities.len()).sum()
    }

    /// Assemble the current full [`RelationRepair`] from the per-block cache.
    ///
    /// The output is semantically identical to
    /// `BatchEngine::repair_relation(&self.relation.snapshot(), &resolve)`
    /// under the engine's current plan: same entity order (ascending smallest
    /// member record), same outcomes, targets, suggestions, membership, match
    /// decisions, repaired rows and skip list.  Per-entity chase counters
    /// reflect the run that actually produced each cached result.
    pub fn snapshot(&self) -> RelationRepair {
        let relation = self.relation.snapshot();
        let blocks = self.assembled_blocks();
        let threads = self.engine.config().threads;
        assemble_repair(relation, blocks, threads)
    }
}

/// One live block's cached repair with all indices rebased to row positions
/// of the relation being assembled (see
/// [`IncrementalEngine::assembled_blocks`]).
#[derive(Debug, Clone)]
pub(crate) struct AssembledBlock {
    /// Smallest member row position — the block's canonical sort key.
    pub(crate) first_row: usize,
    /// The block's pairwise match decisions over rebased row positions.
    pub(crate) decisions: Vec<MatchDecision>,
    /// The block's entities: rebased member positions (ascending) plus the
    /// cached repair result.
    pub(crate) entities: Vec<(Vec<usize>, EntityResult)>,
    /// Cascade counters of the block's cached resolution.
    pub(crate) stats: ResolveStats,
}

/// Assemble a [`RelationRepair`] over `relation` from per-block cached
/// repairs whose indices are row positions of `relation`.
///
/// Reproduces the canonical order of the full pipeline: blocks in ascending
/// smallest-member order (like `Blocker::blocks`), entities re-sorted by
/// ascending smallest member globally (like the first-seen union-find
/// collection), rows materialized through the shared [`materialize_rows`]
/// policy.  Shared by [`IncrementalEngine::snapshot`] and the sharded
/// engine's merge, so both emit bit-identical repairs.
pub(crate) fn assemble_repair(
    relation: Relation,
    mut blocks: Vec<AssembledBlock>,
    threads: usize,
) -> RelationRepair {
    let schema = relation.schema().clone();
    blocks.sort_by_key(|b| b.first_row);

    let mut decisions: Vec<MatchDecision> = Vec::new();
    let mut assembled: Vec<(Vec<usize>, EntityResult)> = Vec::new();
    let mut stats = ResolveStats::default();
    for block in blocks {
        decisions.extend(block.decisions);
        assembled.extend(block.entities);
        stats.merge(&block.stats);
    }
    // global entity order: ascending smallest member
    assembled.sort_by_key(|(members, _)| members.first().copied().unwrap_or(usize::MAX));

    let mut entities = Vec::with_capacity(assembled.len());
    let mut members = Vec::with_capacity(assembled.len());
    let mut results = Vec::with_capacity(assembled.len());
    for (idx, (member_rows, mut result)) in assembled.into_iter().enumerate() {
        let mut instance = EntityInstance::new(schema.clone());
        for &row in &member_rows {
            instance
                .push_tuple(relation.rows()[row].clone())
                .expect("rows conform to their own schema");
        }
        entities.push(instance);
        result.entity = idx;
        result.records = member_rows.clone();
        members.push(member_rows);
        results.push(result);
    }

    let threads = effective_threads(threads, results.len());
    let report = BatchReport::from_entities(results, threads);
    let (repaired, row_entities, skipped) = materialize_rows(&schema, &report, &entities);
    RelationRepair {
        resolved: ResolvedEntities::from_parts(entities, members, decisions, stats),
        report,
        repaired,
        row_entities,
        skipped,
    }
}

/// Can any of the delta's new ground steps change this entity's repair?
///
/// Exactness argument (chase monotonicity + Church-Rosser): master steps are
/// `Assign` actions guarded by `te[A] = c` premises.  A premise on an
/// attribute the base run deduced as a *different* constant can never be
/// satisfied (a defined target value never changes), so such a step never
/// fires for this entity, in the base run or in any candidate check.  A step
/// whose assignments all equal already-deduced values is a no-op even if it
/// fires.  Everything else — a premise on a still-null attribute, an
/// assignment to a null attribute, an assignment contradicting a deduced
/// value (a conflict in the re-run) — may change the fixpoint, so the entity
/// must be re-repaired.  Not-Church-Rosser entities are re-repaired whenever
/// steps were added at all: they stay conflicting (monotonicity), but the
/// *reported* conflict may legitimately differ once more steps compete.
fn step_set_may_affect(steps: &[GroundStep], result: &EntityResult) -> bool {
    if result.outcome == EntityOutcome::NotChurchRosser {
        return true;
    }
    steps
        .iter()
        .any(|step| step_may_affect(step, &result.deduced))
}

fn step_may_affect(step: &GroundStep, deduced: &TargetTuple) -> bool {
    for pending in &step.pending {
        match pending {
            PendingPred::TargetCmp { attr, op, rhs } => {
                let value = deduced.value(*attr);
                if !value.is_null() && !value.eval(*op, rhs).unwrap_or(false) {
                    return false; // premise can never be satisfied
                }
            }
            // order premises do not occur in master steps; be conservative
            PendingPred::Order { .. } => {}
        }
    }
    match &step.action {
        StepAction::Assign { assignments } => assignments.iter().any(|(attr, value)| {
            let current = deduced.value(*attr);
            current.is_null() || !current.same(value)
        }),
        // order actions do not occur in master steps; be conservative
        StepAction::Order { .. } => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::EntityOutcome;
    use relacc_core::rules::{MasterPremise, MasterRule, Predicate, RuleSet, TupleRule};
    use relacc_model::{AttrId, CmpOp, DataType, MasterRelation, Schema, SchemaRef};

    fn schema() -> SchemaRef {
        Schema::builder("stat")
            .attr("name", DataType::Text)
            .attr("rnds", DataType::Int)
            .attr("team", DataType::Text)
            .build()
    }

    fn master_schema() -> SchemaRef {
        Schema::builder("nba")
            .attr("name", DataType::Text)
            .attr("team", DataType::Text)
            .build()
    }

    fn rules(s: &SchemaRef, ms: &SchemaRef) -> RuleSet {
        RuleSet::from_rules([
            relacc_core::AccuracyRule::from(TupleRule::new(
                "cur",
                vec![Predicate::cmp_attrs(s.expect_attr("rnds"), CmpOp::Lt)],
                s.expect_attr("rnds"),
            )),
            relacc_core::AccuracyRule::from(MasterRule::new(
                "m",
                vec![MasterPremise::TargetEqMaster(
                    s.expect_attr("name"),
                    ms.expect_attr("name"),
                )],
                vec![(s.expect_attr("team"), ms.expect_attr("team"))],
            )),
        ])
    }

    fn seed_relation(s: &SchemaRef) -> Relation {
        Relation::from_rows(
            s.clone(),
            vec![
                vec![Value::text("mj"), Value::Int(16), Value::Null],
                vec![Value::text("mj"), Value::Int(27), Value::Null],
                vec![Value::text("sp"), Value::Int(27), Value::Null],
            ],
        )
        .unwrap()
    }

    fn open_engine() -> IncrementalEngine {
        let s = schema();
        let ms = master_schema();
        let master = MasterRelation::from_rows(
            ms.clone(),
            vec![vec![Value::text("mj"), Value::text("Bulls")]],
        )
        .unwrap();
        let engine = BatchEngine::new(s.clone(), rules(&s, &ms), vec![master]).unwrap();
        IncrementalEngine::open(
            engine,
            "stat",
            &seed_relation(&s),
            ResolveConfig::on_attrs(vec!["name".into()])
                .with_strategy(relacc_resolve::BlockingStrategy::ExactKey),
        )
    }

    fn assert_matches_full(incremental: &IncrementalEngine, label: &str) {
        let full = incremental.engine.repair_relation(
            &incremental.relation.snapshot(),
            &ResolveConfig::on_attrs(vec!["name".into()])
                .with_strategy(relacc_resolve::BlockingStrategy::ExactKey),
        );
        let snap = incremental.snapshot();
        assert_eq!(
            snap.resolved.members, full.resolved.members,
            "{label}: members"
        );
        assert_eq!(
            snap.resolved.decisions, full.resolved.decisions,
            "{label}: decisions"
        );
        assert_eq!(
            snap.report.entities.len(),
            full.report.entities.len(),
            "{label}: entity count"
        );
        for (a, b) in snap.report.entities.iter().zip(full.report.entities.iter()) {
            assert_eq!(a.entity, b.entity, "{label}: entity index");
            assert_eq!(a.records, b.records, "{label}: records of {}", a.entity);
            assert_eq!(a.outcome, b.outcome, "{label}: outcome of {}", a.entity);
            assert_eq!(a.deduced, b.deduced, "{label}: deduced of {}", a.entity);
            assert_eq!(
                a.suggestion, b.suggestion,
                "{label}: suggestion of {}",
                a.entity
            );
        }
        assert_eq!(snap.repaired.rows(), full.repaired.rows(), "{label}: rows");
        assert_eq!(
            snap.row_entities, full.row_entities,
            "{label}: row entities"
        );
        assert_eq!(snap.skipped, full.skipped, "{label}: skipped");
    }

    #[test]
    fn open_runs_the_initial_full_repair() {
        let engine = open_engine();
        assert_eq!(engine.stats().entities_rerepaired, 2);
        let snap = engine.snapshot();
        assert_eq!(snap.report.entities.len(), 2);
        // mj joins the master relation and resolves the team
        let mj = &snap.report.entities[0];
        assert_eq!(mj.records, vec![0, 1]);
        assert_eq!(mj.deduced.value(AttrId(2)), &Value::text("Bulls"));
        assert_matches_full(&engine, "seed");
    }

    #[test]
    fn row_updates_rerepair_only_dirty_blocks() {
        let mut engine = open_engine();
        let outcome = engine
            .apply(&UpdateBatch::new("stat").insert(vec![
                Value::text("sp"),
                Value::Int(31),
                Value::Null,
            ]))
            .unwrap();
        assert_eq!(outcome.generation, Generation(1));
        assert_eq!(outcome.dirty_blocks, 1);
        assert_eq!(outcome.dropped_blocks, 0);
        assert_eq!(outcome.clean_blocks, 1);
        assert_eq!(outcome.entities_rerepaired, 1);
        assert_eq!(outcome.entities_reused, 1);
        assert_matches_full(&engine, "insert");

        // deleting the fresher sp row reverts its deduction
        let outcome = engine
            .apply(&UpdateBatch::new("stat").delete(RowId(3)))
            .unwrap();
        assert_eq!(outcome.dirty_blocks, 1);
        assert_matches_full(&engine, "delete");

        // deleting a whole block removes its entities; nothing was
        // re-repaired and the surviving block's cache is reused
        let outcome = engine
            .apply(&UpdateBatch::new("stat").delete(RowId(2)))
            .unwrap();
        assert_eq!(outcome.dirty_blocks, 0);
        assert_eq!(outcome.dropped_blocks, 1);
        assert_eq!(outcome.clean_blocks, 1);
        assert_eq!(outcome.entities_rerepaired, 0);
        assert_eq!(outcome.entities_reused, 1);
        assert_eq!(engine.snapshot().report.entities.len(), 1);
        assert_matches_full(&engine, "block-drop");
    }

    /// Block-cache lifecycle audit: one batch whose deletes empty a block
    /// AND whose inserts repopulate the same `BlockKey` must leave exactly
    /// one live cache entry for that key (the re-resolved one), with the
    /// snapshot still differentially identical to a from-scratch repair —
    /// at 1 and 4 worker threads.  Guards the `blocks.remove(key)`
    /// drop-path in `rerepair` against ever firing for a key the same
    /// batch repopulated.
    #[test]
    fn delete_then_reinsert_same_key_keeps_one_cache_entry() {
        for threads in [1usize, 4] {
            let s = schema();
            let ms = master_schema();
            let master = MasterRelation::from_rows(
                ms.clone(),
                vec![vec![Value::text("mj"), Value::text("Bulls")]],
            )
            .unwrap();
            let engine = BatchEngine::new(s.clone(), rules(&s, &ms), vec![master])
                .unwrap()
                .with_threads(threads);
            let mut inc = IncrementalEngine::open(
                engine,
                "stat",
                &seed_relation(&s),
                ResolveConfig::on_attrs(vec!["name".into()])
                    .with_strategy(relacc_resolve::BlockingStrategy::ExactKey),
            );
            let blocks_before = inc.cached_blocks();
            assert_eq!(blocks_before, 2, "mj block + sp block");

            // RowId(2) is the only "sp" row: the delete empties the block,
            // the inserts repopulate the very same key within one batch
            let outcome = inc
                .apply(
                    &UpdateBatch::new("stat")
                        .delete(RowId(2))
                        .insert(vec![Value::text("sp"), Value::Int(30), Value::Null])
                        .insert(vec![Value::text("sp"), Value::Int(33), Value::Null]),
                )
                .unwrap();
            // the key stayed live: it is dirty, not dropped
            assert_eq!(outcome.dirty_blocks, 1, "threads={threads}");
            assert_eq!(outcome.dropped_blocks, 0, "threads={threads}");
            assert_eq!(
                inc.cached_blocks(),
                blocks_before,
                "threads={threads}: exactly one live entry for the reinserted key"
            );
            assert_eq!(inc.cached_entities(), 2, "threads={threads}");
            assert_matches_full(&inc, &format!("delete-reinsert/threads={threads}"));

            // and the refreshed cache reflects the new rows, not the deleted one
            let snap = inc.snapshot();
            let sp = &snap.report.entities[1];
            assert_eq!(sp.records, vec![2, 3], "threads={threads}");
            assert_eq!(
                sp.deduced.value(AttrId(1)),
                &Value::Int(33),
                "threads={threads}: currency rule picks the fresher rnds"
            );
        }
    }

    #[test]
    fn steady_state_streaming_fingerprints_only_inserted_rows() {
        let mut engine = open_engine();
        // the initial full repair fingerprints every seed row once
        assert_eq!(engine.stats().rows_fingerprinted, 3);
        assert_eq!(engine.stats().fingerprints_reused, 0);

        // inserting into the existing "mj" block re-resolves it: the two
        // cached mj fingerprints are reused, only the new row is computed
        engine
            .apply(&UpdateBatch::new("stat").insert(vec![
                Value::text("mj"),
                Value::Int(31),
                Value::Null,
            ]))
            .unwrap();
        assert_eq!(engine.stats().rows_fingerprinted, 4);
        assert_eq!(engine.stats().fingerprints_reused, 2);

        // a delete re-resolves the block entirely from cached fingerprints
        engine
            .apply(&UpdateBatch::new("stat").delete(RowId(3)))
            .unwrap();
        assert_eq!(engine.stats().rows_fingerprinted, 4);
        assert_eq!(engine.stats().fingerprints_reused, 4);

        // master deltas reuse the cached resolution outright: no
        // fingerprint work at all
        let before = engine.stats().clone();
        engine
            .apply_master_append(0, vec![vec![Value::text("sp"), Value::text("Blazers")]])
            .unwrap();
        assert_eq!(engine.stats().rows_fingerprinted, before.rows_fingerprinted);
        assert_eq!(
            engine.stats().fingerprints_reused,
            before.fingerprints_reused
        );
        assert_matches_full(&engine, "fingerprint-reuse");
    }

    #[test]
    fn snapshot_stats_match_full_resolution() {
        let engine = open_engine();
        let snap = engine.snapshot();
        let full = relacc_resolve::resolve_relation(
            &engine.relation.snapshot(),
            &ResolveConfig::on_attrs(vec!["name".into()])
                .with_strategy(relacc_resolve::BlockingStrategy::ExactKey),
        );
        assert_eq!(snap.resolved.stats, full.stats);
        assert_eq!(
            snap.resolved.stats.pairs_considered,
            snap.resolved.decisions.len()
        );
    }

    #[test]
    fn updates_must_address_the_right_relation() {
        let mut engine = open_engine();
        assert!(matches!(
            engine.apply(&UpdateBatch::new("other")),
            Err(IncrementalError::Update(UpdateError::NoSuchRelation(_)))
        ));
        assert!(matches!(
            engine.apply(&UpdateBatch::new("stat").delete(RowId(99))),
            Err(IncrementalError::Update(UpdateError::NoSuchRow(_)))
        ));
    }

    #[test]
    fn master_appends_rerepair_only_affected_entities() {
        let mut engine = open_engine();
        // the sp entity has no master row: its team is open
        let before = engine.snapshot();
        assert!(before.report.entities[1].deduced.is_null(AttrId(2)));

        let outcome = engine
            .apply_master_append(0, vec![vec![Value::text("sp"), Value::text("Blazers")]])
            .unwrap();
        // only the sp entity can be affected: mj's premises bind te[name]="mj"
        assert_eq!(outcome.entities_rerepaired, 1);
        assert_eq!(outcome.entities_reused, 1);
        let after = engine.snapshot();
        assert_eq!(
            after.report.entities[1].deduced.value(AttrId(2)),
            &Value::text("Blazers")
        );
        assert_matches_full(&engine, "master-append");

        // appending an unrelated master row affects nobody
        let outcome = engine
            .apply_master_append(0, vec![vec![Value::text("pe"), Value::text("Knicks")]])
            .unwrap();
        assert_eq!(outcome.entities_rerepaired, 0);
        assert_eq!(outcome.entities_reused, 2);
        assert_matches_full(&engine, "unrelated-append");
        assert_eq!(engine.stats().master_deltas_applied, 2);
    }

    #[test]
    fn master_replacement_recompiles_and_rerepairs_everything() {
        let mut engine = open_engine();
        let ms = master_schema();
        // delete the mj master row: requires a recompile
        let replacement =
            MasterRelation::from_rows(ms, vec![vec![Value::text("sp"), Value::text("Blazers")]])
                .unwrap();
        let old_stamp = engine.engine().plan().stamp();
        let outcome = engine.replace_masters(vec![replacement]).unwrap();
        assert_eq!(outcome.entities_rerepaired, 2);
        assert_ne!(engine.engine().plan().stamp().plan, old_stamp.plan);
        let snap = engine.snapshot();
        // mj lost its master row, sp gained one
        assert!(snap.report.entities[0].deduced.is_null(AttrId(2)));
        assert_eq!(
            snap.report.entities[1].deduced.value(AttrId(2)),
            &Value::text("Blazers")
        );
        assert_matches_full(&engine, "recompile");
        assert_eq!(engine.stats().recompiles, 1);
    }

    #[test]
    fn suggestions_survive_incremental_merges() {
        // an entity with a free conflicting attribute keeps its suggestion
        // through unrelated updates
        let s = Schema::builder("r")
            .attr("name", DataType::Text)
            .attr("color", DataType::Text)
            .build();
        let relation = Relation::from_rows(
            s.clone(),
            vec![
                vec![Value::text("widget"), Value::text("red")],
                vec![Value::text("widget"), Value::text("red")],
                vec![Value::text("widget"), Value::text("blue")],
                vec![Value::text("gadget"), Value::text("green")],
            ],
        )
        .unwrap();
        let engine = BatchEngine::new(s.clone(), RuleSet::new(), vec![]).unwrap();
        let mut inc = IncrementalEngine::open(
            engine,
            "r",
            &relation,
            ResolveConfig::on_attrs(vec!["name".into()])
                .with_strategy(relacc_resolve::BlockingStrategy::ExactKey),
        );
        let snap = inc.snapshot();
        assert_eq!(snap.report.entities[0].outcome, EntityOutcome::Suggested);
        // touching the gadget block must not disturb the widget suggestion
        let outcome = inc
            .apply(&UpdateBatch::new("r").insert(vec![Value::text("gadget"), Value::text("teal")]))
            .unwrap();
        assert_eq!(outcome.entities_rerepaired, 1);
        let snap = inc.snapshot();
        assert_eq!(snap.report.entities[0].outcome, EntityOutcome::Suggested);
        assert_eq!(
            snap.report.entities[0]
                .suggestion
                .as_ref()
                .unwrap()
                .value(AttrId(1)),
            &Value::text("red")
        );
    }
}
