//! Epoch-versioned snapshots: the MVCC substrate of the serving layer.
//!
//! The incremental engines mutate their per-block caches in place, which is
//! fine for a single-threaded driver but serves reads only through an
//! exclusive reference.  This module turns every committed update into an
//! immutable **epoch** — an `Arc`'d view of the engine's state right after
//! one `apply` / master delta — published into a shared [`EpochHub`]:
//!
//! * **Publish protocol.**  The engine (the only writer) publishes a new
//!   [`Epoch`] at the end of every mutation, under the hub lock, as one
//!   pointer push; readers pin the current epoch by cloning an `Arc` under
//!   the same lock.  Neither side ever holds the lock across real work, so
//!   reads never block writes and a pinned epoch can never be observed
//!   half-updated: it either is the published pointer or it is not.
//!   Copy-on-write underneath ([`relacc_store::VersionedRelation`] rows,
//!   `Arc`'d block repairs) keeps publishing cheap and pinned state frozen.
//! * **Epoch ids vs generations.**  A [`Generation`] counts applied row
//!   batches — but master deltas change repair *results* without advancing
//!   it, so epochs carry their own monotone [`EpochId`] (+1 per publish,
//!   whatever the mutation was).  Resolving a generation to an epoch picks
//!   the **earliest** retained epoch of that generation; because deltas
//!   replace whole blocks (see below) this over-approximation is idempotent,
//!   never wrong.
//! * **Point reads.**  [`Epoch::repaired_row`] / [`Epoch::entity_result`]
//!   answer in O(block): route the global row id (identity for a single
//!   engine, via the pinned router map for a sharded one), binary-search the
//!   pinned rows, recompute the row's [`BlockKey`] (a pure function of the
//!   tuple), and look the block up in the pinned cache — no corpus scan, no
//!   side index.
//! * **Snapshot deltas.**  [`EpochHub::changes_since`] unions the dirty-block
//!   sets of every epoch after the base and reports each such block's
//!   **current** state ([`BlockChange`]), `None` when the block is gone.
//!   Composing a delta onto the base's [`Epoch::block_views`] and assembling
//!   ([`assemble_views`]) reproduces the current full snapshot bit-for-bit —
//!   the differential guarantee behind `tests/serve_differential.rs`.
//!
//! The serving crate (`relacc-serve`) builds its `Server` / `Subscription`
//! API purely on the hub handle, so the engines never learn about consumers.

use crate::batch::{entity_row, EntityResult, RelationRepair};
use crate::incremental::{assemble_repair, AssembledBlock, BlockRepair};
use crate::sharded::RoutingTable;
use relacc_core::chase::PlanStamp;
use relacc_model::{EntityInstance, SchemaRef, Tuple, Value};
use relacc_resolve::{BlockKey, Blocker, MatchDecision, ResolveStats};
use relacc_store::{Generation, Relation, RelationEpoch, RowId};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Identity of one published epoch: monotone, +1 per publish, advancing on
/// every mutation — including master deltas, which leave the [`Generation`]
/// untouched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct EpochId(pub u64);

impl std::fmt::Display for EpochId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Errors of generation-addressed epoch lookups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpochError {
    /// The generation predates the hub's retention window — its epoch was
    /// evicted.  Re-pin the current epoch (full resync) instead.
    Evicted(Generation),
    /// The generation was never published (it is in the future, or the
    /// stream never produced it).
    Unknown(Generation),
}

impl std::fmt::Display for EpochError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EpochError::Evicted(g) => {
                write!(f, "generation {} left the epoch retention window", g.0)
            }
            EpochError::Unknown(g) => write!(f, "generation {} was never published", g.0),
        }
    }
}

impl std::error::Error for EpochError {}

/// One shard's pinned state inside an [`Epoch`]: the rows at the epoch's
/// generation and the block cache that repaired them.  A single
/// [`crate::IncrementalEngine`] publishes exactly one shard with identity id
/// maps; a sharded engine publishes one per shard plus the router map.
#[derive(Debug, Clone)]
pub(crate) struct ShardView {
    /// The shard's pinned rows (shard-local ids).
    pub(crate) rows: RelationEpoch,
    /// The shard's pinned per-block cache (shard-local keys and ids).
    pub(crate) blocks: Arc<HashMap<BlockKey, Arc<BlockRepair>>>,
    /// Shard-local row id → global row id; `None` = identity.
    pub(crate) to_global: Option<Arc<HashMap<RowId, RowId>>>,
}

/// An immutable, pinned view of an engine's repaired state right after one
/// committed mutation.  All read APIs speak **global** row ids; the sharded
/// remapping is resolved internally through the pinned router maps.
#[derive(Debug)]
pub struct Epoch {
    pub(crate) id: EpochId,
    pub(crate) generation: Generation,
    pub(crate) stamp: PlanStamp,
    pub(crate) schema: SchemaRef,
    pub(crate) blocker: Arc<Blocker>,
    pub(crate) threads: usize,
    pub(crate) shards: Vec<ShardView>,
    /// Live global row id → (shard, shard-local id); `None` = identity
    /// (single engine, one shard).
    pub(crate) route: Option<Arc<HashMap<RowId, (usize, RowId)>>>,
    /// The versioned block→shard routing table this epoch was published
    /// under (`None` for a single engine).  Pinned per epoch so point reads
    /// against an epoch taken *before* a rebalance keep resolving keys to
    /// the shards that held them then — a reader never observes a torn
    /// handoff.
    pub(crate) routing: Option<Arc<RoutingTable>>,
    /// Blocks this epoch changed relative to its predecessor: global key →
    /// (shard, shard-local key).  Dropped blocks are listed too.
    pub(crate) dirty: Arc<BTreeMap<BlockKey, (usize, BlockKey)>>,
}

impl Epoch {
    /// The epoch's publish identity.
    pub fn id(&self) -> EpochId {
        self.id
    }

    /// The row-batch generation this epoch reflects.
    pub fn generation(&self) -> Generation {
        self.generation
    }

    /// The plan state the epoch's cached repairs are valid under.
    pub fn stamp(&self) -> PlanStamp {
        self.stamp
    }

    /// The relation schema.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// Number of live rows pinned by this epoch.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.rows.len()).sum()
    }

    /// True when the epoch pins no rows.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.rows.is_empty())
    }

    /// Global keys of the blocks this epoch changed relative to its
    /// predecessor (dropped blocks included).
    pub fn dirty_keys(&self) -> impl Iterator<Item = &BlockKey> {
        self.dirty.keys()
    }

    /// The pinned live rows as global ids, ascending.
    pub fn live_rows(&self) -> Vec<RowId> {
        let mut out: Vec<RowId> = self
            .shards
            .iter()
            .flat_map(|s| s.rows.rows().iter().map(|r| globalize(s, r.id)))
            .collect();
        out.sort_unstable();
        out
    }

    /// True when the row was live at this epoch.
    pub fn contains(&self, row: RowId) -> bool {
        self.locate_row(row).is_some()
    }

    /// The entity owning `row` at this epoch, in O(block): pinned routing +
    /// binary row search + a pure [`BlockKey`] recomputation, then a scan of
    /// that single block.  `None` when the row was not live.
    pub fn entity_result(&self, row: RowId) -> Option<EntityView> {
        let (shard, local, block, entity) = self.locate_entity(row)?;
        Some(self.entity_view(&self.shards[shard], block, entity, local))
    }

    /// The repaired row `row`'s entity materializes to at this epoch, under
    /// the engine's single shared materialization policy.  `None` when the
    /// row was not live, or its entity materializes no row (a
    /// not-Church-Rosser entity without a source record).
    pub fn repaired_row(&self, row: RowId) -> Option<Vec<Value>> {
        let (shard, _, block, entity) = self.locate_entity(row)?;
        let view = &self.shards[shard];
        let be = &block.entities[entity];
        let mut instance = EntityInstance::new(self.schema.clone());
        for &member in &be.members {
            let lid = block.rows[member];
            let tuple = view
                .rows
                .row(lid)
                .expect("block rows are pinned")
                .tuple
                .clone();
            instance
                .push_tuple(tuple)
                .expect("pinned rows conform to the schema");
        }
        entity_row(&be.result, &instance)
    }

    /// The pinned state of the block with the given **global** key, if it
    /// existed at this epoch.
    pub fn block_view(&self, key: &BlockKey) -> Option<BlockView> {
        let (shard, local) = self.locate_key(key)?;
        self.block_view_at(shard, &local, key.clone())
    }

    /// All pinned blocks in global currency — the composition base of
    /// [`SnapshotDelta::apply_to`].
    pub fn block_views(&self) -> BTreeMap<BlockKey, BlockView> {
        let mut out = BTreeMap::new();
        for (shard_idx, view) in self.shards.iter().enumerate() {
            for local_key in view.blocks.keys() {
                let key = globalize_key(view, local_key);
                let block = self
                    .block_view_at(shard_idx, local_key, key.clone())
                    .expect("iterated key is present");
                out.insert(key, block);
            }
        }
        out
    }

    /// Assemble the epoch's full [`RelationRepair`] — bit-identical to the
    /// engine's own snapshot at the moment this epoch was published.
    pub fn snapshot(&self) -> RelationRepair {
        assemble_views(self.schema.clone(), &self.block_views(), self.threads)
    }

    /// Resolve a global row id to (shard, local id) through the pinned
    /// router, and fetch the pinned row.
    fn locate_row(&self, row: RowId) -> Option<(usize, RowId, &Tuple)> {
        let (shard, local) = match &self.route {
            Some(route) => *route.get(&row)?,
            None => (0, row),
        };
        let tuple = &self.shards.get(shard)?.rows.row(local)?.tuple;
        Some((shard, local, tuple))
    }

    /// Locate the block and entity owning a global row id.
    fn locate_entity(&self, row: RowId) -> Option<(usize, RowId, &BlockRepair, usize)> {
        let (shard, local, tuple) = self.locate_row(row)?;
        let key = BlockKey::of_row(&self.blocker, local, tuple);
        let block = self.shards[shard].blocks.get(&key)?;
        let pos = block.rows.iter().position(|&r| r == local)?;
        let entity = block
            .entities
            .iter()
            .position(|be| be.members.contains(&pos))?;
        Some((shard, local, block, entity))
    }

    /// Resolve a **global** block key to its (shard, local key) — through
    /// the pinned routing table for keyed blocks (hash fallback for keys the
    /// table does not override), through the pinned row router for
    /// singletons.
    fn locate_key(&self, key: &BlockKey) -> Option<(usize, BlockKey)> {
        if self.route.is_none() {
            return Some((0, key.clone()));
        }
        match key {
            BlockKey::Key(_) => {
                let shard = match &self.routing {
                    Some(table) => table.shard_of(key),
                    None => crate::sharded::shard_of(key, self.shards.len()),
                };
                Some((shard, key.clone()))
            }
            BlockKey::Singleton(gid) => {
                let (shard, lid) = *self.route.as_ref()?.get(gid)?;
                Some((shard, BlockKey::Singleton(lid)))
            }
        }
    }

    /// The globalized view of one shard-local block, `key` being its global
    /// key.
    pub(crate) fn block_view_at(
        &self,
        shard: usize,
        local_key: &BlockKey,
        key: BlockKey,
    ) -> Option<BlockView> {
        let view = self.shards.get(shard)?;
        let block = view.blocks.get(local_key)?;
        let rows: Vec<(RowId, Tuple)> = block
            .rows
            .iter()
            .map(|&lid| {
                let row = view.rows.row(lid).expect("block rows are pinned");
                (globalize(view, lid), row.tuple.clone())
            })
            .collect();
        let entities = block
            .entities
            .iter()
            .enumerate()
            .map(|(idx, _)| self.entity_view(view, block, idx, RowId(0)))
            .collect();
        Some(BlockView {
            key,
            rows,
            decisions: block.decisions.clone(),
            entities,
            stats: block.stats,
        })
    }

    /// Build the [`EntityView`] of one block entity (the `_local` id is only
    /// a lookup hint and not required to be a member).
    fn entity_view(
        &self,
        view: &ShardView,
        block: &BlockRepair,
        entity: usize,
        _local: RowId,
    ) -> EntityView {
        let be = &block.entities[entity];
        let mut records = Vec::with_capacity(be.members.len());
        let mut instance = EntityInstance::new(self.schema.clone());
        for &member in &be.members {
            let lid = block.rows[member];
            records.push(globalize(view, lid));
            let tuple = view
                .rows
                .row(lid)
                .expect("block rows are pinned")
                .tuple
                .clone();
            instance
                .push_tuple(tuple)
                .expect("pinned rows conform to the schema");
        }
        EntityView {
            repaired: entity_row(&be.result, &instance),
            records,
            result: be.result.clone(),
        }
    }
}

/// Map a shard-local row id to its global id through a shard view.
fn globalize(view: &ShardView, local: RowId) -> RowId {
    match &view.to_global {
        Some(map) => *map.get(&local).expect("pinned rows are routed"),
        None => local,
    }
}

/// Map a shard-local block key to its global key.
fn globalize_key(view: &ShardView, local_key: &BlockKey) -> BlockKey {
    match local_key {
        BlockKey::Key(_) => local_key.clone(),
        BlockKey::Singleton(lid) => BlockKey::Singleton(globalize(view, *lid)),
    }
}

/// One repaired entity in **global** currency.
#[derive(Debug, Clone)]
pub struct EntityView {
    /// The entity's member rows as global ids, ascending.
    pub records: Vec<RowId>,
    /// The repaired row the entity materializes to (the shared
    /// materialization policy), `None` for a not-Church-Rosser entity with
    /// no source record.
    pub repaired: Option<Vec<Value>>,
    /// The cached repair result.  `entity` / `records` are positional fields
    /// of full-snapshot assembly and are meaningless here; use
    /// [`EntityView::records`].
    pub result: EntityResult,
}

/// The pinned state of one block in **global** currency — the unit of
/// snapshot deltas and of composition.
#[derive(Debug, Clone)]
pub struct BlockView {
    /// The block's global key.
    pub key: BlockKey,
    /// The block's live rows (global id + values), ascending by id.
    pub rows: Vec<(RowId, Tuple)>,
    /// Pairwise match decisions with indices **local to `rows`**.
    pub decisions: Vec<MatchDecision>,
    /// The block's entities in ascending-smallest-member order.
    pub entities: Vec<EntityView>,
    /// Cascade counters of the block's resolution.
    pub stats: ResolveStats,
}

/// One block's change inside a [`SnapshotDelta`]: the block's **current**
/// whole state, or `None` when it no longer exists.  Whole-block replacement
/// makes composition idempotent — replaying a change the base already
/// reflects is a no-op.
#[derive(Debug, Clone)]
pub struct BlockChange {
    /// The changed block's global key.
    pub key: BlockKey,
    /// Its state at the delta's target epoch; `None` = dropped.
    pub after: Option<BlockView>,
}

/// Everything that changed between a base generation and the current epoch,
/// at block granularity.
#[derive(Debug, Clone)]
pub struct SnapshotDelta {
    /// The base generation the delta starts from.
    pub from: Generation,
    /// The exact base epoch (earliest retained epoch of `from`).
    pub from_epoch: EpochId,
    /// The generation of the target epoch.
    pub to: Generation,
    /// The target (current) epoch.
    pub to_epoch: EpochId,
    /// Per-block changes, ascending by key.
    pub changes: Vec<BlockChange>,
}

impl SnapshotDelta {
    /// True when nothing changed.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }

    /// Compose the delta onto a base block map (typically the base epoch's
    /// [`Epoch::block_views`]): changed blocks are replaced wholesale,
    /// dropped blocks removed.  After composition,
    /// [`assemble_views`] over the map reproduces the target epoch's full
    /// snapshot bit-identically.
    pub fn apply_to(&self, views: &mut BTreeMap<BlockKey, BlockView>) {
        for change in &self.changes {
            match &change.after {
                Some(view) => {
                    views.insert(change.key.clone(), view.clone());
                }
                None => {
                    views.remove(&change.key);
                }
            }
        }
    }
}

/// Assemble a full [`RelationRepair`] from a map of global block views —
/// the composition counterpart of the engines' own snapshot assembly, and
/// bit-identical to it: every live row belongs to exactly one block, global
/// row order is ascending id, and the shared `assemble_repair` (the same
/// routine behind the engines' `snapshot()`) puts blocks and entities into
/// the canonical order.
pub fn assemble_views(
    schema: SchemaRef,
    views: &BTreeMap<BlockKey, BlockView>,
    threads: usize,
) -> RelationRepair {
    let mut all_rows: Vec<(RowId, &Tuple)> = views
        .values()
        .flat_map(|v| v.rows.iter().map(|(id, tuple)| (*id, tuple)))
        .collect();
    all_rows.sort_by_key(|&(id, _)| id);
    let mut relation = Relation::new(schema);
    let mut pos_of: HashMap<RowId, usize> = HashMap::with_capacity(all_rows.len());
    for (pos, (id, tuple)) in all_rows.iter().enumerate() {
        pos_of.insert(*id, pos);
        relation
            .push_row(tuple.values().to_vec())
            .expect("pinned rows conform to the schema");
    }
    let blocks: Vec<AssembledBlock> = views
        .values()
        .map(|v| AssembledBlock {
            first_row: v.rows.first().map_or(usize::MAX, |(id, _)| pos_of[id]),
            decisions: v
                .decisions
                .iter()
                .map(|d| MatchDecision {
                    left: pos_of[&v.rows[d.left].0],
                    right: pos_of[&v.rows[d.right].0],
                    similarity: d.similarity,
                    matched: d.matched,
                    pruned: d.pruned,
                })
                .collect(),
            entities: v
                .entities
                .iter()
                .map(|ev| {
                    let members: Vec<usize> = ev.records.iter().map(|id| pos_of[id]).collect();
                    (members, ev.result.clone())
                })
                .collect(),
            stats: v.stats,
        })
        .collect();
    assemble_repair(relation, blocks, threads)
}

/// The shared publish/pin rendezvous between one engine (the single writer)
/// and any number of readers.  Cloning the handle is cheap and shares the
/// hub; the engines hand clones out via their `epochs()` accessors.
///
/// The hub retains a bounded window of recent epochs (default
/// [`EpochHub::DEFAULT_RETENTION`]) so generation-addressed reads and
/// [`EpochHub::changes_since`] can reach back; older epochs are evicted and
/// answer [`EpochError::Evicted`].
#[derive(Debug, Clone)]
pub struct EpochHub {
    inner: Arc<HubInner>,
}

#[derive(Debug)]
struct HubInner {
    state: Mutex<HubState>,
    published: Condvar,
}

#[derive(Debug)]
struct HubState {
    /// Retained epochs, oldest first; ids are contiguous.
    epochs: VecDeque<Arc<Epoch>>,
    retain: usize,
    next_id: u64,
}

impl EpochHub {
    /// Epochs retained by default.
    pub const DEFAULT_RETENTION: usize = 8;

    pub(crate) fn new() -> Self {
        EpochHub {
            inner: Arc::new(HubInner {
                state: Mutex::new(HubState {
                    epochs: VecDeque::new(),
                    retain: Self::DEFAULT_RETENTION,
                    next_id: 0,
                }),
                published: Condvar::new(),
            }),
        }
    }

    fn lock(&self) -> MutexGuard<'_, HubState> {
        self.inner
            .state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Publish a new epoch (engine-internal: engines are the only writers).
    pub(crate) fn publish(&self, mut epoch: Epoch) -> Arc<Epoch> {
        let mut state = self.lock();
        epoch.id = EpochId(state.next_id);
        state.next_id += 1;
        let epoch = Arc::new(epoch);
        state.epochs.push_back(Arc::clone(&epoch));
        let retain = state.retain.max(1);
        while state.epochs.len() > retain {
            state.epochs.pop_front();
        }
        drop(state);
        self.inner.published.notify_all();
        epoch
    }

    /// How many epochs the hub keeps reachable for generation-addressed
    /// reads and deltas.
    pub fn set_retention(&self, epochs: usize) {
        self.lock().retain = epochs.max(1);
    }

    /// Pin the current epoch.
    pub fn current(&self) -> Arc<Epoch> {
        Arc::clone(
            self.lock()
                .epochs
                .back()
                .expect("engines publish their seed epoch at open"),
        )
    }

    /// Pin the **earliest** retained epoch of the given generation (see the
    /// module docs for why earliest is the safe resolution).
    pub fn at_generation(&self, generation: Generation) -> Result<Arc<Epoch>, EpochError> {
        let state = self.lock();
        Self::find(&state, generation).map(|idx| Arc::clone(&state.epochs[idx]))
    }

    /// Everything that changed between generation `since` and the current
    /// epoch, at block granularity.  The empty delta when `since` resolves
    /// to the current epoch.
    pub fn changes_since(&self, since: Generation) -> Result<SnapshotDelta, EpochError> {
        let (base, later, current) = {
            let state = self.lock();
            let idx = Self::find(&state, since)?;
            let later: Vec<Arc<Epoch>> = state.epochs.iter().skip(idx + 1).cloned().collect();
            let current = Arc::clone(state.epochs.back().expect("find succeeded"));
            (Arc::clone(&state.epochs[idx]), later, current)
        };
        // union the dirty sets of every epoch after the base, then resolve
        // each key's *current* location through the current epoch's pinned
        // routing — a rebalance between the base and now may have moved a
        // keyed block to another shard (with fresh local ids), so the
        // location recorded at dirty time can be stale; `block_view`
        // re-locates and still answers `None` for dropped blocks
        let mut dirty: BTreeMap<BlockKey, ()> = BTreeMap::new();
        for epoch in &later {
            for key in epoch.dirty.keys() {
                dirty.insert(key.clone(), ());
            }
        }
        let changes = dirty
            .into_keys()
            .map(|key| BlockChange {
                after: current.block_view(&key),
                key,
            })
            .collect();
        Ok(SnapshotDelta {
            from: base.generation,
            from_epoch: base.id,
            to: current.generation,
            to_epoch: current.id,
            changes,
        })
    }

    /// Block until an epoch newer than `seen` is published, up to `timeout`.
    pub fn wait_newer(&self, seen: EpochId, timeout: Duration) -> Option<Arc<Epoch>> {
        let deadline = Instant::now() + timeout;
        let mut state = self.lock();
        loop {
            let current = state.epochs.back().expect("engines publish at open");
            if current.id > seen {
                return Some(Arc::clone(current));
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            state = self
                .inner
                .published
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .0;
        }
    }

    /// The retained epochs published after `seen`, oldest first — the feed a
    /// subscription drains.  `None` when epochs between `seen` and the
    /// retention window were already evicted, i.e. part of the change history
    /// is gone and the subscriber must resync by diffing pinned epochs
    /// directly.
    pub fn epochs_after(&self, seen: EpochId) -> Option<Vec<Arc<Epoch>>> {
        let state = self.lock();
        let front = state.epochs.front()?;
        if seen.0 + 1 < front.id.0 {
            return None;
        }
        Some(
            state
                .epochs
                .iter()
                .filter(|e| e.id > seen)
                .cloned()
                .collect(),
        )
    }

    /// Did any epoch after `seen` dirty a block?  `Some(false)` proves the
    /// assembled snapshot is unchanged since `seen`; `None` means the window
    /// no longer reaches back that far (the caller must assume changes).
    pub(crate) fn any_dirty_since(&self, seen: EpochId) -> Option<bool> {
        let state = self.lock();
        let front = state.epochs.front()?;
        let back = state.epochs.back()?;
        if back.id == seen {
            return Some(false);
        }
        if seen < front.id && front.id.0 != seen.0 + 1 {
            // epochs between `seen` and the window were evicted: unknown
            return None;
        }
        Some(
            state
                .epochs
                .iter()
                .filter(|e| e.id > seen)
                .any(|e| !e.dirty.is_empty()),
        )
    }

    /// Index of the earliest retained epoch at `generation`.
    fn find(state: &HubState, generation: Generation) -> Result<usize, EpochError> {
        if let Some(idx) = state.epochs.iter().position(|e| e.generation == generation) {
            return Ok(idx);
        }
        match state.epochs.front() {
            Some(front) if generation < front.generation => Err(EpochError::Evicted(generation)),
            _ => Err(EpochError::Unknown(generation)),
        }
    }
}
