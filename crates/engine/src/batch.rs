//! The compile-once / evaluate-many batch driver — the **single** batch-repair
//! pipeline of the workspace.
//!
//! A [`BatchEngine`] compiles one [`ChasePlan`] for a workload — schema, rules
//! and master data — and evaluates it against any number of entity instances
//! in parallel.  Per entity it runs `IsCR` over the pre-compiled plan with a
//! per-worker [`ChaseScratch`] (no allocations beyond the first entity of each
//! worker), optionally completes incomplete targets from a top-k suggestion
//! search reusing the entity's grounding, and returns a [`BatchReport`] with
//! per-entity outcomes plus aggregate [`ChaseStats`].
//!
//! **Layering note:** entity resolution (blocking, similarity, clustering)
//! lives in the dependency-light `relacc-resolve` crate, so this engine can
//! offer [`BatchEngine::repair_relation`] — resolve a dirty relation, then
//! chase every entity — without a cycle.  The old `relacc_db::batch` module,
//! which duplicated this pipeline because `relacc-engine` used to depend on
//! `relacc-db` for resolution, has been deleted from the workspace;
//! there is exactly one [`EntityOutcome`], one [`EntityResult`] (carrying both
//! the input-record membership and the Church-Rosser conflict report) and one
//! suggestion policy.

use crate::pool::{effective_threads, par_map_with};
use relacc_core::chase::SpecificationError;
use relacc_core::chase::{ChaseCheckpoint, ChasePlan, ChaseScratch, CheckpointOutcome};
use relacc_core::{ChaseStats, Conflict, RuleSet};
use relacc_model::{EntityInstance, MasterRelation, SchemaRef, TargetTuple, Tuple, Value};
use relacc_resolve::{resolve_relation, ResolveConfig, ResolvedEntities};
use relacc_store::Relation;
use relacc_topk::{topkct_with, CandidateSearch, PreferenceModel};
use std::sync::Arc;

/// Configuration of a batch run.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads (0 = one per available core).
    pub threads: usize,
    /// When the chase leaves a target incomplete, suggest the best completion
    /// from a top-k search with this `k` (0 disables suggestions).
    pub suggestion_k: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            threads: 0,
            suggestion_k: 5,
        }
    }
}

/// How one entity came out of a batch run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntityOutcome {
    /// The chase deduced a complete target tuple.
    Complete,
    /// The chase left the target incomplete; the best-scored candidate from
    /// the top-k search is attached as a suggestion.
    Suggested,
    /// The chase left the target incomplete and no candidate was available (or
    /// suggestions were disabled): a user has to look at this entity.  When
    /// the suggestion search itself failed to prepare, the failure is surfaced
    /// in [`EntityResult::suggestion_error`] rather than silently folded into
    /// this classification.
    NeedsUser,
    /// The plan is not Church-Rosser for this entity; the rules (or its data)
    /// conflict and must be revised.  The conflict report is attached as
    /// [`EntityResult::conflict`].
    NotChurchRosser,
}

/// The per-entity result of a batch run.
#[derive(Debug, Clone)]
pub struct EntityResult {
    /// Index of the entity in the batch input.
    pub entity: usize,
    /// Indices of the input records that belong to this entity.  Filled by
    /// [`BatchEngine::repair_relation`] from the resolution membership; empty
    /// when the batch ran over pre-resolved entity instances whose provenance
    /// the engine never saw ([`BatchEngine::run`]).
    pub records: Vec<usize>,
    /// What happened.
    pub outcome: EntityOutcome,
    /// The target deduced by the chase (empty template when not Church-Rosser).
    pub deduced: TargetTuple,
    /// The suggested completion, when [`EntityOutcome::Suggested`].
    pub suggestion: Option<TargetTuple>,
    /// The error that aborted the suggestion search, when preparation failed.
    /// The entity is classified [`EntityOutcome::NeedsUser`] in that case, but
    /// the failure is reported instead of being silently swallowed.
    pub suggestion_error: Option<String>,
    /// The conflict report, when [`EntityOutcome::NotChurchRosser`].
    pub conflict: Option<Conflict>,
    /// Chase counters for this entity.
    pub stats: ChaseStats,
}

impl EntityResult {
    /// The tuple a repaired relation keeps for this entity: the suggestion
    /// when one exists, otherwise the deduced (possibly incomplete) target.
    pub fn final_target(&self) -> &TargetTuple {
        self.suggestion.as_ref().unwrap_or(&self.deduced)
    }
}

/// The outcome of a whole batch run.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Per-entity results, in input order.
    pub entities: Vec<EntityResult>,
    /// Number of entities whose target was deduced completely by the chase.
    pub complete: usize,
    /// Number of entities completed from the preference model.
    pub suggested: usize,
    /// Number of entities that still need user attention.
    pub needs_user: usize,
    /// Number of entities whose specification is not Church-Rosser.
    pub not_church_rosser: usize,
    /// Number of entities whose suggestion search failed to prepare (a subset
    /// of [`BatchReport::needs_user`]).
    pub suggestion_errors: usize,
    /// Aggregate chase counters across all entities.
    pub stats: ChaseStats,
    /// Worker threads the run actually used.
    pub threads_used: usize,
}

impl BatchReport {
    /// Fraction of entities fully resolved without a user (chase or
    /// suggestion).
    pub fn automatic_rate(&self) -> f64 {
        if self.entities.is_empty() {
            return 1.0;
        }
        (self.complete + self.suggested) as f64 / self.entities.len() as f64
    }

    pub(crate) fn from_entities(entities: Vec<EntityResult>, threads_used: usize) -> Self {
        let mut report = BatchReport {
            entities,
            complete: 0,
            suggested: 0,
            needs_user: 0,
            not_church_rosser: 0,
            suggestion_errors: 0,
            stats: ChaseStats::default(),
            threads_used,
        };
        for entity in &report.entities {
            match entity.outcome {
                EntityOutcome::Complete => report.complete += 1,
                EntityOutcome::Suggested => report.suggested += 1,
                EntityOutcome::NeedsUser => report.needs_user += 1,
                EntityOutcome::NotChurchRosser => report.not_church_rosser += 1,
            }
            if entity.suggestion_error.is_some() {
                report.suggestion_errors += 1;
            }
            let mut stats = report.stats;
            stats.merge(&entity.stats);
            report.stats = stats;
        }
        report
    }
}

/// An entity that could not be materialized into the repaired relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairSkip {
    /// Index of the entity in the resolution output.
    pub entity: usize,
    /// Why no row was emitted for it.
    pub reason: String,
}

/// The result of repairing a whole relation: resolution output, per-entity
/// report and the repaired one-row-per-entity relation.
#[derive(Debug, Clone)]
pub struct RelationRepair {
    /// The entity-resolution output (clusters and membership).
    pub resolved: ResolvedEntities,
    /// The batch report over the resolved entities (each [`EntityResult`]
    /// carries its input-record membership).
    pub report: BatchReport,
    /// One row per successfully materialized entity: the repaired view of the
    /// input relation.  Entities whose target stayed open fall back to their
    /// best source record instead of contributing fabricated null values; see
    /// [`RelationRepair::row_entities`] for the row → entity mapping and
    /// [`RelationRepair::skipped`] for entities with no row at all.
    pub repaired: Relation,
    /// For every row of [`RelationRepair::repaired`], the index of the entity
    /// it repairs (identical to the row index unless entities were skipped).
    pub row_entities: Vec<usize>,
    /// Entities that could not be materialized (no source record to fall back
    /// on, or a row that failed schema validation), with the reason.  The old
    /// pipeline either fabricated an all-null row or panicked here.
    pub skipped: Vec<RepairSkip>,
}

/// The member record with the most non-null attributes (first wins on ties) —
/// the best single source tuple to stand in for an entity whose target could
/// not be deduced.
fn best_source_tuple(ie: &EntityInstance) -> Option<&Tuple> {
    let mut best: Option<(&Tuple, usize)> = None;
    for t in ie.tuples() {
        let filled = t.values().iter().filter(|v| !v.is_null()).count();
        if best.map(|(_, f)| filled > f).unwrap_or(true) {
            best = Some((t, filled));
        }
    }
    best.map(|(t, _)| t)
}

/// The row a repaired relation keeps for one entity, or `None` when no row
/// can be materialized (a non-Church-Rosser entity with no source record).
/// This is the **single** materialization policy shared by
/// [`BatchEngine::repair_relation`] and the incremental engine's snapshot
/// assembly, so both paths emit bit-identical repaired relations.
pub(crate) fn entity_row(result: &EntityResult, ie: &EntityInstance) -> Option<Vec<Value>> {
    match result.outcome {
        EntityOutcome::Complete | EntityOutcome::Suggested => {
            Some(result.final_target().values().to_vec())
        }
        EntityOutcome::NeedsUser => {
            // keep what the chase deduced, fall back to the entity's best
            // source record for the attributes left open
            let mut values = result.deduced.values().to_vec();
            if let Some(source) = best_source_tuple(ie) {
                for (slot, from_source) in values.iter_mut().zip(source.values()) {
                    if slot.is_null() {
                        *slot = from_source.clone();
                    }
                }
            }
            Some(values)
        }
        EntityOutcome::NotChurchRosser => best_source_tuple(ie).map(|t| t.values().to_vec()),
    }
}

/// Materialize the one-row-per-entity repaired relation of a batch report:
/// every entity contributes [`entity_row`] (indexing `entities` by its
/// [`EntityResult::entity`]), rows failing schema validation or entities with
/// no row land in the skip list instead of panicking.
pub(crate) fn materialize_rows(
    schema: &SchemaRef,
    report: &BatchReport,
    entities: &[EntityInstance],
) -> (Relation, Vec<usize>, Vec<RepairSkip>) {
    let mut repaired = Relation::new(schema.clone());
    let mut row_entities = Vec::with_capacity(report.entities.len());
    let mut skipped = Vec::new();
    for result in &report.entities {
        let Some(row) = entity_row(result, &entities[result.entity]) else {
            skipped.push(RepairSkip {
                entity: result.entity,
                reason: "not Church-Rosser and no source record to fall back on".into(),
            });
            continue;
        };
        match repaired.push_row(row) {
            Ok(()) => row_entities.push(result.entity),
            Err(err) => skipped.push(RepairSkip {
                entity: result.entity,
                reason: format!("repaired row rejected by the schema: {err}"),
            }),
        }
    }
    (repaired, row_entities, skipped)
}

/// A compiled batch engine: one plan, evaluated against many entities.
#[derive(Debug, Clone)]
pub struct BatchEngine {
    plan: ChasePlan,
    config: EngineConfig,
}

impl BatchEngine {
    /// Compile an engine for a workload.
    pub fn new(
        schema: SchemaRef,
        rules: RuleSet,
        masters: Vec<MasterRelation>,
    ) -> Result<Self, SpecificationError> {
        Ok(BatchEngine {
            plan: ChasePlan::compile(schema, rules, masters)?,
            config: EngineConfig::default(),
        })
    }

    /// Wrap an already-compiled plan.
    pub fn from_plan(plan: ChasePlan) -> Self {
        BatchEngine {
            plan,
            config: EngineConfig::default(),
        }
    }

    /// Replace the configuration (builder style).
    pub fn with_config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Use this many worker threads (builder style; 0 = one per core).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Use this `k` for completion suggestions (builder style; 0 disables).
    pub fn with_suggestion_k(mut self, k: usize) -> Self {
        self.config.suggestion_k = k;
        self
    }

    /// The compiled plan.
    pub fn plan(&self) -> &ChasePlan {
        &self.plan
    }

    /// Mutable access to the compiled plan, for in-place master deltas
    /// ([`ChasePlan::apply_master_delta`]).  The incremental engine owns its
    /// batch engine and evolves the plan through this.
    pub fn plan_mut(&mut self) -> &mut ChasePlan {
        &mut self.plan
    }

    /// The active configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Intern the text values of a set of entity instances against the plan's
    /// canonical strings, so chase-time equality is decided by pointer
    /// comparison.  Call once per batch before [`BatchEngine::run`]; running
    /// on non-interned entities is slower but equally correct.
    pub fn intern_entities(&self, entities: &mut [EntityInstance]) {
        let mut interner = self.plan.fork_interner();
        for ie in entities {
            interner.intern_instance(ie);
        }
    }

    /// Evaluate the plan against every entity in parallel.
    pub fn run(&self, entities: &[EntityInstance]) -> BatchReport {
        let threads = effective_threads(self.config.threads, entities.len());
        let results = par_map_with(entities, threads, ChaseScratch::new, |scratch, idx, ie| {
            self.evaluate_entity(idx, ie, scratch)
        });
        BatchReport::from_entities(results, threads)
    }

    /// Intern and evaluate an owned batch of entities.
    pub fn run_owned(&self, mut entities: Vec<EntityInstance>) -> BatchReport {
        self.intern_entities(&mut entities);
        self.run(&entities)
    }

    /// [`BatchEngine::run`] plus per-entity wall-clock nanoseconds (parallel
    /// to the report's entities).  The sharded engine chases the entities of
    /// *all* shards in one pooled run and uses the timings to attribute the
    /// work back to each shard's
    /// [`crate::sharded::ShardStats::batch_ns`]; the results are identical to
    /// [`BatchEngine::run`].
    pub(crate) fn run_timed(&self, entities: &[EntityInstance]) -> (BatchReport, Vec<u64>) {
        let threads = effective_threads(self.config.threads, entities.len());
        let timed = par_map_with(entities, threads, ChaseScratch::new, |scratch, idx, ie| {
            let started = std::time::Instant::now();
            let result = self.evaluate_entity(idx, ie, scratch);
            (result, started.elapsed().as_nanos() as u64)
        });
        let (results, ns): (Vec<EntityResult>, Vec<u64>) = timed.into_iter().unzip();
        (BatchReport::from_entities(results, threads), ns)
    }

    /// Resolve a dirty relation into entities (via `relacc-resolve` blocking +
    /// matching) and repair every entity, producing a one-row-per-entity
    /// repaired relation.
    ///
    /// Entities whose outcome is [`EntityOutcome::Complete`] or
    /// [`EntityOutcome::Suggested`] contribute their final target.  An entity
    /// the chase left open ([`EntityOutcome::NeedsUser`]) contributes its
    /// deduced target with the remaining nulls filled from its best source
    /// record; a non-Church-Rosser entity contributes its best source record
    /// verbatim.  No all-null row is ever fabricated: an attribute stays null
    /// in the repaired relation only when neither the chase nor the entity's
    /// best source record had a value for it, and when a non-Church-Rosser
    /// entity has no source record at all, or a row fails schema validation,
    /// the entity is skipped and recorded in [`RelationRepair::skipped`]
    /// instead of panicking.
    pub fn repair_relation(&self, relation: &Relation, resolve: &ResolveConfig) -> RelationRepair {
        let resolved = resolve_relation(relation, resolve);
        let mut entities = resolved.entities.clone();
        self.intern_entities(&mut entities);
        let mut report = self.run(&entities);
        for (result, members) in report.entities.iter_mut().zip(resolved.members.iter()) {
            result.records = members.clone();
        }

        let (repaired, row_entities, skipped) =
            materialize_rows(relation.schema(), &report, &resolved.entities);
        RelationRepair {
            resolved,
            report,
            repaired,
            row_entities,
            skipped,
        }
    }

    fn evaluate_entity(
        &self,
        idx: usize,
        ie: &EntityInstance,
        scratch: &mut ChaseScratch,
    ) -> EntityResult {
        // One chase serves both the deduction and (for incomplete targets)
        // the candidate checks: capture the base fixpoint as a checkpoint,
        // reusing the worker's warmed index allocations.
        let run = self.plan.checkpoint_with(ie, scratch);
        let mut stats = run.stats;
        let checkpoint = match run.outcome {
            CheckpointOutcome::Ready(checkpoint) => checkpoint,
            CheckpointOutcome::NotChurchRosser(conflict) => {
                return EntityResult {
                    entity: idx,
                    records: Vec::new(),
                    outcome: EntityOutcome::NotChurchRosser,
                    deduced: TargetTuple::empty(self.plan.schema().arity()),
                    suggestion: None,
                    suggestion_error: None,
                    conflict: Some(conflict),
                    stats,
                };
            }
        };
        let deduced = checkpoint.target().clone();
        if deduced.is_complete() || self.config.suggestion_k == 0 {
            // no candidate checks needed: hand the index back to the scratch
            scratch.restore_index(checkpoint.into_index());
            let outcome = if deduced.is_complete() {
                EntityOutcome::Complete
            } else {
                EntityOutcome::NeedsUser
            };
            return EntityResult {
                entity: idx,
                records: Vec::new(),
                outcome,
                deduced,
                suggestion: None,
                suggestion_error: None,
                conflict: None,
                stats,
            };
        }
        // Suggestion search resuming every check from the captured checkpoint
        // through the worker's resumed-check buffers; afterwards the index
        // returns to the scratch for the next entity.
        let spec = self.plan.specification(ie.clone());
        let preference = PreferenceModel::occurrence(&spec, self.config.suggestion_k);
        let checkpoint: Arc<ChaseCheckpoint> = Arc::from(checkpoint);
        let suggestion = {
            let (grounding, check_scratch) = scratch.grounding_and_check();
            let search = CandidateSearch::prepare_with_checkpoint(
                &spec,
                grounding,
                checkpoint.clone(),
                preference,
            )
            .expect("preparing over an already-captured checkpoint cannot fail");
            let result = topkct_with(&search, check_scratch);
            stats.full_checks += result.stats.full_checks;
            stats.delta_checks += result.stats.delta_checks;
            stats.delta_steps_replayed += result.stats.delta_steps_replayed;
            result.candidates.into_iter().next().map(|c| c.target)
        };
        if let Ok(checkpoint) = Arc::try_unwrap(checkpoint) {
            scratch.restore_index(checkpoint.into_index());
        }
        let outcome = if suggestion.is_some() {
            EntityOutcome::Suggested
        } else {
            EntityOutcome::NeedsUser
        };
        EntityResult {
            entity: idx,
            records: Vec::new(),
            outcome,
            deduced,
            suggestion,
            suggestion_error: None,
            conflict: None,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relacc_core::chase::is_cr;
    use relacc_core::rules::{Predicate, TupleRule};
    use relacc_core::Specification;
    use relacc_model::{AttrId, CmpOp, DataType, Schema, Value};

    fn schema() -> SchemaRef {
        Schema::builder("stat")
            .attr("name", DataType::Text)
            .attr("rnds", DataType::Int)
            .attr("pts", DataType::Int)
            .build()
    }

    fn rules(s: &SchemaRef) -> RuleSet {
        RuleSet::from_rules([
            TupleRule::new(
                "cur[rnds]",
                vec![Predicate::cmp_attrs(s.expect_attr("rnds"), CmpOp::Lt)],
                s.expect_attr("rnds"),
            ),
            TupleRule::new(
                "corr[rnds->pts]",
                vec![Predicate::OrderLt {
                    attr: s.expect_attr("rnds"),
                }],
                s.expect_attr("pts"),
            ),
        ])
    }

    fn entities(s: &SchemaRef, n: usize) -> Vec<EntityInstance> {
        (0..n)
            .map(|e| {
                let rows: Vec<Vec<Value>> = (0..=(e % 4))
                    .map(|t| {
                        vec![
                            Value::text(format!("p{e}")),
                            Value::Int(t as i64),
                            Value::Int((t * 10) as i64),
                        ]
                    })
                    .collect();
                EntityInstance::from_rows(s.clone(), rows).unwrap()
            })
            .collect()
    }

    #[test]
    fn batch_matches_the_sequential_is_cr_loop() {
        let s = schema();
        let engine = BatchEngine::new(s.clone(), rules(&s), vec![]).unwrap();
        let batch = entities(&s, 40);
        let report = engine.run(&batch);
        assert_eq!(report.entities.len(), 40);
        for (idx, entity) in report.entities.iter().enumerate() {
            let spec = Specification::new(batch[idx].clone(), rules(&s));
            let reference = is_cr(&spec);
            assert_eq!(
                reference.outcome.is_church_rosser(),
                entity.outcome != EntityOutcome::NotChurchRosser
            );
            if let Some(te) = reference.outcome.target() {
                assert_eq!(te, &entity.deduced, "entity {idx}");
            }
        }
        assert_eq!(
            report.complete + report.suggested + report.needs_user + report.not_church_rosser,
            40
        );
        assert!(report.stats.steps_considered > 0);
    }

    #[test]
    fn parallel_output_is_identical_to_single_threaded() {
        let s = schema();
        let batch = entities(&s, 64);
        let sequential = BatchEngine::new(s.clone(), rules(&s), vec![])
            .unwrap()
            .with_threads(1)
            .run(&batch);
        let parallel = BatchEngine::new(s.clone(), rules(&s), vec![])
            .unwrap()
            .with_threads(8)
            .run(&batch);
        assert_eq!(sequential.entities.len(), parallel.entities.len());
        for (a, b) in sequential.entities.iter().zip(parallel.entities.iter()) {
            assert_eq!(a.entity, b.entity);
            assert_eq!(a.outcome, b.outcome);
            assert_eq!(a.deduced, b.deduced);
            assert_eq!(a.suggestion, b.suggestion);
            assert_eq!(a.suggestion_error, b.suggestion_error);
        }
        assert_eq!(sequential.stats, parallel.stats);
    }

    #[test]
    fn repair_relation_resolves_and_repairs() {
        let s = schema();
        let relation = Relation::from_rows(
            s.clone(),
            vec![
                vec![
                    Value::text("Michael Jordan"),
                    Value::Int(16),
                    Value::Int(424),
                ],
                vec![
                    Value::text("Michael  Jordan"),
                    Value::Int(27),
                    Value::Int(772),
                ],
                vec![
                    Value::text("Scottie Pippen"),
                    Value::Int(27),
                    Value::Int(639),
                ],
            ],
        )
        .unwrap();
        let engine = BatchEngine::new(s.clone(), rules(&s), vec![]).unwrap();
        let repair = engine.repair_relation(
            &relation,
            &ResolveConfig::on_attrs(vec!["name".into()]).with_threshold(0.6),
        );
        assert_eq!(repair.report.entities.len(), 2);
        assert_eq!(repair.repaired.len(), 2);
        assert_eq!(repair.row_entities, vec![0, 1]);
        assert!(repair.skipped.is_empty());
        let jordan = repair
            .resolved
            .members
            .iter()
            .position(|m| m.contains(&0))
            .unwrap();
        // the unified result carries the resolution membership
        assert_eq!(
            repair.report.entities[jordan].records,
            repair.resolved.members[jordan]
        );
        let te = repair.report.entities[jordan].final_target();
        assert_eq!(te.value(s.expect_attr("rnds")), &Value::Int(27));
        assert_eq!(te.value(s.expect_attr("pts")), &Value::Int(772));
    }

    #[test]
    fn suggestions_complete_open_attributes() {
        let s = Schema::builder("r")
            .attr("name", DataType::Text)
            .attr("color", DataType::Text)
            .build();
        let ie = EntityInstance::from_rows(
            s.clone(),
            vec![
                vec![Value::text("widget"), Value::text("red")],
                vec![Value::text("widget"), Value::text("red")],
                vec![Value::text("widget"), Value::text("blue")],
            ],
        )
        .unwrap();
        let with = BatchEngine::new(s.clone(), RuleSet::new(), vec![]).unwrap();
        let report = with.run(std::slice::from_ref(&ie));
        assert_eq!(report.entities[0].outcome, EntityOutcome::Suggested);
        // the suggestion search runs on the checkpointed check path, and its
        // counters surface in the aggregated chase stats
        assert!(report.stats.delta_checks >= 1);
        assert_eq!(report.stats.full_checks, 0);
        assert_eq!(
            report.entities[0]
                .suggestion
                .as_ref()
                .unwrap()
                .value(AttrId(1)),
            &Value::text("red")
        );
        let without = BatchEngine::new(s.clone(), RuleSet::new(), vec![])
            .unwrap()
            .with_suggestion_k(0);
        let report = without.run(&[ie]);
        assert_eq!(report.entities[0].outcome, EntityOutcome::NeedsUser);
        assert!(report.entities[0].suggestion_error.is_none());
        assert_eq!(report.needs_user, 1);
        assert_eq!(report.suggestion_errors, 0);
    }

    #[test]
    fn open_entities_fall_back_to_their_best_source_record() {
        let s = Schema::builder("r")
            .attr("name", DataType::Text)
            .attr("color", DataType::Text)
            .attr("size", DataType::Int)
            .build();
        // one entity, conflicting color, one record more complete than the
        // other; suggestions disabled so the entity stays NeedsUser
        let relation = Relation::from_rows(
            s.clone(),
            vec![
                vec![Value::text("widget"), Value::text("red"), Value::Null],
                vec![Value::text("widget"), Value::text("blue"), Value::Int(3)],
            ],
        )
        .unwrap();
        let engine = BatchEngine::new(s.clone(), RuleSet::new(), vec![])
            .unwrap()
            .with_suggestion_k(0);
        let repair =
            engine.repair_relation(&relation, &ResolveConfig::on_attrs(vec!["name".into()]));
        assert_eq!(repair.report.needs_user, 1);
        assert_eq!(repair.repaired.len(), 1);
        assert!(repair.skipped.is_empty());
        let row = &repair.repaired.rows()[0];
        // name was deduced (agreeing records); color and size come from the
        // best source record (record 1: two non-null attributes beyond name)
        assert_eq!(row.value(AttrId(0)), &Value::text("widget"));
        assert_eq!(row.value(AttrId(1)), &Value::text("blue"));
        assert_eq!(row.value(AttrId(2)), &Value::Int(3));
        assert!(!row.is_all_null());
    }

    #[test]
    fn conflicting_entities_emit_their_best_source_record_not_nulls() {
        let s = Schema::builder("r")
            .attr("name", DataType::Text)
            .attr("a", DataType::Int)
            .build();
        let relation = Relation::from_rows(
            s.clone(),
            vec![
                vec![Value::text("widget"), Value::Int(1)],
                vec![Value::text("widget"), Value::Int(2)],
            ],
        )
        .unwrap();
        // contradictory rules: a < b implies both directions, so any entity
        // with two distinct `a` values is not Church-Rosser
        let up = TupleRule::new(
            "up",
            vec![Predicate::cmp_attrs(s.expect_attr("a"), CmpOp::Lt)],
            s.expect_attr("a"),
        );
        let down = TupleRule::new(
            "down",
            vec![Predicate::cmp_attrs(s.expect_attr("a"), CmpOp::Gt)],
            s.expect_attr("a"),
        );
        let engine = BatchEngine::new(s.clone(), RuleSet::from_rules([up, down]), vec![]).unwrap();
        let repair =
            engine.repair_relation(&relation, &ResolveConfig::on_attrs(vec!["name".into()]));
        assert_eq!(repair.report.not_church_rosser, 1);
        assert!(repair.report.entities[0].conflict.is_some());
        // the repaired relation holds the best source record, not an all-null row
        assert_eq!(repair.repaired.len(), 1);
        let row = &repair.repaired.rows()[0];
        assert!(!row.is_all_null());
        assert_eq!(row.value(AttrId(0)), &Value::text("widget"));
    }

    #[test]
    fn interned_batches_share_plan_strings() {
        let s = schema();
        let engine = BatchEngine::new(s.clone(), rules(&s), vec![]).unwrap();
        let mut batch = entities(&s, 3);
        engine.intern_entities(&mut batch);
        let report = engine.run_owned(batch);
        assert_eq!(report.entities.len(), 3);
    }
}
