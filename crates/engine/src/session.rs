//! Ground-once state for interactive sessions.
//!
//! The interactive framework (Fig. 3 of the paper, `relacc-framework`)
//! repeatedly re-deduces the target while the user reveals values: only the
//! initial target template changes between rounds, never the entity instance,
//! the rules or the master data.  Grounding is independent of the initial
//! target, so an [`EntitySession`] computes `Γ` once when the session opens
//! and reuses it for every round's deduction and candidate search — the seed
//! implementation re-ground the specification from scratch on every round.

use relacc_core::chase::{ground, Grounding};
use relacc_core::Specification;
use relacc_model::{AccuracyOrders, TargetTuple};
use relacc_topk::{CandidateSearch, PreferenceModel, TopKError};

/// One entity's session state: the (mutable-template) specification plus its
/// grounding, computed once.
#[derive(Debug, Clone)]
pub struct EntitySession {
    spec: Specification,
    grounding: Grounding,
}

impl EntitySession {
    /// Open a session: ground the specification once.
    pub fn open(spec: Specification) -> Self {
        let orders = AccuracyOrders::new(&spec.ie);
        let grounding = ground(&spec, &orders);
        EntitySession { spec, grounding }
    }

    /// The current specification (including the working target template).
    pub fn spec(&self) -> &Specification {
        &self.spec
    }

    /// The session's grounding `Γ`.
    pub fn grounding(&self) -> &Grounding {
        &self.grounding
    }

    /// Replace the working initial-target template (after user feedback).
    /// The grounding stays valid: `Γ` does not depend on the template.
    pub fn set_template(&mut self, template: TargetTuple) {
        self.spec.initial_target = template;
    }

    /// Deduce + collect candidates for the current template, reusing the
    /// session grounding instead of re-running `Instantiation`.
    pub fn search(&self, preference: PreferenceModel) -> Result<CandidateSearch<'_>, TopKError> {
        CandidateSearch::prepare_with_grounding(&self.spec, &self.grounding, preference)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relacc_core::rules::{Predicate, RuleSet, TupleRule};
    use relacc_model::{AttrId, CmpOp, DataType, EntityInstance, Schema, Value};

    #[test]
    fn session_reuses_grounding_across_template_changes() {
        let schema = Schema::builder("r")
            .attr("rnds", DataType::Int)
            .attr("team", DataType::Text)
            .build();
        let ie = EntityInstance::from_rows(
            schema.clone(),
            vec![
                vec![Value::Int(16), Value::text("Chicago")],
                vec![Value::Int(27), Value::text("Chicago Bulls")],
                vec![Value::Int(27), Value::text("Chicago")],
            ],
        )
        .unwrap();
        let rules = RuleSet::from_rules([TupleRule::new(
            "cur",
            vec![Predicate::cmp_attrs(schema.expect_attr("rnds"), CmpOp::Lt)],
            schema.expect_attr("rnds"),
        )]);
        let spec = Specification::new(ie, rules);
        let mut session = EntitySession::open(spec);
        let ground_steps = session.grounding().steps.len();

        let pref = PreferenceModel::occurrence(session.spec(), 3);
        let search = session.search(pref).unwrap();
        assert_eq!(search.deduced.value(AttrId(0)), &Value::Int(27));
        assert!(search.deduced.is_null(AttrId(1)));

        // the user reveals the team; the same grounding keeps serving
        let mut template = search.deduced.clone();
        template.set(AttrId(1), Value::text("Chicago Bulls"));
        session.set_template(template);
        assert_eq!(session.grounding().steps.len(), ground_steps);
        let pref = PreferenceModel::occurrence(session.spec(), 3);
        let search = session.search(pref).unwrap();
        assert!(search.deduced.is_complete());
        assert_eq!(
            search.deduced.value(AttrId(1)),
            &Value::text("Chicago Bulls")
        );
    }
}
