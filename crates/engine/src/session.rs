//! Ground-once, checkpoint-once state for interactive sessions.
//!
//! The interactive framework (Fig. 3 of the paper, `relacc-framework`)
//! repeatedly re-deduces the target while the user reveals values: only the
//! initial target template changes between rounds, never the entity instance,
//! the rules or the master data.  Grounding is independent of the initial
//! target, so an [`EntitySession`] computes `Γ` once when the session opens
//! and reuses it for every round's deduction and candidate search — the seed
//! implementation re-ground the specification from scratch on every round.
//!
//! On top of the grounding, the session keeps **one chase checkpoint per
//! template** ([`relacc_core::chase::ChaseCheckpoint`]): the base deduction of
//! a round is captured once and every candidate `check` of that round resumes
//! from it, replaying only the delta the candidate's `Z` values trigger.  The
//! session also owns the [`CheckScratch`] carrying the resumed-check working
//! copies, so the undo-log buffers survive across rounds instead of being
//! reallocated per search.

use relacc_core::chase::{ground, ChaseCheckpoint, CheckScratch, CheckpointOutcome, Grounding};
use relacc_core::Specification;
use relacc_model::{AccuracyOrders, TargetTuple};
use relacc_topk::{CandidateSearch, PreferenceModel, TopKError};
use std::sync::Arc;

/// One entity's session state: the (mutable-template) specification, its
/// grounding (computed once), the current template's chase checkpoint and the
/// resumed-check scratch.
#[derive(Debug)]
pub struct EntitySession {
    spec: Specification,
    grounding: Grounding,
    /// The base-run checkpoint of the *current* template; invalidated by
    /// [`EntitySession::set_template`], captured lazily on the next search.
    checkpoint: Option<Arc<ChaseCheckpoint>>,
    /// Working buffers for resumed candidate checks, reused across rounds.
    check_scratch: CheckScratch,
}

impl EntitySession {
    /// Open a session: ground the specification once.
    pub fn open(spec: Specification) -> Self {
        let orders = AccuracyOrders::new(&spec.ie);
        let grounding = ground(&spec, &orders);
        EntitySession {
            spec,
            grounding,
            checkpoint: None,
            check_scratch: CheckScratch::new(),
        }
    }

    /// The current specification (including the working target template).
    pub fn spec(&self) -> &Specification {
        &self.spec
    }

    /// The session's grounding `Γ`.
    pub fn grounding(&self) -> &Grounding {
        &self.grounding
    }

    /// Replace the working initial-target template (after user feedback).
    /// The grounding stays valid — `Γ` does not depend on the template — but
    /// the chase checkpoint belongs to the old template and is dropped; the
    /// next search captures a fresh one.
    pub fn set_template(&mut self, template: TargetTuple) {
        self.spec.initial_target = template;
        self.checkpoint = None;
    }

    /// Deduce + collect candidates for the current template, reusing the
    /// session grounding instead of re-running `Instantiation`.
    ///
    /// Each call captures its own checkpoint; interactive callers that also
    /// want the session's cached checkpoint and scratch use
    /// [`EntitySession::search_with_scratch`].
    pub fn search(&self, preference: PreferenceModel) -> Result<CandidateSearch<'_>, TopKError> {
        CandidateSearch::prepare_with_grounding(&self.spec, &self.grounding, preference)
    }

    /// Deduce + collect candidates for the current template, reusing the
    /// session's grounding, its cached chase checkpoint (captured on first
    /// use per template) *and* its resumed-check scratch.
    ///
    /// Returns the search together with the scratch to thread into
    /// `topkct_with` / `topkcth_with` / `rank_join_ct_with`.
    pub fn search_with_scratch(
        &mut self,
        preference: PreferenceModel,
    ) -> Result<(CandidateSearch<'_>, &mut CheckScratch), TopKError> {
        if self.checkpoint.is_none() {
            let run = ChaseCheckpoint::capture(
                &self.spec.ie,
                &self.spec.rules,
                &self.grounding,
                &self.spec.initial_target,
            );
            match run.outcome {
                CheckpointOutcome::Ready(checkpoint) => {
                    self.checkpoint = Some(Arc::from(checkpoint));
                }
                CheckpointOutcome::NotChurchRosser(conflict) => {
                    return Err(TopKError::NotChurchRosser(conflict));
                }
            }
        }
        let checkpoint = self
            .checkpoint
            .as_ref()
            .expect("checkpoint captured above")
            .clone();
        let search = CandidateSearch::prepare_with_checkpoint(
            &self.spec,
            &self.grounding,
            checkpoint,
            preference,
        )?;
        Ok((search, &mut self.check_scratch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relacc_core::rules::{Predicate, RuleSet, TupleRule};
    use relacc_model::{AttrId, CmpOp, DataType, EntityInstance, Schema, Value};
    use relacc_topk::topkct_with;

    fn session_spec() -> Specification {
        let schema = Schema::builder("r")
            .attr("rnds", DataType::Int)
            .attr("team", DataType::Text)
            .build();
        let ie = EntityInstance::from_rows(
            schema.clone(),
            vec![
                vec![Value::Int(16), Value::text("Chicago")],
                vec![Value::Int(27), Value::text("Chicago Bulls")],
                vec![Value::Int(27), Value::text("Chicago")],
            ],
        )
        .unwrap();
        let rules = RuleSet::from_rules([TupleRule::new(
            "cur",
            vec![Predicate::cmp_attrs(schema.expect_attr("rnds"), CmpOp::Lt)],
            schema.expect_attr("rnds"),
        )]);
        Specification::new(ie, rules)
    }

    #[test]
    fn session_reuses_grounding_across_template_changes() {
        let mut session = EntitySession::open(session_spec());
        let ground_steps = session.grounding().steps.len();

        let pref = PreferenceModel::occurrence(session.spec(), 3);
        let search = session.search(pref).unwrap();
        assert_eq!(search.deduced.value(AttrId(0)), &Value::Int(27));
        assert!(search.deduced.is_null(AttrId(1)));

        // the user reveals the team; the same grounding keeps serving
        let mut template = search.deduced.clone();
        template.set(AttrId(1), Value::text("Chicago Bulls"));
        drop(search);
        session.set_template(template);
        assert_eq!(session.grounding().steps.len(), ground_steps);
        let pref = PreferenceModel::occurrence(session.spec(), 3);
        let search = session.search(pref).unwrap();
        assert!(search.deduced.is_complete());
        assert_eq!(
            search.deduced.value(AttrId(1)),
            &Value::text("Chicago Bulls")
        );
    }

    #[test]
    fn session_checkpoint_is_captured_once_per_template() {
        let mut session = EntitySession::open(session_spec());
        let pref = PreferenceModel::occurrence(session.spec(), 3);
        let (search, scratch) = session.search_with_scratch(pref).unwrap();
        let result = topkct_with(&search, scratch);
        assert!(!result.candidates.is_empty());
        assert!(result.stats.delta_checks > 0);
        assert_eq!(result.stats.full_checks, 0);
        let first_ck = search.checkpoint().clone();
        drop(search);

        // same template: the cached checkpoint is reused
        let pref = PreferenceModel::occurrence(session.spec(), 3);
        let (search, _) = session.search_with_scratch(pref).unwrap();
        assert!(Arc::ptr_eq(&first_ck, search.checkpoint()));
        drop(search);

        // template change: the checkpoint is recaptured
        let mut template = first_ck.target().clone();
        template.set(AttrId(1), Value::text("Chicago Bulls"));
        session.set_template(template);
        let pref = PreferenceModel::occurrence(session.spec(), 3);
        let (search, _) = session.search_with_scratch(pref).unwrap();
        assert!(!Arc::ptr_eq(&first_ck, search.checkpoint()));
        assert!(search.deduced.is_complete());
    }
}
