//! A minimal rayon-style scoped worker pool.
//!
//! The build environment has no crates.io access, so instead of depending on
//! `rayon` the engine ships this small parallel-map built on
//! `std::thread::scope`: workers pull item indices from a shared atomic
//! counter (dynamic scheduling, so a few expensive entities cannot stall a
//! whole pre-assigned chunk), carry a mutable per-worker state — the engine
//! passes its [`relacc_core::chase::ChaseScratch`] — and results are returned
//! in input order regardless of completion order.  The dynamic counter is
//! also what gives the sharded engine cross-shard work stealing for free:
//! when every shard's dirty blocks are flattened into one item list, an idle
//! worker simply pulls the next block no matter which shard it came from, so
//! one hot mega-shard cannot serialize a batch.
//!
//! **`RELACC_POOL_THREADS`.**  When this environment variable holds a
//! positive integer, it overrides every caller-requested thread count
//! (still capped by the item count).  CI runs the whole test suite with
//! `RELACC_POOL_THREADS=1` so scheduling-dependent nondeterminism cannot
//! hide behind the default worker count.  The variable is read once per
//! process; values that are empty or fail to parse are ignored.

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Parse a `RELACC_POOL_THREADS` value: a positive integer overrides the
/// requested worker count, anything else (unset, empty, unparsable, zero)
/// means "no override".
pub fn parse_pool_override(raw: Option<&str>) -> Option<usize> {
    let raw = raw?.trim();
    raw.parse::<usize>().ok().filter(|&n| n > 0)
}

/// The process-wide `RELACC_POOL_THREADS` override, read once.
fn pool_override() -> Option<usize> {
    static OVERRIDE: OnceLock<Option<usize>> = OnceLock::new();
    *OVERRIDE
        .get_or_init(|| parse_pool_override(std::env::var("RELACC_POOL_THREADS").ok().as_deref()))
}

/// Number of worker threads to use for `requested` (0 = one per available
/// core, capped by the number of items).  A `RELACC_POOL_THREADS` override
/// takes precedence over `requested` (see the module docs).
pub fn effective_threads(requested: usize, items: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let threads = match pool_override() {
        Some(forced) => forced,
        None if requested == 0 => hw,
        None => requested,
    };
    threads.clamp(1, items.max(1))
}

/// Map `f` over `items` on `threads` workers, each carrying a mutable state
/// created by `make_state`.  Returns results in input order.
///
/// `f` must be deterministic per item for batch output to be reproducible —
/// the scheduling order is not deterministic, the output order is.
///
/// **Panic propagation.**  If `f` (or `make_state`) panics on a worker, the
/// pool stops handing out further items, waits for the in-flight ones, and
/// re-raises the **first** panic payload unchanged — the caller sees the
/// original message, exactly as in the sequential path.  (Letting the panic
/// unwind the worker thread instead would reach `std::thread::scope`'s join,
/// which replaces the payload with an opaque "a scoped thread panicked"; and
/// a panic must never poison the shared result mutex into killing the
/// *other* workers with a misleading secondary panic, so every lock
/// acquisition recovers from poisoning via
/// [`std::sync::PoisonError::into_inner`].)
pub fn par_map_with<T, S, R, I, F>(items: &[T], threads: usize, make_state: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    let threads = effective_threads(threads, items.len());
    if threads <= 1 {
        let mut state = make_state();
        return items
            .iter()
            .enumerate()
            .map(|(idx, item)| f(&mut state, idx, item))
            .collect();
    }

    let next = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
    let first_panic: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);
    let record_panic = |payload: Box<dyn Any + Send>| {
        let mut slot = first_panic.lock().unwrap_or_else(|p| p.into_inner());
        slot.get_or_insert(payload);
        // stop handing out work; in-flight items finish
        next.store(items.len(), Ordering::Relaxed);
    };
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut state = match catch_unwind(AssertUnwindSafe(&make_state)) {
                    Ok(state) => state,
                    Err(payload) => {
                        record_panic(payload);
                        return;
                    }
                };
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    if idx >= items.len() {
                        break;
                    }
                    match catch_unwind(AssertUnwindSafe(|| f(&mut state, idx, &items[idx]))) {
                        Ok(result) => local.push((idx, result)),
                        Err(payload) => {
                            record_panic(payload);
                            break;
                        }
                    }
                }
                collected
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .extend(local);
            });
        }
    });

    if let Some(payload) = first_panic.into_inner().unwrap_or_else(|p| p.into_inner()) {
        resume_unwind(payload);
    }
    let mut indexed = collected.into_inner().unwrap_or_else(|p| p.into_inner());
    indexed.sort_by_key(|(idx, _)| *idx);
    debug_assert_eq!(indexed.len(), items.len());
    indexed.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let items: Vec<usize> = (0..500).collect();
        let out = par_map_with(
            &items,
            8,
            || 0usize,
            |state, idx, item| {
                *state += 1;
                assert_eq!(idx, *item);
                item * 2
            },
        );
        assert_eq!(out, items.iter().map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_fallback_matches_parallel() {
        let items: Vec<i64> = (0..97).collect();
        let seq = par_map_with(&items, 1, || (), |_, _, i| i * i);
        let par = par_map_with(&items, 4, || (), |_, _, i| i * i);
        assert_eq!(seq, par);
    }

    #[test]
    fn thread_resolution() {
        // the suite may legitimately run under a RELACC_POOL_THREADS override
        // (the CI single-worker matrix leg); requested counts only decide the
        // pool size when no override is active
        match parse_pool_override(std::env::var("RELACC_POOL_THREADS").ok().as_deref()) {
            None => {
                assert_eq!(effective_threads(3, 100), 3);
                assert_eq!(effective_threads(8, 2), 2);
            }
            Some(forced) => {
                assert_eq!(effective_threads(3, 100), forced.min(100));
                assert_eq!(effective_threads(8, 2), forced.min(2));
            }
        }
        assert_eq!(effective_threads(1, 0), 1);
        assert!(effective_threads(0, 1000) >= 1);
    }

    /// Regression: a worker panic used to unwind straight through the scope
    /// join, which buries the original payload under the generic "a scoped
    /// thread panicked" message (and would report lock poisoning to every
    /// other worker if the panic escaped while the result lock was held).
    /// The pool must re-raise the *original* message.
    #[test]
    fn worker_panic_propagates_the_original_message() {
        let items: Vec<usize> = (0..200).collect();
        let payload = catch_unwind(AssertUnwindSafe(|| {
            par_map_with(
                &items,
                4,
                || (),
                |_, _, &item| {
                    if item == 13 {
                        panic!("entity 13 exploded");
                    }
                    item
                },
            )
        }))
        .expect_err("a worker panic must propagate to the caller");
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_owned)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "<non-string payload>".into());
        assert!(
            message.contains("entity 13 exploded"),
            "the original panic message must survive the pool, got: {message}"
        );
    }

    /// A panic in `make_state` (per-worker state construction) is recovered
    /// the same way as one in `f`: the original payload reaches the caller.
    #[test]
    fn make_state_panic_propagates_the_original_message() {
        let items: Vec<usize> = (0..32).collect();
        let payload = catch_unwind(AssertUnwindSafe(|| {
            par_map_with(
                &items,
                4,
                || -> usize { panic!("state construction failed") },
                |state, _, &item| item + *state,
            )
        }))
        .expect_err("a make_state panic must propagate to the caller");
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("<non-string payload>");
        assert!(
            message.contains("state construction failed"),
            "got: {message}"
        );
    }

    /// When several workers panic, the caller still gets exactly one of the
    /// original payloads (the first one recorded), never a poisoning error.
    #[test]
    fn concurrent_panics_surface_one_original_payload() {
        let items: Vec<usize> = (0..64).collect();
        let payload = catch_unwind(AssertUnwindSafe(|| {
            par_map_with(
                &items,
                8,
                || (),
                |_, _, &item| -> usize { panic!("boom at {item}") },
            )
        }))
        .expect_err("panics must propagate");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "<non-string payload>".into());
        assert!(message.starts_with("boom at"), "got: {message}");
    }

    #[test]
    fn pool_override_parses_only_positive_integers() {
        assert_eq!(parse_pool_override(None), None);
        assert_eq!(parse_pool_override(Some("")), None);
        assert_eq!(parse_pool_override(Some("  ")), None);
        assert_eq!(parse_pool_override(Some("0")), None);
        assert_eq!(parse_pool_override(Some("abc")), None);
        assert_eq!(parse_pool_override(Some("-4")), None);
        assert_eq!(parse_pool_override(Some("1")), Some(1));
        assert_eq!(parse_pool_override(Some(" 16 ")), Some(16));
    }
}
