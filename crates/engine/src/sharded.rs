//! Sharded incremental repair: partition the block cache across shards.
//!
//! Blocking already partitions the corpus into independent units — resolution
//! never merges records across blocks, and the paper's per-entity semantics
//! mean two entities in different blocks can never interact — so a *shard*
//! is exactly "an [`IncrementalEngine`] plus its block cache" over a subset
//! of the blocks.  A [`ShardedEngine`] scales the incremental pipeline out
//! across `N` such shards:
//!
//! * **Routing invariant.**  A record's shard is a pure function of its
//!   blocking key: the router computes [`relacc_resolve::BlockKey`]s with the
//!   same [`Blocker`] the shards' own indices use
//!   ([`relacc_resolve::ResolveConfig::blocker`] + [`BlockKey::of_row`]) and
//!   hash-partitions them with a fixed FNV-1a hash.  Rows with an empty
//!   blocking key ([`BlockKey::Singleton`]) route by their **global** row id.
//!   Rows are immutable (updates are deletes + inserts), so a row's shard
//!   never changes and every block lives wholly inside one shard.
//! * **Broadcast vs split.**  [`ShardedEngine::apply`] validates a typed
//!   [`UpdateBatch`] against the router (same checks, same order, same
//!   errors as [`relacc_store::VersionedRelation::apply`]) and **splits** it
//!   into per-shard sub-batches; only the touched shards do any work, and
//!   they run concurrently on the engine's own
//!   [`crate::pool::par_map_with`].  Master-data deltas
//!   ([`ShardedEngine::apply_master_append`]) **broadcast**: every shard
//!   applies the same delta to its own copy of the compiled plan (cloned
//!   from one compile — Σ and `Im` stay `Arc`-shared underneath), so the
//!   per-shard [`relacc_core::chase::PlanStamp`]s advance in lockstep and
//!   each shard's stamp revalidation decides cached-vs-re-repair exactly as
//!   in the single-engine protocol.
//! * **Canonical merge.**  Each shard's [`relacc_store::VersionedRelation`]
//!   has its **own id space**; the router keeps the global ↔ local mapping
//!   (see the remapping contract on `relacc_store::versioned`).  Global row
//!   order is ascending global id — ids are assigned in insertion order and
//!   never reused — and shard-local order is a subsequence of it, so
//!   rebasing each shard's per-block repairs to global row positions
//!   preserves all within-block orderings.  [`ShardedEngine::snapshot`]
//!   therefore merges every shard's blocks into the canonical
//!   ascending-smallest-member order (shared `assemble_repair` code) and
//!   the result is **bit-identical** to a single [`IncrementalEngine`] over
//!   the same stream and to a from-scratch
//!   [`crate::batch::BatchEngine::repair_relation`] — guarded by
//!   `tests/sharded_differential.rs` across shard counts {1, 2, 4, 7}.
//!
//! Each shard is a full [`IncrementalEngine`], so the per-block resolution
//! caches — including the fingerprint cache behind the exact similarity
//! cascade — live per shard and need no cross-shard coordination (a
//! fingerprint is a pure function of its row); [`ShardedEngine::stats`] sums
//! the per-shard `rows_fingerprinted` / `fingerprints_reused` counters.

use crate::batch::{BatchEngine, RelationRepair};
use crate::epoch::{Epoch, EpochError, EpochHub, EpochId, ShardView, SnapshotDelta};
use crate::incremental::{
    assemble_repair, AssembledBlock, IncrementalEngine, IncrementalError, IncrementalStats,
    UpdateOutcome,
};
use crate::pool::par_map_with;
use relacc_model::{SchemaRef, Value};
use relacc_resolve::{BlockKey, Blocker, ResolveConfig};
use relacc_store::{Generation, Relation, RowId, UpdateBatch, UpdateError};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::{Arc, Mutex};

/// The shard a block key routes to: FNV-1a over the key bytes (or the global
/// row id for singletons), fixed so the assignment is stable across runs and
/// platforms.  Pure function of the key — never of arrival order.
pub(crate) fn shard_of(key: &BlockKey, shards: usize) -> usize {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    let eat = |hash: &mut u64, byte: u8| {
        *hash ^= u64::from(byte);
        *hash = hash.wrapping_mul(PRIME);
    };
    match key {
        BlockKey::Key(text) => {
            eat(&mut hash, 0);
            for byte in text.bytes() {
                eat(&mut hash, byte);
            }
        }
        BlockKey::Singleton(id) => {
            eat(&mut hash, 1);
            for byte in id.0.to_le_bytes() {
                eat(&mut hash, byte);
            }
        }
    }
    (hash % shards as u64) as usize
}

/// `N` independent [`IncrementalEngine`] shards behind one router.  See the
/// module docs for the routing invariant, the broadcast-vs-split batch rules
/// and why the merged snapshot is canonical.
#[derive(Debug)]
pub struct ShardedEngine {
    /// Catalog-entry name updates must address.
    name: String,
    schema: SchemaRef,
    /// The routing blocker — identical to every shard's internal one.
    blocker: Blocker,
    /// Worker threads for the shard fan-out.  The shards' internal pools use
    /// the engine configuration they were opened with, so a multi-shard
    /// dispatch can run up to `threads × EngineConfig::threads` workers;
    /// on hosts where that oversubscribes, cap the inner pools via
    /// `EngineConfig::threads` (or the process-wide `RELACC_POOL_THREADS`
    /// override, which bounds both levels at once).
    threads: usize,
    shards: Vec<IncrementalEngine>,
    /// Live global row id → (shard, shard-local row id).  `Arc`'d so
    /// published epochs pin the routing they were built under; the router
    /// copies on write while an epoch shares it.
    route: Arc<HashMap<RowId, (usize, RowId)>>,
    /// Per shard: shard-local row id → global row id (copy-on-write like
    /// `route`).
    global_of_local: Vec<Arc<HashMap<RowId, RowId>>>,
    /// Next global row id (sequential in insertion order, never reused —
    /// the same contract a single `VersionedRelation` follows).
    next_global: u64,
    /// Mirror of each shard's next local id (shards assign sequentially).
    next_local: Vec<u64>,
    /// Corpus generation: +1 per applied row batch.
    generation: Generation,
    /// The publish/pin rendezvous: one **combined** epoch per committed
    /// router-level mutation (per-shard intermediate states are never
    /// visible to sharded readers, so a pinned epoch is never torn).
    hub: EpochHub,
    /// Memoized full snapshot: the epoch it was assembled at plus the
    /// assembly.  Reused until some epoch actually dirties a block.
    snapshot_cache: Mutex<Option<(EpochId, Arc<RelationRepair>)>>,
}

impl ShardedEngine {
    /// Open a sharded engine over the seed state of a relation: partition the
    /// rows by blocking key across `shards` shards (at least one) and run the
    /// initial full repair per shard.  `engine` is compiled once and cloned
    /// per shard (rules and master data stay shared under `Arc`s).
    pub fn open(
        engine: BatchEngine,
        name: impl Into<String>,
        relation: &Relation,
        resolve: ResolveConfig,
        shards: usize,
    ) -> Self {
        let shards = shards.max(1);
        let name = name.into();
        let schema = relation.schema().clone();
        let blocker = resolve.blocker(&schema);
        let threads = engine.config().threads;

        let mut parts: Vec<Relation> = (0..shards).map(|_| Relation::new(schema.clone())).collect();
        let mut route = HashMap::new();
        let mut global_of_local = vec![HashMap::new(); shards];
        let mut next_local = vec![0u64; shards];
        for (global, tuple) in relation.rows().iter().enumerate() {
            let gid = RowId(global as u64);
            let key = BlockKey::of_row(&blocker, gid, tuple);
            let shard = shard_of(&key, shards);
            let lid = RowId(next_local[shard]);
            next_local[shard] += 1;
            parts[shard]
                .push_row(tuple.values().to_vec())
                .expect("seed rows conform to their own schema");
            route.insert(gid, (shard, lid));
            global_of_local[shard].insert(lid, gid);
        }

        let shards: Vec<IncrementalEngine> = parts
            .iter()
            .map(|part| {
                IncrementalEngine::open(engine.clone(), name.clone(), part, resolve.clone())
            })
            .collect();
        let this = ShardedEngine {
            name,
            schema,
            blocker,
            threads,
            shards,
            route: Arc::new(route),
            global_of_local: global_of_local.into_iter().map(Arc::new).collect(),
            next_global: relation.len() as u64,
            next_local,
            generation: Generation(0),
            hub: EpochHub::new(),
            snapshot_cache: Mutex::new(None),
        };
        // seed epoch: every block is "dirty" relative to nothing
        let all: Vec<usize> = (0..this.shards.len()).collect();
        let dirty = this.globalized_dirty(&all, &[]);
        this.publish(dirty);
        this
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shards themselves (read-only; mutate only through the router).
    pub fn shards(&self) -> &[IncrementalEngine] {
        &self.shards
    }

    /// The batch engine of shard 0 (all shards' plans evolve in lockstep).
    pub fn engine(&self) -> &BatchEngine {
        self.shards[0].engine()
    }

    /// The corpus generation (+1 per applied row batch, like a single
    /// versioned relation's).
    pub fn generation(&self) -> Generation {
        self.generation
    }

    /// Number of live rows across all shards.
    pub fn len(&self) -> usize {
        self.route.len()
    }

    /// True when no rows are live.
    pub fn is_empty(&self) -> bool {
        self.route.is_empty()
    }

    /// Lifetime counters summed across shards.  `batches_applied` counts
    /// per-shard sub-batch applications, so it can exceed (split batches
    /// touching several shards) or undershoot (batches whose rows all route
    /// to one shard) the number of router-level batches.
    pub fn stats(&self) -> IncrementalStats {
        let mut out = IncrementalStats::default();
        for shard in &self.shards {
            let s = shard.stats();
            out.batches_applied += s.batches_applied;
            out.master_deltas_applied += s.master_deltas_applied;
            out.recompiles += s.recompiles;
            out.entities_rerepaired += s.entities_rerepaired;
            out.entities_reused += s.entities_reused;
            out.rows_fingerprinted += s.rows_fingerprinted;
            out.fingerprints_reused += s.fingerprints_reused;
        }
        out
    }

    /// Apply a typed row batch: validate against the router (the same checks
    /// in the same order as [`relacc_store::VersionedRelation::apply`], so a
    /// sharded engine rejects exactly what a single engine rejects), split it
    /// into per-shard sub-batches, and run the touched shards concurrently.
    /// Untouched shards do no work at all — not even a membership scan.
    pub fn apply(&mut self, batch: &UpdateBatch) -> Result<UpdateOutcome, IncrementalError> {
        if batch.relation != self.name {
            return Err(IncrementalError::Update(UpdateError::NoSuchRelation(
                batch.relation.clone(),
            )));
        }
        // validate everything before mutating: deletes (liveness, intra-batch
        // duplicates) first, then insert schemas
        let mut doomed: HashSet<RowId> = HashSet::with_capacity(batch.deletes.len());
        for &id in &batch.deletes {
            if !doomed.insert(id) || !self.route.contains_key(&id) {
                return Err(IncrementalError::Update(UpdateError::NoSuchRow(id)));
            }
        }
        for row in &batch.inserts {
            self.schema
                .validate_row(row)
                .map_err(|e| IncrementalError::Update(UpdateError::Schema(e)))?;
        }

        // split: deletes route through the live map, inserts by blocking key
        // (global ids are assigned after all deletes, like the single
        // engine's deletes-then-inserts contract).  The id maps copy on
        // write while a published epoch pins them; `retired` remembers this
        // batch's deleted local→global pairs so their singleton dirty keys
        // can still be globalized after the maps forget them.
        let mut subs: Vec<UpdateBatch> = (0..self.shards.len())
            .map(|_| UpdateBatch::new(self.name.clone()))
            .collect();
        let mut retired: Vec<HashMap<RowId, RowId>> = vec![HashMap::new(); self.shards.len()];
        for &gid in &batch.deletes {
            let (shard, lid) = Arc::make_mut(&mut self.route)
                .remove(&gid)
                .expect("validated as live above");
            Arc::make_mut(&mut self.global_of_local[shard]).remove(&lid);
            retired[shard].insert(lid, gid);
            subs[shard].deletes.push(lid);
        }
        for row in &batch.inserts {
            let gid = RowId(self.next_global);
            self.next_global += 1;
            let key = BlockKey::of_values(&self.blocker, gid, row);
            let shard = shard_of(&key, self.shards.len());
            let lid = RowId(self.next_local[shard]);
            self.next_local[shard] += 1;
            Arc::make_mut(&mut self.route).insert(gid, (shard, lid));
            Arc::make_mut(&mut self.global_of_local[shard]).insert(lid, gid);
            subs[shard].inserts.push(row.clone());
        }
        self.generation = Generation(self.generation.0 + 1);

        // concurrent shard applies over the worker pool; sub-batches were
        // validated above, so a shard rejection is an invariant breach
        let threads = self.threads;
        let jobs: Vec<(usize, Mutex<&mut IncrementalEngine>, UpdateBatch)> = self
            .shards
            .iter_mut()
            .enumerate()
            .zip(subs)
            .filter(|(_, sub)| !sub.is_empty())
            .map(|((idx, shard), sub)| (idx, Mutex::new(shard), sub))
            .collect();
        let touched: HashSet<usize> = jobs.iter().map(|(idx, _, _)| *idx).collect();
        let outcomes: Vec<UpdateOutcome> = par_map_with(
            &jobs,
            threads,
            || (),
            |_, _, (idx, cell, sub)| {
                cell.lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .apply(sub)
                    .unwrap_or_else(|e| {
                        panic!("shard {idx} rejected a router-validated sub-batch: {e}")
                    })
            },
        );
        drop(jobs);
        let mut ordered: Vec<usize> = touched.iter().copied().collect();
        ordered.sort_unstable();
        let dirty = self.globalized_dirty(&ordered, &retired);
        self.publish(dirty);
        Ok(self.merge_outcomes(outcomes, &touched))
    }

    /// Broadcast a master-data append to every shard (each evolves its own
    /// copy of the compiled plan; the stamps advance in lockstep) and let the
    /// per-shard step-reachability filter decide what re-repairs.
    ///
    /// All shards hold identical plans, so the delta's verdict is identical
    /// everywhere: either every shard applies it or every shard rejects it
    /// (the first error is returned, nothing diverges).
    pub fn apply_master_append(
        &mut self,
        master: usize,
        rows: Vec<Vec<Value>>,
    ) -> Result<UpdateOutcome, IncrementalError> {
        let threads = self.threads;
        let jobs: Vec<Mutex<&mut IncrementalEngine>> =
            self.shards.iter_mut().map(Mutex::new).collect();
        let results: Vec<Result<UpdateOutcome, IncrementalError>> = par_map_with(
            &jobs,
            threads,
            || (),
            |_, _, cell| {
                cell.lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .apply_master_append(master, rows.clone())
            },
        );
        drop(jobs);
        let mut outcomes = Vec::with_capacity(results.len());
        for result in results {
            outcomes.push(result?);
        }
        debug_assert!(
            self.shards
                .iter()
                .all(|s| s.engine().plan().stamp() == self.shards[0].engine().plan().stamp()),
            "broadcast master deltas must keep the shard plans in lockstep"
        );
        let touched: HashSet<usize> = (0..self.shards.len()).collect();
        let all: Vec<usize> = (0..self.shards.len()).collect();
        let dirty = self.globalized_dirty(&all, &[]);
        self.publish(dirty);
        Ok(self.merge_outcomes(outcomes, &touched))
    }

    /// The combined dirty set of the given shards' latest per-shard epochs,
    /// re-keyed to global currency: singleton keys carry shard-local row ids
    /// (two shards can collide on them), so they are rewritten to the global
    /// id — through the live maps, or through this batch's `retired` pairs
    /// for rows the same batch deleted.
    fn globalized_dirty(
        &self,
        shard_indices: &[usize],
        retired: &[HashMap<RowId, RowId>],
    ) -> BTreeMap<BlockKey, (usize, BlockKey)> {
        let mut dirty = BTreeMap::new();
        for &idx in shard_indices {
            let epoch = self.shards[idx].current_epoch();
            for local_key in epoch.dirty_keys() {
                let global_key = match local_key {
                    BlockKey::Singleton(lid) => {
                        let gid = self.global_of_local[idx]
                            .get(lid)
                            .copied()
                            .or_else(|| retired.get(idx).and_then(|m| m.get(lid)).copied())
                            .expect("a dirty singleton row is live or was retired by this batch");
                        BlockKey::Singleton(gid)
                    }
                    key @ BlockKey::Key(_) => key.clone(),
                };
                dirty.insert(global_key, (idx, local_key.clone()));
            }
        }
        dirty
    }

    /// Publish the router's current state as one combined epoch: every
    /// shard's pinned rows + block cache (taken from the shard's own latest
    /// epoch, so they are exactly what the shard just committed) plus the
    /// pinned global↔local id maps.
    fn publish(&self, dirty: BTreeMap<BlockKey, (usize, BlockKey)>) {
        let shards: Vec<ShardView> = self
            .shards
            .iter()
            .enumerate()
            .map(|(idx, shard)| {
                let epoch = shard.current_epoch();
                ShardView {
                    rows: epoch.shards[0].rows.clone(),
                    blocks: Arc::clone(&epoch.shards[0].blocks),
                    to_global: Some(Arc::clone(&self.global_of_local[idx])),
                }
            })
            .collect();
        self.hub.publish(Epoch {
            id: EpochId(0), // assigned by the hub
            generation: self.generation,
            stamp: self.shards[0].engine().plan().stamp(),
            schema: self.schema.clone(),
            blocker: Arc::new(self.blocker.clone()),
            threads: self.threads,
            shards,
            route: Some(Arc::clone(&self.route)),
            dirty: Arc::new(dirty),
        });
    }

    /// A cloneable handle to the router's epoch hub — the read side of the
    /// serving layer (combined epochs only; per-shard states are internal).
    pub fn epochs(&self) -> EpochHub {
        self.hub.clone()
    }

    /// Pin the router's current combined epoch.
    pub fn current_epoch(&self) -> Arc<Epoch> {
        self.hub.current()
    }

    /// Everything that changed since generation `since`, at block
    /// granularity (see [`EpochHub::changes_since`]).
    pub fn changes_since(&self, since: Generation) -> Result<SnapshotDelta, EpochError> {
        self.hub.changes_since(since)
    }

    /// How many epochs stay reachable for generation-addressed reads.
    pub fn set_epoch_retention(&self, epochs: usize) {
        self.hub.set_retention(epochs);
    }

    /// Sum per-shard outcomes; untouched shards contribute their cached
    /// blocks/entities as clean/reused.
    fn merge_outcomes(
        &self,
        outcomes: Vec<UpdateOutcome>,
        touched: &HashSet<usize>,
    ) -> UpdateOutcome {
        let mut merged = UpdateOutcome {
            generation: self.generation,
            dirty_blocks: 0,
            dropped_blocks: 0,
            clean_blocks: 0,
            entities_rerepaired: 0,
            entities_reused: 0,
        };
        for outcome in outcomes {
            merged.dirty_blocks += outcome.dirty_blocks;
            merged.dropped_blocks += outcome.dropped_blocks;
            merged.clean_blocks += outcome.clean_blocks;
            merged.entities_rerepaired += outcome.entities_rerepaired;
            merged.entities_reused += outcome.entities_reused;
        }
        for (idx, shard) in self.shards.iter().enumerate() {
            if !touched.contains(&idx) {
                merged.clean_blocks += shard.cached_blocks();
                merged.entities_reused += shard.cached_entities();
            }
        }
        merged
    }

    /// The live rows of every shard in canonical global order (ascending
    /// global row id == insertion order), plus, per shard, the map from
    /// shard-local row position to global row position.
    fn global_rows(&self) -> (Relation, Vec<Vec<usize>>) {
        let mut rows: Vec<(RowId, usize, usize)> = Vec::with_capacity(self.route.len());
        for (shard_idx, shard) in self.shards.iter().enumerate() {
            for (local_pos, row) in shard.relation().rows().iter().enumerate() {
                let gid = self.global_of_local[shard_idx][&row.id];
                rows.push((gid, shard_idx, local_pos));
            }
        }
        rows.sort_by_key(|&(gid, _, _)| gid);
        let mut relation = Relation::new(self.schema.clone());
        let mut pos_map: Vec<Vec<usize>> = self
            .shards
            .iter()
            .map(|s| vec![usize::MAX; s.relation().len()])
            .collect();
        for (global_pos, &(_, shard_idx, local_pos)) in rows.iter().enumerate() {
            pos_map[shard_idx][local_pos] = global_pos;
            let tuple = &self.shards[shard_idx].relation().rows()[local_pos].tuple;
            relation
                .push_row(tuple.values().to_vec())
                .expect("live rows were validated on insert");
        }
        (relation, pos_map)
    }

    /// The current corpus state as one plain [`Relation`] in canonical global
    /// row order — the view a from-scratch `repair_relation` would repair.
    pub fn snapshot_relation(&self) -> Relation {
        self.global_rows().0
    }

    /// Merge every shard's per-block cache into the current full
    /// [`RelationRepair`].
    ///
    /// Bit-identical to a single [`IncrementalEngine`]'s snapshot over the
    /// same update stream, and semantically identical to a from-scratch
    /// `repair_relation` of [`ShardedEngine::snapshot_relation`] under the
    /// current plan: shard-local row order is a subsequence of the global
    /// order, so rebasing block indices through the position maps preserves
    /// every within-block ordering, and the shared `assemble_repair` puts
    /// blocks and entities into the canonical ascending-smallest-member
    /// order.
    ///
    /// Memoized on the epoch stamps: if every epoch published since the last
    /// assembly carried an empty dirty set (e.g. a master append that
    /// revalidated every block without changing any repair), the previous
    /// `Arc` is returned without rebuilding anything.
    pub fn snapshot(&self) -> Arc<RelationRepair> {
        let current = self.hub.current();
        let mut cache = self
            .snapshot_cache
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if let Some((seen, snap)) = cache.as_ref() {
            let unchanged = *seen == current.id() || self.hub.any_dirty_since(*seen) == Some(false);
            if unchanged {
                let snap = Arc::clone(snap);
                *cache = Some((current.id(), snap.clone()));
                return snap;
            }
        }
        let snap = Arc::new(self.assemble_full());
        *cache = Some((current.id(), Arc::clone(&snap)));
        snap
    }

    /// The unmemoized full assembly behind [`ShardedEngine::snapshot`].
    fn assemble_full(&self) -> RelationRepair {
        let (relation, pos_map) = self.global_rows();
        let mut blocks: Vec<AssembledBlock> = Vec::new();
        for (shard_idx, shard) in self.shards.iter().enumerate() {
            let map = &pos_map[shard_idx];
            for mut block in shard.assembled_blocks() {
                for decision in &mut block.decisions {
                    decision.left = map[decision.left];
                    decision.right = map[decision.right];
                }
                for (members, _) in &mut block.entities {
                    for member in members.iter_mut() {
                        *member = map[*member];
                    }
                }
                // the local→global map is monotone, so the smallest member
                // stays the smallest
                block.first_row = map[block.first_row];
                blocks.push(block);
            }
        }
        assemble_repair(relation, blocks, self.threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::EntityOutcome;
    use relacc_core::rules::{MasterPremise, MasterRule, Predicate, RuleSet, TupleRule};
    use relacc_model::{AttrId, CmpOp, DataType, MasterRelation, Schema, Value};
    use relacc_resolve::BlockingStrategy;

    fn schema() -> SchemaRef {
        Schema::builder("stat")
            .attr("name", DataType::Text)
            .attr("rnds", DataType::Int)
            .attr("team", DataType::Text)
            .build()
    }

    fn master_schema() -> SchemaRef {
        Schema::builder("nba")
            .attr("name", DataType::Text)
            .attr("team", DataType::Text)
            .build()
    }

    fn rules(s: &SchemaRef, ms: &SchemaRef) -> RuleSet {
        RuleSet::from_rules([
            relacc_core::AccuracyRule::from(TupleRule::new(
                "cur",
                vec![Predicate::cmp_attrs(s.expect_attr("rnds"), CmpOp::Lt)],
                s.expect_attr("rnds"),
            )),
            relacc_core::AccuracyRule::from(MasterRule::new(
                "m",
                vec![MasterPremise::TargetEqMaster(
                    s.expect_attr("name"),
                    ms.expect_attr("name"),
                )],
                vec![(s.expect_attr("team"), ms.expect_attr("team"))],
            )),
        ])
    }

    fn seed_relation(s: &SchemaRef) -> Relation {
        Relation::from_rows(
            s.clone(),
            vec![
                vec![Value::text("mj"), Value::Int(16), Value::Null],
                vec![Value::text("mj"), Value::Int(27), Value::Null],
                vec![Value::text("sp"), Value::Int(27), Value::Null],
                vec![Value::text("dr"), Value::Int(3), Value::Null],
                vec![Value::Null, Value::Int(9), Value::Null],
            ],
        )
        .unwrap()
    }

    fn resolve() -> ResolveConfig {
        ResolveConfig::on_attrs(vec!["name".into()]).with_strategy(BlockingStrategy::ExactKey)
    }

    fn open(shards: usize) -> ShardedEngine {
        let s = schema();
        let ms = master_schema();
        let master = MasterRelation::from_rows(
            ms.clone(),
            vec![vec![Value::text("mj"), Value::text("Bulls")]],
        )
        .unwrap();
        let engine = BatchEngine::new(s.clone(), rules(&s, &ms), vec![master]).unwrap();
        ShardedEngine::open(engine, "stat", &seed_relation(&s), resolve(), shards)
    }

    fn assert_matches_full(sharded: &ShardedEngine, label: &str) {
        let relation = sharded.snapshot_relation();
        let full = sharded.engine().repair_relation(&relation, &resolve());
        let snap = sharded.snapshot();
        assert_eq!(
            snap.resolved.members, full.resolved.members,
            "{label}: members"
        );
        assert_eq!(
            snap.resolved.decisions, full.resolved.decisions,
            "{label}: decisions"
        );
        assert_eq!(
            snap.report.entities.len(),
            full.report.entities.len(),
            "{label}: entity count"
        );
        for (a, b) in snap.report.entities.iter().zip(full.report.entities.iter()) {
            assert_eq!(a.entity, b.entity, "{label}: entity index");
            assert_eq!(a.records, b.records, "{label}: records of {}", a.entity);
            assert_eq!(a.outcome, b.outcome, "{label}: outcome of {}", a.entity);
            assert_eq!(a.deduced, b.deduced, "{label}: deduced of {}", a.entity);
            assert_eq!(
                a.suggestion, b.suggestion,
                "{label}: suggestion of {}",
                a.entity
            );
        }
        assert_eq!(snap.repaired.rows(), full.repaired.rows(), "{label}: rows");
        assert_eq!(
            snap.row_entities, full.row_entities,
            "{label}: row entities"
        );
        assert_eq!(snap.skipped, full.skipped, "{label}: skipped");
    }

    #[test]
    fn sharding_is_transparent_at_every_shard_count() {
        for shards in [1usize, 2, 3, 4, 7] {
            let mut engine = open(shards);
            assert_eq!(engine.shard_count(), shards);
            assert_eq!(engine.len(), 5);
            assert_matches_full(&engine, &format!("seed/{shards}"));

            // split batch: touches mj and dr blocks plus a fresh singleton
            let outcome = engine
                .apply(
                    &UpdateBatch::new("stat")
                        .delete(RowId(3))
                        .insert(vec![Value::text("mj"), Value::Int(31), Value::Null])
                        .insert(vec![Value::Null, Value::Int(12), Value::Null]),
                )
                .unwrap();
            assert_eq!(outcome.generation, Generation(1));
            assert_eq!(engine.generation(), Generation(1));
            assert_matches_full(&engine, &format!("rows/{shards}"));

            // broadcast: a master append completing the sp entity
            engine
                .apply_master_append(0, vec![vec![Value::text("sp"), Value::text("Blazers")]])
                .unwrap();
            assert_matches_full(&engine, &format!("master/{shards}"));
            let snap = engine.snapshot();
            let sp = snap
                .report
                .entities
                .iter()
                .find(|e| e.records == vec![2])
                .expect("sp entity");
            assert_eq!(sp.deduced.value(AttrId(2)), &Value::text("Blazers"));
        }
    }

    #[test]
    fn sharded_snapshot_is_bit_identical_to_a_single_engine() {
        let s = schema();
        let ms = master_schema();
        let master = MasterRelation::from_rows(
            ms.clone(),
            vec![vec![Value::text("mj"), Value::text("Bulls")]],
        )
        .unwrap();
        let single_engine = BatchEngine::new(s.clone(), rules(&s, &ms), vec![master]).unwrap();
        let mut single =
            IncrementalEngine::open(single_engine.clone(), "stat", &seed_relation(&s), resolve());
        let mut sharded =
            ShardedEngine::open(single_engine, "stat", &seed_relation(&s), resolve(), 4);
        let batches = [
            UpdateBatch::new("stat").insert(vec![Value::text("sp"), Value::Int(31), Value::Null]),
            UpdateBatch::new("stat").delete(RowId(0)).insert(vec![
                Value::text("dr"),
                Value::Int(5),
                Value::Null,
            ]),
            UpdateBatch::new("stat").delete(RowId(4)).delete(RowId(6)),
        ];
        for (step, batch) in batches.iter().enumerate() {
            single.apply(batch).unwrap();
            sharded.apply(batch).unwrap();
            let a = single.snapshot();
            let b = sharded.snapshot();
            assert_eq!(
                a.resolved.members, b.resolved.members,
                "step {step}: members"
            );
            assert_eq!(
                a.resolved.decisions, b.resolved.decisions,
                "step {step}: decisions"
            );
            assert_eq!(a.repaired.rows(), b.repaired.rows(), "step {step}: rows");
            assert_eq!(a.skipped, b.skipped, "step {step}: skipped");
            for (x, y) in a.report.entities.iter().zip(b.report.entities.iter()) {
                assert_eq!(x.records, y.records, "step {step}");
                assert_eq!(x.outcome, y.outcome, "step {step}");
                assert_eq!(x.deduced, y.deduced, "step {step}");
                assert_eq!(x.suggestion, y.suggestion, "step {step}");
            }
        }
    }

    #[test]
    fn split_batches_only_touch_their_shards() {
        let mut engine = open(4);
        // find the shard holding the mj block and count re-repairs when a
        // batch only touches mj: exactly one entity re-repairs, everyone
        // else is reused from cache
        let outcome = engine
            .apply(&UpdateBatch::new("stat").insert(vec![
                Value::text("mj"),
                Value::Int(40),
                Value::Null,
            ]))
            .unwrap();
        assert_eq!(outcome.dirty_blocks, 1);
        assert_eq!(outcome.entities_rerepaired, 1);
        assert_eq!(outcome.entities_reused, 3, "sp, dr and the singleton");
        assert_eq!(
            outcome.dirty_blocks + outcome.clean_blocks,
            4,
            "mj, sp, dr and the singleton blocks"
        );
    }

    #[test]
    fn router_validates_like_a_single_engine() {
        let mut engine = open(3);
        assert!(matches!(
            engine.apply(&UpdateBatch::new("other")),
            Err(IncrementalError::Update(UpdateError::NoSuchRelation(_)))
        ));
        assert!(matches!(
            engine.apply(&UpdateBatch::new("stat").delete(RowId(99))),
            Err(IncrementalError::Update(UpdateError::NoSuchRow(_)))
        ));
        // duplicate delete within one batch
        assert!(matches!(
            engine.apply(&UpdateBatch::new("stat").delete(RowId(0)).delete(RowId(0))),
            Err(IncrementalError::Update(UpdateError::NoSuchRow(_)))
        ));
        // schema-invalid insert
        assert!(matches!(
            engine.apply(&UpdateBatch::new("stat").insert(vec![Value::Int(1)])),
            Err(IncrementalError::Update(UpdateError::Schema(_)))
        ));
        // rejected batches mutate nothing
        assert_eq!(engine.generation(), Generation(0));
        assert_eq!(engine.len(), 5);
        assert_matches_full(&engine, "after-rejections");
    }

    #[test]
    fn suggestions_survive_the_sharded_merge() {
        let s = Schema::builder("r")
            .attr("name", DataType::Text)
            .attr("color", DataType::Text)
            .build();
        let relation = Relation::from_rows(
            s.clone(),
            vec![
                vec![Value::text("widget"), Value::text("red")],
                vec![Value::text("widget"), Value::text("red")],
                vec![Value::text("widget"), Value::text("blue")],
                vec![Value::text("gadget"), Value::text("green")],
            ],
        )
        .unwrap();
        let engine = BatchEngine::new(s.clone(), RuleSet::new(), vec![]).unwrap();
        let mut sharded = ShardedEngine::open(engine, "r", &relation, resolve(), 2);
        let snap = sharded.snapshot();
        assert_eq!(snap.report.entities[0].outcome, EntityOutcome::Suggested);
        sharded
            .apply(&UpdateBatch::new("r").insert(vec![Value::text("gadget"), Value::text("teal")]))
            .unwrap();
        let snap = sharded.snapshot();
        assert_eq!(snap.report.entities[0].outcome, EntityOutcome::Suggested);
        assert_eq!(
            snap.report.entities[0]
                .suggestion
                .as_ref()
                .unwrap()
                .value(AttrId(1)),
            &Value::text("red")
        );
    }

    /// Regression: `snapshot` used to rebuild the full merge even when no
    /// shard was dirty.  The epoch stamps now prove cleanliness, so repeated
    /// snapshots — and snapshots across a no-op master append — return the
    /// same `Arc` without any assembly work.
    #[test]
    fn clean_snapshots_are_memoized() {
        let mut engine = open(3);
        // drop the null-name singleton first: its deduced name stays null,
        // which makes *every* master append conservatively dirty its block
        engine
            .apply(&UpdateBatch::new("stat").delete(RowId(4)))
            .unwrap();
        let first = engine.snapshot();
        let second = engine.snapshot();
        assert!(
            Arc::ptr_eq(&first, &second),
            "back-to-back snapshots must reuse the memoized assembly"
        );
        // a master append matching no live entity revalidates every block
        // unchanged: the published epoch carries an empty dirty set
        engine
            .apply_master_append(0, vec![vec![Value::text("zz"), Value::text("Nobody")]])
            .unwrap();
        assert!(
            engine.current_epoch().dirty_keys().next().is_none(),
            "the no-op master append must publish a clean epoch"
        );
        let third = engine.snapshot();
        assert!(
            Arc::ptr_eq(&first, &third),
            "a clean master append must not invalidate the memo"
        );
        // a real row batch does invalidate it
        engine
            .apply(&UpdateBatch::new("stat").insert(vec![
                Value::text("mj"),
                Value::Int(40),
                Value::Null,
            ]))
            .unwrap();
        let fourth = engine.snapshot();
        assert!(!Arc::ptr_eq(&first, &fourth), "dirty batches rebuild");
        assert_matches_full(&engine, "after-memoized-snapshots");
    }

    #[test]
    fn shard_routing_is_a_pure_function_of_the_key() {
        for shards in [1usize, 2, 5, 8] {
            let a = BlockKey::Key("michael jordan".into());
            let b = BlockKey::Key("michael jordan".into());
            assert_eq!(shard_of(&a, shards), shard_of(&b, shards));
            assert!(shard_of(&a, shards) < shards);
            let s1 = BlockKey::Singleton(RowId(7));
            assert_eq!(shard_of(&s1, shards), shard_of(&s1.clone(), shards));
            assert!(shard_of(&s1, shards) < shards);
        }
        // keys spread: over many distinct keys, more than one shard is hit
        let hit: HashSet<usize> = (0..64)
            .map(|i| shard_of(&BlockKey::Key(format!("key {i}")), 4))
            .collect();
        assert!(hit.len() > 1, "FNV routing must actually spread keys");
    }
}
