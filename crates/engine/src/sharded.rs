//! Sharded incremental repair: partition the block cache across shards.
//!
//! Blocking already partitions the corpus into independent units — resolution
//! never merges records across blocks, and the paper's per-entity semantics
//! mean two entities in different blocks can never interact — so a *shard*
//! is exactly "an [`IncrementalEngine`] plus its block cache" over a subset
//! of the blocks.  A [`ShardedEngine`] scales the incremental pipeline out
//! across `N` such shards:
//!
//! * **Versioned routing.**  A record's shard is decided by its blocking key
//!   through a versioned `RoutingTable`: a fixed FNV-1a hash over the
//!   **open-time** shard count places every key (the router computes
//!   [`relacc_resolve::BlockKey`]s with the same [`Blocker`] the shards' own
//!   indices use), and a small exception map overrides the hash for blocks a
//!   rebalance moved away from home.  Rows with an empty blocking key
//!   ([`BlockKey::Singleton`]) route by their **global** row id and are
//!   pinned to their hash shard forever.  Rows are immutable (updates are
//!   deletes + inserts) and every block lives wholly inside one shard; which
//!   shard that is can change, but only through
//!   [`ShardedEngine::rebalance`]'s whole-block handoff.
//! * **One-shot master grounding.**  Master-data deltas
//!   ([`ShardedEngine::apply_master_append`]) are **ground once** — shard 0
//!   pays the `|Σ2| × |Δ|` grounding loop — and the resulting immutable step
//!   block is adopted by every shard behind an `Arc`
//!   ([`relacc_core::chase::ChasePlan::adopt_master_delta`]): per shard the
//!   work is a stamp bump plus the exact step-reachability invalidation
//!   filter, and the per-shard [`relacc_core::chase::PlanStamp`]s advance in
//!   lockstep exactly as under the old broadcast.
//! * **Block-level work stealing.**  Both mutation paths run the staged
//!   re-repair pipeline: per-shard *prepare* snapshots every dirty block
//!   into a self-contained job, the jobs of **all** shards are flattened
//!   into one work list resolved over [`crate::pool::par_map_with`] (whose
//!   dynamic loop steals at block granularity, so one hot shard's backlog
//!   spreads across every worker), one pooled chase evaluates the entities
//!   of all shards together, and each shard's *commit* writes its own cache
//!   back in canonical ascending-key order — resolution and chase
//!   interleave freely across shards, cache writes never do.
//! * **Elasticity.**  [`ShardedEngine::split_shard`] adds an empty shard
//!   whose plan is cloned from shard 0 (stamp lockstep is preserved);
//!   [`ShardedEngine::rebalance`] hands whole keyed blocks — rows, cached
//!   repair, fingerprints — to another shard through the local↔global
//!   position-map machinery; [`ShardedEngine::rebalance_hot`] does it
//!   automatically, reading the per-shard [`ShardStats`] to find the busy
//!   shard and the persistently hot blocks on it.  A committed rebalance
//!   bumps the routing version once and publishes exactly **one** clean
//!   combined epoch, so pinned readers never observe a torn handoff.
//! * **Canonical merge.**  Each shard's [`relacc_store::VersionedRelation`]
//!   has its **own id space**; the router keeps the global ↔ local mapping
//!   (see the remapping contract on `relacc_store::versioned`).  Global row
//!   order is ascending global id — ids are assigned in insertion order and
//!   never reused — and *within any one block* shard-local order is a
//!   subsequence of it (a migrated block is re-inserted in export order, so
//!   ascending local id keeps implying ascending global id inside the
//!   block), so rebasing each block's repair to global row positions
//!   preserves all within-block orderings.  [`ShardedEngine::snapshot`]
//!   therefore merges every shard's blocks into the canonical
//!   ascending-smallest-member order (shared `assemble_repair` code) and
//!   the result is **bit-identical** to a single [`IncrementalEngine`] over
//!   the same stream and to a from-scratch
//!   [`crate::batch::BatchEngine::repair_relation`] — guarded by
//!   `tests/sharded_differential.rs` and `tests/elastic_differential.rs`
//!   across shard counts {1, 2, 4, 7} and scripted split/rebalance points.
//!
//! Each shard is a full [`IncrementalEngine`], so the per-block resolution
//! caches — including the fingerprint cache behind the exact similarity
//! cascade — live per shard, need no cross-shard coordination (a
//! fingerprint is a pure function of its row), and travel with their block
//! across a rebalance; [`ShardedEngine::stats`] sums the per-shard counters
//! and [`ShardedEngine::sharded_stats`] adds the per-shard breakdown.

use crate::batch::{BatchEngine, RelationRepair};
use crate::epoch::{Epoch, EpochError, EpochHub, EpochId, ShardView, SnapshotDelta};
use crate::incremental::{
    assemble_repair, resolve_block_jobs, AssembledBlock, BlockJob, IncrementalEngine,
    IncrementalError, IncrementalStats, PreparedRepair, ResolvedJob, UpdateOutcome,
};
use crate::pool::par_map_with;
use relacc_core::chase::MasterUpdate;
use relacc_model::{EntityInstance, SchemaRef, Value};
use relacc_resolve::{BlockKey, Blocker, ResolveConfig};
use relacc_store::{Generation, Relation, RowId, UpdateBatch, UpdateError};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// The shard a block key hashes to: FNV-1a over the key bytes (or the global
/// row id for singletons), fixed so the assignment is stable across runs and
/// platforms.  Pure function of the key — never of arrival order.  This is
/// the *baseline*; the live placement goes through `RoutingTable::shard_of`.
pub(crate) fn shard_of(key: &BlockKey, shards: usize) -> usize {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    let eat = |hash: &mut u64, byte: u8| {
        *hash ^= u64::from(byte);
        *hash = hash.wrapping_mul(PRIME);
    };
    match key {
        BlockKey::Key(text) => {
            eat(&mut hash, 0);
            for byte in text.bytes() {
                eat(&mut hash, byte);
            }
        }
        BlockKey::Singleton(id) => {
            eat(&mut hash, 1);
            for byte in id.0.to_le_bytes() {
                eat(&mut hash, byte);
            }
        }
    }
    (hash % shards as u64) as usize
}

/// The versioned block→shard routing table: a small map of **exceptions**
/// over the fixed hash baseline.
///
/// * `home_shards` is the shard count the engine was **opened** with and
///   never changes — even across [`ShardedEngine::split_shard`] — so every
///   key's hash home is stable for the engine's lifetime and the map holds
///   only blocks currently living away from home (a block moved back home
///   drops its entry instead of stacking a new one).
/// * Every committed [`ShardedEngine::rebalance`] bumps `version` exactly
///   once and publishes exactly one combined epoch pinning the new table,
///   so an epoch taken *before* a rebalance keeps resolving keys to the
///   shards that held them then — a reader never observes a torn handoff.
#[derive(Debug, Clone)]
pub(crate) struct RoutingTable {
    /// Bumped once per committed rebalance.
    pub(crate) version: u64,
    /// The modulus of the hash baseline (the shard count at open).
    pub(crate) home_shards: usize,
    /// Exceptions: blocks living away from their hash home.
    pub(crate) map: HashMap<BlockKey, usize>,
}

impl RoutingTable {
    /// The identity table over `home_shards` shards: pure hash routing.
    fn hash_only(home_shards: usize) -> Self {
        RoutingTable {
            version: 0,
            home_shards,
            map: HashMap::new(),
        }
    }

    /// The shard `key` routes to: the exception map, else the hash baseline.
    pub(crate) fn shard_of(&self, key: &BlockKey) -> usize {
        self.map
            .get(key)
            .copied()
            .unwrap_or_else(|| shard_of(key, self.home_shards))
    }
}

/// Lifetime activity counters of one shard, as attributed by the router
/// (see [`ShardedEngine::sharded_stats`]).  The online rebalance trigger
/// ([`ShardedEngine::rebalance_hot`]) reads these to find the busy shard.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Blocks this shard re-repaired across all updates.
    pub dirty_blocks: usize,
    /// Entities this shard re-repaired across all updates.
    pub entities_rerepaired: usize,
    /// Wall-clock nanoseconds attributed to this shard across all updates:
    /// its sub-batch prepare, its blocks' resolution, its entities' share of
    /// the pooled chase, and its cache commit.
    pub batch_ns: u64,
}

/// The sharded engine's counters: the summed lifetime totals plus the
/// per-shard breakdown ([`ShardedEngine::sharded_stats`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardedStats {
    /// Lifetime counters summed across shards (same as
    /// [`ShardedEngine::stats`]).
    pub totals: IncrementalStats,
    /// Per-shard activity, indexed by shard.
    pub per_shard: Vec<ShardStats>,
}

/// How many consecutive dirty-ish batches a block needs before
/// [`ShardedEngine::rebalance_hot`] considers it persistently hot.
const HOT_STREAK: u64 = 3;

/// Heat ceiling: bounds how long a cooled-down block stays a candidate.
const HEAT_CAP: u64 = 8;

/// `N` independent [`IncrementalEngine`] shards behind one router.  See the
/// module docs for the routing table, the one-shot master grounding, the
/// block-level work stealing and why the merged snapshot stays canonical
/// across rebalances.
#[derive(Debug)]
pub struct ShardedEngine {
    /// Catalog-entry name updates must address.
    name: String,
    schema: SchemaRef,
    /// The routing blocker — identical to every shard's internal one.
    blocker: Blocker,
    /// The resolve configuration every shard runs (kept for the flattened
    /// block-resolution stage and for opening fresh shards on a split).
    resolve: ResolveConfig,
    /// Worker threads for every parallel stage.  The staged pipeline runs
    /// single-level on this pool — per-shard prepare/commit are sequential,
    /// and resolution + chase are dispatched by the router itself — so there
    /// is no pool nesting to oversubscribe.
    threads: usize,
    shards: Vec<IncrementalEngine>,
    /// Live global row id → (shard, shard-local row id).  `Arc`'d so
    /// published epochs pin the routing they were built under; the router
    /// copies on write while an epoch shares it.
    route: Arc<HashMap<RowId, (usize, RowId)>>,
    /// Per shard: shard-local row id → global row id (copy-on-write like
    /// `route`).
    global_of_local: Vec<Arc<HashMap<RowId, RowId>>>,
    /// Next global row id (sequential in insertion order, never reused —
    /// the same contract a single `VersionedRelation` follows).
    next_global: u64,
    /// Mirror of each shard's next local id (shards assign sequentially,
    /// including across imported blocks).
    next_local: Vec<u64>,
    /// The versioned block→shard placement (copy-on-write like `route`).
    routing: Arc<RoutingTable>,
    /// Corpus generation: +1 per applied row batch.
    generation: Generation,
    /// The publish/pin rendezvous: one **combined** epoch per committed
    /// router-level mutation (per-shard intermediate states are never
    /// visible to sharded readers, so a pinned epoch is never torn).
    hub: EpochHub,
    /// Memoized full snapshot: the epoch it was assembled at plus the
    /// assembly.  Reused until some epoch actually dirties a block.
    snapshot_cache: Mutex<Option<(EpochId, Arc<RelationRepair>)>>,
    /// Per-shard activity attribution (see [`ShardStats`]).
    per_shard: Vec<ShardStats>,
    /// Keyed-block heat: +1 net per batch a block is dirty in, −1 per quiet
    /// batch, capped — the [`ShardedEngine::rebalance_hot`] candidate set.
    heat: HashMap<BlockKey, u64>,
    /// Per shard: `ShardStats::batch_ns` at the previous
    /// [`ShardedEngine::rebalance_hot`] reading, so the trigger compares
    /// activity *since the last decision*, not since open.
    rebalance_mark: Vec<u64>,
}

impl ShardedEngine {
    /// Open a sharded engine over the seed state of a relation: partition the
    /// rows by blocking key across `shards` shards (at least one) and run the
    /// initial full repair per shard.  `engine` is compiled once and cloned
    /// per shard (rules and master data stay shared under `Arc`s).
    pub fn open(
        engine: BatchEngine,
        name: impl Into<String>,
        relation: &Relation,
        resolve: ResolveConfig,
        shards: usize,
    ) -> Self {
        let shards = shards.max(1);
        let name = name.into();
        let schema = relation.schema().clone();
        let blocker = resolve.blocker(&schema);
        let threads = engine.config().threads;
        let routing = Arc::new(RoutingTable::hash_only(shards));

        let mut parts: Vec<Relation> = (0..shards).map(|_| Relation::new(schema.clone())).collect();
        let mut route = HashMap::new();
        let mut global_of_local = vec![HashMap::new(); shards];
        let mut next_local = vec![0u64; shards];
        for (global, tuple) in relation.rows().iter().enumerate() {
            let gid = RowId(global as u64);
            let key = BlockKey::of_row(&blocker, gid, tuple);
            let shard = routing.shard_of(&key);
            let lid = RowId(next_local[shard]);
            next_local[shard] += 1;
            parts[shard]
                .push_row(tuple.values().to_vec())
                .expect("seed rows conform to their own schema");
            route.insert(gid, (shard, lid));
            global_of_local[shard].insert(lid, gid);
        }

        let shard_engines: Vec<IncrementalEngine> = parts
            .iter()
            .map(|part| {
                IncrementalEngine::open(engine.clone(), name.clone(), part, resolve.clone())
            })
            .collect();
        let this = ShardedEngine {
            name,
            schema,
            blocker,
            resolve,
            threads,
            shards: shard_engines,
            route: Arc::new(route),
            global_of_local: global_of_local.into_iter().map(Arc::new).collect(),
            next_global: relation.len() as u64,
            next_local,
            routing,
            generation: Generation(0),
            hub: EpochHub::new(),
            snapshot_cache: Mutex::new(None),
            per_shard: vec![ShardStats::default(); shards],
            heat: HashMap::new(),
            rebalance_mark: vec![0u64; shards],
        };
        // seed epoch: every block is "dirty" relative to nothing
        let all: Vec<usize> = (0..this.shards.len()).collect();
        let dirty = this.globalized_dirty(&all, &[]);
        this.publish(dirty);
        this
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shards themselves (read-only; mutate only through the router).
    pub fn shards(&self) -> &[IncrementalEngine] {
        &self.shards
    }

    /// The batch engine of shard 0 (all shards' plans evolve in lockstep).
    pub fn engine(&self) -> &BatchEngine {
        self.shards[0].engine()
    }

    /// The corpus generation (+1 per applied row batch, like a single
    /// versioned relation's).
    pub fn generation(&self) -> Generation {
        self.generation
    }

    /// The routing-table version: bumped once per committed
    /// [`ShardedEngine::rebalance`], never otherwise.
    pub fn routing_version(&self) -> u64 {
        self.routing.version
    }

    /// Number of live rows across all shards.
    pub fn len(&self) -> usize {
        self.route.len()
    }

    /// True when no rows are live.
    pub fn is_empty(&self) -> bool {
        self.route.is_empty()
    }

    /// Lifetime counters summed across shards.  `batches_applied` counts
    /// per-shard sub-batch applications, so it can exceed (split batches
    /// touching several shards) or undershoot (batches whose rows all route
    /// to one shard) the number of router-level batches.
    /// `master_groundings` stays **one per append** regardless of shard
    /// count: only shard 0 grounds, everyone else adopts.
    pub fn stats(&self) -> IncrementalStats {
        let mut out = IncrementalStats::default();
        for shard in &self.shards {
            let s = shard.stats();
            out.batches_applied += s.batches_applied;
            out.master_deltas_applied += s.master_deltas_applied;
            out.master_groundings += s.master_groundings;
            out.recompiles += s.recompiles;
            out.entities_rerepaired += s.entities_rerepaired;
            out.entities_reused += s.entities_reused;
            out.rows_fingerprinted += s.rows_fingerprinted;
            out.fingerprints_reused += s.fingerprints_reused;
        }
        out
    }

    /// [`ShardedEngine::stats`] plus the per-shard activity breakdown the
    /// online rebalance trigger reads.
    pub fn sharded_stats(&self) -> ShardedStats {
        ShardedStats {
            totals: self.stats(),
            per_shard: self.per_shard.clone(),
        }
    }

    /// Apply a typed row batch: validate against the router (the same checks
    /// in the same order as [`relacc_store::VersionedRelation::apply`], so a
    /// sharded engine rejects exactly what a single engine rejects), split it
    /// into per-shard sub-batches, and run the staged pipeline: per-shard
    /// prepare (concurrent), flattened block-level resolution + one pooled
    /// chase (stolen at block/entity granularity across shards), per-shard
    /// commit (ordered).  Untouched shards do no work at all — not even a
    /// membership scan.
    pub fn apply(&mut self, batch: &UpdateBatch) -> Result<UpdateOutcome, IncrementalError> {
        if batch.relation != self.name {
            return Err(IncrementalError::Update(UpdateError::NoSuchRelation(
                batch.relation.clone(),
            )));
        }
        // validate everything before mutating: deletes (liveness, intra-batch
        // duplicates) first, then insert schemas
        let mut doomed: HashSet<RowId> = HashSet::with_capacity(batch.deletes.len());
        for &id in &batch.deletes {
            if !doomed.insert(id) || !self.route.contains_key(&id) {
                return Err(IncrementalError::Update(UpdateError::NoSuchRow(id)));
            }
        }
        for row in &batch.inserts {
            self.schema
                .validate_row(row)
                .map_err(|e| IncrementalError::Update(UpdateError::Schema(e)))?;
        }

        // split: deletes route through the live map, inserts by blocking key
        // through the routing table (global ids are assigned after all
        // deletes, like the single engine's deletes-then-inserts contract).
        // The id maps copy on write while a published epoch pins them;
        // `retired` remembers this batch's deleted local→global pairs so
        // their singleton dirty keys can still be globalized after the maps
        // forget them.
        let mut subs: Vec<UpdateBatch> = (0..self.shards.len())
            .map(|_| UpdateBatch::new(self.name.clone()))
            .collect();
        let mut retired: Vec<HashMap<RowId, RowId>> = vec![HashMap::new(); self.shards.len()];
        for &gid in &batch.deletes {
            let (shard, lid) = Arc::make_mut(&mut self.route)
                .remove(&gid)
                .expect("validated as live above");
            Arc::make_mut(&mut self.global_of_local[shard]).remove(&lid);
            retired[shard].insert(lid, gid);
            subs[shard].deletes.push(lid);
        }
        for row in &batch.inserts {
            let gid = RowId(self.next_global);
            self.next_global += 1;
            let key = BlockKey::of_values(&self.blocker, gid, row);
            let shard = self.routing.shard_of(&key);
            let lid = RowId(self.next_local[shard]);
            self.next_local[shard] += 1;
            Arc::make_mut(&mut self.route).insert(gid, (shard, lid));
            Arc::make_mut(&mut self.global_of_local[shard]).insert(lid, gid);
            subs[shard].inserts.push(row.clone());
        }
        self.generation = Generation(self.generation.0 + 1);

        // stage 1, concurrent per shard: mutate the shard's relation + index
        // and snapshot its dirty blocks into self-contained jobs.
        // Sub-batches were validated above, so a shard rejection is an
        // invariant breach.
        let threads = self.threads;
        let jobs: Vec<(usize, Mutex<&mut IncrementalEngine>, UpdateBatch)> = self
            .shards
            .iter_mut()
            .enumerate()
            .zip(subs)
            .filter(|(_, sub)| !sub.is_empty())
            .map(|((idx, shard), sub)| (idx, Mutex::new(shard), sub))
            .collect();
        let touched: HashSet<usize> = jobs.iter().map(|(idx, _, _)| *idx).collect();
        let prepared: Vec<(usize, PreparedRepair, u64)> = par_map_with(
            &jobs,
            threads,
            || (),
            |_, _, (idx, cell, sub)| {
                let started = Instant::now();
                let mut shard = cell.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
                let dirty = shard.begin_batch(sub).unwrap_or_else(|e| {
                    panic!("shard {idx} rejected a router-validated sub-batch: {e}")
                });
                let prep = shard.prepare_rerepair(dirty, true);
                (*idx, prep, started.elapsed().as_nanos() as u64)
            },
        );
        drop(jobs);
        let outcomes = self.finish_batches(prepared);
        let mut ordered: Vec<usize> = touched.iter().copied().collect();
        ordered.sort_unstable();
        let dirty = self.globalized_dirty(&ordered, &retired);
        self.note_heat(&dirty);
        self.publish(dirty);
        Ok(self.merge_outcomes(outcomes, &touched))
    }

    /// Append rows to master relation `master`.  The delta is **ground
    /// once** — shard 0 pays the `|Σ2| × |Δ|` grounding loop and the
    /// validation happens there, before anything observable mutates — and
    /// every shard (including shard 0) then adopts the shared immutable step
    /// block: a stamp bump plus the exact step-reachability filter deciding
    /// which of its cached blocks re-repair.  The stamps advance in lockstep
    /// exactly as under a per-shard broadcast, and the re-repairs of all
    /// shards run through the same flattened block-level pipeline as row
    /// batches.
    pub fn apply_master_append(
        &mut self,
        master: usize,
        rows: Vec<Vec<Value>>,
    ) -> Result<UpdateOutcome, IncrementalError> {
        let delta = self.shards[0].ground_master_delta(&MasterUpdate::append(master, rows))?;
        let threads = self.threads;
        let jobs: Vec<(usize, Mutex<&mut IncrementalEngine>)> = self
            .shards
            .iter_mut()
            .enumerate()
            .map(|(idx, shard)| (idx, Mutex::new(shard)))
            .collect();
        let prepared: Vec<(usize, PreparedRepair, u64)> = par_map_with(
            &jobs,
            threads,
            || (),
            |_, _, (idx, cell)| {
                let started = Instant::now();
                let mut shard = cell.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
                // the delta was ground against the lockstep-identical plan
                // state every shard holds, so adoption cannot fail
                let dirty = shard.adopt_master_dirty(&delta).unwrap_or_else(|e| {
                    panic!("shard {idx} rejected a delta ground by its lockstep sibling: {e}")
                });
                let prep = shard.prepare_rerepair(dirty, false);
                (*idx, prep, started.elapsed().as_nanos() as u64)
            },
        );
        drop(jobs);
        let before: Vec<u64> = self.per_shard.iter().map(|s| s.batch_ns).collect();
        let outcomes = self.finish_batches(prepared);
        // master-append work is placement-invariant (every shard adopts the
        // delta and re-repairs whatever master-matching blocks it happens to
        // hold), so advance the rebalance marks past it: only row-batch work
        // may nominate a shard as hot, or broadcast appends would drown the
        // steal signal on every shard at once
        for (idx, was) in before.into_iter().enumerate() {
            self.rebalance_mark[idx] += self.per_shard[idx].batch_ns - was;
        }
        debug_assert!(
            self.shards
                .iter()
                .all(|s| s.engine().plan().stamp() == self.shards[0].engine().plan().stamp()),
            "one-shot master deltas must keep the shard plans in lockstep"
        );
        let touched: HashSet<usize> = (0..self.shards.len()).collect();
        let all: Vec<usize> = (0..self.shards.len()).collect();
        let dirty = self.globalized_dirty(&all, &[]);
        self.publish(dirty);
        Ok(self.merge_outcomes(outcomes, &touched))
    }

    /// Stages 2–4 of both mutation paths: flatten every shard's prepared
    /// jobs into one block-granular work list, resolve it over the shared
    /// pool (the dynamic loop steals blocks, so a hot shard's backlog
    /// spreads across all workers), chase the entities of **all** shards in
    /// one pooled run through shard 0's engine (all plans are lockstep
    /// clones sharing the same master `Arc`s, so the results are identical
    /// to per-shard chases), and commit each shard's cache writes
    /// sequentially in ascending shard order.  Per-shard wall clock —
    /// prepare, its blocks' resolution, its entities' chase share, its
    /// commit — is attributed to [`ShardStats::batch_ns`].
    fn finish_batches(
        &mut self,
        prepared: Vec<(usize, PreparedRepair, u64)>,
    ) -> Vec<UpdateOutcome> {
        debug_assert!(
            prepared.windows(2).all(|w| w[0].0 < w[1].0),
            "prepared sub-batches arrive in ascending shard order"
        );
        // stage 2: one flattened block-level resolution across all shards
        let job_refs: Vec<&BlockJob> = prepared
            .iter()
            .flat_map(|(_, prep, _)| prep.jobs.iter())
            .collect();
        let mut resolved = resolve_block_jobs(&job_refs, &self.resolve, &self.schema, self.threads);
        drop(job_refs);
        // stage 3: one pooled chase over every shard's entities
        let mut entities: Vec<EntityInstance> = Vec::new();
        for rjob in &mut resolved {
            entities.append(&mut rjob.entities);
        }
        let (report, entity_ns) = {
            let engine = self.shards[0].engine();
            engine.intern_entities(&mut entities);
            engine.run_timed(&entities)
        };
        // stage 4: per-shard commits, ascending shard order, canonical
        // ascending-key order inside each shard
        let mut outcomes = Vec::with_capacity(prepared.len());
        let mut resolved = resolved.into_iter();
        let mut cursor = 0usize;
        for (idx, prep, prep_ns) in prepared {
            let shard_resolved: Vec<ResolvedJob> =
                resolved.by_ref().take(prep.jobs.len()).collect();
            let span: usize = shard_resolved.iter().map(|r| r.entity_count).sum();
            let resolve_ns: u64 = shard_resolved.iter().map(|r| r.resolve_ns).sum();
            let results = &report.entities[cursor..cursor + span];
            let chase_ns: u64 = entity_ns[cursor..cursor + span].iter().sum();
            cursor += span;
            let committing = Instant::now();
            let outcome = self.shards[idx].commit_rerepair(prep, shard_resolved, results);
            let commit_ns = committing.elapsed().as_nanos() as u64;
            let stat = &mut self.per_shard[idx];
            stat.dirty_blocks += outcome.dirty_blocks;
            stat.entities_rerepaired += outcome.entities_rerepaired;
            stat.batch_ns += prep_ns + resolve_ns + chase_ns + commit_ns;
            outcomes.push(outcome);
        }
        debug_assert_eq!(
            cursor,
            report.entities.len(),
            "chase results drifted from the shards' jobs"
        );
        outcomes
    }

    /// Update the keyed-block heat counters from a row batch's dirty set:
    /// every tracked block cools by one, every dirty keyed block warms by
    /// two (net +1 while traffic persists), capped so cooled-down blocks
    /// age out.  Singleton blocks are pinned to their shard and never
    /// tracked.
    fn note_heat(&mut self, dirty: &BTreeMap<BlockKey, (usize, BlockKey)>) {
        self.heat.retain(|_, h| {
            *h -= 1;
            *h > 0
        });
        for key in dirty.keys() {
            if matches!(key, BlockKey::Key(_)) {
                let h = self.heat.entry(key.clone()).or_insert(0);
                *h = (*h + 2).min(HEAT_CAP);
            }
        }
    }

    /// Add an empty shard whose engine is cloned from shard 0 — the plan
    /// clone keeps the new shard in stamp lockstep, so it adopts future
    /// master deltas like any sibling.  The routing table is untouched (the
    /// hash baseline keeps its open-time modulus): the fresh shard receives
    /// blocks only through [`ShardedEngine::rebalance`].  Publishes one
    /// clean combined epoch; returns the new shard's index.
    pub fn split_shard(&mut self) -> usize {
        let engine = self.engine().clone();
        let fresh = IncrementalEngine::open(
            engine,
            self.name.clone(),
            &Relation::new(self.schema.clone()),
            self.resolve.clone(),
        );
        self.shards.push(fresh);
        self.global_of_local.push(Arc::new(HashMap::new()));
        self.next_local.push(0);
        self.per_shard.push(ShardStats::default());
        self.rebalance_mark.push(0);
        self.publish(BTreeMap::new());
        self.shards.len() - 1
    }

    /// Move whole keyed blocks between shards.  Per move the source shard
    /// exports the block — rows in snapshot order plus the cached repair and
    /// fingerprints, which are position-indexed and travel verbatim — and
    /// the target imports it in export order, so inside the block ascending
    /// local id keeps implying ascending global id and the canonical merge
    /// is untouched.  The router rewires its global↔local maps and the
    /// routing table (a block moved back to its hash home drops its
    /// exception instead of stacking one).
    ///
    /// Moves that cannot apply — unknown or singleton blocks, out-of-range
    /// targets, already-home moves — are skipped.  If anything moved, the
    /// routing version bumps **once** and exactly one clean combined epoch
    /// is published: pinned readers keep resolving through the table of
    /// their epoch, snapshots stay memoized, change feeds see nothing.
    /// Returns the number of blocks moved.
    pub fn rebalance(&mut self, moves: &[(BlockKey, usize)]) -> usize {
        let mut moved = 0usize;
        for (key, target) in moves {
            let target = *target;
            if target >= self.shards.len() || matches!(key, BlockKey::Singleton(_)) {
                continue;
            }
            let source = self.routing.shard_of(key);
            if source == target {
                continue;
            }
            let Some(exported) = self.shards[source].export_block(key) else {
                continue;
            };
            // capture the moved rows' global ids before scrubbing the source
            // maps; export order is ascending source-local id
            let old_lids = exported.repair.rows.clone();
            let gids: Vec<RowId> = old_lids
                .iter()
                .map(|lid| self.global_of_local[source][lid])
                .collect();
            {
                let map = Arc::make_mut(&mut self.global_of_local[source]);
                for lid in &old_lids {
                    map.remove(lid);
                }
            }
            let new_lids = self.shards[target].import_block(key, exported);
            debug_assert_eq!(
                new_lids.first().copied(),
                Some(RowId(self.next_local[target])),
                "shards assign local ids sequentially across imports"
            );
            self.next_local[target] += new_lids.len() as u64;
            let route = Arc::make_mut(&mut self.route);
            let to_global = Arc::make_mut(&mut self.global_of_local[target]);
            for (&gid, &lid) in gids.iter().zip(&new_lids) {
                route.insert(gid, (target, lid));
                to_global.insert(lid, gid);
            }
            let table = Arc::make_mut(&mut self.routing);
            if shard_of(key, table.home_shards) == target {
                table.map.remove(key);
            } else {
                table.map.insert(key.clone(), target);
            }
            moved += 1;
        }
        if moved > 0 {
            Arc::make_mut(&mut self.routing).version += 1;
            self.publish(BTreeMap::new());
        }
        moved
    }

    /// The online rebalance trigger: find the shard that spent the most
    /// wall clock since the previous reading ([`ShardStats::batch_ns`]),
    /// pick up to `max_blocks` persistently hot keyed blocks living on it
    /// (heat ≥ streak threshold), and move them to the shard with the
    /// fewest live rows — unless the move would just swap the imbalance
    /// (the cold remainder on the source must stay larger than the target).
    /// Returns the number of blocks moved.
    ///
    /// The trigger reads wall-clock counters, so *which* batch trips it is
    /// timing-dependent — but a rebalance never changes semantics (the
    /// snapshot is bit-identical under any rebalance schedule), only
    /// placement, so the nondeterminism is invisible to readers.
    pub fn rebalance_hot(&mut self, max_blocks: usize) -> usize {
        if self.shards.len() < 2 || max_blocks == 0 {
            return 0;
        }
        let mut busiest = 0usize;
        let mut best = 0u64;
        for (idx, stat) in self.per_shard.iter().enumerate() {
            let delta = stat.batch_ns - self.rebalance_mark[idx];
            if delta > best {
                best = delta;
                busiest = idx;
            }
        }
        for (idx, stat) in self.per_shard.iter().enumerate() {
            self.rebalance_mark[idx] = stat.batch_ns;
        }
        if best == 0 {
            return 0;
        }
        let mut target = 0usize;
        let mut fewest = usize::MAX;
        for (idx, shard) in self.shards.iter().enumerate() {
            let rows = shard.relation().len();
            if rows < fewest {
                fewest = rows;
                target = idx;
            }
        }
        if target == busiest {
            return 0;
        }
        let mut candidates: Vec<(BlockKey, u64)> = self
            .heat
            .iter()
            .filter(|(key, &h)| {
                h >= HOT_STREAK
                    && matches!(key, BlockKey::Key(_))
                    && self.routing.shard_of(key) == busiest
            })
            .map(|(key, &h)| (key.clone(), h))
            .collect();
        candidates.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let mut source_rows = self.shards[busiest].relation().len();
        let mut target_rows = fewest;
        let mut moves: Vec<(BlockKey, usize)> = Vec::new();
        for (key, _) in candidates.into_iter().take(max_blocks) {
            let Some(len) = self.shards[busiest].cached_block_len(&key) else {
                continue;
            };
            // anti-thrash: only isolate the hot block if the cold remainder
            // left behind still outweighs the target — once a hot block sits
            // alone on a small shard, no further move passes this guard
            if len == 0 || target_rows + len >= source_rows {
                continue;
            }
            source_rows -= len;
            target_rows += len;
            moves.push((key, target));
        }
        for (key, _) in &moves {
            self.heat.remove(key);
        }
        self.rebalance(&moves)
    }

    /// The combined dirty set of the given shards' latest per-shard epochs,
    /// re-keyed to global currency: singleton keys carry shard-local row ids
    /// (two shards can collide on them), so they are rewritten to the global
    /// id — through the live maps, or through this batch's `retired` pairs
    /// for rows the same batch deleted.
    fn globalized_dirty(
        &self,
        shard_indices: &[usize],
        retired: &[HashMap<RowId, RowId>],
    ) -> BTreeMap<BlockKey, (usize, BlockKey)> {
        let mut dirty = BTreeMap::new();
        for &idx in shard_indices {
            let epoch = self.shards[idx].current_epoch();
            for local_key in epoch.dirty_keys() {
                let global_key = match local_key {
                    BlockKey::Singleton(lid) => {
                        let gid = self.global_of_local[idx]
                            .get(lid)
                            .copied()
                            .or_else(|| retired.get(idx).and_then(|m| m.get(lid)).copied())
                            .expect("a dirty singleton row is live or was retired by this batch");
                        BlockKey::Singleton(gid)
                    }
                    key @ BlockKey::Key(_) => key.clone(),
                };
                dirty.insert(global_key, (idx, local_key.clone()));
            }
        }
        dirty
    }

    /// Publish the router's current state as one combined epoch: every
    /// shard's pinned rows + block cache (taken from the shard's own latest
    /// epoch, so they are exactly what the shard just committed) plus the
    /// pinned global↔local id maps and the pinned routing table.
    fn publish(&self, dirty: BTreeMap<BlockKey, (usize, BlockKey)>) {
        let shards: Vec<ShardView> = self
            .shards
            .iter()
            .enumerate()
            .map(|(idx, shard)| {
                let epoch = shard.current_epoch();
                ShardView {
                    rows: epoch.shards[0].rows.clone(),
                    blocks: Arc::clone(&epoch.shards[0].blocks),
                    to_global: Some(Arc::clone(&self.global_of_local[idx])),
                }
            })
            .collect();
        self.hub.publish(Epoch {
            id: EpochId(0), // assigned by the hub
            generation: self.generation,
            stamp: self.shards[0].engine().plan().stamp(),
            schema: self.schema.clone(),
            blocker: Arc::new(self.blocker.clone()),
            threads: self.threads,
            shards,
            route: Some(Arc::clone(&self.route)),
            routing: Some(Arc::clone(&self.routing)),
            dirty: Arc::new(dirty),
        });
    }

    /// A cloneable handle to the router's epoch hub — the read side of the
    /// serving layer (combined epochs only; per-shard states are internal).
    pub fn epochs(&self) -> EpochHub {
        self.hub.clone()
    }

    /// Pin the router's current combined epoch.
    pub fn current_epoch(&self) -> Arc<Epoch> {
        self.hub.current()
    }

    /// Everything that changed since generation `since`, at block
    /// granularity (see [`EpochHub::changes_since`]).
    pub fn changes_since(&self, since: Generation) -> Result<SnapshotDelta, EpochError> {
        self.hub.changes_since(since)
    }

    /// How many epochs stay reachable for generation-addressed reads.
    pub fn set_epoch_retention(&self, epochs: usize) {
        self.hub.set_retention(epochs);
    }

    /// Sum per-shard outcomes; untouched shards contribute their cached
    /// blocks/entities as clean/reused.
    fn merge_outcomes(
        &self,
        outcomes: Vec<UpdateOutcome>,
        touched: &HashSet<usize>,
    ) -> UpdateOutcome {
        let mut merged = UpdateOutcome {
            generation: self.generation,
            dirty_blocks: 0,
            dropped_blocks: 0,
            clean_blocks: 0,
            entities_rerepaired: 0,
            entities_reused: 0,
        };
        for outcome in outcomes {
            merged.dirty_blocks += outcome.dirty_blocks;
            merged.dropped_blocks += outcome.dropped_blocks;
            merged.clean_blocks += outcome.clean_blocks;
            merged.entities_rerepaired += outcome.entities_rerepaired;
            merged.entities_reused += outcome.entities_reused;
        }
        for (idx, shard) in self.shards.iter().enumerate() {
            if !touched.contains(&idx) {
                merged.clean_blocks += shard.cached_blocks();
                merged.entities_reused += shard.cached_entities();
            }
        }
        merged
    }

    /// The live rows of every shard in canonical global order (ascending
    /// global row id == insertion order), plus, per shard, the map from
    /// shard-local row position to global row position.
    fn global_rows(&self) -> (Relation, Vec<Vec<usize>>) {
        let mut rows: Vec<(RowId, usize, usize)> = Vec::with_capacity(self.route.len());
        for (shard_idx, shard) in self.shards.iter().enumerate() {
            for (local_pos, row) in shard.relation().rows().iter().enumerate() {
                let gid = self.global_of_local[shard_idx][&row.id];
                rows.push((gid, shard_idx, local_pos));
            }
        }
        rows.sort_by_key(|&(gid, _, _)| gid);
        let mut relation = Relation::new(self.schema.clone());
        let mut pos_map: Vec<Vec<usize>> = self
            .shards
            .iter()
            .map(|s| vec![usize::MAX; s.relation().len()])
            .collect();
        for (global_pos, &(_, shard_idx, local_pos)) in rows.iter().enumerate() {
            pos_map[shard_idx][local_pos] = global_pos;
            let tuple = &self.shards[shard_idx].relation().rows()[local_pos].tuple;
            relation
                .push_row(tuple.values().to_vec())
                .expect("live rows were validated on insert");
        }
        (relation, pos_map)
    }

    /// The current corpus state as one plain [`Relation`] in canonical global
    /// row order — the view a from-scratch `repair_relation` would repair.
    pub fn snapshot_relation(&self) -> Relation {
        self.global_rows().0
    }

    /// Merge every shard's per-block cache into the current full
    /// [`RelationRepair`].
    ///
    /// Bit-identical to a single [`IncrementalEngine`]'s snapshot over the
    /// same update stream — regardless of any splits or rebalances in
    /// between — and semantically identical to a from-scratch
    /// `repair_relation` of [`ShardedEngine::snapshot_relation`] under the
    /// current plan: within any one block, shard-local row order is a
    /// subsequence of the global order (migration re-inserts a block in
    /// export order), so rebasing block indices through the position maps
    /// preserves every within-block ordering, and the shared
    /// `assemble_repair` puts blocks and entities into the canonical
    /// ascending-smallest-member order.
    ///
    /// Memoized on the epoch stamps: if every epoch published since the last
    /// assembly carried an empty dirty set (e.g. a master append that
    /// revalidated every block unchanged, or a rebalance — pure placement),
    /// the previous `Arc` is returned without rebuilding anything.
    pub fn snapshot(&self) -> Arc<RelationRepair> {
        let current = self.hub.current();
        let mut cache = self
            .snapshot_cache
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if let Some((seen, snap)) = cache.as_ref() {
            let unchanged = *seen == current.id() || self.hub.any_dirty_since(*seen) == Some(false);
            if unchanged {
                let snap = Arc::clone(snap);
                *cache = Some((current.id(), snap.clone()));
                return snap;
            }
        }
        let snap = Arc::new(self.assemble_full());
        *cache = Some((current.id(), Arc::clone(&snap)));
        snap
    }

    /// The unmemoized full assembly behind [`ShardedEngine::snapshot`].
    fn assemble_full(&self) -> RelationRepair {
        let (relation, pos_map) = self.global_rows();
        let mut blocks: Vec<AssembledBlock> = Vec::new();
        for (shard_idx, shard) in self.shards.iter().enumerate() {
            let map = &pos_map[shard_idx];
            for mut block in shard.assembled_blocks() {
                for decision in &mut block.decisions {
                    decision.left = map[decision.left];
                    decision.right = map[decision.right];
                }
                for (members, _) in &mut block.entities {
                    for member in members.iter_mut() {
                        *member = map[*member];
                    }
                }
                // within one block the local→global map is monotone (imports
                // preserve export order), so the smallest member stays the
                // smallest
                block.first_row = map[block.first_row];
                blocks.push(block);
            }
        }
        assemble_repair(relation, blocks, self.threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::EntityOutcome;
    use relacc_core::rules::{MasterPremise, MasterRule, Predicate, RuleSet, TupleRule};
    use relacc_model::{AttrId, CmpOp, DataType, MasterRelation, Schema, Value};
    use relacc_resolve::BlockingStrategy;

    fn schema() -> SchemaRef {
        Schema::builder("stat")
            .attr("name", DataType::Text)
            .attr("rnds", DataType::Int)
            .attr("team", DataType::Text)
            .build()
    }

    fn master_schema() -> SchemaRef {
        Schema::builder("nba")
            .attr("name", DataType::Text)
            .attr("team", DataType::Text)
            .build()
    }

    fn rules(s: &SchemaRef, ms: &SchemaRef) -> RuleSet {
        RuleSet::from_rules([
            relacc_core::AccuracyRule::from(TupleRule::new(
                "cur",
                vec![Predicate::cmp_attrs(s.expect_attr("rnds"), CmpOp::Lt)],
                s.expect_attr("rnds"),
            )),
            relacc_core::AccuracyRule::from(MasterRule::new(
                "m",
                vec![MasterPremise::TargetEqMaster(
                    s.expect_attr("name"),
                    ms.expect_attr("name"),
                )],
                vec![(s.expect_attr("team"), ms.expect_attr("team"))],
            )),
        ])
    }

    fn seed_relation(s: &SchemaRef) -> Relation {
        Relation::from_rows(
            s.clone(),
            vec![
                vec![Value::text("mj"), Value::Int(16), Value::Null],
                vec![Value::text("mj"), Value::Int(27), Value::Null],
                vec![Value::text("sp"), Value::Int(27), Value::Null],
                vec![Value::text("dr"), Value::Int(3), Value::Null],
                vec![Value::Null, Value::Int(9), Value::Null],
            ],
        )
        .unwrap()
    }

    fn resolve() -> ResolveConfig {
        ResolveConfig::on_attrs(vec!["name".into()]).with_strategy(BlockingStrategy::ExactKey)
    }

    fn open(shards: usize) -> ShardedEngine {
        let s = schema();
        let ms = master_schema();
        let master = MasterRelation::from_rows(
            ms.clone(),
            vec![vec![Value::text("mj"), Value::text("Bulls")]],
        )
        .unwrap();
        let engine = BatchEngine::new(s.clone(), rules(&s, &ms), vec![master]).unwrap();
        ShardedEngine::open(engine, "stat", &seed_relation(&s), resolve(), shards)
    }

    fn mj_key(engine: &ShardedEngine) -> BlockKey {
        BlockKey::of_values(
            &engine.blocker,
            RowId(0),
            &[Value::text("mj"), Value::Int(16), Value::Null],
        )
    }

    fn assert_matches_full(sharded: &ShardedEngine, label: &str) {
        let relation = sharded.snapshot_relation();
        let full = sharded.engine().repair_relation(&relation, &resolve());
        let snap = sharded.snapshot();
        assert_eq!(
            snap.resolved.members, full.resolved.members,
            "{label}: members"
        );
        assert_eq!(
            snap.resolved.decisions, full.resolved.decisions,
            "{label}: decisions"
        );
        assert_eq!(
            snap.report.entities.len(),
            full.report.entities.len(),
            "{label}: entity count"
        );
        for (a, b) in snap.report.entities.iter().zip(full.report.entities.iter()) {
            assert_eq!(a.entity, b.entity, "{label}: entity index");
            assert_eq!(a.records, b.records, "{label}: records of {}", a.entity);
            assert_eq!(a.outcome, b.outcome, "{label}: outcome of {}", a.entity);
            assert_eq!(a.deduced, b.deduced, "{label}: deduced of {}", a.entity);
            assert_eq!(
                a.suggestion, b.suggestion,
                "{label}: suggestion of {}",
                a.entity
            );
        }
        assert_eq!(snap.repaired.rows(), full.repaired.rows(), "{label}: rows");
        assert_eq!(
            snap.row_entities, full.row_entities,
            "{label}: row entities"
        );
        assert_eq!(snap.skipped, full.skipped, "{label}: skipped");
    }

    #[test]
    fn sharding_is_transparent_at_every_shard_count() {
        for shards in [1usize, 2, 3, 4, 7] {
            let mut engine = open(shards);
            assert_eq!(engine.shard_count(), shards);
            assert_eq!(engine.len(), 5);
            assert_matches_full(&engine, &format!("seed/{shards}"));

            // split batch: touches mj and dr blocks plus a fresh singleton
            let outcome = engine
                .apply(
                    &UpdateBatch::new("stat")
                        .delete(RowId(3))
                        .insert(vec![Value::text("mj"), Value::Int(31), Value::Null])
                        .insert(vec![Value::Null, Value::Int(12), Value::Null]),
                )
                .unwrap();
            assert_eq!(outcome.generation, Generation(1));
            assert_eq!(engine.generation(), Generation(1));
            assert_matches_full(&engine, &format!("rows/{shards}"));

            // broadcast: a master append completing the sp entity
            engine
                .apply_master_append(0, vec![vec![Value::text("sp"), Value::text("Blazers")]])
                .unwrap();
            assert_matches_full(&engine, &format!("master/{shards}"));
            let snap = engine.snapshot();
            let sp = snap
                .report
                .entities
                .iter()
                .find(|e| e.records == vec![2])
                .expect("sp entity");
            assert_eq!(sp.deduced.value(AttrId(2)), &Value::text("Blazers"));
        }
    }

    #[test]
    fn sharded_snapshot_is_bit_identical_to_a_single_engine() {
        let s = schema();
        let ms = master_schema();
        let master = MasterRelation::from_rows(
            ms.clone(),
            vec![vec![Value::text("mj"), Value::text("Bulls")]],
        )
        .unwrap();
        let single_engine = BatchEngine::new(s.clone(), rules(&s, &ms), vec![master]).unwrap();
        let mut single =
            IncrementalEngine::open(single_engine.clone(), "stat", &seed_relation(&s), resolve());
        let mut sharded =
            ShardedEngine::open(single_engine, "stat", &seed_relation(&s), resolve(), 4);
        let batches = [
            UpdateBatch::new("stat").insert(vec![Value::text("sp"), Value::Int(31), Value::Null]),
            UpdateBatch::new("stat").delete(RowId(0)).insert(vec![
                Value::text("dr"),
                Value::Int(5),
                Value::Null,
            ]),
            UpdateBatch::new("stat").delete(RowId(4)).delete(RowId(6)),
        ];
        for (step, batch) in batches.iter().enumerate() {
            single.apply(batch).unwrap();
            sharded.apply(batch).unwrap();
            let a = single.snapshot();
            let b = sharded.snapshot();
            assert_eq!(
                a.resolved.members, b.resolved.members,
                "step {step}: members"
            );
            assert_eq!(
                a.resolved.decisions, b.resolved.decisions,
                "step {step}: decisions"
            );
            assert_eq!(a.repaired.rows(), b.repaired.rows(), "step {step}: rows");
            assert_eq!(a.skipped, b.skipped, "step {step}: skipped");
            for (x, y) in a.report.entities.iter().zip(b.report.entities.iter()) {
                assert_eq!(x.records, y.records, "step {step}");
                assert_eq!(x.outcome, y.outcome, "step {step}");
                assert_eq!(x.deduced, y.deduced, "step {step}");
                assert_eq!(x.suggestion, y.suggestion, "step {step}");
            }
        }
    }

    #[test]
    fn split_batches_only_touch_their_shards() {
        let mut engine = open(4);
        // find the shard holding the mj block and count re-repairs when a
        // batch only touches mj: exactly one entity re-repairs, everyone
        // else is reused from cache
        let outcome = engine
            .apply(&UpdateBatch::new("stat").insert(vec![
                Value::text("mj"),
                Value::Int(40),
                Value::Null,
            ]))
            .unwrap();
        assert_eq!(outcome.dirty_blocks, 1);
        assert_eq!(outcome.entities_rerepaired, 1);
        assert_eq!(outcome.entities_reused, 3, "sp, dr and the singleton");
        assert_eq!(
            outcome.dirty_blocks + outcome.clean_blocks,
            4,
            "mj, sp, dr and the singleton blocks"
        );
    }

    #[test]
    fn router_validates_like_a_single_engine() {
        let mut engine = open(3);
        assert!(matches!(
            engine.apply(&UpdateBatch::new("other")),
            Err(IncrementalError::Update(UpdateError::NoSuchRelation(_)))
        ));
        assert!(matches!(
            engine.apply(&UpdateBatch::new("stat").delete(RowId(99))),
            Err(IncrementalError::Update(UpdateError::NoSuchRow(_)))
        ));
        // duplicate delete within one batch
        assert!(matches!(
            engine.apply(&UpdateBatch::new("stat").delete(RowId(0)).delete(RowId(0))),
            Err(IncrementalError::Update(UpdateError::NoSuchRow(_)))
        ));
        // schema-invalid insert
        assert!(matches!(
            engine.apply(&UpdateBatch::new("stat").insert(vec![Value::Int(1)])),
            Err(IncrementalError::Update(UpdateError::Schema(_)))
        ));
        // rejected batches mutate nothing
        assert_eq!(engine.generation(), Generation(0));
        assert_eq!(engine.len(), 5);
        assert_matches_full(&engine, "after-rejections");
    }

    #[test]
    fn suggestions_survive_the_sharded_merge() {
        let s = Schema::builder("r")
            .attr("name", DataType::Text)
            .attr("color", DataType::Text)
            .build();
        let relation = Relation::from_rows(
            s.clone(),
            vec![
                vec![Value::text("widget"), Value::text("red")],
                vec![Value::text("widget"), Value::text("red")],
                vec![Value::text("widget"), Value::text("blue")],
                vec![Value::text("gadget"), Value::text("green")],
            ],
        )
        .unwrap();
        let engine = BatchEngine::new(s.clone(), RuleSet::new(), vec![]).unwrap();
        let mut sharded = ShardedEngine::open(engine, "r", &relation, resolve(), 2);
        let snap = sharded.snapshot();
        assert_eq!(snap.report.entities[0].outcome, EntityOutcome::Suggested);
        sharded
            .apply(&UpdateBatch::new("r").insert(vec![Value::text("gadget"), Value::text("teal")]))
            .unwrap();
        let snap = sharded.snapshot();
        assert_eq!(snap.report.entities[0].outcome, EntityOutcome::Suggested);
        assert_eq!(
            snap.report.entities[0]
                .suggestion
                .as_ref()
                .unwrap()
                .value(AttrId(1)),
            &Value::text("red")
        );
    }

    /// Regression: `snapshot` used to rebuild the full merge even when no
    /// shard was dirty.  The epoch stamps now prove cleanliness, so repeated
    /// snapshots — and snapshots across a no-op master append — return the
    /// same `Arc` without any assembly work.
    #[test]
    fn clean_snapshots_are_memoized() {
        let mut engine = open(3);
        // drop the null-name singleton first: its deduced name stays null,
        // which makes *every* master append conservatively dirty its block
        engine
            .apply(&UpdateBatch::new("stat").delete(RowId(4)))
            .unwrap();
        let first = engine.snapshot();
        let second = engine.snapshot();
        assert!(
            Arc::ptr_eq(&first, &second),
            "back-to-back snapshots must reuse the memoized assembly"
        );
        // a master append matching no live entity revalidates every block
        // unchanged: the published epoch carries an empty dirty set
        engine
            .apply_master_append(0, vec![vec![Value::text("zz"), Value::text("Nobody")]])
            .unwrap();
        assert!(
            engine.current_epoch().dirty_keys().next().is_none(),
            "the no-op master append must publish a clean epoch"
        );
        let third = engine.snapshot();
        assert!(
            Arc::ptr_eq(&first, &third),
            "a clean master append must not invalidate the memo"
        );
        // a real row batch does invalidate it
        engine
            .apply(&UpdateBatch::new("stat").insert(vec![
                Value::text("mj"),
                Value::Int(40),
                Value::Null,
            ]))
            .unwrap();
        let fourth = engine.snapshot();
        assert!(!Arc::ptr_eq(&first, &fourth), "dirty batches rebuild");
        assert_matches_full(&engine, "after-memoized-snapshots");
    }

    #[test]
    fn shard_routing_is_a_pure_function_of_the_key() {
        for shards in [1usize, 2, 5, 8] {
            let a = BlockKey::Key("michael jordan".into());
            let b = BlockKey::Key("michael jordan".into());
            assert_eq!(shard_of(&a, shards), shard_of(&b, shards));
            assert!(shard_of(&a, shards) < shards);
            let s1 = BlockKey::Singleton(RowId(7));
            assert_eq!(shard_of(&s1, shards), shard_of(&s1.clone(), shards));
            assert!(shard_of(&s1, shards) < shards);
        }
        // keys spread: over many distinct keys, more than one shard is hit
        let hit: HashSet<usize> = (0..64)
            .map(|i| shard_of(&BlockKey::Key(format!("key {i}")), 4))
            .collect();
        assert!(hit.len() > 1, "FNV routing must actually spread keys");
    }

    #[test]
    fn master_appends_ground_once_regardless_of_shard_count() {
        for shards in [1usize, 2, 4, 7] {
            let mut engine = open(shards);
            assert_eq!(
                engine.stats().master_groundings,
                0,
                "{shards}: open grounds nothing"
            );
            engine
                .apply_master_append(0, vec![vec![Value::text("sp"), Value::text("Blazers")]])
                .unwrap();
            engine
                .apply_master_append(0, vec![vec![Value::text("dr"), Value::text("Pistons")]])
                .unwrap();
            let stats = engine.stats();
            assert_eq!(
                stats.master_groundings, 2,
                "{shards}: one grounding per append, independent of shard count"
            );
            assert_eq!(
                stats.master_deltas_applied,
                2 * shards,
                "{shards}: every shard adopts every delta"
            );
            // a rejected append surfaces at the grounding shard before
            // anything observable mutates anywhere
            assert!(matches!(
                engine.apply_master_append(9, vec![vec![Value::text("x"), Value::text("y")]]),
                Err(IncrementalError::Plan(_))
            ));
            assert_eq!(engine.stats().master_groundings, 2);
            assert_matches_full(&engine, &format!("grounded/{shards}"));
        }
    }

    #[test]
    fn per_shard_stats_expose_the_hot_shard() {
        let mut engine = open(4);
        let before = engine.sharded_stats();
        assert_eq!(before.per_shard.len(), 4);
        assert!(
            before.per_shard.iter().all(|s| *s == ShardStats::default()),
            "open attributes nothing to the per-shard counters"
        );
        let outcome = engine
            .apply(&UpdateBatch::new("stat").insert(vec![
                Value::text("mj"),
                Value::Int(40),
                Value::Null,
            ]))
            .unwrap();
        let stats = engine.sharded_stats();
        assert_eq!(stats.totals, engine.stats());
        let touched: Vec<&ShardStats> = stats
            .per_shard
            .iter()
            .filter(|s| **s != ShardStats::default())
            .collect();
        assert_eq!(touched.len(), 1, "a single-block batch touches one shard");
        assert_eq!(touched[0].dirty_blocks, outcome.dirty_blocks);
        assert_eq!(touched[0].entities_rerepaired, outcome.entities_rerepaired);
        assert!(
            touched[0].batch_ns > 0,
            "wall clock is attributed to the touched shard"
        );
    }

    #[test]
    fn split_and_rebalance_keep_snapshots_canonical() {
        let mut engine = open(3);
        let mj = mj_key(&engine);
        let home = shard_of(&mj, 3);

        let fresh = engine.split_shard();
        assert_eq!(fresh, 3);
        assert_eq!(engine.shard_count(), 4);
        assert_eq!(engine.shards()[fresh].relation().len(), 0);
        assert_eq!(engine.routing_version(), 0, "a split does not rebalance");
        assert_matches_full(&engine, "after-split");

        let before = engine.snapshot();
        assert_eq!(engine.rebalance(&[(mj.clone(), fresh)]), 1);
        assert_eq!(engine.routing_version(), 1);
        assert_eq!(
            engine.shards()[fresh].relation().len(),
            2,
            "both mj rows moved"
        );
        let after = engine.snapshot();
        assert!(
            Arc::ptr_eq(&before, &after),
            "a rebalance publishes a clean epoch: the snapshot memo survives"
        );
        assert_matches_full(&engine, "after-rebalance");

        // new rows of a moved block follow the routing override...
        engine
            .apply(&UpdateBatch::new("stat").insert(vec![
                Value::text("mj"),
                Value::Int(40),
                Value::Null,
            ]))
            .unwrap();
        assert_eq!(engine.shards()[fresh].relation().len(), 3);
        assert_matches_full(&engine, "insert-into-moved");
        // ...deletes address moved rows through the rewired route...
        engine
            .apply(&UpdateBatch::new("stat").delete(RowId(0)))
            .unwrap();
        assert_eq!(engine.shards()[fresh].relation().len(), 2);
        assert_matches_full(&engine, "delete-from-moved");
        // ...and master deltas reach the moved block like any other
        engine
            .apply_master_append(0, vec![vec![Value::text("sp"), Value::text("Blazers")]])
            .unwrap();
        assert_matches_full(&engine, "master-after-move");

        // moving home removes the exception instead of stacking a new one
        assert_eq!(engine.rebalance(&[(mj.clone(), home)]), 1);
        assert!(
            engine.routing.map.is_empty(),
            "a block moved home leaves no override behind"
        );
        assert_eq!(engine.routing_version(), 2);
        assert_matches_full(&engine, "moved-home");

        // no-op moves: already home, singletons, unknown blocks, bad targets
        assert_eq!(engine.rebalance(&[(mj.clone(), home)]), 0);
        assert_eq!(
            engine.rebalance(&[(BlockKey::Singleton(RowId(4)), fresh)]),
            0
        );
        assert_eq!(
            engine.rebalance(&[(BlockKey::Key("nobody".into()), fresh)]),
            0
        );
        assert_eq!(engine.rebalance(&[(mj.clone(), 99)]), 0);
        assert_eq!(
            engine.routing_version(),
            2,
            "no-op rebalances publish nothing"
        );
        assert_matches_full(&engine, "after-noop-moves");
    }

    #[test]
    fn change_feeds_compose_across_a_rebalance() {
        let mut engine = open(2);
        let base = engine.current_epoch();
        let mut views = base.block_views();
        // dirty the mj block *before* the rebalance: the delta below must
        // relocate the change through the post-rebalance routing, not the
        // shard recorded when the dirty epoch was published
        engine
            .apply(&UpdateBatch::new("stat").insert(vec![
                Value::text("mj"),
                Value::Int(40),
                Value::Null,
            ]))
            .unwrap();
        let fresh = engine.split_shard();
        let mj = mj_key(&engine);
        assert_eq!(engine.rebalance(&[(mj.clone(), fresh)]), 1);

        let delta = engine.changes_since(base.generation()).unwrap();
        let change = delta
            .changes
            .iter()
            .find(|c| c.key == mj)
            .expect("the mj block changed since the base epoch");
        assert!(
            change.after.is_some(),
            "a moved block's change must resolve through the current routing"
        );
        delta.apply_to(&mut views);
        let composed = crate::epoch::assemble_views(schema(), &views, 1);
        let target = engine.current_epoch().snapshot();
        assert_eq!(composed.resolved.members, target.resolved.members);
        assert_eq!(composed.resolved.decisions, target.resolved.decisions);
        assert_eq!(composed.repaired.rows(), target.repaired.rows());
    }

    #[test]
    fn rebalance_hot_isolates_a_hot_block() {
        let mut engine = open(3);
        engine.split_shard();
        let mj = mj_key(&engine);
        let home = engine.routing.shard_of(&mj);

        // pad the hot block's home shard with cold blocks so the anti-thrash
        // guard (the cold remainder must outweigh the target) lets the hot
        // block leave
        let mut pad = UpdateBatch::new("stat");
        let mut added = 0usize;
        let mut i = 0usize;
        while added < 8 {
            let row = vec![
                Value::text(format!("cold{i}")),
                Value::Int(i as i64),
                Value::Null,
            ];
            let key = BlockKey::of_values(&engine.blocker, RowId(0), &row);
            if shard_of(&key, 3) == home {
                pad = pad.insert(row);
                added += 1;
            }
            i += 1;
        }
        engine.apply(&pad).unwrap();

        // hammer the mj block until its heat crosses the streak threshold;
        // the cold pads decay out of the heat map meanwhile
        for r in 0..4i64 {
            engine
                .apply(&UpdateBatch::new("stat").insert(vec![
                    Value::text("mj"),
                    Value::Int(100 + r),
                    Value::Null,
                ]))
                .unwrap();
        }
        assert!(engine.heat.get(&mj).copied().unwrap_or(0) >= HOT_STREAK);

        assert_eq!(engine.rebalance_hot(4), 1, "exactly the hot block moves");
        assert_ne!(
            engine.routing.shard_of(&mj),
            home,
            "the hot block left the busy shard"
        );
        assert_eq!(engine.routing_version(), 1);
        assert!(
            !engine.heat.contains_key(&mj),
            "a moved block's heat resets"
        );
        assert_matches_full(&engine, "after-hot-rebalance");
        assert_eq!(
            engine.rebalance_hot(4),
            0,
            "no traffic since the last reading, no further moves"
        );
    }
}
