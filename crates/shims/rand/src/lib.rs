//! Offline stand-in for the parts of the `rand` crate API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace resolves
//! `rand` to this shim (see `[workspace.dependencies]` in the root manifest).
//! It provides [`rngs::StdRng`], [`Rng`] and [`SeedableRng`] with the same
//! calling conventions as rand 0.8: `StdRng::seed_from_u64`, `gen`,
//! `gen_range` over half-open and inclusive integer ranges, and `gen_bool`.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — not the ChaCha12
//! stream real `StdRng` uses, so seeded sequences differ from upstream rand,
//! but every dataset in this repository is generated and consumed in-tree, so
//! only determinism and statistical quality matter.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Seeding interface (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly ("standard" distribution).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] accepts (subset of `rand`'s `SampleRange`).
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw one value uniformly from the range.  Panics on empty ranges,
    /// matching `rand`'s behaviour.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Random-value interface (subset of `rand::Rng`).
pub trait Rng {
    /// The raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// Sample a value of `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A deterministic xoshiro256** generator (stand-in for `rand`'s `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            let i = r.gen_range(3usize..10);
            assert!((3..10).contains(&i));
            let j = r.gen_range(1usize..=4);
            assert!((1..=4).contains(&j));
            let k = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&k));
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut r = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            counts[r.gen_range(0usize..8)] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "bucket count {c}");
        }
    }
}
