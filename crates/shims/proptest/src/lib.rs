//! Offline stand-in for the parts of the `proptest` crate API this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so the workspace resolves
//! `proptest` to this shim.  It implements randomized property testing with
//! the same surface syntax as proptest 1.x for the features the test-suite
//! relies on:
//!
//! * the [`proptest!`] macro (with an optional `#![proptest_config(...)]`
//!   header) generating `#[test]` functions;
//! * [`prop_assert!`] / [`prop_assert_eq!`];
//! * the [`Strategy`] trait with `prop_map` and `boxed`;
//! * range strategies (`0i64..5`), `any::<T>()`, [`Just`],
//!   `prop::collection::vec`, `prop::option::of`, tuple strategies,
//!   [`prop_oneof!`] unions, and simple `"[a-e]{1,3}"`-style string patterns;
//! * [`ProptestConfig::with_cases`], [`TestCaseError`] and [`TestCaseResult`].
//!
//! Unlike real proptest there is **no shrinking**: a failing case reports the
//! generated inputs verbatim.  Case generation is fully deterministic (seeded
//! from the test name), so failures reproduce across runs.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::Range;
use std::rc::Rc;

/// A tiny deterministic PRNG (SplitMix64) driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded constructor.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound` > 0).
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound.max(1) as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator (the shim's counterpart of proptest's `Strategy`).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erase the strategy (needed by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Rc::new(move |rng: &mut TestRng| self.generate(rng)),
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased strategy.
#[derive(Clone)]
pub struct BoxedStrategy<V> {
    inner: Rc<dyn Fn(&mut TestRng) -> V>,
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (self.inner)(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<V: Clone>(pub V);

impl<V: Clone> Strategy for Just<V> {
    type Value = V;
    fn generate(&self, _rng: &mut TestRng) -> V {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// Strategy for a whole type (`any::<bool>()`-style).
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Types with a canonical full-domain strategy.
pub trait ArbitraryValue: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl ArbitraryValue for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl ArbitraryValue for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl ArbitraryValue for u8 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl ArbitraryValue for i64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as i64
    }
}

impl ArbitraryValue for usize {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as usize
    }
}

impl<T: ArbitraryValue> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T` (proptest's `any::<T>()`).
pub fn any<T: ArbitraryValue>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

/// String strategies from `"[a-e]{1,3}"`-style patterns.
///
/// Supported grammar: a sequence of atoms, where an atom is a literal
/// character or a character class `[x-y...]`, optionally followed by `{n}` or
/// `{m,n}`.  This covers the patterns used in the workspace's tests; anything
/// unparseable falls back to the literal pattern text.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_pattern(self, rng)
    }
}

fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0usize;
    while i < chars.len() {
        // parse one atom: a class or a literal character
        let class: Vec<char> = if chars[i] == '[' {
            let Some(close) = chars[i..].iter().position(|&c| c == ']') else {
                return pattern.to_string();
            };
            let body = &chars[i + 1..i + close];
            i += close + 1;
            let mut set = Vec::new();
            let mut j = 0usize;
            while j < body.len() {
                if j + 2 < body.len() && body[j + 1] == '-' {
                    let (lo, hi) = (body[j] as u32, body[j + 2] as u32);
                    for c in lo..=hi {
                        if let Some(c) = char::from_u32(c) {
                            set.push(c);
                        }
                    }
                    j += 3;
                } else {
                    set.push(body[j]);
                    j += 1;
                }
            }
            if set.is_empty() {
                return pattern.to_string();
            }
            set
        } else {
            let c = chars[i];
            i += 1;
            vec![c]
        };
        // parse an optional repetition
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let Some(close) = chars[i..].iter().position(|&c| c == '}') else {
                return pattern.to_string();
            };
            let body: String = chars[i + 1..i + close].iter().collect();
            i += close + 1;
            let parts: Vec<&str> = body.split(',').collect();
            match parts.as_slice() {
                [n] => match n.trim().parse::<usize>() {
                    Ok(n) => (n, n),
                    Err(_) => return pattern.to_string(),
                },
                [m, n] => match (m.trim().parse::<usize>(), n.trim().parse::<usize>()) {
                    (Ok(m), Ok(n)) if m <= n => (m, n),
                    _ => return pattern.to_string(),
                },
                _ => return pattern.to_string(),
            }
        } else {
            (1, 1)
        };
        let count = lo + rng.below(hi - lo + 1);
        for _ in 0..count {
            out.push(class[rng.below(class.len())]);
        }
    }
    out
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Collection and option strategy combinators (the `prop::` module).
pub mod prop {
    /// `prop::collection` combinators.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        /// Sizes accepted by [`fn@vec`]: a fixed `usize` or a `Range<usize>`.
        pub trait IntoSizeRange {
            /// Lower bound (inclusive) and upper bound (exclusive).
            fn bounds(&self) -> (usize, usize);
        }

        impl IntoSizeRange for usize {
            fn bounds(&self) -> (usize, usize) {
                (*self, *self + 1)
            }
        }

        impl IntoSizeRange for Range<usize> {
            fn bounds(&self) -> (usize, usize) {
                (self.start, self.end)
            }
        }

        /// Strategy producing `Vec`s of values from `element`.
        pub struct VecStrategy<S> {
            element: S,
            lo: usize,
            hi: usize,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = self.lo + rng.below(self.hi - self.lo);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// `prop::collection::vec(element, size)`.
        pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
            let (lo, hi) = size.bounds();
            assert!(lo < hi, "empty vec size range");
            VecStrategy { element, lo, hi }
        }
    }

    /// `prop::option` combinators.
    pub mod option {
        use super::super::{Strategy, TestRng};

        /// Strategy producing `Option`s (`None` with probability 1/4, matching
        /// proptest's default weighting closely enough for tests).
        pub struct OptionStrategy<S> {
            inner: S,
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.below(4) == 0 {
                    None
                } else {
                    Some(self.inner.generate(rng))
                }
            }
        }

        /// `prop::option::of(strategy)`.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }
    }
}

/// A union of same-valued strategies (what [`prop_oneof!`] builds).
pub struct Union<V> {
    choices: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Build a union over the given choices (must be non-empty).
    pub fn new(choices: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one choice");
        Union { choices }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.choices.len());
        self.choices[i].generate(rng)
    }
}

/// Failure raised by `prop_assert!`-style macros inside a property body.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Create a failure with the given reason.
    pub fn fail<S: Into<String>>(message: S) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Result type of one property-test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Proptest run configuration (only `cases` is honoured by the shim).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Stable 64-bit FNV-1a hash used to derive per-test seeds from test names.
pub fn seed_of(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use super::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult, TestRng,
    };
}

/// Build a strategy choosing uniformly among the listed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Assert a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?} at {}:{}",
                stringify!($left),
                stringify!($right),
                l,
                r,
                file!(),
                line!()
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    }};
}

/// Assert inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?} at {}:{}",
                stringify!($left),
                stringify!($right),
                l,
                file!(),
                line!()
            )));
        }
    }};
}

/// Declare property tests.  Mirrors proptest's surface syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0i64..10, v in prop::collection::vec(any::<bool>(), 0..8)) {
///         prop_assert!(x >= 0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr); $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::new($crate::seed_of(concat!(
                    module_path!(), "::", stringify!($name)
                )));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                    let case_debug = format!(
                        concat!($("\n  ", stringify!($arg), " = {:?}",)+),
                        $(&$arg,)+
                    );
                    let outcome = (|| -> $crate::TestCaseResult {
                        $(
                            #[allow(unused_mut)]
                            let mut $arg = $arg;
                        )+
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "property {} failed on case {}/{}: {}\ninputs:{}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            e,
                            case_debug
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 2i64..9, y in 0usize..5, f in -1.5f64..1.5) {
            prop_assert!((2..9).contains(&x));
            prop_assert!(y < 5);
            prop_assert!((-1.5..1.5).contains(&f));
        }

        #[test]
        fn collections_and_options(v in prop::collection::vec(any::<bool>(), 0..10),
                                   o in prop::option::of(0u8..3)) {
            prop_assert!(v.len() < 10);
            if let Some(x) = o {
                prop_assert!(x < 3);
            }
        }

        #[test]
        fn oneof_and_patterns(v in prop_oneof![Just(0i64), 5i64..10], s in "[a-c]{1,3}") {
            prop_assert!(v == 0 || (5..10).contains(&v));
            prop_assert!(!s.is_empty() && s.len() <= 3);
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    #[test]
    fn fixed_size_vec_and_maps() {
        let mut rng = TestRng::new(1);
        let strat = prop::collection::vec(any::<u64>(), 3usize);
        for _ in 0..10 {
            assert_eq!(strat.generate(&mut rng).len(), 3);
        }
        let doubled = (0i64..5).prop_map(|x| x * 2);
        for _ in 0..20 {
            let v = doubled.generate(&mut rng);
            assert!(v % 2 == 0 && (0..10).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failures_report_inputs() {
        proptest! {
            #[allow(dead_code)]
            fn always_fails(x in 0i64..3) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }
}
