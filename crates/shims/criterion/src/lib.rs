//! Offline stand-in for the parts of the `criterion` crate API this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so the workspace resolves
//! `criterion` to this shim.  It supports the subset used by the benches under
//! `crates/bench/benches/`: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`] with `sample_size` / `bench_function` /
//! `bench_with_input` / `finish`, [`BenchmarkId`], [`Bencher::iter`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: each benchmark is warmed up briefly and
//! then timed over `sample_size` samples, reporting min / mean / max time per
//! iteration.  There are no plots, no statistics beyond that, and no saved
//! baselines — enough to compare alternatives in one run, which is all the
//! in-tree benches need.
//!
//! Setting `RELACC_BENCH_SMOKE=1` switches every benchmark to a single
//! one-iteration sample with no warm-up: CI uses it to *run* (not just
//! compile) every bench group cheaply, so bench code cannot silently rot.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// True when `RELACC_BENCH_SMOKE` is set: one iteration per benchmark, no
/// warm-up (the CI bench-smoke mode).
fn smoke_mode() -> bool {
    std::env::var_os("RELACC_BENCH_SMOKE").is_some()
}

/// Re-export of the hint used by benches (`criterion::black_box` is the same
/// function in recent criterion versions).
pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A function name plus a parameter value.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{name}/{parameter}"),
        }
    }

    /// Only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// Things accepted as a benchmark name: strings or [`BenchmarkId`]s.
pub trait IntoBenchmarkId {
    /// The rendered benchmark name.
    fn into_name(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_name(self) -> String {
        self.name
    }
}

impl IntoBenchmarkId for &str {
    fn into_name(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_name(self) -> String {
        self
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Measure `routine`, running it repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if smoke_mode() {
            // CI smoke: exercise the routine exactly once and record the
            // single observation
            self.iters_per_sample = 1;
            self.samples.clear();
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
            return;
        }
        // warm-up: run until ~50ms have passed (at least once) to settle caches
        // and decide how many iterations one sample needs
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_start.elapsed() < Duration::from_millis(50) {
            black_box(routine());
            warmup_iters += 1;
            if warmup_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warmup_start.elapsed() / warmup_iters.max(1) as u32;
        // aim for samples of ~20ms each, at least one iteration
        let iters = (Duration::from_millis(20).as_nanos() / per_iter.as_nanos().max(1))
            .clamp(1, 1_000_000) as u64;
        self.iters_per_sample = iters;
        let n_samples = self.samples.capacity().max(1);
        self.samples.clear();
        for _ in 0..n_samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters as u32);
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

fn run_and_report(full_name: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        iters_per_sample: 0,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{full_name:<50} (no samples)");
        return;
    }
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    let max = bencher.samples.iter().max().copied().unwrap_or_default();
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    println!(
        "{:<50} time: [{} {} {}]  ({} samples x {} iters)",
        full_name,
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max),
        bencher.samples.len(),
        bencher.iters_per_sample,
    );
}

/// The benchmark manager (stand-in for `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench passes `--bench` plus any user filter; honour the filter
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            sample_size: 20,
            filter,
        }
    }
}

impl Criterion {
    /// Override the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    fn selected(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        if self.selected(name) {
            run_and_report(name, self.sample_size, &mut f);
        }
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            sample_size: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Override the number of samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    fn effective_samples(&self) -> usize {
        self.sample_size.unwrap_or(self.parent.sample_size)
    }

    /// Run one benchmark inside the group.
    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_name());
        if self.parent.selected(&full) {
            run_and_report(&full, self.effective_samples(), &mut f);
        }
        self
    }

    /// Run one parameterized benchmark inside the group.
    pub fn bench_with_input<I: IntoBenchmarkId, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_name());
        if self.parent.selected(&full) {
            run_and_report(&full, self.effective_samples(), &mut |b| f(b, input));
        }
        self
    }

    /// Close the group (printing nothing extra; kept for API compatibility).
    pub fn finish(self) {}
}

/// Bundle benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($function:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $function(&mut criterion); )+
        }
    };
}

/// Generate `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
