//! Shared machinery of the top-k candidate-target algorithms.
//!
//! A *candidate target* of a Church-Rosser specification `S` (Section 3) is a
//! complete tuple `t'_e` that (a) agrees with the deduced target `t_e` on every
//! non-null attribute, (b) takes its remaining values from the attribute
//! domains, and (c) is itself chase-consistent: the specification
//! `S' = (D0, Σ, Im, t'_e)` is Church-Rosser and deduces `t'_e`.
//! [`CandidateSearch::check`] implements condition (c) — the `check` procedure
//! of Section 6.1 — by **resuming** the chase from the base run's checkpoint
//! ([`relacc_core::chase::ChaseCheckpoint`]): only the target events for the
//! candidate's `Z` values are seeded and only the steps they wake are
//! replayed, instead of re-running the whole chase per candidate.  The
//! from-scratch re-chase survives as [`CandidateSearch::check_full`], the
//! reference implementation for the equivalence tests and the `topk_check`
//! bench.

use crate::preference::PreferenceModel;
use relacc_core::chase::{
    chase_with_grounding, ground, ChaseCheckpoint, CheckScratch, CheckpointOutcome, Grounding,
};
use relacc_core::{IsCrOutcome, Specification};
use relacc_heap::Scored;
use relacc_model::{AccuracyOrders, AttrId, TargetTuple, Value};
use std::borrow::Cow;
use std::fmt;
use std::sync::Arc;

/// A candidate target together with its preference score.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredCandidate {
    /// The complete candidate target tuple.
    pub target: TargetTuple,
    /// Its score `p({target})` under the preference model.
    pub score: f64,
}

/// Counters reported by every top-k algorithm.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TopKStats {
    /// Number of `check` invocations (full and checkpointed together,
    /// including candidates the completeness precheck rejected before any
    /// chase ran — so `checks >= full_checks + delta_checks`).
    pub checks: usize,
    /// Checks that actually re-ran the chase from scratch
    /// ([`CandidateSearch::check_full`]).
    pub full_checks: usize,
    /// Checks answered by a checkpointed delta replay
    /// ([`CandidateSearch::check`]).
    pub delta_checks: usize,
    /// Ground steps replayed across all delta checks.
    pub delta_steps_replayed: usize,
    /// Number of candidate tuples generated/considered before termination.
    pub generated: usize,
    /// Number of heap / ranked-list accesses (the instance-optimality metric of
    /// Proposition 7).
    pub pops: usize,
    /// True when a frontier/buffer safety valve tripped during the search:
    /// the returned candidates are the best of what was explored, but the
    /// exploration was truncated and lower-ranked candidates may exist.
    pub capped: bool,
}

impl TopKStats {
    /// Accumulate another run's counters (used by sessions and batch reports).
    pub fn merge(&mut self, other: &TopKStats) {
        self.checks += other.checks;
        self.full_checks += other.full_checks;
        self.delta_checks += other.delta_checks;
        self.delta_steps_replayed += other.delta_steps_replayed;
        self.generated += other.generated;
        self.pops += other.pops;
        self.capped |= other.capped;
    }
}

/// The result of a top-k computation.
#[derive(Debug, Clone, Default)]
pub struct TopKResult {
    /// At most `k` candidate targets, in non-increasing score order.
    pub candidates: Vec<ScoredCandidate>,
    /// Work counters.
    pub stats: TopKStats,
}

impl TopKResult {
    /// The candidate targets without scores.
    pub fn targets(&self) -> Vec<&TargetTuple> {
        self.candidates.iter().map(|c| &c.target).collect()
    }

    /// True if `truth` appears among the returned candidates (the success
    /// criterion of Exp-2: "the target tuple was among the top-k candidates").
    pub fn contains(&self, truth: &TargetTuple) -> bool {
        self.candidates.iter().any(|c| &c.target == truth)
    }
}

/// Errors reported when preparing a top-k search.
#[derive(Debug, Clone)]
pub enum TopKError {
    /// The specification is not Church-Rosser; the framework requires the user
    /// to revise it first (Fig. 3).
    NotChurchRosser(relacc_core::Conflict),
}

impl fmt::Display for TopKError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopKError::NotChurchRosser(c) => {
                write!(f, "specification is not Church-Rosser: {c}")
            }
        }
    }
}

impl std::error::Error for TopKError {}

/// Pre-computed state shared by `RankJoinCT`, `TopKCT` and `TopKCTh`:
/// the grounding, the base-run checkpoint, the deduced target, the null
/// attributes `Z` and the scored candidate domains of each `Z` attribute.
pub struct CandidateSearch<'a> {
    /// The specification `S`.
    pub spec: &'a Specification,
    /// Grounding reused by every `check` call — owned when the search
    /// grounded the specification itself, borrowed when a caller (the
    /// interactive framework, the batch engine) already holds `Γ`.
    pub grounding: Cow<'a, Grounding>,
    /// The frozen terminal state of the base deduction, from which every
    /// `check` resumes.  Shared (`Arc`) so a session can keep it alive across
    /// rounds without re-running the base chase.
    checkpoint: Arc<ChaseCheckpoint>,
    /// The unique deduced target tuple `t_e` of `S`.
    pub deduced: TargetTuple,
    /// The attributes of `t_e` that are still null (the set `Z`).
    pub z: Vec<AttrId>,
    /// For each attribute of `Z` (parallel to `z`): its candidate values with
    /// their preference scores, in arbitrary order (the algorithms sort or heap
    /// them as they need).
    pub domains: Vec<Vec<Scored<Value>>>,
    /// The preference model `(k, p(·))`.
    pub preference: PreferenceModel,
}

impl<'a> CandidateSearch<'a> {
    /// Prepare a search: run `IsCR`, collect `Z` and the candidate domains.
    ///
    /// Fails with [`TopKError::NotChurchRosser`] when the specification is not
    /// Church-Rosser (step (1) of the framework must reject it first).
    pub fn prepare(
        spec: &'a Specification,
        preference: PreferenceModel,
    ) -> Result<Self, TopKError> {
        let orders = AccuracyOrders::new(&spec.ie);
        let grounding = ground(spec, &orders);
        Self::prepare_with(spec, Cow::Owned(grounding), preference)
    }

    /// Prepare a search over a pre-computed grounding of the same
    /// specification, borrowed from the caller (no copy).
    ///
    /// `Γ` is independent of the initial target template, so a caller that
    /// already grounded the specification — the interactive framework grounds
    /// once per session, the batch engine once per entity — hands the
    /// grounding over instead of paying `Instantiation` again.
    pub fn prepare_with_grounding(
        spec: &'a Specification,
        grounding: &'a Grounding,
        preference: PreferenceModel,
    ) -> Result<Self, TopKError> {
        Self::prepare_with(spec, Cow::Borrowed(grounding), preference)
    }

    /// Prepare a search over a pre-computed grounding **and** an existing
    /// base-run checkpoint of the same specification and template, skipping
    /// the base chase entirely.
    ///
    /// Used by `relacc_engine::EntitySession`, which keeps one checkpoint per
    /// entity across interaction rounds.  The checkpoint must have been
    /// captured over `grounding` with `spec.initial_target` as the template.
    pub fn prepare_with_checkpoint(
        spec: &'a Specification,
        grounding: &'a Grounding,
        checkpoint: Arc<ChaseCheckpoint>,
        preference: PreferenceModel,
    ) -> Result<Self, TopKError> {
        let deduced = checkpoint.target().clone();
        Ok(Self::assemble_search(
            spec,
            Cow::Borrowed(grounding),
            checkpoint,
            deduced,
            preference,
        ))
    }

    fn prepare_with(
        spec: &'a Specification,
        grounding: Cow<'a, Grounding>,
        preference: PreferenceModel,
    ) -> Result<Self, TopKError> {
        // the base deduction *is* the checkpoint capture: one chase run
        // yields both the deduced target and the resume state
        let run = ChaseCheckpoint::capture(&spec.ie, &spec.rules, &grounding, &spec.initial_target);
        let checkpoint = match run.outcome {
            CheckpointOutcome::Ready(checkpoint) => Arc::<ChaseCheckpoint>::from(checkpoint),
            CheckpointOutcome::NotChurchRosser(conflict) => {
                return Err(TopKError::NotChurchRosser(conflict))
            }
        };
        let deduced = checkpoint.target().clone();
        Ok(Self::assemble_search(
            spec, grounding, checkpoint, deduced, preference,
        ))
    }

    fn assemble_search(
        spec: &'a Specification,
        grounding: Cow<'a, Grounding>,
        checkpoint: Arc<ChaseCheckpoint>,
        deduced: TargetTuple,
        preference: PreferenceModel,
    ) -> Self {
        let z = deduced.null_attrs();
        let domains = z
            .iter()
            .map(|&a| {
                spec.candidate_domain(a)
                    .into_iter()
                    .map(|v| {
                        let w = preference.weight(a, &v);
                        Scored::new(w, v)
                    })
                    .collect()
            })
            .collect();
        CandidateSearch {
            spec,
            grounding,
            checkpoint,
            deduced,
            z,
            domains,
            preference,
        }
    }

    /// The base-run checkpoint every `check` resumes from.
    pub fn checkpoint(&self) -> &Arc<ChaseCheckpoint> {
        &self.checkpoint
    }

    /// Number of null attributes `m = |Z|`.
    pub fn arity(&self) -> usize {
        self.z.len()
    }

    /// Assemble a complete tuple from `Z`-values (parallel to `self.z`), using
    /// the deduced target for every other attribute.
    pub fn assemble(&self, z_values: &[Value]) -> TargetTuple {
        let mut t = self.deduced.clone();
        for (attr, v) in self.z.iter().zip(z_values.iter()) {
            t.set(*attr, v.clone());
        }
        t
    }

    /// The `check` procedure of Section 6.1: is `candidate` a candidate target
    /// of the specification?
    ///
    /// Resumes the chase from the base-run checkpoint, seeding only the
    /// candidate's `Z` values and replaying the steps they wake — `O(|affected
    /// steps|)` instead of the full chase's `O(|Γ|)`.  `scratch` carries the
    /// working copies and undo logs between checks; callers keep one scratch
    /// per search (or per worker) and thread it through every call.
    pub fn check(
        &self,
        candidate: &TargetTuple,
        scratch: &mut CheckScratch,
        stats: &mut TopKStats,
    ) -> bool {
        stats.checks += 1;
        if !candidate.is_complete() || !self.deduced.is_completed_by(candidate) {
            return false;
        }
        stats.delta_checks += 1;
        let verdict =
            self.checkpoint
                .resume_check(&self.spec.rules, &self.grounding, candidate, scratch);
        stats.delta_steps_replayed += verdict.steps_replayed;
        verdict.accepted
    }

    /// The from-scratch `check`: re-run the whole chase over the pre-computed
    /// grounding with `candidate` as the initial template.
    ///
    /// Semantically identical to [`CandidateSearch::check`] (property-tested
    /// in `tests/prop_checkpoint.rs`); kept as the reference implementation
    /// and as the baseline of the `topk_check` bench.
    pub fn check_full(&self, candidate: &TargetTuple, stats: &mut TopKStats) -> bool {
        stats.checks += 1;
        if !candidate.is_complete() || !self.deduced.is_completed_by(candidate) {
            return false;
        }
        stats.full_checks += 1;
        let run = chase_with_grounding(self.spec, &self.grounding, candidate);
        match run.outcome {
            IsCrOutcome::ChurchRosser(instance) => &instance.target == candidate,
            IsCrOutcome::NotChurchRosser(_) => false,
        }
    }

    /// Score of a complete candidate under the preference model.
    pub fn score(&self, candidate: &TargetTuple) -> f64 {
        self.preference.score(candidate)
    }

    /// The trivial result when `t_e` is already complete: the deduced target is
    /// the unique candidate.
    pub fn complete_result(&self, scratch: &mut CheckScratch) -> TopKResult {
        let mut stats = TopKStats::default();
        let mut candidates = Vec::new();
        if self.deduced.is_complete() && self.check(&self.deduced, scratch, &mut stats) {
            candidates.push(ScoredCandidate {
                score: self.score(&self.deduced),
                target: self.deduced.clone(),
            });
        }
        TopKResult { candidates, stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preference::PreferenceModel;
    use relacc_core::rules::{Predicate, RuleSet, TupleRule};
    use relacc_model::{CmpOp, DataType, EntityInstance, Schema};

    /// rnds is resolved by a currency rule; team/arena stay open.
    pub(crate) fn open_spec() -> Specification {
        let schema = Schema::builder("r")
            .attr("rnds", DataType::Int)
            .attr("team", DataType::Text)
            .attr("arena", DataType::Text)
            .build();
        let ie = EntityInstance::from_rows(
            schema.clone(),
            vec![
                vec![
                    Value::Int(16),
                    Value::text("Chicago"),
                    Value::text("Chicago Stadium"),
                ],
                vec![
                    Value::Int(27),
                    Value::text("Chicago Bulls"),
                    Value::text("United Center"),
                ],
                vec![
                    Value::Int(27),
                    Value::text("Chicago Bulls"),
                    Value::text("Regions Park"),
                ],
            ],
        )
        .unwrap();
        let rules = RuleSet::from_rules([TupleRule::new(
            "phi1",
            vec![Predicate::cmp_attrs(schema.expect_attr("rnds"), CmpOp::Lt)],
            schema.expect_attr("rnds"),
        )]);
        Specification::new(ie, rules)
    }

    #[test]
    fn prepare_collects_null_attributes_and_domains() {
        let spec = open_spec();
        let pref = PreferenceModel::occurrence(&spec, 2);
        let search = CandidateSearch::prepare(&spec, pref).unwrap();
        assert_eq!(search.deduced.value(AttrId(0)), &Value::Int(27));
        assert_eq!(search.z, vec![AttrId(1), AttrId(2)]);
        assert_eq!(search.arity(), 2);
        assert_eq!(search.domains[0].len(), 2); // Chicago, Chicago Bulls
        assert_eq!(search.domains[1].len(), 3);
        // occurrence weights flow into the domains
        let bulls = search.domains[0]
            .iter()
            .find(|s| s.item.same(&Value::text("Chicago Bulls")))
            .unwrap();
        assert_eq!(bulls.score, 2.0);
    }

    #[test]
    fn assemble_check_and_score() {
        let spec = open_spec();
        let pref = PreferenceModel::occurrence(&spec, 2);
        let search = CandidateSearch::prepare(&spec, pref).unwrap();
        let mut stats = TopKStats::default();
        let mut scratch = CheckScratch::new();
        let candidate =
            search.assemble(&[Value::text("Chicago Bulls"), Value::text("United Center")]);
        assert!(candidate.is_complete());
        assert!(search.check(&candidate, &mut scratch, &mut stats));
        assert_eq!(stats.checks, 1);
        assert_eq!(stats.delta_checks, 1);
        assert_eq!(stats.full_checks, 0);
        // rnds weight 2 (two 27s) + team 2 + arena 1
        assert_eq!(search.score(&candidate), 5.0);
        // a tuple disagreeing with the deduced rnds value is not a candidate
        let mut bad = candidate.clone();
        bad.set(AttrId(0), Value::Int(16));
        assert!(!search.check(&bad, &mut scratch, &mut stats));
        // an incomplete tuple is never a candidate
        let mut incomplete = candidate.clone();
        incomplete.set(AttrId(2), Value::Null);
        assert!(!search.check(&incomplete, &mut scratch, &mut stats));
        // the from-scratch reference check agrees on all three; like the
        // delta path it only counts checks that actually ran a chase
        let mut full_stats = TopKStats::default();
        assert!(search.check_full(&candidate, &mut full_stats));
        assert!(!search.check_full(&bad, &mut full_stats));
        assert!(!search.check_full(&incomplete, &mut full_stats));
        assert_eq!(full_stats.checks, 3);
        assert_eq!(full_stats.full_checks, 1);
        assert_eq!(full_stats.delta_checks, 0);
    }

    #[test]
    fn prepare_with_checkpoint_skips_the_base_chase() {
        let spec = open_spec();
        let orders = relacc_model::AccuracyOrders::new(&spec.ie);
        let grounding = relacc_core::chase::ground(&spec, &orders);
        let pref = PreferenceModel::occurrence(&spec, 2);
        let first =
            CandidateSearch::prepare_with_grounding(&spec, &grounding, pref.clone()).unwrap();
        let checkpoint = first.checkpoint().clone();
        let reused =
            CandidateSearch::prepare_with_checkpoint(&spec, &grounding, checkpoint, pref).unwrap();
        assert_eq!(first.deduced, reused.deduced);
        assert_eq!(first.z, reused.z);
        assert!(Arc::ptr_eq(first.checkpoint(), reused.checkpoint()));
        // checks through the reused search behave identically
        let mut stats = TopKStats::default();
        let mut scratch = CheckScratch::new();
        let candidate =
            reused.assemble(&[Value::text("Chicago Bulls"), Value::text("United Center")]);
        assert!(reused.check(&candidate, &mut scratch, &mut stats));
    }

    #[test]
    fn not_church_rosser_specs_are_rejected() {
        let schema = Schema::builder("r").attr("a", DataType::Int).build();
        let ie = EntityInstance::from_rows(
            schema.clone(),
            vec![vec![Value::Int(1)], vec![Value::Int(2)]],
        )
        .unwrap();
        let up = TupleRule::new(
            "up",
            vec![Predicate::cmp_attrs(AttrId(0), CmpOp::Lt)],
            AttrId(0),
        );
        let down = TupleRule::new(
            "down",
            vec![Predicate::cmp_attrs(AttrId(0), CmpOp::Gt)],
            AttrId(0),
        );
        let spec = Specification::new(ie, RuleSet::from_rules([up, down]));
        let pref = PreferenceModel::occurrence(&spec, 1);
        let err = CandidateSearch::prepare(&spec, pref).err().unwrap();
        assert!(matches!(err, TopKError::NotChurchRosser(_)));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn complete_deduction_yields_single_candidate() {
        let schema = Schema::builder("r").attr("a", DataType::Int).build();
        let ie = EntityInstance::from_rows(
            schema.clone(),
            vec![vec![Value::Int(1)], vec![Value::Int(2)]],
        )
        .unwrap();
        let rules = RuleSet::from_rules([TupleRule::new(
            "up",
            vec![Predicate::cmp_attrs(AttrId(0), CmpOp::Lt)],
            AttrId(0),
        )]);
        let spec = Specification::new(ie, rules);
        let pref = PreferenceModel::occurrence(&spec, 3);
        let search = CandidateSearch::prepare(&spec, pref).unwrap();
        assert!(search.z.is_empty());
        let result = search.complete_result(&mut CheckScratch::new());
        assert_eq!(result.candidates.len(), 1);
        assert_eq!(result.candidates[0].target.value(AttrId(0)), &Value::Int(2));
        assert!(result.contains(&result.candidates[0].target.clone()));
        assert_eq!(result.targets().len(), 1);
    }
}
