//! Shared machinery of the top-k candidate-target algorithms.
//!
//! A *candidate target* of a Church-Rosser specification `S` (Section 3) is a
//! complete tuple `t'_e` that (a) agrees with the deduced target `t_e` on every
//! non-null attribute, (b) takes its remaining values from the attribute
//! domains, and (c) is itself chase-consistent: the specification
//! `S' = (D0, Σ, Im, t'_e)` is Church-Rosser and deduces `t'_e`.
//! [`CandidateSearch::check`] implements condition (c) by re-running the chase
//! over the pre-computed grounding with `t'_e` as the initial template — the
//! `check` procedure of Section 6.1.

use crate::preference::PreferenceModel;
use relacc_core::chase::{chase_with_grounding, ground, Grounding};
use relacc_core::{IsCrOutcome, Specification};
use relacc_heap::Scored;
use relacc_model::{AccuracyOrders, AttrId, TargetTuple, Value};
use std::borrow::Cow;
use std::fmt;

/// A candidate target together with its preference score.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredCandidate {
    /// The complete candidate target tuple.
    pub target: TargetTuple,
    /// Its score `p({target})` under the preference model.
    pub score: f64,
}

/// Counters reported by every top-k algorithm.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TopKStats {
    /// Number of `check` invocations (each one is a full chase).
    pub checks: usize,
    /// Number of candidate tuples generated/considered before termination.
    pub generated: usize,
    /// Number of heap / ranked-list accesses (the instance-optimality metric of
    /// Proposition 7).
    pub pops: usize,
}

/// The result of a top-k computation.
#[derive(Debug, Clone, Default)]
pub struct TopKResult {
    /// At most `k` candidate targets, in non-increasing score order.
    pub candidates: Vec<ScoredCandidate>,
    /// Work counters.
    pub stats: TopKStats,
}

impl TopKResult {
    /// The candidate targets without scores.
    pub fn targets(&self) -> Vec<&TargetTuple> {
        self.candidates.iter().map(|c| &c.target).collect()
    }

    /// True if `truth` appears among the returned candidates (the success
    /// criterion of Exp-2: "the target tuple was among the top-k candidates").
    pub fn contains(&self, truth: &TargetTuple) -> bool {
        self.candidates.iter().any(|c| &c.target == truth)
    }
}

/// Errors reported when preparing a top-k search.
#[derive(Debug, Clone)]
pub enum TopKError {
    /// The specification is not Church-Rosser; the framework requires the user
    /// to revise it first (Fig. 3).
    NotChurchRosser(relacc_core::Conflict),
}

impl fmt::Display for TopKError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopKError::NotChurchRosser(c) => {
                write!(f, "specification is not Church-Rosser: {c}")
            }
        }
    }
}

impl std::error::Error for TopKError {}

/// Pre-computed state shared by `RankJoinCT`, `TopKCT` and `TopKCTh`:
/// the grounding, the deduced target, the null attributes `Z` and the scored
/// candidate domains of each `Z` attribute.
pub struct CandidateSearch<'a> {
    /// The specification `S`.
    pub spec: &'a Specification,
    /// Grounding reused by every `check` call — owned when the search
    /// grounded the specification itself, borrowed when a caller (the
    /// interactive framework, the batch engine) already holds `Γ`.
    pub grounding: Cow<'a, Grounding>,
    /// The unique deduced target tuple `t_e` of `S`.
    pub deduced: TargetTuple,
    /// The attributes of `t_e` that are still null (the set `Z`).
    pub z: Vec<AttrId>,
    /// For each attribute of `Z` (parallel to `z`): its candidate values with
    /// their preference scores, in arbitrary order (the algorithms sort or heap
    /// them as they need).
    pub domains: Vec<Vec<Scored<Value>>>,
    /// The preference model `(k, p(·))`.
    pub preference: PreferenceModel,
}

impl<'a> CandidateSearch<'a> {
    /// Prepare a search: run `IsCR`, collect `Z` and the candidate domains.
    ///
    /// Fails with [`TopKError::NotChurchRosser`] when the specification is not
    /// Church-Rosser (step (1) of the framework must reject it first).
    pub fn prepare(
        spec: &'a Specification,
        preference: PreferenceModel,
    ) -> Result<Self, TopKError> {
        let orders = AccuracyOrders::new(&spec.ie);
        let grounding = ground(spec, &orders);
        Self::prepare_with(spec, Cow::Owned(grounding), preference)
    }

    /// Prepare a search over a pre-computed grounding of the same
    /// specification, borrowed from the caller (no copy).
    ///
    /// `Γ` is independent of the initial target template, so a caller that
    /// already grounded the specification — the interactive framework grounds
    /// once per session, the batch engine once per entity — hands the
    /// grounding over instead of paying `Instantiation` again.
    pub fn prepare_with_grounding(
        spec: &'a Specification,
        grounding: &'a Grounding,
        preference: PreferenceModel,
    ) -> Result<Self, TopKError> {
        Self::prepare_with(spec, Cow::Borrowed(grounding), preference)
    }

    fn prepare_with(
        spec: &'a Specification,
        grounding: Cow<'a, Grounding>,
        preference: PreferenceModel,
    ) -> Result<Self, TopKError> {
        let run = chase_with_grounding(spec, &grounding, &spec.initial_target);
        let deduced = match run.outcome {
            IsCrOutcome::ChurchRosser(instance) => instance.target,
            IsCrOutcome::NotChurchRosser(conflict) => {
                return Err(TopKError::NotChurchRosser(conflict))
            }
        };
        let z = deduced.null_attrs();
        let domains = z
            .iter()
            .map(|&a| {
                spec.candidate_domain(a)
                    .into_iter()
                    .map(|v| {
                        let w = preference.weight(a, &v);
                        Scored::new(w, v)
                    })
                    .collect()
            })
            .collect();
        Ok(CandidateSearch {
            spec,
            grounding,
            deduced,
            z,
            domains,
            preference,
        })
    }

    /// Number of null attributes `m = |Z|`.
    pub fn arity(&self) -> usize {
        self.z.len()
    }

    /// Assemble a complete tuple from `Z`-values (parallel to `self.z`), using
    /// the deduced target for every other attribute.
    pub fn assemble(&self, z_values: &[Value]) -> TargetTuple {
        let mut t = self.deduced.clone();
        for (attr, v) in self.z.iter().zip(z_values.iter()) {
            t.set(*attr, v.clone());
        }
        t
    }

    /// The `check` procedure of Section 6.1: is `candidate` a candidate target
    /// of the specification?  Runs the chase with `candidate` as the initial
    /// target template over the pre-computed grounding.
    pub fn check(&self, candidate: &TargetTuple, stats: &mut TopKStats) -> bool {
        stats.checks += 1;
        if !candidate.is_complete() || !self.deduced.is_completed_by(candidate) {
            return false;
        }
        let run = chase_with_grounding(self.spec, &self.grounding, candidate);
        match run.outcome {
            IsCrOutcome::ChurchRosser(instance) => &instance.target == candidate,
            IsCrOutcome::NotChurchRosser(_) => false,
        }
    }

    /// Score of a complete candidate under the preference model.
    pub fn score(&self, candidate: &TargetTuple) -> f64 {
        self.preference.score(candidate)
    }

    /// The trivial result when `t_e` is already complete: the deduced target is
    /// the unique candidate.
    pub fn complete_result(&self) -> TopKResult {
        let mut stats = TopKStats::default();
        let mut candidates = Vec::new();
        if self.deduced.is_complete() && self.check(&self.deduced, &mut stats) {
            candidates.push(ScoredCandidate {
                score: self.score(&self.deduced),
                target: self.deduced.clone(),
            });
        }
        TopKResult { candidates, stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preference::PreferenceModel;
    use relacc_core::rules::{Predicate, RuleSet, TupleRule};
    use relacc_model::{CmpOp, DataType, EntityInstance, Schema};

    /// rnds is resolved by a currency rule; team/arena stay open.
    pub(crate) fn open_spec() -> Specification {
        let schema = Schema::builder("r")
            .attr("rnds", DataType::Int)
            .attr("team", DataType::Text)
            .attr("arena", DataType::Text)
            .build();
        let ie = EntityInstance::from_rows(
            schema.clone(),
            vec![
                vec![
                    Value::Int(16),
                    Value::text("Chicago"),
                    Value::text("Chicago Stadium"),
                ],
                vec![
                    Value::Int(27),
                    Value::text("Chicago Bulls"),
                    Value::text("United Center"),
                ],
                vec![
                    Value::Int(27),
                    Value::text("Chicago Bulls"),
                    Value::text("Regions Park"),
                ],
            ],
        )
        .unwrap();
        let rules = RuleSet::from_rules([TupleRule::new(
            "phi1",
            vec![Predicate::cmp_attrs(schema.expect_attr("rnds"), CmpOp::Lt)],
            schema.expect_attr("rnds"),
        )]);
        Specification::new(ie, rules)
    }

    #[test]
    fn prepare_collects_null_attributes_and_domains() {
        let spec = open_spec();
        let pref = PreferenceModel::occurrence(&spec, 2);
        let search = CandidateSearch::prepare(&spec, pref).unwrap();
        assert_eq!(search.deduced.value(AttrId(0)), &Value::Int(27));
        assert_eq!(search.z, vec![AttrId(1), AttrId(2)]);
        assert_eq!(search.arity(), 2);
        assert_eq!(search.domains[0].len(), 2); // Chicago, Chicago Bulls
        assert_eq!(search.domains[1].len(), 3);
        // occurrence weights flow into the domains
        let bulls = search.domains[0]
            .iter()
            .find(|s| s.item.same(&Value::text("Chicago Bulls")))
            .unwrap();
        assert_eq!(bulls.score, 2.0);
    }

    #[test]
    fn assemble_check_and_score() {
        let spec = open_spec();
        let pref = PreferenceModel::occurrence(&spec, 2);
        let search = CandidateSearch::prepare(&spec, pref).unwrap();
        let mut stats = TopKStats::default();
        let candidate =
            search.assemble(&[Value::text("Chicago Bulls"), Value::text("United Center")]);
        assert!(candidate.is_complete());
        assert!(search.check(&candidate, &mut stats));
        assert_eq!(stats.checks, 1);
        // rnds weight 2 (two 27s) + team 2 + arena 1
        assert_eq!(search.score(&candidate), 5.0);
        // a tuple disagreeing with the deduced rnds value is not a candidate
        let mut bad = candidate.clone();
        bad.set(AttrId(0), Value::Int(16));
        assert!(!search.check(&bad, &mut stats));
        // an incomplete tuple is never a candidate
        let mut incomplete = candidate.clone();
        incomplete.set(AttrId(2), Value::Null);
        assert!(!search.check(&incomplete, &mut stats));
    }

    #[test]
    fn not_church_rosser_specs_are_rejected() {
        let schema = Schema::builder("r").attr("a", DataType::Int).build();
        let ie = EntityInstance::from_rows(
            schema.clone(),
            vec![vec![Value::Int(1)], vec![Value::Int(2)]],
        )
        .unwrap();
        let up = TupleRule::new(
            "up",
            vec![Predicate::cmp_attrs(AttrId(0), CmpOp::Lt)],
            AttrId(0),
        );
        let down = TupleRule::new(
            "down",
            vec![Predicate::cmp_attrs(AttrId(0), CmpOp::Gt)],
            AttrId(0),
        );
        let spec = Specification::new(ie, RuleSet::from_rules([up, down]));
        let pref = PreferenceModel::occurrence(&spec, 1);
        let err = CandidateSearch::prepare(&spec, pref).err().unwrap();
        assert!(matches!(err, TopKError::NotChurchRosser(_)));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn complete_deduction_yields_single_candidate() {
        let schema = Schema::builder("r").attr("a", DataType::Int).build();
        let ie = EntityInstance::from_rows(
            schema.clone(),
            vec![vec![Value::Int(1)], vec![Value::Int(2)]],
        )
        .unwrap();
        let rules = RuleSet::from_rules([TupleRule::new(
            "up",
            vec![Predicate::cmp_attrs(AttrId(0), CmpOp::Lt)],
            AttrId(0),
        )]);
        let spec = Specification::new(ie, rules);
        let pref = PreferenceModel::occurrence(&spec, 3);
        let search = CandidateSearch::prepare(&spec, pref).unwrap();
        assert!(search.z.is_empty());
        let result = search.complete_result();
        assert_eq!(result.candidates.len(), 1);
        assert_eq!(result.candidates[0].target.value(AttrId(0)), &Value::Int(2));
        assert!(result.contains(&result.candidates[0].target.clone()));
        assert_eq!(result.targets().len(), 1);
    }
}
