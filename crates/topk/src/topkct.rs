//! Algorithm `TopKCT` (Fig. 5 of the paper): top-k candidate targets from
//! per-attribute value heaps, without requiring ranked lists.
//!
//! The key idea (Section 6.2): starting from the highest-scored assignment of
//! the null attributes `Z`, the next-best candidate always differs from some
//! already-generated candidate in exactly one attribute.  The frontier is kept
//! in a priority queue (our pairing heap stands in for the Brodal queue), the
//! per-attribute domains live in heaps `H_i` popped lazily into buffers `B_i`,
//! and a seen-set prevents duplicate generation.  Every popped tuple is
//! verified with `check` (a chase over the pre-computed grounding) before being
//! emitted.

use crate::candidates::{CandidateSearch, ScoredCandidate, TopKResult, TopKStats};
use relacc_core::chase::CheckScratch;
use relacc_heap::{F64Key, PairingHeap, Scored, ScoredHeap};
use relacc_model::Value;
use std::collections::HashSet;

/// A frontier object: an assignment of the `Z` attributes, the buffer indices
/// it was generated from, and its score.
#[derive(Debug, Clone)]
struct FrontierObject {
    z_values: Vec<Value>,
    positions: Vec<usize>,
    score: f64,
}

/// Safety valve: the frontier expansion is exact but, when (almost) no
/// complete assignment passes `check`, it degenerates into enumerating the
/// whole cross-product of the domains — exponential in `|Z|`.  Mirroring the
/// cap `RankJoinCT` already applies to its join buffer, the frontier stops
/// *expanding* after this many generated assignments (already-queued ones are
/// still popped and checked), so one degenerate entity cannot exhaust memory
/// or wall-clock.  Far above anything the normal workloads reach (the
/// largest Med benchmark entity generates ~1.5k); results are unaffected
/// there.
const MAX_GENERATED: usize = 100_000;

/// Run `TopKCT` on a prepared candidate search, returning at most
/// `search.preference.k` candidate targets in non-increasing score order.
pub fn topkct(search: &CandidateSearch<'_>) -> TopKResult {
    topkct_with(search, &mut CheckScratch::new())
}

/// [`fn@topkct`] with a caller-provided check scratch, so batch and session
/// callers reuse the resumed-check buffers across invocations.
pub fn topkct_with(search: &CandidateSearch<'_>, scratch: &mut CheckScratch) -> TopKResult {
    topkct_capped(search, scratch, MAX_GENERATED)
}

fn topkct_capped(
    search: &CandidateSearch<'_>,
    scratch: &mut CheckScratch,
    max_generated: usize,
) -> TopKResult {
    let k = search.preference.k;
    let mut stats = TopKStats::default();
    if search.z.is_empty() {
        return search.complete_result(scratch);
    }
    let m = search.arity();

    // The heaps H_1..H_m, built in linear time from the candidate domains.
    let mut heaps: Vec<ScoredHeap<Value>> = search
        .domains
        .iter()
        .map(|d| ScoredHeap::heapify(d.clone()))
        .collect();
    // The buffers B_1..B_m of already-popped values.
    let mut buffers: Vec<Vec<Scored<Value>>> = Vec::with_capacity(m);
    for heap in &mut heaps {
        match heap.pop() {
            Some(top) => buffers.push(vec![top]),
            None => {
                // an attribute with an empty candidate domain admits no
                // complete candidate target at all
                stats.pops = heaps.iter().map(ScoredHeap::pop_count).sum();
                return TopKResult {
                    candidates: Vec::new(),
                    stats,
                };
            }
        }
    }

    let initial_values: Vec<Value> = buffers.iter().map(|b| b[0].item.clone()).collect();
    let initial = FrontierObject {
        score: search.score(&search.assemble(&initial_values)),
        z_values: initial_values,
        positions: vec![0; m],
    };

    let mut queue: PairingHeap<F64Key, FrontierObject> = PairingHeap::new();
    let mut seen: HashSet<Vec<Value>> = HashSet::new();
    seen.insert(initial.z_values.clone());
    queue.push(F64Key(initial.score), initial);
    stats.generated += 1;

    let mut candidates: Vec<ScoredCandidate> = Vec::new();
    while candidates.len() < k {
        let Some((_, object)) = queue.pop() else {
            break;
        };
        let candidate = search.assemble(&object.z_values);
        if search.check(&candidate, scratch, &mut stats) {
            candidates.push(ScoredCandidate {
                score: object.score,
                target: candidate,
            });
        }
        // Expand: bump each attribute to its next-best value (unless the
        // safety valve tripped — then only drain what is already queued).
        if stats.generated >= max_generated {
            stats.capped = true;
            continue;
        }
        for i in 0..m {
            let next_pos = object.positions[i] + 1;
            if buffers[i].len() <= next_pos {
                match heaps[i].pop() {
                    Some(entry) => buffers[i].push(entry),
                    None => continue, // domain exhausted in this direction
                }
            }
            let old = &buffers[i][object.positions[i]];
            let new = &buffers[i][next_pos];
            let mut z_values = object.z_values.clone();
            z_values[i] = new.item.clone();
            if seen.contains(&z_values) {
                continue;
            }
            let score = object.score - old.score + new.score;
            seen.insert(z_values.clone());
            queue.push(
                F64Key(score),
                FrontierObject {
                    z_values,
                    positions: {
                        let mut p = object.positions.clone();
                        p[i] = next_pos;
                        p
                    },
                    score,
                },
            );
            stats.generated += 1;
        }
    }

    stats.pops = heaps.iter().map(ScoredHeap::pop_count).sum();
    TopKResult { candidates, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::CandidateSearch;
    use crate::preference::PreferenceModel;
    use relacc_core::rules::{Predicate, RuleSet, TupleRule};
    use relacc_core::Specification;
    use relacc_model::{AttrId, CmpOp, DataType, EntityInstance, Schema};

    fn open_spec() -> Specification {
        let schema = Schema::builder("r")
            .attr("rnds", DataType::Int)
            .attr("team", DataType::Text)
            .attr("arena", DataType::Text)
            .build();
        let ie = EntityInstance::from_rows(
            schema.clone(),
            vec![
                vec![
                    Value::Int(16),
                    Value::text("Chicago"),
                    Value::text("Chicago Stadium"),
                ],
                vec![
                    Value::Int(27),
                    Value::text("Chicago Bulls"),
                    Value::text("United Center"),
                ],
                vec![
                    Value::Int(27),
                    Value::text("Chicago Bulls"),
                    Value::text("Regions Park"),
                ],
            ],
        )
        .unwrap();
        let rules = RuleSet::from_rules([TupleRule::new(
            "phi1",
            vec![Predicate::cmp_attrs(schema.expect_attr("rnds"), CmpOp::Lt)],
            schema.expect_attr("rnds"),
        )]);
        Specification::new(ie, rules)
    }

    #[test]
    fn returns_k_candidates_in_score_order() {
        let spec = open_spec();
        let search =
            CandidateSearch::prepare(&spec, PreferenceModel::occurrence(&spec, 3)).unwrap();
        let result = topkct(&search);
        assert_eq!(result.candidates.len(), 3);
        // highest scored candidate: team=Chicago Bulls (2), arena free (1 each)
        assert_eq!(
            result.candidates[0].target.value(AttrId(1)),
            &Value::text("Chicago Bulls")
        );
        for w in result.candidates.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
        // every candidate passes check and completes the deduced target
        assert!(result
            .candidates
            .iter()
            .all(|c| c.target.value(AttrId(0)) == &Value::Int(27)));
        assert!(result.stats.checks >= 3);
        assert!(result.stats.pops >= 2);
        assert!(result.stats.generated >= 3);
    }

    #[test]
    fn exhausts_search_space_when_k_is_large() {
        let spec = open_spec();
        let search =
            CandidateSearch::prepare(&spec, PreferenceModel::occurrence(&spec, 100)).unwrap();
        let result = topkct(&search);
        // 2 team values × 3 arena values = 6 complete assignments
        assert_eq!(result.candidates.len(), 6);
        let mut unique: Vec<_> = result.candidates.iter().map(|c| c.target.clone()).collect();
        unique.dedup();
        assert_eq!(unique.len(), 6);
    }

    #[test]
    fn frontier_cap_bounds_degenerate_searches() {
        // A 12×12 assignment space with k larger than the space: the valve
        // (exercised here with an artificially small cap) must stop the
        // frontier from expanding while still draining — and checking —
        // everything already queued.
        let schema = Schema::builder("r")
            .attr("a", DataType::Int)
            .attr("x", DataType::Text)
            .attr("y", DataType::Text)
            .build();
        let rows: Vec<Vec<Value>> = (0..12)
            .map(|i| {
                vec![
                    Value::Int(i % 3),
                    Value::text(format!("x{i}")),
                    Value::text(format!("y{i}")),
                ]
            })
            .collect();
        let ie = EntityInstance::from_rows(schema.clone(), rows).unwrap();
        let rules = RuleSet::from_rules([TupleRule::new(
            "cur",
            vec![Predicate::cmp_attrs(AttrId(0), CmpOp::Lt)],
            AttrId(0),
        )]);
        let spec = Specification::new(ie, rules);
        let search =
            CandidateSearch::prepare(&spec, PreferenceModel::occurrence(&spec, 1000)).unwrap();
        assert_eq!(search.z, vec![AttrId(1), AttrId(2)]);
        let mut scratch = relacc_core::chase::CheckScratch::new();
        let capped = topkct_capped(&search, &mut scratch, 10);
        // the cap stops expansion: some of the 12×12 assignments are never
        // generated, but everything queued was drained and checked — and the
        // truncation is observable on the stats
        assert!(capped.stats.capped);
        assert!(capped.stats.generated <= 10 + search.arity());
        assert!(capped.candidates.len() <= capped.stats.generated);
        assert!(!capped.candidates.is_empty());
        // the uncapped run on the same spec finds the full cross-product
        let full = topkct(&search);
        assert!(!full.stats.capped);
        assert_eq!(full.candidates.len(), 144);
        assert!(full.stats.generated > capped.stats.generated);
    }

    #[test]
    fn k_one_returns_the_best_assignment() {
        let spec = open_spec();
        let search =
            CandidateSearch::prepare(&spec, PreferenceModel::occurrence(&spec, 1)).unwrap();
        let result = topkct(&search);
        assert_eq!(result.candidates.len(), 1);
        let best = &result.candidates[0];
        assert_eq!(best.target.value(AttrId(1)), &Value::text("Chicago Bulls"));
        assert_eq!(best.score, 2.0 + 2.0 + 1.0);
    }
}
