//! # relacc-topk
//!
//! Top-k candidate-target computation for *"Determining the Relative Accuracy
//! of Attributes"* (SIGMOD 2013), Section 6:
//!
//! * [`PreferenceModel`] — the preference model `(k, p(·))` with occurrence
//!   counts, uniform or externally supplied weights (e.g. truth-discovery
//!   posteriors);
//! * [`CandidateSearch`] — shared state: the grounding (reused by every
//!   `check`), the deduced target, the null attributes `Z` and the scored
//!   candidate domains;
//! * [`rank_join_ct`] — `RankJoinCT`, the rank-join-based exact algorithm;
//! * [`mod@topkct`] — `TopKCT`, the priority-queue exact algorithm that needs no
//!   ranked lists and is instance-optimal in heap pops;
//! * [`mod@topkcth`] — `TopKCTh`, the PTIME heuristic.
//!
//! All three return a [`TopKResult`] whose candidates pass the candidate-target
//! `check`.  Checks are **checkpointed**: the base deduction's terminal state
//! is captured once ([`relacc_core::chase::ChaseCheckpoint`]) and every check
//! resumes from it, replaying only the steps the candidate's `Z` values wake.
//! The `*_with` variants take a caller-provided
//! [`CheckScratch`] so sessions and batch workers
//! reuse the resumed-check buffers across invocations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod candidates;
pub mod preference;
pub mod rank_join;
pub mod topkct;
pub mod topkcth;

pub use candidates::{CandidateSearch, ScoredCandidate, TopKError, TopKResult, TopKStats};
pub use preference::{PreferenceModel, ScoreSource};
pub use rank_join::{rank_join_ct, rank_join_ct_with};
pub use relacc_core::chase::CheckScratch;
pub use topkct::{topkct, topkct_with};
pub use topkcth::{topkcth, topkcth_with};
