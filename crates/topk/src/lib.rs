//! # relacc-topk
//!
//! Top-k candidate-target computation for *"Determining the Relative Accuracy
//! of Attributes"* (SIGMOD 2013), Section 6:
//!
//! * [`PreferenceModel`] — the preference model `(k, p(·))` with occurrence
//!   counts, uniform or externally supplied weights (e.g. truth-discovery
//!   posteriors);
//! * [`CandidateSearch`] — shared state: the grounding (reused by every
//!   `check`), the deduced target, the null attributes `Z` and the scored
//!   candidate domains;
//! * [`rank_join_ct`] — `RankJoinCT`, the rank-join-based exact algorithm;
//! * [`topkct`] — `TopKCT`, the priority-queue exact algorithm that needs no
//!   ranked lists and is instance-optimal in heap pops;
//! * [`topkcth`] — `TopKCTh`, the PTIME heuristic.
//!
//! All three return a [`TopKResult`] whose candidates pass the candidate-target
//! `check` (a chase with the candidate as initial target template).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod candidates;
pub mod preference;
pub mod rank_join;
pub mod topkct;
pub mod topkcth;

pub use candidates::{CandidateSearch, ScoredCandidate, TopKError, TopKResult, TopKStats};
pub use preference::{PreferenceModel, ScoreSource};
pub use rank_join::rank_join_ct;
pub use topkct::topkct;
pub use topkcth::topkcth;
