//! The preference model `(k, p(·))` of Section 3.
//!
//! Every value `v` of a domain `dom(A_i)` carries a score `w_{A_i}(v)`; the
//! score of a set of candidate targets is the sum of its tuples' attribute
//! scores.  The paper obtains weights from three sources, all supported here:
//!
//! * **occurrence counts** in the entity instance (the default, "derived by
//!   counting the occurrences of v in the A_i column");
//! * **user-supplied confidences**;
//! * **probabilities produced by truth-discovery algorithms** (Exp-5 plugs the
//!   posteriors of `copyCEF` in here).
//!
//! Values outside the active domain share a single default weight, matching
//! the paper's treatment of infinite domains.

use relacc_core::Specification;
use relacc_model::{AttrId, TargetTuple, Value};
use std::collections::HashMap;

/// Where attribute-value weights come from.
#[derive(Debug, Clone, Default)]
pub enum ScoreSource {
    /// `w_{A_i}(v)` = number of occurrences of `v` in column `A_i` of `Ie`.
    #[default]
    OccurrenceCounts,
    /// Every value scores the same (ties broken by domain order downstream).
    Uniform,
    /// Explicit per-attribute, per-value weights (user confidence or
    /// truth-discovery posteriors).  Missing entries fall back to the default
    /// weight.
    Explicit(HashMap<AttrId, HashMap<Value, f64>>),
}

/// The preference model `(k, p(·))`.
#[derive(Debug, Clone)]
pub struct PreferenceModel {
    /// How many candidate targets to return.
    pub k: usize,
    weights: HashMap<AttrId, HashMap<Value, f64>>,
    default_weight: f64,
}

impl PreferenceModel {
    /// Build a preference model for a specification.
    pub fn new(spec: &Specification, k: usize, source: ScoreSource) -> Self {
        let mut weights: HashMap<AttrId, HashMap<Value, f64>> = HashMap::new();
        match source {
            ScoreSource::OccurrenceCounts => {
                for attr in spec.ie.schema().attr_ids() {
                    let counts = spec.ie.value_counts(attr);
                    let map = counts
                        .into_iter()
                        .map(|(v, c)| (v, c as f64))
                        .collect::<HashMap<_, _>>();
                    weights.insert(attr, map);
                }
            }
            ScoreSource::Uniform => {}
            ScoreSource::Explicit(map) => weights = map,
        }
        PreferenceModel {
            k,
            weights,
            default_weight: 0.0,
        }
    }

    /// The occurrence-count model (the paper's default preference).
    pub fn occurrence(spec: &Specification, k: usize) -> Self {
        PreferenceModel::new(spec, k, ScoreSource::OccurrenceCounts)
    }

    /// Override the weight assigned to values with no explicit entry.
    pub fn with_default_weight(mut self, w: f64) -> Self {
        self.default_weight = w;
        self
    }

    /// Override (or add) the weight of one attribute value.
    pub fn set_weight(&mut self, attr: AttrId, value: Value, weight: f64) {
        self.weights.entry(attr).or_default().insert(value, weight);
    }

    /// `w_{A_i}(v)`.
    pub fn weight(&self, attr: AttrId, value: &Value) -> f64 {
        self.weights
            .get(&attr)
            .and_then(|m| {
                // `Value` equality crosses numeric widths only through `same`,
                // so fall back to a linear probe when the exact key is absent.
                m.get(value)
                    .copied()
                    .or_else(|| m.iter().find(|(k, _)| k.same(value)).map(|(_, w)| *w))
            })
            .unwrap_or(self.default_weight)
    }

    /// The score `p({t})` of a single candidate target: the sum of its
    /// attribute-value weights.
    pub fn score(&self, target: &TargetTuple) -> f64 {
        (0..target.arity())
            .map(|i| {
                let a = AttrId(i);
                let v = target.value(a);
                if v.is_null() {
                    0.0
                } else {
                    self.weight(a, v)
                }
            })
            .sum()
    }

    /// The score `p(Te)` of a set of candidate targets.
    pub fn score_set<'a, I>(&self, targets: I) -> f64
    where
        I: IntoIterator<Item = &'a TargetTuple>,
    {
        targets.into_iter().map(|t| self.score(t)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relacc_core::RuleSet;
    use relacc_model::{DataType, EntityInstance, Schema};

    fn spec() -> Specification {
        let schema = Schema::builder("r")
            .attr("team", DataType::Text)
            .attr("pts", DataType::Int)
            .build();
        let ie = EntityInstance::from_rows(
            schema,
            vec![
                vec![Value::text("bulls"), Value::Int(1)],
                vec![Value::text("bulls"), Value::Int(2)],
                vec![Value::text("barons"), Value::Null],
            ],
        )
        .unwrap();
        Specification::new(ie, RuleSet::new())
    }

    #[test]
    fn occurrence_counts_are_weights() {
        let s = spec();
        let p = PreferenceModel::occurrence(&s, 5);
        assert_eq!(p.k, 5);
        assert_eq!(p.weight(AttrId(0), &Value::text("bulls")), 2.0);
        assert_eq!(p.weight(AttrId(0), &Value::text("barons")), 1.0);
        assert_eq!(p.weight(AttrId(0), &Value::text("unknown")), 0.0);
        assert_eq!(p.weight(AttrId(1), &Value::Int(1)), 1.0);
    }

    #[test]
    fn score_sums_over_attributes_ignoring_nulls() {
        let s = spec();
        let p = PreferenceModel::occurrence(&s, 1);
        let t = TargetTuple::from_values(vec![Value::text("bulls"), Value::Int(2)]);
        assert_eq!(p.score(&t), 3.0);
        let partial = TargetTuple::from_values(vec![Value::text("bulls"), Value::Null]);
        assert_eq!(p.score(&partial), 2.0);
        let set_score = p.score_set([&t, &partial]);
        assert_eq!(set_score, 5.0);
    }

    #[test]
    fn explicit_weights_and_default() {
        let s = spec();
        let mut weights: HashMap<AttrId, HashMap<Value, f64>> = HashMap::new();
        weights
            .entry(AttrId(0))
            .or_default()
            .insert(Value::text("barons"), 0.9);
        let p =
            PreferenceModel::new(&s, 3, ScoreSource::Explicit(weights)).with_default_weight(0.1);
        assert_eq!(p.weight(AttrId(0), &Value::text("barons")), 0.9);
        assert_eq!(p.weight(AttrId(0), &Value::text("bulls")), 0.1);
        assert_eq!(p.weight(AttrId(1), &Value::Int(7)), 0.1);
    }

    #[test]
    fn uniform_source_and_set_weight() {
        let s = spec();
        let mut p = PreferenceModel::new(&s, 2, ScoreSource::Uniform);
        assert_eq!(p.weight(AttrId(0), &Value::text("bulls")), 0.0);
        p.set_weight(AttrId(0), Value::text("bulls"), 4.0);
        assert_eq!(p.weight(AttrId(0), &Value::text("bulls")), 4.0);
        // numeric width crossing via `same`
        p.set_weight(AttrId(1), Value::Float(2.0), 1.5);
        assert_eq!(p.weight(AttrId(1), &Value::Int(2)), 1.5);
    }
}
