//! Algorithm `TopKCTh` (Section 6.3): a PTIME heuristic for top-k candidate
//! targets.
//!
//! `TopKCTh` first generates `k` tuples exactly like `TopKCT` but *without* the
//! expensive `check` step, then greedily revises each tuple with values from
//! the candidate domains until it passes `check`.  The returned tuples are
//! guaranteed to be candidate targets, but they need not have the globally
//! highest scores — the trade-off between cost and quality the paper describes.

use crate::candidates::{CandidateSearch, ScoredCandidate, TopKResult, TopKStats};
use relacc_core::chase::CheckScratch;
use relacc_heap::{F64Key, PairingHeap, Scored, ScoredHeap};
use relacc_model::{TargetTuple, Value};
use std::collections::HashSet;

/// Generate the `k` highest-scored complete assignments of the null attributes
/// without checking them (the first phase of `TopKCTh`).
fn unchecked_top_k(
    search: &CandidateSearch<'_>,
    k: usize,
    stats: &mut TopKStats,
) -> Vec<Vec<Value>> {
    let m = search.arity();
    let mut heaps: Vec<ScoredHeap<Value>> = search
        .domains
        .iter()
        .map(|d| ScoredHeap::heapify(d.clone()))
        .collect();
    let mut buffers: Vec<Vec<Scored<Value>>> = Vec::with_capacity(m);
    for heap in &mut heaps {
        match heap.pop() {
            Some(top) => buffers.push(vec![top]),
            None => return Vec::new(),
        }
    }
    let initial: Vec<Value> = buffers.iter().map(|b| b[0].item.clone()).collect();
    let initial_score: f64 = buffers.iter().map(|b| b[0].score).sum();

    let mut queue: PairingHeap<F64Key, (Vec<Value>, Vec<usize>)> = PairingHeap::new();
    let mut seen: HashSet<Vec<Value>> = HashSet::new();
    seen.insert(initial.clone());
    queue.push(F64Key(initial_score), (initial, vec![0; m]));

    let mut out = Vec::with_capacity(k);
    while out.len() < k {
        let Some((_, (z_values, positions))) = queue.pop() else {
            break;
        };
        stats.generated += 1;
        out.push(z_values.clone());
        for i in 0..m {
            let next_pos = positions[i] + 1;
            if buffers[i].len() <= next_pos {
                match heaps[i].pop() {
                    Some(entry) => buffers[i].push(entry),
                    None => continue,
                }
            }
            let new = &buffers[i][next_pos];
            let mut z2 = z_values.clone();
            z2[i] = new.item.clone();
            if seen.contains(&z2) {
                continue;
            }
            seen.insert(z2.clone());
            let mut p2 = positions.clone();
            p2[i] = next_pos;
            // Recompute the sum from the buffers rather than deriving it
            // incrementally (`parent - old + new`): the incremental form
            // accumulates float error along deep successor chains, so
            // assignments with equal (or strictly ordered) exact sums can be
            // popped out of order.  `m` is small, so the resummation is cheap.
            let s2: f64 = p2
                .iter()
                .enumerate()
                .map(|(j, &p)| buffers[j][p].score)
                .sum();
            queue.push(F64Key(s2), (z2, p2));
        }
    }
    stats.pops += heaps.iter().map(ScoredHeap::pop_count).sum::<usize>();
    out
}

/// Greedily revise an assignment until it passes `check`, trying domain values
/// in descending score order, one attribute at a time.  Returns `None` when no
/// revision reachable by the greedy walk is a candidate target.
fn greedy_repair(
    search: &CandidateSearch<'_>,
    z_values: &[Value],
    scratch: &mut CheckScratch,
    stats: &mut TopKStats,
) -> Option<TargetTuple> {
    let candidate = search.assemble(z_values);
    if search.check(&candidate, scratch, stats) {
        return Some(candidate);
    }
    let m = search.arity();
    let mut current = z_values.to_vec();
    // Up to m passes: in each pass try to fix one attribute by substituting
    // every alternative value (best score first).
    for _ in 0..m {
        let mut improved = false;
        for i in 0..m {
            let mut alternatives: Vec<&Scored<Value>> = search.domains[i].iter().collect();
            alternatives.sort_by(|a, b| b.score.total_cmp(&a.score));
            for alt in alternatives {
                if alt.item.same(&current[i]) {
                    continue;
                }
                let mut revised = current.clone();
                revised[i] = alt.item.clone();
                let candidate = search.assemble(&revised);
                if search.check(&candidate, scratch, stats) {
                    return Some(candidate);
                }
            }
            // no single substitution of attribute i fixed it; greedily move to
            // the overall best-scored value for i and keep revising the rest
            if let Some(best) = search.domains[i]
                .iter()
                .max_by(|a, b| a.score.total_cmp(&b.score))
            {
                if !best.item.same(&current[i]) {
                    current[i] = best.item.clone();
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }
    None
}

/// Run `TopKCTh` on a prepared candidate search.
pub fn topkcth(search: &CandidateSearch<'_>) -> TopKResult {
    topkcth_with(search, &mut CheckScratch::new())
}

/// [`fn@topkcth`] with a caller-provided check scratch (see
/// [`crate::topkct::topkct_with`]).
pub fn topkcth_with(search: &CandidateSearch<'_>, scratch: &mut CheckScratch) -> TopKResult {
    let k = search.preference.k;
    let mut stats = TopKStats::default();
    if search.z.is_empty() {
        return search.complete_result(scratch);
    }
    let assignments = unchecked_top_k(search, k, &mut stats);
    let mut candidates: Vec<ScoredCandidate> = Vec::new();
    let mut seen: HashSet<Vec<Value>> = HashSet::new();
    for z_values in assignments {
        if candidates.len() >= k {
            break;
        }
        if let Some(target) = greedy_repair(search, &z_values, scratch, &mut stats) {
            let key: Vec<Value> = target.values().to_vec();
            if seen.insert(key) {
                candidates.push(ScoredCandidate {
                    score: search.score(&target),
                    target,
                });
            }
        }
    }
    candidates.sort_by(|a, b| b.score.total_cmp(&a.score));
    candidates.truncate(k);
    TopKResult { candidates, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::CandidateSearch;
    use crate::preference::PreferenceModel;
    use crate::topkct::topkct;
    use relacc_core::rules::{Predicate, RuleSet, TupleRule};
    use relacc_core::Specification;
    use relacc_model::{CmpOp, DataType, EntityInstance, Schema};

    fn open_spec() -> Specification {
        let schema = Schema::builder("r")
            .attr("rnds", DataType::Int)
            .attr("team", DataType::Text)
            .attr("arena", DataType::Text)
            .build();
        let ie = EntityInstance::from_rows(
            schema.clone(),
            vec![
                vec![
                    Value::Int(16),
                    Value::text("Chicago"),
                    Value::text("Chicago Stadium"),
                ],
                vec![
                    Value::Int(27),
                    Value::text("Chicago Bulls"),
                    Value::text("United Center"),
                ],
                vec![
                    Value::Int(27),
                    Value::text("Chicago Bulls"),
                    Value::text("Regions Park"),
                ],
            ],
        )
        .unwrap();
        let rules = RuleSet::from_rules([TupleRule::new(
            "phi1",
            vec![Predicate::cmp_attrs(schema.expect_attr("rnds"), CmpOp::Lt)],
            schema.expect_attr("rnds"),
        )]);
        Specification::new(ie, rules)
    }

    #[test]
    fn heuristic_candidates_are_valid_and_complete() {
        let spec = open_spec();
        let search =
            CandidateSearch::prepare(&spec, PreferenceModel::occurrence(&spec, 3)).unwrap();
        let result = topkcth(&search);
        assert!(!result.candidates.is_empty());
        assert!(result.candidates.len() <= 3);
        let mut stats = TopKStats::default();
        let mut scratch = CheckScratch::new();
        for c in &result.candidates {
            assert!(c.target.is_complete());
            assert!(search.check(&c.target, &mut scratch, &mut stats));
        }
        for w in result.candidates.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    /// Regression for incremental-score drift: deriving a successor's score as
    /// `parent - old + new` accumulates float error along successor chains, so
    /// assignments whose exact sums are strictly ordered could be popped out
    /// of order.  The huge first value of the first domain forces an early
    /// rounding; under the incremental derivation the `(v, b2)` chain ended up
    /// scored ~9.7 while `(u, b2)` ended up ~9.5, inverting their exact sums
    /// (10.0 vs 10.5).  Scores are now recomputed from the buffers at push
    /// time, so the pop order must follow the exact sums.
    #[test]
    fn unchecked_top_k_orders_by_freshly_summed_scores() {
        let spec = open_spec();
        let mut search =
            CandidateSearch::prepare(&spec, PreferenceModel::occurrence(&spec, 6)).unwrap();
        search.domains = vec![
            vec![
                Scored::new(1e16, Value::text("L")),
                Scored::new(1.5, Value::text("u")),
                Scored::new(1.0, Value::text("v")),
            ],
            vec![
                Scored::new(10.3, Value::text("b1")),
                Scored::new(9.0, Value::text("b2")),
            ],
        ];
        let mut stats = TopKStats::default();
        let out = unchecked_top_k(&search, 6, &mut stats);
        let expect: Vec<Vec<Value>> = vec![
            vec![Value::text("L"), Value::text("b1")],
            vec![Value::text("L"), Value::text("b2")],
            vec![Value::text("u"), Value::text("b1")],
            vec![Value::text("v"), Value::text("b1")],
            vec![Value::text("u"), Value::text("b2")],
            vec![Value::text("v"), Value::text("b2")],
        ];
        assert_eq!(out, expect);
    }

    #[test]
    fn heuristic_matches_exact_top1_on_easy_instance() {
        // On this instance every complete assignment passes check, so the
        // heuristic's best tuple coincides with TopKCT's.
        let spec = open_spec();
        let search =
            CandidateSearch::prepare(&spec, PreferenceModel::occurrence(&spec, 1)).unwrap();
        let exact = topkct(&search);
        let heuristic = topkcth(&search);
        assert_eq!(exact.candidates[0].target, heuristic.candidates[0].target);
        // the heuristic performs no more checks than candidates it returns here
        assert!(heuristic.stats.checks <= exact.stats.checks + 1);
    }
}
