//! Algorithm `RankJoinCT` (Section 6.1): top-k candidate targets by extending
//! top-k rank-join over ranked value lists.
//!
//! The algorithm assumes every null attribute's domain is given as a list
//! ranked by score (`L_1..L_m`).  Following the HRJN family it pulls values
//! from the lists round-robin, forms every join combination involving the
//! newly pulled value and all previously seen values of the other lists, and
//! maintains the classic rank-join threshold
//! `τ = max_i ( nextScore(L_i) + Σ_{j≠i} topScore(L_j) )`.
//! A buffered combination whose score is at least `τ` can safely be emitted —
//! after passing the paper's additional `check` that the completed tuple is a
//! genuine candidate target (Church-Rosser with the tuple as initial target).
//!
//! This is the baseline the paper improves on: it materializes (and `check`s)
//! every join result it emits, which can be exponentially many, whereas
//! `TopKCT` generates the next-best tuple directly.

use crate::candidates::{CandidateSearch, ScoredCandidate, TopKResult, TopKStats};
use relacc_core::chase::CheckScratch;
use relacc_heap::{F64Key, PairingHeap, RankedList, Scored};
use relacc_model::Value;

/// Run `RankJoinCT` on a prepared candidate search.
pub fn rank_join_ct(search: &CandidateSearch<'_>) -> TopKResult {
    rank_join_ct_with(search, &mut CheckScratch::new())
}

/// [`rank_join_ct`] with a caller-provided check scratch (see
/// [`crate::topkct::topkct_with`]).
#[allow(clippy::needless_range_loop)] // the threshold loop skips index `i` of `lists`
pub fn rank_join_ct_with(search: &CandidateSearch<'_>, scratch: &mut CheckScratch) -> TopKResult {
    let k = search.preference.k;
    let mut stats = TopKStats::default();
    if search.z.is_empty() {
        return search.complete_result(scratch);
    }
    let m = search.arity();

    // Ranked lists L_1..L_m (this sort is part of RankJoinCT's cost).
    let mut lists: Vec<RankedList<Value>> = search
        .domains
        .iter()
        .map(|d| RankedList::from_scored(d.clone()))
        .collect();
    if lists.iter().any(|l| l.is_empty()) {
        return TopKResult {
            candidates: Vec::new(),
            stats,
        };
    }

    // Values seen so far per list.
    let mut seen: Vec<Vec<Scored<Value>>> = vec![Vec::new(); m];
    // Buffer of join combinations not yet emitted, ordered by score.
    let mut buffer: PairingHeap<F64Key, Vec<Value>> = PairingHeap::new();
    let mut candidates: Vec<ScoredCandidate> = Vec::new();

    // Fixed part of every candidate's score (the non-Z attributes).
    let fixed_score = search.score(&search.deduced);

    let threshold = |lists: &[RankedList<Value>], seen: &[Vec<Scored<Value>>]| -> f64 {
        let mut best = f64::NEG_INFINITY;
        for i in 0..lists.len() {
            let Some(next) = lists[i].next_score() else {
                continue;
            };
            let mut sum = next;
            let mut feasible = true;
            for (j, seen_j) in seen.iter().enumerate() {
                if j == i {
                    continue;
                }
                match seen_j.first() {
                    Some(top) => sum += top.score,
                    None => {
                        feasible = false;
                        break;
                    }
                }
            }
            if feasible && sum > best {
                best = sum;
            }
        }
        best
    };

    // Safety valve: RankJoinCT materializes join combinations, which is
    // exponential in the worst case (the very weakness TopKCT fixes).  Cap the
    // number of buffered combinations so a single degenerate entity cannot
    // exhaust memory; once the cap is hit the algorithm stops pulling and
    // drains what it has buffered (the cap is far above anything the normal
    // workloads reach, so results are unaffected there).
    const MAX_GENERATED: usize = 500_000;
    let mut exhausted = false;
    let mut next_list = 0usize;
    while candidates.len() < k {
        // Emit buffered combinations that dominate the threshold.
        let tau = if exhausted {
            f64::NEG_INFINITY
        } else {
            threshold(&lists, &seen)
        };
        while candidates.len() < k {
            match buffer.peek() {
                Some((key, _)) if key.0 >= tau => {
                    let (F64Key(score), z_values) = buffer.pop().expect("peeked entry");
                    let candidate = search.assemble(&z_values);
                    if search.check(&candidate, scratch, &mut stats) {
                        candidates.push(ScoredCandidate {
                            score: fixed_score + score,
                            target: candidate,
                        });
                    }
                }
                _ => break,
            }
        }
        if candidates.len() >= k || (exhausted && buffer.is_empty()) {
            break;
        }

        // Pull the next value round-robin and join it with everything seen.
        let mut pulled = false;
        if stats.generated >= MAX_GENERATED {
            stats.capped = true;
            exhausted = true;
            continue;
        }
        for offset in 0..m {
            let i = (next_list + offset) % m;
            if let Some(entry) = lists[i].next_entry() {
                let entry = entry.clone();
                stats.pops += 1;
                // Join the new value of list i with all seen prefixes of the
                // others, building each combination **positionally** (one slot
                // per list, in list order).  A rank-join result needs a value
                // from every list, so when some other list has contributed
                // nothing yet — candidate lists are routinely uneven, short
                // ones run dry while long ones keep producing — the pulled
                // value joins with nothing this round and is only recorded in
                // `seen` for future rounds.  That skip is explicit here; the
                // old splice-style rebuild (pushing the other lists' values
                // and re-interleaving them afterwards) asserted "one value
                // per other list" instead of guaranteeing it by construction.
                let mut combos: Vec<(f64, Vec<Value>)> = vec![(entry.score, Vec::new())];
                for (j, seen_j) in seen.iter().enumerate() {
                    if j == i {
                        for (_, combo) in &mut combos {
                            combo.push(entry.item.clone());
                        }
                        continue;
                    }
                    if seen_j.is_empty() {
                        combos.clear();
                        break;
                    }
                    let mut expanded = Vec::with_capacity(combos.len() * seen_j.len());
                    for (score, combo) in &combos {
                        for other in seen_j {
                            let mut extended = combo.clone();
                            extended.push(other.item.clone());
                            expanded.push((score + other.score, extended));
                        }
                    }
                    combos = expanded;
                }
                for (score, z_values) in combos {
                    debug_assert_eq!(z_values.len(), m, "one value per list");
                    stats.generated += 1;
                    buffer.push(F64Key(score), z_values);
                }
                seen[i].push(entry);
                next_list = (i + 1) % m;
                pulled = true;
                break;
            }
        }
        if !pulled {
            exhausted = true;
        }
    }

    candidates.sort_by(|a, b| b.score.total_cmp(&a.score));
    candidates.truncate(k);
    TopKResult { candidates, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::CandidateSearch;
    use crate::preference::PreferenceModel;
    use crate::topkct::topkct;
    use relacc_core::rules::{Predicate, RuleSet, TupleRule};
    use relacc_core::Specification;
    use relacc_model::{AttrId, CmpOp, DataType, EntityInstance, Schema};

    fn open_spec() -> Specification {
        let schema = Schema::builder("r")
            .attr("rnds", DataType::Int)
            .attr("team", DataType::Text)
            .attr("arena", DataType::Text)
            .build();
        let ie = EntityInstance::from_rows(
            schema.clone(),
            vec![
                vec![
                    Value::Int(16),
                    Value::text("Chicago"),
                    Value::text("Chicago Stadium"),
                ],
                vec![
                    Value::Int(27),
                    Value::text("Chicago Bulls"),
                    Value::text("United Center"),
                ],
                vec![
                    Value::Int(27),
                    Value::text("Chicago Bulls"),
                    Value::text("Regions Park"),
                ],
            ],
        )
        .unwrap();
        let rules = RuleSet::from_rules([TupleRule::new(
            "phi1",
            vec![Predicate::cmp_attrs(schema.expect_attr("rnds"), CmpOp::Lt)],
            schema.expect_attr("rnds"),
        )]);
        Specification::new(ie, rules)
    }

    #[test]
    fn example9_top2_candidates() {
        // Example 9 of the paper (team dropped from the master rule): the top-2
        // candidates fix team = Chicago Bulls and differ on the arena.
        let spec = open_spec();
        let search =
            CandidateSearch::prepare(&spec, PreferenceModel::occurrence(&spec, 2)).unwrap();
        let result = rank_join_ct(&search);
        assert_eq!(result.candidates.len(), 2);
        assert!(result
            .candidates
            .iter()
            .all(|c| c.target.value(AttrId(1)) == &Value::text("Chicago Bulls")));
        assert!(result.candidates[0].score >= result.candidates[1].score);
    }

    #[test]
    fn agrees_with_topkct_on_scores() {
        let spec = open_spec();
        for k in [1usize, 2, 3, 6, 10] {
            let search =
                CandidateSearch::prepare(&spec, PreferenceModel::occurrence(&spec, k)).unwrap();
            let rj = rank_join_ct(&search);
            let tk = topkct(&search);
            assert_eq!(rj.candidates.len(), tk.candidates.len(), "k={k}");
            for (a, b) in rj.candidates.iter().zip(tk.candidates.iter()) {
                assert!((a.score - b.score).abs() < 1e-9, "k={k}");
            }
        }
    }

    /// Regression for the uneven-list join: per-attribute candidate counts
    /// are asymmetric (one attribute has a single candidate, another has
    /// many), so the short lists run dry while the long ones keep producing
    /// and early pulls find other lists with nothing seen yet.  The join
    /// must skip those not-yet-joinable / exhausted combinations — the
    /// rank-join semantics: a result takes one value from *every* list —
    /// instead of asserting "one value per other list", and must still agree
    /// with TopKCT on every score for every k up to past-exhaustion.
    #[test]
    fn uneven_candidate_lists_are_joined_without_panicking() {
        let schema = Schema::builder("r")
            .attr("rnds", DataType::Int)
            .attr("team", DataType::Text)
            .attr("arena", DataType::Text)
            .attr("city", DataType::Text)
            .build();
        // team has two candidates, arena four, city three: uneven
        // per-attribute counts, all three attributes left open (a single
        // distinct value would be auto-deduced by the equal-values axiom)
        let rows: Vec<Vec<Value>> = vec![
            vec![
                Value::Int(16),
                Value::text("Bulls"),
                Value::text("United Center"),
                Value::text("Chicago"),
            ],
            vec![
                Value::Int(27),
                Value::text("Chicago Bulls"),
                Value::text("Chicago Stadium"),
                Value::text("Chicago"),
            ],
            vec![
                Value::Int(27),
                Value::text("Bulls"),
                Value::text("Regions Park"),
                Value::text("Deerfield"),
            ],
            vec![
                Value::Int(27),
                Value::text("Bulls"),
                Value::text("Berto Center"),
                Value::text("Evanston"),
            ],
        ];
        let ie = EntityInstance::from_rows(schema.clone(), rows).unwrap();
        let rules = RuleSet::from_rules([TupleRule::new(
            "phi1",
            vec![Predicate::cmp_attrs(schema.expect_attr("rnds"), CmpOp::Lt)],
            schema.expect_attr("rnds"),
        )]);
        let spec = Specification::new(ie, rules);
        for k in [1usize, 2, 5, 11, 24, 40] {
            let search =
                CandidateSearch::prepare(&spec, PreferenceModel::occurrence(&spec, k)).unwrap();
            assert_eq!(search.arity(), 3, "three open attributes");
            let counts: Vec<usize> = search.domains.iter().map(Vec::len).collect();
            assert_eq!(counts, vec![2, 4, 3], "asymmetric per-attribute counts");
            let rj = rank_join_ct(&search);
            let tk = topkct(&search);
            assert_eq!(rj.candidates.len(), tk.candidates.len(), "k={k}");
            assert_eq!(rj.candidates.len(), k.min(24), "k={k}: 2*4*3 combinations");
            for (a, b) in rj.candidates.iter().zip(tk.candidates.iter()) {
                assert!((a.score - b.score).abs() < 1e-9, "k={k}");
            }
        }
    }

    #[test]
    fn rank_join_does_more_checks_than_topkct_for_small_k() {
        let spec = open_spec();
        let search =
            CandidateSearch::prepare(&spec, PreferenceModel::occurrence(&spec, 1)).unwrap();
        let rj = rank_join_ct(&search);
        let tk = topkct(&search);
        assert_eq!(rj.candidates.len(), 1);
        assert_eq!(tk.candidates.len(), 1);
        // both find the same best candidate; RankJoinCT generates at least as
        // many join combinations as TopKCT generates frontier objects
        assert!(rj.stats.generated >= tk.candidates.len());
        assert_eq!(rj.candidates[0].target, tk.candidates[0].target);
    }
}
