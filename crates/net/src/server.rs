//! The TCP server: one accept loop multiplexing any number of client
//! connections onto one [`relacc_serve::Server`].
//!
//! Threading model: the engine's driver thread stays the single writer; the
//! accept loop and every connection handler run on their own OS threads and
//! touch the engine only through the epoch hub — pinning epochs, composing
//! deltas and draining subscriptions.  A connection can therefore never
//! block a commit: the worst a dead or stalled client costs is its own
//! handler thread parked on a socket, and (for a subscriber) one pinned
//! cursor epoch, which the bounded hub retention turns into a single exact
//! `resync` batch once the cursor is outrun — never a writer stall, never a
//! silent gap.
//!
//! Connection lifecycle: handshake (`Hello`/`HelloOk`, version checked),
//! then request/response frames, until the client either half-closes the
//! socket (EOF at a frame boundary — the handler exits cleanly) or sends
//! `Subscribe`, which flips the connection into **feed mode**: the handler
//! drains a [`relacc_serve::Subscription`] at the socket's pace and pushes
//! one `Feed` frame per cursor advance.  In feed mode the handler keeps
//! polling its read half on a short timeout so a half-close or a killed
//! client is noticed promptly and the handler (with its pinned cursor) goes
//! away instead of wedging.

use crate::wire::{
    epoch_error_message, write_frame, ErrorCode, FrameReader, Message, Poll, WireError,
    PROTOCOL_VERSION,
};
use relacc_serve::Server;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Tunables of one [`NetServer`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Socket read timeout: the granularity at which idle handlers re-check
    /// the shutdown flag and feed handlers poll for half-close.  Never
    /// surfaced to the client — a timeout just loops.
    pub read_timeout: Duration,
    /// Socket write timeout: a response or feed push that cannot make
    /// progress for this long marks the client dead and the handler exits.
    pub write_timeout: Duration,
    /// How long a feed handler waits for the next epoch before re-polling
    /// the socket for half-close.
    pub feed_poll: Duration,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            read_timeout: Duration::from_millis(100),
            write_timeout: Duration::from_secs(10),
            feed_poll: Duration::from_millis(50),
        }
    }
}

/// A running TCP front over one [`Server`]: an accept-loop thread plus one
/// handler thread per live connection.  Dropping the value shuts the
/// listener down and joins the accept loop.
#[derive(Debug)]
pub struct NetServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_loop: Option<JoinHandle<()>>,
}

impl NetServer {
    /// Bind `addr` (use port 0 for an ephemeral port) and start serving
    /// `server`'s epochs.  Returns as soon as the listener is live.
    pub fn spawn(server: Server, addr: impl ToSocketAddrs) -> io::Result<NetServer> {
        NetServer::spawn_with(server, addr, ServeOptions::default())
    }

    /// [`NetServer::spawn`] with explicit timeouts.
    pub fn spawn_with(
        server: Server,
        addr: impl ToSocketAddrs,
        options: ServeOptions,
    ) -> io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let accept_loop = std::thread::Builder::new()
            .name("relacc-net-accept".into())
            .spawn(move || accept_loop(listener, server, options, accept_stop))?;
        Ok(NetServer {
            local_addr,
            stop,
            accept_loop: Some(accept_loop),
        })
    }

    /// The address the listener is bound to (with the resolved port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stop accepting connections and wind down handler threads.  Live
    /// handlers notice the flag at their next read-timeout tick; the accept
    /// loop is woken by a loopback connection and joined.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // wake the blocking accept with a throwaway connection
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.accept_loop.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: TcpListener,
    server: Server,
    options: ServeOptions,
    stop: Arc<AtomicBool>,
) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        let server = server.clone();
        let options = options.clone();
        let stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("relacc-net-conn".into())
            .spawn(move || {
                // a broken connection is the client's problem, not the
                // server's: handlers end quietly on any error
                let _ = handle_connection(stream, &server, &options, &stop);
            });
        if let Ok(handle) = handle {
            handlers.push(handle);
        }
        handlers.retain(|h| !h.is_finished());
    }
    for handle in handlers {
        let _ = handle.join();
    }
}

/// Handler-side connection outcomes that end the session without being
/// transport failures.
enum SessionEnd {
    /// The client half-closed (or closed) the connection.
    Closed,
    /// The server is shutting down.
    Stopping,
}

fn handle_connection(
    stream: TcpStream,
    server: &Server,
    options: &ServeOptions,
    stop: &AtomicBool,
) -> Result<(), WireError> {
    stream.set_read_timeout(Some(options.read_timeout))?;
    stream.set_write_timeout(Some(options.write_timeout))?;
    stream.set_nodelay(true)?;
    let mut reader = FrameReader::new();
    let mut read_half = stream.try_clone()?;
    let mut write_half = stream.try_clone()?;

    let end = session(
        &mut reader,
        &mut read_half,
        &mut write_half,
        server,
        options,
        stop,
    );
    let _ = stream.shutdown(Shutdown::Both);
    match end {
        Ok(SessionEnd::Closed | SessionEnd::Stopping) => Ok(()),
        Err(e) => {
            // best-effort diagnostic for protocol errors; transport errors
            // mean the peer is gone and nobody is listening
            if let WireError::Malformed(_) | WireError::UnknownType(_) | WireError::Oversized(_) =
                &e
            {
                let _ = write_frame(
                    &mut write_half,
                    &Message::Error {
                        code: ErrorCode::Malformed,
                        value: 0,
                        detail: e.to_string(),
                    },
                );
            }
            Err(e)
        }
    }
}

/// Block until the next complete frame, tolerating read-timeout ticks.
/// Returns `None` when the client closed or the server is stopping.
fn next_frame(
    reader: &mut FrameReader,
    read_half: &mut TcpStream,
    stop: &AtomicBool,
) -> Result<Option<Message>, SessionError> {
    loop {
        if stop.load(Ordering::SeqCst) {
            return Ok(None);
        }
        match reader.poll(read_half)? {
            Poll::Frame(payload) => return Ok(Some(Message::decode(&payload)?)),
            Poll::Pending => continue,
            Poll::Closed => return Ok(None),
        }
    }
}

/// Internal composite so `?` works across wire and session control flow.
enum SessionError {
    Wire(WireError),
}

impl From<WireError> for SessionError {
    fn from(e: WireError) -> Self {
        SessionError::Wire(e)
    }
}

impl From<io::Error> for SessionError {
    fn from(e: io::Error) -> Self {
        SessionError::Wire(WireError::Io(e))
    }
}

fn session(
    reader: &mut FrameReader,
    read_half: &mut TcpStream,
    write_half: &mut TcpStream,
    server: &Server,
    options: &ServeOptions,
    stop: &AtomicBool,
) -> Result<SessionEnd, WireError> {
    match session_inner(reader, read_half, write_half, server, options, stop) {
        Ok(end) => Ok(end),
        Err(SessionError::Wire(e)) => Err(e),
    }
}

fn session_inner(
    reader: &mut FrameReader,
    read_half: &mut TcpStream,
    write_half: &mut TcpStream,
    server: &Server,
    options: &ServeOptions,
    stop: &AtomicBool,
) -> Result<SessionEnd, SessionError> {
    // --- handshake -------------------------------------------------------
    let hello = match next_frame(reader, read_half, stop)? {
        Some(m) => m,
        None => {
            return Ok(if stop.load(Ordering::SeqCst) {
                SessionEnd::Stopping
            } else {
                SessionEnd::Closed
            });
        }
    };
    match hello {
        Message::Hello { version } if version == PROTOCOL_VERSION => {}
        Message::Hello { version } => {
            write_frame(
                write_half,
                &Message::Error {
                    code: ErrorCode::VersionMismatch,
                    value: PROTOCOL_VERSION,
                    detail: format!(
                        "client speaks protocol {version}, server speaks {PROTOCOL_VERSION}"
                    ),
                },
            )?;
            return Ok(SessionEnd::Closed);
        }
        other => {
            return Err(SessionError::Wire(WireError::Malformed(format!(
                "expected Hello, got {:?}",
                other.msg_type()
            ))));
        }
    }
    write_frame(
        write_half,
        &Message::HelloOk {
            version: PROTOCOL_VERSION,
            schema: server.pin().schema().clone(),
        },
    )?;

    // --- request/response ------------------------------------------------
    loop {
        let request = match next_frame(reader, read_half, stop)? {
            Some(m) => m,
            None => {
                return Ok(if stop.load(Ordering::SeqCst) {
                    SessionEnd::Stopping
                } else {
                    SessionEnd::Closed
                });
            }
        };
        let response = match request {
            Message::Pin => {
                let epoch = server.pin();
                Message::EpochRef {
                    epoch: epoch.id(),
                    generation: epoch.generation(),
                    rows: epoch.len() as u64,
                }
            }
            Message::PinAt { generation } => match server.pin_at(generation) {
                Ok(epoch) => Message::EpochRef {
                    epoch: epoch.id(),
                    generation: epoch.generation(),
                    rows: epoch.len() as u64,
                },
                Err(e) => epoch_error_message(e),
            },
            Message::RepairedRow { row, generation } => {
                match server.repaired_row(row, generation) {
                    Ok(values) => Message::RowReply { row: values },
                    Err(e) => epoch_error_message(e),
                }
            }
            Message::EntityResult { row, generation } => {
                match server.entity_result(row, generation) {
                    Ok(entity) => Message::EntityReply { entity },
                    Err(e) => epoch_error_message(e),
                }
            }
            Message::ChangesSince { since } => match server.changes_since(since) {
                Ok(delta) => Message::Delta { delta },
                Err(e) => epoch_error_message(e),
            },
            Message::Subscribe => {
                return feed(reader, read_half, write_half, server, options, stop);
            }
            other => {
                return Err(SessionError::Wire(WireError::Malformed(format!(
                    "unexpected request {:?}",
                    other.msg_type()
                ))));
            }
        };
        write_frame(write_half, &response)?;
    }
}

/// Feed mode: push one `Feed` frame per cursor advance, at this
/// subscriber's own pace.  The subscription's pinned cursor carries the
/// exactness guarantee — outrunning the hub's retention window produces one
/// `resync: true` batch diffed from the pinned cursor, never a gap.
fn feed(
    reader: &mut FrameReader,
    read_half: &mut TcpStream,
    write_half: &mut TcpStream,
    server: &Server,
    options: &ServeOptions,
    stop: &AtomicBool,
) -> Result<SessionEnd, SessionError> {
    let mut subscription = server.subscribe();
    write_frame(
        write_half,
        &Message::SubOk {
            epoch: subscription.last_seen().id(),
            generation: subscription.last_seen().generation(),
        },
    )?;
    loop {
        // notice shutdown, half-close and stray frames between pushes
        if stop.load(Ordering::SeqCst) {
            return Ok(SessionEnd::Stopping);
        }
        match reader.poll(read_half)? {
            Poll::Closed => return Ok(SessionEnd::Closed),
            Poll::Pending => {}
            Poll::Frame(_) => {
                return Err(SessionError::Wire(WireError::Malformed(
                    "unexpected frame on a subscribed connection".into(),
                )));
            }
        }
        if let Some(batch) = subscription.next_batch(options.feed_poll) {
            write_frame(write_half, &Message::Feed { batch })?;
        }
    }
}
