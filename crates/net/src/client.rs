//! The blocking typed client: the same read surface as the in-process
//! [`relacc_serve::Server`], over one TCP connection.
//!
//! [`NetClient`] is deliberately shaped after `Server` — `pin`, `pin_at`,
//! `repaired_row`, `entity_result`, `changes_since`, `subscribe` — so a
//! reader written against the in-process API ports to the wire by swapping
//! the constructor.  That symmetry is load-bearing: the loopback
//! differential test (`tests/net_loopback.rs` at the workspace root) runs N
//! TCP clients and N in-process readers over the same update stream and
//! demands bit-identical answers from every pair.
//!
//! One connection serves either requests or a feed: [`NetClient::subscribe`]
//! consumes the client and turns the connection into a [`NetSubscription`]
//! (the server pushes `Feed` frames from then on).  Point reads concurrent
//! with a subscription use a second connection — connections are cheap and
//! each subscriber is supposed to drain at its own pace off its own pinned
//! cursor anyway.

use crate::wire::{
    epoch_error_of, write_frame, ErrorCode, FrameReader, Message, Poll, WireError, PROTOCOL_VERSION,
};
use relacc_engine::{EntityView, EpochError, EpochId, SnapshotDelta};
use relacc_model::{SchemaRef, Value};
use relacc_serve::ChangeBatch;
use relacc_store::{Generation, RowId};
use std::io;
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Client-side failures.
#[derive(Debug)]
pub enum NetError {
    /// The transport failed (connect, read or write).
    Io(io::Error),
    /// The peer violated the protocol (bad frame, unexpected message).
    Protocol(String),
    /// The server answered a generation-addressed read with an epoch error
    /// (evicted or unknown generation) — same meaning as the in-process
    /// [`EpochError`].
    Remote(EpochError),
    /// The server speaks a different protocol version.
    VersionMismatch {
        /// Our version.
        client: u64,
        /// The server's version.
        server: u64,
    },
    /// The server reported a request it could not parse.
    Rejected(String),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "transport: {e}"),
            NetError::Protocol(d) => write!(f, "protocol violation: {d}"),
            NetError::Remote(e) => write!(f, "server: {e}"),
            NetError::VersionMismatch { client, server } => {
                write!(
                    f,
                    "protocol version mismatch: client {client}, server {server}"
                )
            }
            NetError::Rejected(d) => write!(f, "server rejected the request: {d}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        match e {
            WireError::Io(e) => NetError::Io(e),
            other => NetError::Protocol(other.to_string()),
        }
    }
}

/// A pinned epoch as seen over the wire: the id/generation pair a client
/// uses to address subsequent generation-pinned reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochRef {
    /// The epoch's publish identity.
    pub epoch: EpochId,
    /// The row-batch generation it reflects.
    pub generation: Generation,
    /// Number of live rows it pins.
    pub rows: u64,
}

/// A blocking client speaking the framed protocol of [`crate::wire`].
#[derive(Debug)]
pub struct NetClient {
    stream: TcpStream,
    reader: FrameReader,
    schema: SchemaRef,
}

impl NetClient {
    /// Connect, handshake and return a ready client.  Fails fast on a
    /// protocol version mismatch.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<NetClient, NetError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        stream.set_write_timeout(Some(Duration::from_secs(30)))?;
        let mut client = NetClient {
            stream,
            reader: FrameReader::new(),
            schema: relacc_model::Schema::builder("uninitialised").build(),
        };
        write_frame(
            &mut client.stream,
            &Message::Hello {
                version: PROTOCOL_VERSION,
            },
        )?;
        match client.read_message()? {
            Message::HelloOk { version, schema } if version == PROTOCOL_VERSION => {
                client.schema = schema;
                Ok(client)
            }
            Message::HelloOk { version, .. } => Err(NetError::VersionMismatch {
                client: PROTOCOL_VERSION,
                server: version,
            }),
            Message::Error {
                code: ErrorCode::VersionMismatch,
                value,
                ..
            } => Err(NetError::VersionMismatch {
                client: PROTOCOL_VERSION,
                server: value,
            }),
            other => Err(NetError::Protocol(format!(
                "expected HelloOk, got {:?}",
                other.msg_type()
            ))),
        }
    }

    /// The served relation's schema, learned during the handshake.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// Pin the current epoch.
    pub fn pin(&mut self) -> Result<EpochRef, NetError> {
        match self.request(&Message::Pin)? {
            Message::EpochRef {
                epoch,
                generation,
                rows,
            } => Ok(EpochRef {
                epoch,
                generation,
                rows,
            }),
            other => Err(unexpected(&other)),
        }
    }

    /// Pin the earliest retained epoch of `generation`
    /// ([`NetError::Remote`] with [`EpochError::Evicted`] /
    /// [`EpochError::Unknown`] exactly like the in-process server).
    pub fn pin_at(&mut self, generation: Generation) -> Result<EpochRef, NetError> {
        match self.request(&Message::PinAt { generation })? {
            Message::EpochRef {
                epoch,
                generation,
                rows,
            } => Ok(EpochRef {
                epoch,
                generation,
                rows,
            }),
            other => Err(unexpected(&other)),
        }
    }

    /// The repaired row of `row`'s entity at `generation` — the wire form
    /// of [`relacc_serve::Server::repaired_row`].
    pub fn repaired_row(
        &mut self,
        row: RowId,
        generation: Generation,
    ) -> Result<Option<Vec<Value>>, NetError> {
        match self.request(&Message::RepairedRow { row, generation })? {
            Message::RowReply { row } => Ok(row),
            other => Err(unexpected(&other)),
        }
    }

    /// The full entity owning `row` at `generation` — the wire form of
    /// [`relacc_serve::Server::entity_result`].
    pub fn entity_result(
        &mut self,
        row: RowId,
        generation: Generation,
    ) -> Result<Option<EntityView>, NetError> {
        match self.request(&Message::EntityResult { row, generation })? {
            Message::EntityReply { entity } => Ok(entity),
            other => Err(unexpected(&other)),
        }
    }

    /// Everything that changed between `since` and the current epoch, as a
    /// whole-block [`SnapshotDelta`] — the wire form of
    /// [`relacc_serve::Server::changes_since`].
    pub fn changes_since(&mut self, since: Generation) -> Result<SnapshotDelta, NetError> {
        match self.request(&Message::ChangesSince { since })? {
            Message::Delta { delta } => Ok(delta),
            other => Err(unexpected(&other)),
        }
    }

    /// Switch this connection into feed mode.  The server pins a cursor at
    /// its current epoch and pushes a [`ChangeBatch`] frame per advance.
    pub fn subscribe(mut self) -> Result<NetSubscription, NetError> {
        write_frame(&mut self.stream, &Message::Subscribe)?;
        match self.read_message()? {
            Message::SubOk { epoch, generation } => Ok(NetSubscription {
                stream: self.stream,
                reader: self.reader,
                start: EpochRef {
                    epoch,
                    generation,
                    rows: 0,
                },
            }),
            other => Err(unexpected(&other)),
        }
    }

    fn request(&mut self, request: &Message) -> Result<Message, NetError> {
        write_frame(&mut self.stream, request)?;
        let reply = self.read_message()?;
        if let Message::Error {
            code,
            value,
            detail,
        } = &reply
        {
            return Err(match epoch_error_of(*code, *value) {
                Some(e) => NetError::Remote(e),
                None => NetError::Rejected(detail.clone()),
            });
        }
        Ok(reply)
    }

    /// Read one message, treating read timeouts as fatal (requests expect a
    /// prompt answer) and EOF as a closed server.
    fn read_message(&mut self) -> Result<Message, NetError> {
        match self.reader.poll(&mut self.stream)? {
            Poll::Frame(payload) => Ok(Message::decode(&payload)?),
            Poll::Pending => Err(NetError::Io(io::Error::new(
                io::ErrorKind::TimedOut,
                "server did not answer within the read timeout",
            ))),
            Poll::Closed => Err(NetError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ))),
        }
    }
}

fn unexpected(message: &Message) -> NetError {
    NetError::Protocol(format!("unexpected reply {:?}", message.msg_type()))
}

/// The client end of a change feed: reads pushed [`ChangeBatch`] frames.
/// Dropping the value closes the connection, which the server notices at
/// its next poll tick and releases the subscriber's pinned cursor.
#[derive(Debug)]
pub struct NetSubscription {
    stream: TcpStream,
    reader: FrameReader,
    start: EpochRef,
}

impl NetSubscription {
    /// The cursor's starting position (the server-side epoch at subscribe
    /// time).
    pub fn start(&self) -> EpochRef {
        self.start
    }

    /// Block up to `timeout` for the next pushed batch.  `Ok(None)` on
    /// timeout — the feed is still live, nothing was committed (or the
    /// server's push has not arrived yet).
    pub fn next_batch(&mut self, timeout: Duration) -> Result<Option<ChangeBatch>, NetError> {
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Ok(None);
            }
            // read timeouts cap each poll; cap the last one at the deadline
            self.stream
                .set_read_timeout(Some(remaining.min(Duration::from_millis(100))))?;
            match self.reader.poll(&mut self.stream)? {
                Poll::Frame(payload) => match Message::decode(&payload)? {
                    Message::Feed { batch } => return Ok(Some(batch)),
                    other => return Err(unexpected(&other)),
                },
                Poll::Pending => continue,
                Poll::Closed => {
                    return Err(NetError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed the feed",
                    )));
                }
            }
        }
    }

    /// Half-close the connection, telling the server this subscriber is
    /// done (the handler exits at its next poll).
    pub fn close(self) {
        let _ = self.stream.shutdown(Shutdown::Both);
    }
}
