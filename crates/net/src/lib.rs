//! # relacc-net
//!
//! The TCP transport of the `relacc` serving layer: a length-prefixed binary
//! frame protocol over `std::net`, a server that multiplexes any number of
//! client connections onto one [`relacc_serve::Server`], and a blocking
//! typed client exposing the same read surface as the in-process server.
//!
//! The stack, bottom to top:
//!
//! * [`wire`] — the versioned frame codec.  `docs/PROTOCOL.md` at the
//!   repository root is the normative byte-level spec; its examples are
//!   asserted by this module's unit tests so the document cannot drift.
//! * [`NetServer`] — one accept loop, one handler thread per connection,
//!   all reads answered off the engine's epoch hub.  The engine's writer
//!   thread is never on any connection's path: a slow subscriber costs one
//!   pinned cursor epoch (turned into a single exact `resync` batch once
//!   the bounded retention window is outrun), a dead client costs nothing
//!   but its handler thread, which notices the half-close at its next poll
//!   tick and exits.
//! * [`NetClient`] / [`NetSubscription`] — `pin`, `pin_at`,
//!   `repaired_row`, `entity_result`, `changes_since` request/response plus
//!   pushed change-feed batches, mirroring [`relacc_serve::Server`] and
//!   [`relacc_serve::Subscription`] call for call.  The loopback
//!   differential test at the workspace root holds the two surfaces to
//!   bit-identical answers under concurrent writer churn.
//!
//! The `serve_tcp` binary in this crate serves a scripted Med update stream
//! for a bounded number of batches — the smallest end-to-end deployment.
//!
//! ```
//! use relacc_net::{NetClient, NetServer};
//! use relacc_serve::Server;
//! # use relacc_core::rules::{Predicate, RuleSet, TupleRule};
//! # use relacc_engine::{BatchEngine, IncrementalEngine};
//! # use relacc_model::{CmpOp, DataType, Schema, Value};
//! # use relacc_resolve::{BlockingStrategy, ResolveConfig};
//! # use relacc_store::{Generation, Relation, RowId, UpdateBatch};
//! # let schema = Schema::builder("stat")
//! #     .attr("name", DataType::Text)
//! #     .attr("rnds", DataType::Int)
//! #     .build();
//! # let rules = RuleSet::from_rules([TupleRule::new(
//! #     "cur",
//! #     vec![Predicate::cmp_attrs(schema.expect_attr("rnds"), CmpOp::Lt)],
//! #     schema.expect_attr("rnds"),
//! # )]);
//! # let batch = BatchEngine::new(schema.clone(), rules, vec![]).unwrap();
//! # let seed = Relation::from_rows(
//! #     schema.clone(),
//! #     vec![vec![Value::text("mj"), Value::Int(16)]],
//! # )
//! # .unwrap();
//! # let mut engine = IncrementalEngine::open(
//! #     batch,
//! #     "stat",
//! #     &seed,
//! #     ResolveConfig::on_attrs(vec!["name".into()])
//! #         .with_strategy(BlockingStrategy::ExactKey),
//! # );
//! // serve the engine's epochs over loopback TCP (ephemeral port)
//! let net = NetServer::spawn(Server::new(&engine), "127.0.0.1:0").unwrap();
//! let mut client = NetClient::connect(net.local_addr()).unwrap();
//! assert_eq!(client.schema().name(), "stat");
//!
//! // the writer commits; the client point-reads the pinned generation
//! engine
//!     .apply(&UpdateBatch::new("stat").insert(vec![Value::text("mj"), Value::Int(27)]))
//!     .unwrap();
//! let pinned = client.pin().unwrap();
//! assert_eq!(pinned.generation, Generation(1));
//! let row = client.repaired_row(RowId(0), pinned.generation).unwrap();
//! assert_eq!(row.unwrap()[1], Value::Int(27));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod server;
pub mod wire;

pub use client::{EpochRef, NetClient, NetError, NetSubscription};
pub use server::{NetServer, ServeOptions};
pub use wire::{Message, MsgType, WireError, PROTOCOL_VERSION};
