//! The versioned binary frame codec of the `relacc` wire protocol.
//!
//! `docs/PROTOCOL.md` at the repository root is the **normative** spec of
//! everything in this module — frame layout, varint rules, message table,
//! version negotiation and the resync semantics.  The byte-level examples in
//! that document are asserted verbatim by the unit tests at the bottom of
//! this file, so the spec and the codec cannot drift apart.
//!
//! In one paragraph: a connection carries **frames**, each a little-endian
//! `u32` payload length followed by the payload, whose first byte is the
//! message type.  Integers inside payloads are unsigned LEB128 varints
//! (signed values zigzag-encoded first), floats are the 8 raw little-endian
//! bytes of their IEEE-754 bit pattern (so values round-trip bit-identically,
//! `-0.0` and every NaN included), strings are a varint byte length followed
//! by UTF-8 bytes, options are a `0`/`1` presence byte, and sequences are a
//! varint count followed by the elements.
//!
//! The codec is symmetric: [`Message::encode`] produces exactly the bytes
//! [`Message::decode`] consumes, property- and vector-tested below.

use relacc_core::{ChaseStats, Conflict};
use relacc_engine::{
    BlockChange, BlockView, EntityOutcome, EntityResult, EntityView, EpochError, EpochId,
    SnapshotDelta,
};
use relacc_model::{AttrId, DataType, Schema, SchemaRef, TargetTuple, Tuple, Value};
use relacc_resolve::{BlockKey, MatchDecision, PruneStage, ResolveStats};
use relacc_serve::{ChangeBatch, EntityChange, EntityChangeKind};
use relacc_store::{Generation, RowId};
use std::io::{self, Read, Write};

/// The protocol version this build speaks.  A server receiving a `Hello`
/// with a different version answers [`Message::Error`] with
/// [`ErrorCode::VersionMismatch`] (carrying its own version) and closes.
pub const PROTOCOL_VERSION: u64 = 1;

/// The four magic bytes opening every `Hello` payload: `"RLAC"`.
pub const MAGIC: [u8; 4] = *b"RLAC";

/// Hard ceiling on one frame's payload size (64 MiB).  A peer announcing a
/// larger frame is malformed (or hostile) and the connection is dropped.
pub const MAX_FRAME: u32 = 64 * 1024 * 1024;

/// Message type tags, one per [`Message`] variant.  The numeric values are
/// wire format: they may never be reused or renumbered within a protocol
/// version.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum MsgType {
    /// Client → server: connection opener (magic + version).
    Hello = 0x01,
    /// Server → client: handshake accepted (version + relation schema).
    HelloOk = 0x02,
    /// Server → client: request failed or connection-level error.
    Error = 0x03,
    /// Client → server: pin the current epoch.
    Pin = 0x10,
    /// Client → server: pin the epoch of a generation.
    PinAt = 0x11,
    /// Client → server: generation-addressed repaired-row point read.
    RepairedRow = 0x12,
    /// Client → server: generation-addressed entity read.
    EntityResult = 0x13,
    /// Client → server: whole-block delta since a generation.
    ChangesSince = 0x14,
    /// Client → server: switch this connection into feed mode.
    Subscribe = 0x15,
    /// Server → client: a pinned epoch reference.
    EpochRef = 0x20,
    /// Server → client: a repaired-row answer.
    RowReply = 0x21,
    /// Server → client: an entity answer.
    EntityReply = 0x22,
    /// Server → client: a snapshot delta.
    Delta = 0x23,
    /// Server → client: subscription accepted; feed follows.
    SubOk = 0x24,
    /// Server → client: one pushed change batch (feed mode only).
    Feed = 0x25,
}

impl MsgType {
    fn of(byte: u8) -> Result<MsgType, WireError> {
        Ok(match byte {
            0x01 => MsgType::Hello,
            0x02 => MsgType::HelloOk,
            0x03 => MsgType::Error,
            0x10 => MsgType::Pin,
            0x11 => MsgType::PinAt,
            0x12 => MsgType::RepairedRow,
            0x13 => MsgType::EntityResult,
            0x14 => MsgType::ChangesSince,
            0x15 => MsgType::Subscribe,
            0x20 => MsgType::EpochRef,
            0x21 => MsgType::RowReply,
            0x22 => MsgType::EntityReply,
            0x23 => MsgType::Delta,
            0x24 => MsgType::SubOk,
            0x25 => MsgType::Feed,
            other => return Err(WireError::UnknownType(other)),
        })
    }
}

/// Error codes carried by [`Message::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The addressed generation left the server's retention window
    /// ([`EpochError::Evicted`]); the attached generation is the evicted one.
    Evicted = 1,
    /// The addressed generation was never published
    /// ([`EpochError::Unknown`]).
    Unknown = 2,
    /// Handshake version mismatch; the attached generation field carries the
    /// server's protocol version instead.
    VersionMismatch = 3,
    /// The peer sent a frame the server could not parse or did not expect.
    Malformed = 4,
}

impl ErrorCode {
    fn of(byte: u8) -> Result<ErrorCode, WireError> {
        Ok(match byte {
            1 => ErrorCode::Evicted,
            2 => ErrorCode::Unknown,
            3 => ErrorCode::VersionMismatch,
            4 => ErrorCode::Malformed,
            other => return Err(WireError::Malformed(format!("error code {other}"))),
        })
    }
}

/// A decoded protocol message — request, response or pushed feed batch.
///
/// Messages are transient: one lives exactly as long as it takes to encode
/// it into a frame or hand the decoded payload to the caller, so the size
/// skew between a bare `Pin` and an `EntityReply` never sits in a hot
/// collection.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum Message {
    /// Connection opener: magic + the client's protocol version.
    Hello {
        /// The client's [`PROTOCOL_VERSION`].
        version: u64,
    },
    /// Handshake accepted: the server's version and the served relation's
    /// schema, so the client can interpret rows and assemble snapshots.
    HelloOk {
        /// The server's [`PROTOCOL_VERSION`].
        version: u64,
        /// The served relation's schema.
        schema: SchemaRef,
    },
    /// A failed request (or a failed handshake).  `detail` is diagnostic
    /// only; `code` + `value` are the machine-readable part.
    Error {
        /// What went wrong.
        code: ErrorCode,
        /// The generation involved (or the server version for
        /// [`ErrorCode::VersionMismatch`]).
        value: u64,
        /// Human-readable diagnostic.
        detail: String,
    },
    /// Pin the current epoch.
    Pin,
    /// Pin the earliest retained epoch of `generation`.
    PinAt {
        /// The generation to pin.
        generation: Generation,
    },
    /// Point read: the repaired row of `row`'s entity at `generation`.
    RepairedRow {
        /// Global row id.
        row: RowId,
        /// The pinned generation to answer at.
        generation: Generation,
    },
    /// Point read: the full entity owning `row` at `generation`.
    EntityResult {
        /// Global row id.
        row: RowId,
        /// The pinned generation to answer at.
        generation: Generation,
    },
    /// Whole-block delta between `since` and the current epoch.
    ChangesSince {
        /// The base generation.
        since: Generation,
    },
    /// Switch the connection into feed mode.
    Subscribe,
    /// A pinned epoch: its publish id, generation and live-row count.
    EpochRef {
        /// The epoch's publish identity.
        epoch: EpochId,
        /// The row-batch generation it reflects.
        generation: Generation,
        /// Number of live rows it pins.
        rows: u64,
    },
    /// Answer to [`Message::RepairedRow`]: the repaired values, or `None`
    /// when the row was not live (or its entity materializes no row).
    RowReply {
        /// The repaired row, if any.
        row: Option<Vec<Value>>,
    },
    /// Answer to [`Message::EntityResult`].
    EntityReply {
        /// The entity view, or `None` when the row was not live.
        entity: Option<EntityView>,
    },
    /// Answer to [`Message::ChangesSince`].
    Delta {
        /// The whole-block snapshot delta.
        delta: SnapshotDelta,
    },
    /// Subscription accepted; the cursor starts at this epoch.
    SubOk {
        /// The cursor's starting epoch.
        epoch: EpochId,
        /// The cursor's starting generation.
        generation: Generation,
    },
    /// One pushed change batch (feed mode).
    Feed {
        /// The entity-level changes since the subscriber's cursor.
        batch: ChangeBatch,
    },
}

/// Decode-side failures.  Encoding is infallible.
#[derive(Debug)]
pub enum WireError {
    /// The underlying transport failed.
    Io(io::Error),
    /// A frame announced a payload larger than [`MAX_FRAME`].
    Oversized(u32),
    /// An unknown message-type byte.
    UnknownType(u8),
    /// Structurally invalid payload bytes.
    Malformed(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "transport: {e}"),
            WireError::Oversized(n) => write!(f, "frame of {n} bytes exceeds MAX_FRAME"),
            WireError::UnknownType(t) => write!(f, "unknown message type 0x{t:02x}"),
            WireError::Malformed(d) => write!(f, "malformed payload: {d}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// primitive encoders
// ---------------------------------------------------------------------------

/// Append an unsigned LEB128 varint.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Zigzag-map a signed integer onto an unsigned one (`0, -1, 1, -2, …` →
/// `0, 1, 2, 3, …`) and append it as a varint.
pub fn put_zigzag(out: &mut Vec<u8>, v: i64) {
    put_varint(out, ((v << 1) ^ (v >> 63)) as u64);
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    put_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(u8::from(v));
}

fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(0),
        Value::Bool(b) => {
            out.push(1);
            put_bool(out, *b);
        }
        Value::Int(i) => {
            out.push(2);
            put_zigzag(out, *i);
        }
        Value::Float(x) => {
            out.push(3);
            put_f64(out, *x);
        }
        Value::Str(s) => {
            out.push(4);
            put_string(out, s);
        }
    }
}

fn put_values(out: &mut Vec<u8>, values: &[Value]) {
    put_varint(out, values.len() as u64);
    for v in values {
        put_value(out, v);
    }
}

fn put_opt_values(out: &mut Vec<u8>, values: &Option<Vec<Value>>) {
    match values {
        None => out.push(0),
        Some(vs) => {
            out.push(1);
            put_values(out, vs);
        }
    }
}

fn put_block_key(out: &mut Vec<u8>, key: &BlockKey) {
    match key {
        BlockKey::Key(s) => {
            out.push(0);
            put_string(out, s);
        }
        BlockKey::Singleton(id) => {
            out.push(1);
            put_varint(out, id.0);
        }
    }
}

fn put_chase_stats(out: &mut Vec<u8>, s: &ChaseStats) {
    for n in [
        s.ground_steps,
        s.pairs_considered,
        s.steps_considered,
        s.steps_applied,
        s.noop_steps,
        s.order_pairs_added,
        s.target_assignments,
        s.full_checks,
        s.delta_checks,
        s.delta_steps_replayed,
    ] {
        put_varint(out, n as u64);
    }
}

fn put_entity_result(out: &mut Vec<u8>, r: &EntityResult) {
    put_varint(out, r.entity as u64);
    put_varint(out, r.records.len() as u64);
    for &rec in &r.records {
        put_varint(out, rec as u64);
    }
    out.push(match r.outcome {
        EntityOutcome::Complete => 0,
        EntityOutcome::Suggested => 1,
        EntityOutcome::NeedsUser => 2,
        EntityOutcome::NotChurchRosser => 3,
    });
    put_values(out, r.deduced.values());
    match &r.suggestion {
        None => out.push(0),
        Some(t) => {
            out.push(1);
            put_values(out, t.values());
        }
    }
    match &r.suggestion_error {
        None => out.push(0),
        Some(e) => {
            out.push(1);
            put_string(out, e);
        }
    }
    match &r.conflict {
        None => out.push(0),
        Some(c) => {
            out.push(1);
            put_string(out, &c.rule);
            put_varint(out, c.attr.0 as u64);
            put_string(out, &c.detail);
        }
    }
    put_chase_stats(out, &r.stats);
}

fn put_entity_view(out: &mut Vec<u8>, e: &EntityView) {
    put_varint(out, e.records.len() as u64);
    for r in &e.records {
        put_varint(out, r.0);
    }
    put_opt_values(out, &e.repaired);
    put_entity_result(out, &e.result);
}

fn put_opt_entity_view(out: &mut Vec<u8>, e: &Option<EntityView>) {
    match e {
        None => out.push(0),
        Some(view) => {
            out.push(1);
            put_entity_view(out, view);
        }
    }
}

fn put_resolve_stats(out: &mut Vec<u8>, s: &ResolveStats) {
    for n in [
        s.pairs_considered,
        s.pruned_by_length,
        s.pruned_by_fingerprint,
        s.dp_runs,
    ] {
        put_varint(out, n as u64);
    }
}

fn put_decision(out: &mut Vec<u8>, d: &MatchDecision) {
    put_varint(out, d.left as u64);
    put_varint(out, d.right as u64);
    put_f64(out, d.similarity);
    put_bool(out, d.matched);
    out.push(match d.pruned {
        None => 0,
        Some(PruneStage::Length) => 1,
        Some(PruneStage::Fingerprint) => 2,
    });
}

fn put_block_view(out: &mut Vec<u8>, b: &BlockView) {
    put_block_key(out, &b.key);
    put_varint(out, b.rows.len() as u64);
    for (id, tuple) in &b.rows {
        put_varint(out, id.0);
        put_values(out, tuple.values());
    }
    put_varint(out, b.decisions.len() as u64);
    for d in &b.decisions {
        put_decision(out, d);
    }
    put_varint(out, b.entities.len() as u64);
    for e in &b.entities {
        put_entity_view(out, e);
    }
    put_resolve_stats(out, &b.stats);
}

fn put_delta(out: &mut Vec<u8>, d: &SnapshotDelta) {
    put_varint(out, d.from.0);
    put_varint(out, d.from_epoch.0);
    put_varint(out, d.to.0);
    put_varint(out, d.to_epoch.0);
    put_varint(out, d.changes.len() as u64);
    for change in &d.changes {
        put_block_key(out, &change.key);
        match &change.after {
            None => out.push(0),
            Some(view) => {
                out.push(1);
                put_block_view(out, view);
            }
        }
    }
}

fn put_change_batch(out: &mut Vec<u8>, b: &ChangeBatch) {
    put_varint(out, b.from.0);
    put_varint(out, b.from_epoch.0);
    put_varint(out, b.to.0);
    put_varint(out, b.to_epoch.0);
    put_bool(out, b.resync);
    put_varint(out, b.changes.len() as u64);
    for change in &b.changes {
        put_block_key(out, &change.block);
        match &change.kind {
            EntityChangeKind::Upserted(view) => {
                out.push(0);
                put_entity_view(out, view);
            }
            EntityChangeKind::Removed { records } => {
                out.push(1);
                put_varint(out, records.len() as u64);
                for r in records {
                    put_varint(out, r.0);
                }
            }
        }
    }
}

fn put_schema(out: &mut Vec<u8>, schema: &Schema) {
    put_string(out, schema.name());
    put_varint(out, schema.arity() as u64);
    for attr in schema.attributes() {
        put_string(out, &attr.name);
        out.push(match attr.ty {
            DataType::Bool => 0,
            DataType::Int => 1,
            DataType::Float => 2,
            DataType::Text => 3,
        });
    }
}

// ---------------------------------------------------------------------------
// primitive decoders
// ---------------------------------------------------------------------------

/// A cursor over one frame's payload bytes.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn byte(&mut self) -> Result<u8, WireError> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or_else(|| WireError::Malformed("payload truncated".into()))?;
        self.pos += 1;
        Ok(b)
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or_else(|| WireError::Malformed("payload truncated".into()))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn varint(&mut self) -> Result<u64, WireError> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.byte()?;
            if shift == 63 && byte > 1 {
                return Err(WireError::Malformed("varint overflows u64".into()));
            }
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(WireError::Malformed("varint longer than 10 bytes".into()));
            }
        }
    }

    fn zigzag(&mut self) -> Result<i64, WireError> {
        let v = self.varint()?;
        Ok(((v >> 1) as i64) ^ -((v & 1) as i64))
    }

    fn usize(&mut self) -> Result<usize, WireError> {
        usize::try_from(self.varint()?)
            .map_err(|_| WireError::Malformed("count exceeds usize".into()))
    }

    /// A sequence count, sanity-bounded by the remaining payload (every
    /// element costs at least one byte) so a corrupt count cannot trigger a
    /// huge allocation.
    fn count(&mut self) -> Result<usize, WireError> {
        let n = self.usize()?;
        if n > self.buf.len() - self.pos {
            return Err(WireError::Malformed(format!(
                "count {n} exceeds remaining payload"
            )));
        }
        Ok(n)
    }

    fn string(&mut self) -> Result<String, WireError> {
        let len = self.count()?;
        let bytes = self.bytes(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| WireError::Malformed("string is not UTF-8".into()))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        let bytes = self.bytes(8)?;
        Ok(f64::from_bits(u64::from_le_bytes(
            bytes.try_into().expect("sliced 8 bytes"),
        )))
    }

    fn bool(&mut self) -> Result<bool, WireError> {
        match self.byte()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(WireError::Malformed(format!("bool byte {other}"))),
        }
    }

    fn value(&mut self) -> Result<Value, WireError> {
        Ok(match self.byte()? {
            0 => Value::Null,
            1 => Value::Bool(self.bool()?),
            2 => Value::Int(self.zigzag()?),
            3 => Value::Float(self.f64()?),
            4 => Value::Str(self.string()?.into()),
            other => return Err(WireError::Malformed(format!("value tag {other}"))),
        })
    }

    fn values(&mut self) -> Result<Vec<Value>, WireError> {
        let n = self.count()?;
        (0..n).map(|_| self.value()).collect()
    }

    fn opt_values(&mut self) -> Result<Option<Vec<Value>>, WireError> {
        Ok(match self.byte()? {
            0 => None,
            1 => Some(self.values()?),
            other => return Err(WireError::Malformed(format!("option byte {other}"))),
        })
    }

    fn block_key(&mut self) -> Result<BlockKey, WireError> {
        Ok(match self.byte()? {
            0 => BlockKey::Key(self.string()?),
            1 => BlockKey::Singleton(RowId(self.varint()?)),
            other => return Err(WireError::Malformed(format!("block-key tag {other}"))),
        })
    }

    fn row_ids(&mut self) -> Result<Vec<RowId>, WireError> {
        let n = self.count()?;
        (0..n).map(|_| Ok(RowId(self.varint()?))).collect()
    }

    fn chase_stats(&mut self) -> Result<ChaseStats, WireError> {
        Ok(ChaseStats {
            ground_steps: self.usize()?,
            pairs_considered: self.usize()?,
            steps_considered: self.usize()?,
            steps_applied: self.usize()?,
            noop_steps: self.usize()?,
            order_pairs_added: self.usize()?,
            target_assignments: self.usize()?,
            full_checks: self.usize()?,
            delta_checks: self.usize()?,
            delta_steps_replayed: self.usize()?,
        })
    }

    fn entity_result(&mut self) -> Result<EntityResult, WireError> {
        let entity = self.usize()?;
        let n = self.count()?;
        let records = (0..n)
            .map(|_| self.usize())
            .collect::<Result<Vec<_>, _>>()?;
        let outcome = match self.byte()? {
            0 => EntityOutcome::Complete,
            1 => EntityOutcome::Suggested,
            2 => EntityOutcome::NeedsUser,
            3 => EntityOutcome::NotChurchRosser,
            other => return Err(WireError::Malformed(format!("outcome tag {other}"))),
        };
        let deduced = TargetTuple::from_values(self.values()?);
        let suggestion = match self.byte()? {
            0 => None,
            1 => Some(TargetTuple::from_values(self.values()?)),
            other => return Err(WireError::Malformed(format!("option byte {other}"))),
        };
        let suggestion_error = match self.byte()? {
            0 => None,
            1 => Some(self.string()?),
            other => return Err(WireError::Malformed(format!("option byte {other}"))),
        };
        let conflict = match self.byte()? {
            0 => None,
            1 => Some(Conflict {
                rule: self.string()?,
                attr: AttrId(self.usize()?),
                detail: self.string()?,
            }),
            other => return Err(WireError::Malformed(format!("option byte {other}"))),
        };
        let stats = self.chase_stats()?;
        Ok(EntityResult {
            entity,
            records,
            outcome,
            deduced,
            suggestion,
            suggestion_error,
            conflict,
            stats,
        })
    }

    fn entity_view(&mut self) -> Result<EntityView, WireError> {
        Ok(EntityView {
            records: self.row_ids()?,
            repaired: self.opt_values()?,
            result: self.entity_result()?,
        })
    }

    fn opt_entity_view(&mut self) -> Result<Option<EntityView>, WireError> {
        Ok(match self.byte()? {
            0 => None,
            1 => Some(self.entity_view()?),
            other => return Err(WireError::Malformed(format!("option byte {other}"))),
        })
    }

    fn resolve_stats(&mut self) -> Result<ResolveStats, WireError> {
        Ok(ResolveStats {
            pairs_considered: self.usize()?,
            pruned_by_length: self.usize()?,
            pruned_by_fingerprint: self.usize()?,
            dp_runs: self.usize()?,
        })
    }

    fn decision(&mut self) -> Result<MatchDecision, WireError> {
        Ok(MatchDecision {
            left: self.usize()?,
            right: self.usize()?,
            similarity: self.f64()?,
            matched: self.bool()?,
            pruned: match self.byte()? {
                0 => None,
                1 => Some(PruneStage::Length),
                2 => Some(PruneStage::Fingerprint),
                other => return Err(WireError::Malformed(format!("prune tag {other}"))),
            },
        })
    }

    fn block_view(&mut self) -> Result<BlockView, WireError> {
        let key = self.block_key()?;
        let n = self.count()?;
        let rows = (0..n)
            .map(|_| Ok((RowId(self.varint()?), Tuple::new(self.values()?))))
            .collect::<Result<Vec<_>, WireError>>()?;
        let n = self.count()?;
        let decisions = (0..n)
            .map(|_| self.decision())
            .collect::<Result<Vec<_>, _>>()?;
        let n = self.count()?;
        let entities = (0..n)
            .map(|_| self.entity_view())
            .collect::<Result<Vec<_>, _>>()?;
        let stats = self.resolve_stats()?;
        Ok(BlockView {
            key,
            rows,
            decisions,
            entities,
            stats,
        })
    }

    fn delta(&mut self) -> Result<SnapshotDelta, WireError> {
        let from = Generation(self.varint()?);
        let from_epoch = EpochId(self.varint()?);
        let to = Generation(self.varint()?);
        let to_epoch = EpochId(self.varint()?);
        let n = self.count()?;
        let changes = (0..n)
            .map(|_| {
                let key = self.block_key()?;
                let after = match self.byte()? {
                    0 => None,
                    1 => Some(self.block_view()?),
                    other => return Err(WireError::Malformed(format!("option byte {other}"))),
                };
                Ok(BlockChange { key, after })
            })
            .collect::<Result<Vec<_>, WireError>>()?;
        Ok(SnapshotDelta {
            from,
            from_epoch,
            to,
            to_epoch,
            changes,
        })
    }

    fn change_batch(&mut self) -> Result<ChangeBatch, WireError> {
        let from = Generation(self.varint()?);
        let from_epoch = EpochId(self.varint()?);
        let to = Generation(self.varint()?);
        let to_epoch = EpochId(self.varint()?);
        let resync = self.bool()?;
        let n = self.count()?;
        let changes = (0..n)
            .map(|_| {
                let block = self.block_key()?;
                let kind = match self.byte()? {
                    0 => EntityChangeKind::Upserted(Box::new(self.entity_view()?)),
                    1 => EntityChangeKind::Removed {
                        records: self.row_ids()?,
                    },
                    other => return Err(WireError::Malformed(format!("change tag {other}"))),
                };
                Ok(EntityChange { block, kind })
            })
            .collect::<Result<Vec<_>, WireError>>()?;
        Ok(ChangeBatch {
            from,
            from_epoch,
            to,
            to_epoch,
            resync,
            changes,
        })
    }

    fn schema(&mut self) -> Result<SchemaRef, WireError> {
        let name = self.string()?;
        let n = self.count()?;
        let mut builder = Schema::builder(name);
        for _ in 0..n {
            let attr = self.string()?;
            let ty = match self.byte()? {
                0 => DataType::Bool,
                1 => DataType::Int,
                2 => DataType::Float,
                3 => DataType::Text,
                other => return Err(WireError::Malformed(format!("data-type tag {other}"))),
            };
            builder = builder.attr(attr, ty);
        }
        Ok(builder.build())
    }

    fn finish(self) -> Result<(), WireError> {
        if self.pos != self.buf.len() {
            return Err(WireError::Malformed(format!(
                "{} trailing bytes after message",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

impl Message {
    /// The message's wire type tag.
    pub fn msg_type(&self) -> MsgType {
        match self {
            Message::Hello { .. } => MsgType::Hello,
            Message::HelloOk { .. } => MsgType::HelloOk,
            Message::Error { .. } => MsgType::Error,
            Message::Pin => MsgType::Pin,
            Message::PinAt { .. } => MsgType::PinAt,
            Message::RepairedRow { .. } => MsgType::RepairedRow,
            Message::EntityResult { .. } => MsgType::EntityResult,
            Message::ChangesSince { .. } => MsgType::ChangesSince,
            Message::Subscribe => MsgType::Subscribe,
            Message::EpochRef { .. } => MsgType::EpochRef,
            Message::RowReply { .. } => MsgType::RowReply,
            Message::EntityReply { .. } => MsgType::EntityReply,
            Message::Delta { .. } => MsgType::Delta,
            Message::SubOk { .. } => MsgType::SubOk,
            Message::Feed { .. } => MsgType::Feed,
        }
    }

    /// Encode the message as one frame: `u32` little-endian payload length,
    /// then the payload (type byte + body).
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(16);
        payload.push(self.msg_type() as u8);
        match self {
            Message::Hello { version } => {
                payload.extend_from_slice(&MAGIC);
                put_varint(&mut payload, *version);
            }
            Message::HelloOk { version, schema } => {
                put_varint(&mut payload, *version);
                put_schema(&mut payload, schema);
            }
            Message::Error {
                code,
                value,
                detail,
            } => {
                payload.push(*code as u8);
                put_varint(&mut payload, *value);
                put_string(&mut payload, detail);
            }
            Message::Pin | Message::Subscribe => {}
            Message::PinAt { generation } => put_varint(&mut payload, generation.0),
            Message::RepairedRow { row, generation }
            | Message::EntityResult { row, generation } => {
                put_varint(&mut payload, row.0);
                put_varint(&mut payload, generation.0);
            }
            Message::ChangesSince { since } => put_varint(&mut payload, since.0),
            Message::EpochRef {
                epoch,
                generation,
                rows,
            } => {
                put_varint(&mut payload, epoch.0);
                put_varint(&mut payload, generation.0);
                put_varint(&mut payload, *rows);
            }
            Message::RowReply { row } => put_opt_values(&mut payload, row),
            Message::EntityReply { entity } => put_opt_entity_view(&mut payload, entity),
            Message::Delta { delta } => put_delta(&mut payload, delta),
            Message::SubOk { epoch, generation } => {
                put_varint(&mut payload, epoch.0);
                put_varint(&mut payload, generation.0);
            }
            Message::Feed { batch } => put_change_batch(&mut payload, batch),
        }
        let mut frame = Vec::with_capacity(4 + payload.len());
        frame.extend_from_slice(
            &u32::try_from(payload.len())
                .expect("frame fits u32")
                .to_le_bytes(),
        );
        frame.extend_from_slice(&payload);
        frame
    }

    /// Decode one frame payload (the bytes after the length prefix).
    pub fn decode(payload: &[u8]) -> Result<Message, WireError> {
        let mut r = Reader::new(payload);
        let msg_type = MsgType::of(r.byte()?)?;
        let message = match msg_type {
            MsgType::Hello => {
                let magic = r.bytes(4)?;
                if magic != MAGIC {
                    return Err(WireError::Malformed(format!("bad magic {magic:02x?}")));
                }
                Message::Hello {
                    version: r.varint()?,
                }
            }
            MsgType::HelloOk => Message::HelloOk {
                version: r.varint()?,
                schema: r.schema()?,
            },
            MsgType::Error => Message::Error {
                code: ErrorCode::of(r.byte()?)?,
                value: r.varint()?,
                detail: r.string()?,
            },
            MsgType::Pin => Message::Pin,
            MsgType::PinAt => Message::PinAt {
                generation: Generation(r.varint()?),
            },
            MsgType::RepairedRow => Message::RepairedRow {
                row: RowId(r.varint()?),
                generation: Generation(r.varint()?),
            },
            MsgType::EntityResult => Message::EntityResult {
                row: RowId(r.varint()?),
                generation: Generation(r.varint()?),
            },
            MsgType::ChangesSince => Message::ChangesSince {
                since: Generation(r.varint()?),
            },
            MsgType::Subscribe => Message::Subscribe,
            MsgType::EpochRef => Message::EpochRef {
                epoch: EpochId(r.varint()?),
                generation: Generation(r.varint()?),
                rows: r.varint()?,
            },
            MsgType::RowReply => Message::RowReply {
                row: r.opt_values()?,
            },
            MsgType::EntityReply => Message::EntityReply {
                entity: r.opt_entity_view()?,
            },
            MsgType::Delta => Message::Delta { delta: r.delta()? },
            MsgType::SubOk => Message::SubOk {
                epoch: EpochId(r.varint()?),
                generation: Generation(r.varint()?),
            },
            MsgType::Feed => Message::Feed {
                batch: r.change_batch()?,
            },
        };
        r.finish()?;
        Ok(message)
    }
}

/// Map an [`EpochError`] onto its wire error frame.
pub fn epoch_error_message(e: EpochError) -> Message {
    let (code, value) = match e {
        EpochError::Evicted(g) => (ErrorCode::Evicted, g.0),
        EpochError::Unknown(g) => (ErrorCode::Unknown, g.0),
    };
    Message::Error {
        code,
        value,
        detail: e.to_string(),
    }
}

/// Map a wire error frame back onto the [`EpochError`] it carried, if it
/// carries one.
pub fn epoch_error_of(code: ErrorCode, value: u64) -> Option<EpochError> {
    match code {
        ErrorCode::Evicted => Some(EpochError::Evicted(Generation(value))),
        ErrorCode::Unknown => Some(EpochError::Unknown(Generation(value))),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// framed transport
// ---------------------------------------------------------------------------

/// Write one encoded frame to a stream and flush it.
pub fn write_frame(w: &mut impl Write, message: &Message) -> io::Result<()> {
    w.write_all(&message.encode())?;
    w.flush()
}

/// An incremental frame reader that tolerates read timeouts: partial frames
/// are buffered across calls, so a `WouldBlock`/`TimedOut` in the middle of
/// a frame never loses bytes.  This is what lets a connection handler poll
/// its socket on a short timeout (to notice shutdown or a half-close)
/// without corrupting the stream.
#[derive(Debug)]
pub struct FrameReader {
    buf: Vec<u8>,
    /// Bytes of `buf` that are filled.
    len: usize,
    /// The current frame's announced payload length, once the 4-byte prefix
    /// is complete.
    expect: Option<usize>,
}

/// One poll of a [`FrameReader`].
#[derive(Debug)]
pub enum Poll {
    /// A complete frame payload arrived.
    Frame(Vec<u8>),
    /// No complete frame yet (the read timed out mid-stream); poll again.
    Pending,
    /// The peer closed its write half cleanly (EOF).
    Closed,
}

impl Default for FrameReader {
    fn default() -> Self {
        FrameReader::new()
    }
}

impl FrameReader {
    /// A reader with an empty buffer.
    pub fn new() -> Self {
        FrameReader {
            buf: vec![0; 4096],
            len: 0,
            expect: None,
        }
    }

    /// Try to complete one frame from `r`.  Returns [`Poll::Pending`] when
    /// the read timed out before a frame completed (call again), and
    /// [`Poll::Closed`] on EOF at a frame boundary.  EOF in the *middle* of
    /// a frame is an error (the peer died mid-send).
    pub fn poll(&mut self, r: &mut impl Read) -> Result<Poll, WireError> {
        loop {
            // complete frame already buffered?
            if self.expect.is_none() && self.len >= 4 {
                let announced =
                    u32::from_le_bytes(self.buf[..4].try_into().expect("sliced 4 bytes"));
                if announced > MAX_FRAME {
                    return Err(WireError::Oversized(announced));
                }
                let need = announced as usize;
                if self.buf.len() < 4 + need {
                    self.buf.resize(4 + need, 0);
                }
                self.expect = Some(need);
            }
            if let Some(need) = self.expect {
                if self.len >= 4 + need {
                    let payload = self.buf[4..4 + need].to_vec();
                    self.buf.copy_within(4 + need..self.len, 0);
                    self.len -= 4 + need;
                    self.expect = None;
                    return Ok(Poll::Frame(payload));
                }
            }
            // need more bytes
            if self.len == self.buf.len() {
                self.buf.resize(self.buf.len() * 2, 0);
            }
            match r.read(&mut self.buf[self.len..]) {
                Ok(0) => {
                    return if self.len == 0 {
                        Ok(Poll::Closed)
                    } else {
                        Err(WireError::Malformed("EOF mid-frame".into()))
                    };
                }
                Ok(n) => self.len += n,
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    return Ok(Poll::Pending);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(WireError::Io(e)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes
            .iter()
            .map(|b| format!("{b:02X}"))
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// Split a full frame into its length prefix and payload, check the
    /// prefix, and decode the payload.
    fn decode_frame(frame: &[u8]) -> Message {
        assert!(frame.len() >= 4, "frame shorter than its length prefix");
        let announced = u32::from_le_bytes(frame[..4].try_into().unwrap()) as usize;
        assert_eq!(frame.len(), 4 + announced, "length prefix must match");
        Message::decode(&frame[4..]).expect("frame payload decodes")
    }

    /// Encode → decode must reproduce the message exactly.  Compared via
    /// `Debug` strings: the engine types carry no `PartialEq`, and `f64`'s
    /// `Debug` prints the shortest round-trip representation, so identical
    /// strings ⇔ identical bits.
    fn roundtrip(msg: &Message) {
        let decoded = decode_frame(&msg.encode());
        assert_eq!(format!("{msg:?}"), format!("{decoded:?}"));
    }

    fn sample_schema() -> SchemaRef {
        Schema::builder("stat")
            .attr("name", DataType::Text)
            .attr("active", DataType::Bool)
            .attr("rnds", DataType::Int)
            .attr("ppg", DataType::Float)
            .build()
    }

    fn sample_result() -> EntityResult {
        EntityResult {
            entity: 3,
            records: vec![0, 2],
            outcome: EntityOutcome::Suggested,
            deduced: TargetTuple::from_values(vec![
                Value::text("mj"),
                Value::Null,
                Value::Int(-82),
                Value::Float(31.2),
            ]),
            suggestion: Some(TargetTuple::from_values(vec![
                Value::text("mj"),
                Value::Bool(true),
                Value::Int(82),
                Value::Float(0.0),
            ])),
            suggestion_error: Some("ties at k=2".into()),
            conflict: Some(Conflict {
                rule: "cur".into(),
                attr: AttrId(2),
                detail: "cycle".into(),
            }),
            stats: ChaseStats {
                ground_steps: 1,
                pairs_considered: 2,
                steps_considered: 3,
                steps_applied: 4,
                noop_steps: 5,
                order_pairs_added: 6,
                target_assignments: 7,
                full_checks: 8,
                delta_checks: 9,
                delta_steps_replayed: 10,
            },
        }
    }

    fn sample_view() -> EntityView {
        EntityView {
            records: vec![RowId(4), RowId(300)],
            repaired: Some(vec![
                Value::text("mj"),
                Value::Bool(false),
                Value::Int(27),
                Value::Float(-0.0),
            ]),
            result: sample_result(),
        }
    }

    fn sample_block_view() -> BlockView {
        BlockView {
            key: BlockKey::Key("mj".into()),
            rows: vec![
                (RowId(4), Tuple::new(vec![Value::text("mj"), Value::Int(1)])),
                (
                    RowId(300),
                    Tuple::new(vec![Value::Null, Value::Float(f64::NAN)]),
                ),
            ],
            decisions: vec![
                MatchDecision {
                    left: 0,
                    right: 1,
                    similarity: 0.875,
                    matched: true,
                    pruned: None,
                },
                MatchDecision {
                    left: 0,
                    right: 2,
                    similarity: 0.0,
                    matched: false,
                    pruned: Some(PruneStage::Fingerprint),
                },
            ],
            entities: vec![sample_view()],
            stats: ResolveStats {
                pairs_considered: 3,
                pruned_by_length: 1,
                pruned_by_fingerprint: 1,
                dp_runs: 1,
            },
        }
    }

    // -- the normative byte examples -------------------------------------

    /// Every byte-level example in `docs/PROTOCOL.md` is produced here by
    /// the real encoder and must appear verbatim in the document — the
    /// spec and the codec cannot drift apart.
    #[test]
    fn protocol_md_examples_are_exact() {
        let doc = include_str!(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../docs/PROTOCOL.md"
        ));

        let mut examples: Vec<(&str, Vec<u8>)> = Vec::new();

        let mut b = Vec::new();
        put_varint(&mut b, 300);
        examples.push(("AC 02", b));

        let mut b = Vec::new();
        put_varint(&mut b, 1_000_000);
        examples.push(("C0 84 3D", b));

        let mut b = Vec::new();
        put_zigzag(&mut b, -3);
        examples.push(("05", b));

        let mut b = Vec::new();
        put_zigzag(&mut b, -1000);
        examples.push(("CF 0F", b));

        let mut b = Vec::new();
        put_value(&mut b, &Value::Int(27));
        examples.push(("02 36", b));

        let mut b = Vec::new();
        put_value(&mut b, &Value::text("mj"));
        examples.push(("04 02 6D 6A", b));

        let mut b = Vec::new();
        put_value(&mut b, &Value::Float(31.2));
        examples.push(("03 33 33 33 33 33 33 3F 40", b));

        examples.push(("01 00 00 00 10", Message::Pin.encode()));
        examples.push((
            "06 00 00 00 01 52 4C 41 43 01",
            Message::Hello {
                version: PROTOCOL_VERSION,
            }
            .encode(),
        ));
        examples.push((
            "02 00 00 00 11 07",
            Message::PinAt {
                generation: Generation(7),
            }
            .encode(),
        ));
        examples.push((
            "03 00 00 00 12 05 07",
            Message::RepairedRow {
                row: RowId(5),
                generation: Generation(7),
            }
            .encode(),
        ));
        examples.push((
            "08 00 00 00 03 01 03 04 67 6F 6E 65",
            Message::Error {
                code: ErrorCode::Evicted,
                value: 3,
                detail: "gone".into(),
            }
            .encode(),
        ));

        for (documented, actual) in &examples {
            assert_eq!(
                &hex(actual),
                documented,
                "encoder output drifted from the PROTOCOL.md example `{documented}`"
            );
            assert!(
                doc.contains(documented),
                "docs/PROTOCOL.md no longer shows the example bytes `{documented}`"
            );
        }

        // the named constants the doc quotes
        assert!(
            doc.contains("67108864"),
            "MAX_FRAME value must be documented"
        );
        assert_eq!(MAX_FRAME, 67_108_864);
        assert!(
            doc.contains("# The relacc wire protocol, version 1") && PROTOCOL_VERSION == 1,
            "the documented protocol version must match PROTOCOL_VERSION"
        );
    }

    // -- roundtrips ------------------------------------------------------

    #[test]
    fn every_message_roundtrips() {
        roundtrip(&Message::Hello { version: 1 });
        // HelloOk is compared structurally: the schema's Debug includes a
        // name-index map with nondeterministic order
        let schema = sample_schema();
        match decode_frame(
            &Message::HelloOk {
                version: 1,
                schema: schema.clone(),
            }
            .encode(),
        ) {
            Message::HelloOk {
                version,
                schema: decoded,
            } => {
                assert_eq!(version, 1);
                assert_eq!(decoded.name(), schema.name());
                assert_eq!(
                    format!("{:?}", decoded.attributes()),
                    format!("{:?}", schema.attributes())
                );
            }
            other => panic!("expected HelloOk, got {other:?}"),
        }
        roundtrip(&Message::Error {
            code: ErrorCode::VersionMismatch,
            value: 9,
            detail: "server speaks protocol 9".into(),
        });
        roundtrip(&Message::Pin);
        roundtrip(&Message::Subscribe);
        roundtrip(&Message::PinAt {
            generation: Generation(u64::MAX),
        });
        roundtrip(&Message::RepairedRow {
            row: RowId(0),
            generation: Generation(0),
        });
        roundtrip(&Message::EntityResult {
            row: RowId(u64::MAX),
            generation: Generation(300),
        });
        roundtrip(&Message::ChangesSince {
            since: Generation(128),
        });
        roundtrip(&Message::EpochRef {
            epoch: EpochId(12),
            generation: Generation(7),
            rows: 40_000,
        });
        roundtrip(&Message::SubOk {
            epoch: EpochId(1),
            generation: Generation(1),
        });
        roundtrip(&Message::RowReply { row: None });
        roundtrip(&Message::RowReply {
            row: Some(vec![Value::Null, Value::Bool(true), Value::Int(i64::MIN)]),
        });
        roundtrip(&Message::EntityReply { entity: None });
        roundtrip(&Message::EntityReply {
            entity: Some(sample_view()),
        });
        roundtrip(&Message::Delta {
            delta: SnapshotDelta {
                from: Generation(2),
                from_epoch: EpochId(5),
                to: Generation(4),
                to_epoch: EpochId(9),
                changes: vec![
                    BlockChange {
                        key: BlockKey::Singleton(RowId(77)),
                        after: None,
                    },
                    BlockChange {
                        key: BlockKey::Key("mj".into()),
                        after: Some(sample_block_view()),
                    },
                ],
            },
        });
        roundtrip(&Message::Feed {
            batch: ChangeBatch {
                from: Generation(3),
                from_epoch: EpochId(6),
                to: Generation(9),
                to_epoch: EpochId(14),
                resync: true,
                changes: vec![
                    EntityChange {
                        block: BlockKey::Key("mj".into()),
                        kind: EntityChangeKind::Upserted(Box::new(sample_view())),
                    },
                    EntityChange {
                        block: BlockKey::Singleton(RowId(9)),
                        kind: EntityChangeKind::Removed {
                            records: vec![RowId(9), RowId(12)],
                        },
                    },
                ],
            },
        });
    }

    #[test]
    fn varints_cover_the_u64_range() {
        for v in [0u64, 1, 127, 128, 300, 16_383, 16_384, u64::MAX] {
            let mut b = Vec::new();
            put_varint(&mut b, v);
            let mut r = Reader::new(&b);
            assert_eq!(r.varint().unwrap(), v);
            r.finish().unwrap();
        }
        for v in [0i64, -1, 1, -3, 1000, -1000, i64::MIN, i64::MAX] {
            let mut b = Vec::new();
            put_zigzag(&mut b, v);
            let mut r = Reader::new(&b);
            assert_eq!(r.zigzag().unwrap(), v);
            r.finish().unwrap();
        }
    }

    #[test]
    fn floats_roundtrip_bit_identically() {
        // a NaN with a nonstandard payload, the negative zero, a subnormal
        for bits in [0x7ff8_dead_beef_0001u64, (-0.0f64).to_bits(), 1u64] {
            let msg = Message::RowReply {
                row: Some(vec![Value::Float(f64::from_bits(bits))]),
            };
            match decode_frame(&msg.encode()) {
                Message::RowReply { row: Some(values) } => match values[0] {
                    Value::Float(x) => assert_eq!(x.to_bits(), bits),
                    ref other => panic!("expected a float, got {other:?}"),
                },
                other => panic!("expected a RowReply, got {other:?}"),
            }
        }
    }

    // -- malformed payloads ----------------------------------------------

    fn expect_malformed(payload: &[u8]) {
        match Message::decode(payload) {
            Err(WireError::Malformed(_)) => {}
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn malformed_payloads_are_rejected() {
        expect_malformed(&[]); // empty payload
        expect_malformed(&[0x10, 0x00]); // trailing byte after Pin
        expect_malformed(&[0x01, b'X', b'L', b'A', b'C', 0x01]); // bad magic
        expect_malformed(&[0x11]); // PinAt with no generation
        expect_malformed(&[0x21, 0x02]); // RowReply with presence byte 2
        expect_malformed(&[0x21, 0x01, 0xFF, 0x01]); // count 255 > remaining
        expect_malformed(&[0x03, 0x09, 0x00, 0x00]); // unknown error code 9
        expect_malformed(&[
            // varint longer than 10 bytes
            0x11, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01,
        ]);
        match Message::decode(&[0x7F]) {
            Err(WireError::UnknownType(0x7F)) => {}
            other => panic!("expected UnknownType, got {other:?}"),
        }
    }

    // -- the frame reader ------------------------------------------------

    /// A reader that yields `data` in tiny chunks with a `WouldBlock`
    /// between every read — the worst-case behavior of a socket polled on
    /// a short timeout.
    struct Trickle {
        data: Vec<u8>,
        pos: usize,
        ready: bool,
    }

    impl io::Read for Trickle {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if !self.ready {
                self.ready = true;
                return Err(io::Error::from(io::ErrorKind::WouldBlock));
            }
            self.ready = false;
            if self.pos >= self.data.len() {
                return Ok(0);
            }
            let n = 1.min(buf.len());
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    #[test]
    fn frame_reader_survives_timeouts_mid_frame() {
        let first = Message::PinAt {
            generation: Generation(300),
        };
        let second = Message::Pin;
        let mut data = first.encode();
        data.extend_from_slice(&second.encode());
        let mut trickle = Trickle {
            data,
            pos: 0,
            ready: false,
        };
        let mut reader = FrameReader::new();
        let mut frames = Vec::new();
        loop {
            match reader.poll(&mut trickle).expect("stream stays well-formed") {
                Poll::Frame(payload) => frames.push(Message::decode(&payload).unwrap()),
                Poll::Pending => continue,
                Poll::Closed => break,
            }
        }
        assert_eq!(frames.len(), 2);
        assert_eq!(format!("{:?}", frames[0]), format!("{first:?}"));
        assert_eq!(format!("{:?}", frames[1]), format!("{second:?}"));
    }

    #[test]
    fn frame_reader_rejects_eof_mid_frame() {
        let mut truncated = Message::PinAt {
            generation: Generation(300),
        }
        .encode();
        truncated.pop();
        let mut trickle = Trickle {
            data: truncated,
            pos: 0,
            ready: false,
        };
        let mut reader = FrameReader::new();
        loop {
            match reader.poll(&mut trickle) {
                Ok(Poll::Pending) => continue,
                Err(WireError::Malformed(d)) => {
                    assert!(d.contains("EOF"), "unexpected detail: {d}");
                    return;
                }
                other => panic!("expected an EOF-mid-frame error, got {other:?}"),
            }
        }
    }

    #[test]
    fn frame_reader_rejects_oversized_announcements() {
        let mut data = (MAX_FRAME + 1).to_le_bytes().to_vec();
        data.push(0x10);
        let mut trickle = Trickle {
            data,
            pos: 0,
            ready: false,
        };
        let mut reader = FrameReader::new();
        loop {
            match reader.poll(&mut trickle) {
                Ok(Poll::Pending) => continue,
                Err(WireError::Oversized(n)) => {
                    assert_eq!(n, MAX_FRAME + 1);
                    return;
                }
                other => panic!("expected Oversized, got {other:?}"),
            }
        }
    }
}
