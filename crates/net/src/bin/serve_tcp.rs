//! `serve_tcp`: the smallest end-to-end deployment of the relacc serving
//! stack — an incremental engine under a scripted Med update stream, its
//! epochs served over TCP by [`relacc_net::NetServer`].
//!
//! The run is **bounded**: the driver applies the scripted batches (pacing
//! each one by `--pace-ms`), keeps the listener up for a final grace tick so
//! attached clients can drain their feeds, then shuts down and exits 0.
//! That makes the binary safe to run unattended in CI (the examples job
//! does), while still serving real traffic for however long the stream
//! runs: point clients and subscribers can attach to the printed address at
//! any time.
//!
//! ```text
//! serve_tcp [--port P] [--batches N] [--scale S] [--pace-ms MS]
//!   --port     listen port (default 0 = ephemeral; the bound address is printed)
//!   --batches  scripted row batches to apply before exiting (default 8)
//!   --scale    Med corpus scale factor (default 0.05)
//!   --pace-ms  sleep between scripted operations (default 50)
//! ```

use relacc_datagen::streaming::{med_stream, StreamConfig, StreamOp};
use relacc_engine::{BatchEngine, IncrementalEngine};
use relacc_net::NetServer;
use relacc_resolve::{BlockingStrategy, ResolveConfig};
use relacc_serve::Server;
use std::time::Duration;

struct Args {
    port: u16,
    batches: usize,
    scale: f64,
    pace_ms: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        port: 0,
        batches: 8,
        scale: 0.05,
        pace_ms: 50,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--port" => {
                args.port = value("--port")?
                    .parse()
                    .map_err(|e| format!("--port: {e}"))?
            }
            "--batches" => {
                args.batches = value("--batches")?
                    .parse()
                    .map_err(|e| format!("--batches: {e}"))?;
            }
            "--scale" => {
                args.scale = value("--scale")?
                    .parse()
                    .map_err(|e| format!("--scale: {e}"))?;
            }
            "--pace-ms" => {
                args.pace_ms = value("--pace-ms")?
                    .parse()
                    .map_err(|e| format!("--pace-ms: {e}"))?;
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("serve_tcp: {e}");
            std::process::exit(2);
        }
    };

    // the scripted workload: a Med corpus plus `--batches` update batches
    let config = StreamConfig {
        n_batches: args.batches,
        inserts_per_batch: 4,
        deletes_per_batch: 2,
        master_appends_per_batch: 1,
        seed: 57,
        ..StreamConfig::default()
    };
    let stream = med_stream(args.scale, 29, &config);
    let engine = BatchEngine::new(
        stream.relation.schema().clone(),
        stream.rules.clone(),
        stream.master.clone().into_iter().collect(),
    )
    .expect("scripted stream rules validate");
    let mut engine = IncrementalEngine::open(
        engine,
        stream.name.clone(),
        &stream.relation,
        ResolveConfig::on_attrs(stream.match_attrs.clone())
            .with_strategy(BlockingStrategy::ExactKey),
    );

    let mut net = NetServer::spawn(Server::new(&engine), ("127.0.0.1", args.port))
        .expect("bind the listen address");
    println!(
        "serve_tcp: serving {} ({} seed rows) on {} — {} scripted batches ahead",
        stream.name,
        stream.relation.rows().len(),
        net.local_addr(),
        args.batches,
    );

    let pace = Duration::from_millis(args.pace_ms);
    let mut applied = 0usize;
    for op in &stream.ops {
        match op {
            StreamOp::Rows(batch) => {
                engine.apply(batch).expect("scripted batches stay valid");
                applied += 1;
                println!(
                    "serve_tcp: committed batch {applied}/{} (generation {})",
                    args.batches,
                    engine.current_epoch().generation().0,
                );
            }
            StreamOp::MasterAppend(rows) => {
                engine
                    .apply_master_append(0, rows.clone())
                    .expect("scripted appends stay valid");
            }
        }
        std::thread::sleep(pace);
    }

    // one grace tick so attached subscribers can drain the final batch
    std::thread::sleep(Duration::from_millis(args.pace_ms.max(100)));
    net.shutdown();
    println!("serve_tcp: stream complete after {applied} batches, exiting 0");
}
