//! Blocking: partition a relation into small candidate groups before pairwise
//! matching, so entity resolution never compares all `O(n²)` record pairs.
//!
//! Two strategies are provided, both standard in the duplicate-detection
//! literature the paper builds on:
//!
//! * [`BlockingStrategy::ExactKey`] — records share a block when their
//!   (lower-cased, whitespace-normalized) key attributes are identical;
//! * [`BlockingStrategy::Prefix`] — records share a block when the first `n`
//!   characters of their concatenated key agree, tolerating suffix noise.

use relacc_model::{AttrId, Tuple, Value};
use std::collections::HashMap;

/// How records are assigned to blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockingStrategy {
    /// One block per distinct normalized key value.
    ExactKey,
    /// One block per normalized-key prefix of the given length.
    Prefix(usize),
}

/// Compute the blocking key of a record over the given key attributes:
/// lower-cased, whitespace-normalized concatenation of the key values
/// (nulls contribute nothing).
pub fn blocking_key(tuple: &Tuple, key_attrs: &[AttrId]) -> String {
    let mut parts: Vec<String> = Vec::with_capacity(key_attrs.len());
    for &attr in key_attrs {
        match tuple.value(attr) {
            Value::Null => {}
            v => parts.push(
                v.to_string()
                    .to_lowercase()
                    .split_whitespace()
                    .collect::<Vec<_>>()
                    .join(" "),
            ),
        }
    }
    parts.join("|")
}

/// Groups record indices into candidate blocks.
#[derive(Debug, Clone)]
pub struct Blocker {
    /// Attributes the blocking key is built from.
    pub key_attrs: Vec<AttrId>,
    /// The strategy in use.
    pub strategy: BlockingStrategy,
}

impl Blocker {
    /// A blocker over the given key attributes with the given strategy.
    pub fn new(key_attrs: Vec<AttrId>, strategy: BlockingStrategy) -> Self {
        Blocker {
            key_attrs,
            strategy,
        }
    }

    /// The block identifier of a record.
    pub fn block_of(&self, tuple: &Tuple) -> String {
        let key = blocking_key(tuple, &self.key_attrs);
        match self.strategy {
            BlockingStrategy::ExactKey => key,
            BlockingStrategy::Prefix(n) => key.chars().take(n).collect(),
        }
    }

    /// Partition record indices into blocks.  Records whose blocking key is
    /// empty (all key attributes null) each get a singleton block: with no key
    /// evidence at all it is safer to leave them unmerged than to lump them
    /// together.
    pub fn blocks(&self, tuples: &[Tuple]) -> Vec<Vec<usize>> {
        let mut by_key: HashMap<String, Vec<usize>> = HashMap::new();
        let mut singletons: Vec<Vec<usize>> = Vec::new();
        for (idx, tuple) in tuples.iter().enumerate() {
            let key = self.block_of(tuple);
            if key.is_empty() {
                singletons.push(vec![idx]);
            } else {
                by_key.entry(key).or_default().push(idx);
            }
        }
        let mut blocks: Vec<Vec<usize>> = by_key.into_values().collect();
        blocks.extend(singletons);
        // deterministic output order: by smallest member index
        blocks.sort_by_key(|b| b.iter().copied().min().unwrap_or(usize::MAX));
        blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(name: &str, team: &str) -> Tuple {
        Tuple::new(vec![Value::text(name), Value::text(team)])
    }

    #[test]
    fn blocking_key_normalizes_case_and_whitespace() {
        let a = t("Michael  Jordan", "Bulls");
        let b = t("michael jordan", "bulls");
        assert_eq!(
            blocking_key(&a, &[AttrId(0)]),
            blocking_key(&b, &[AttrId(0)])
        );
        assert_eq!(blocking_key(&a, &[AttrId(0)]), "michael jordan");
        assert_eq!(
            blocking_key(&a, &[AttrId(0), AttrId(1)]),
            "michael jordan|bulls"
        );
    }

    #[test]
    fn nulls_contribute_nothing_to_the_key() {
        let a = Tuple::new(vec![Value::Null, Value::text("Bulls")]);
        assert_eq!(blocking_key(&a, &[AttrId(0), AttrId(1)]), "bulls");
        assert_eq!(blocking_key(&a, &[AttrId(0)]), "");
    }

    #[test]
    fn exact_key_blocks_group_identical_keys() {
        let tuples = vec![
            t("Michael Jordan", "x"),
            t("Scottie Pippen", "y"),
            t("michael jordan", "z"),
        ];
        let blocker = Blocker::new(vec![AttrId(0)], BlockingStrategy::ExactKey);
        let blocks = blocker.blocks(&tuples);
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[0], vec![0, 2]);
        assert_eq!(blocks[1], vec![1]);
    }

    #[test]
    fn prefix_blocks_tolerate_suffix_noise() {
        let tuples = vec![
            t("Michael Jordan", "x"),
            t("Michael Jordan Jr", "y"),
            t("Scottie Pippen", "z"),
        ];
        let blocker = Blocker::new(vec![AttrId(0)], BlockingStrategy::Prefix(10));
        let blocks = blocker.blocks(&tuples);
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[0], vec![0, 1]);
    }

    #[test]
    fn all_null_keys_stay_singletons() {
        let tuples = vec![
            Tuple::new(vec![Value::Null, Value::text("a")]),
            Tuple::new(vec![Value::Null, Value::text("b")]),
        ];
        let blocker = Blocker::new(vec![AttrId(0)], BlockingStrategy::ExactKey);
        let blocks = blocker.blocks(&tuples);
        assert_eq!(blocks.len(), 2);
        assert!(blocks.iter().all(|b| b.len() == 1));
    }
}
