//! Blocking: partition a relation into small candidate groups before pairwise
//! matching, so entity resolution never compares all `O(n²)` record pairs.
//!
//! Two strategies are provided, both standard in the duplicate-detection
//! literature the paper builds on:
//!
//! * [`BlockingStrategy::ExactKey`] — records share a block when their
//!   (lower-cased, whitespace-normalized) key attributes are identical;
//! * [`BlockingStrategy::Prefix`] — records share a block when the first `n`
//!   characters of their concatenated key agree, tolerating suffix noise.

use relacc_model::{AttrId, Tuple, Value};
use std::collections::HashMap;

/// How records are assigned to blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockingStrategy {
    /// One block per distinct normalized key value.
    ExactKey,
    /// One block per normalized-key prefix of the given length.
    Prefix(usize),
}

/// Compute the blocking key of a record over the given key attributes:
/// lower-cased, whitespace-normalized concatenation of the key values
/// (nulls contribute nothing).  Convenience wrapper over
/// [`write_blocking_key`]; hot paths reuse one `String` buffer instead.
pub fn blocking_key(tuple: &Tuple, key_attrs: &[AttrId]) -> String {
    let mut out = String::new();
    write_blocking_key(tuple, key_attrs, &mut out);
    out
}

/// Append the blocking key of a record to `out` in a single pass: text values
/// are lower-cased and whitespace-normalized character by character, other
/// values are formatted straight into the buffer — no intermediate `String`s
/// (the previous implementation built three per value:
/// `to_string().to_lowercase().split_whitespace()…join`).
pub fn write_blocking_key(tuple: &Tuple, key_attrs: &[AttrId], out: &mut String) {
    write_blocking_key_values(tuple.values(), key_attrs, out);
}

/// [`write_blocking_key`] over a raw value slice — for rows that are not
/// wrapped in a [`Tuple`] yet (batch inserts being routed before any
/// relation has materialized them).
pub fn write_blocking_key_values(values: &[Value], key_attrs: &[AttrId], out: &mut String) {
    use std::fmt::Write;
    let mut first = true;
    for &attr in key_attrs {
        let value = &values[attr.0];
        if value.is_null() {
            continue;
        }
        if !first {
            out.push('|');
        }
        first = false;
        match value {
            Value::Str(s) => push_normalized(out, s),
            other => {
                // numeric / bool renderings contain neither uppercase letters
                // nor whitespace, so they need no normalization pass
                write!(out, "{other}").expect("writing to a String cannot fail");
            }
        }
    }
}

/// Push `s` lower-cased with runs of whitespace collapsed to single spaces
/// and leading/trailing whitespace dropped (the `split_whitespace` + `join`
/// normalization, without materializing the token list).
fn push_normalized(out: &mut String, s: &str) {
    let mut pending_space = false;
    let mut emitted = false;
    for ch in s.chars() {
        if ch.is_whitespace() {
            pending_space = emitted;
            continue;
        }
        if pending_space {
            out.push(' ');
            pending_space = false;
        }
        if ch.is_uppercase() {
            out.extend(ch.to_lowercase());
        } else {
            out.push(ch);
        }
        emitted = true;
    }
}

/// Groups record indices into candidate blocks.
#[derive(Debug, Clone)]
pub struct Blocker {
    /// Attributes the blocking key is built from.
    pub key_attrs: Vec<AttrId>,
    /// The strategy in use.
    pub strategy: BlockingStrategy,
}

impl Blocker {
    /// A blocker over the given key attributes with the given strategy.
    pub fn new(key_attrs: Vec<AttrId>, strategy: BlockingStrategy) -> Self {
        Blocker {
            key_attrs,
            strategy,
        }
    }

    /// The block identifier of a record.
    pub fn block_of(&self, tuple: &Tuple) -> String {
        let mut out = String::new();
        self.write_block_of(tuple, &mut out);
        out
    }

    /// Write the block identifier of a record into `out` (cleared first), so
    /// a blocking pass reuses one buffer across all records.
    pub fn write_block_of(&self, tuple: &Tuple, out: &mut String) {
        self.write_block_of_values(tuple.values(), out);
    }

    /// [`Blocker::write_block_of`] over a raw value slice (see
    /// [`write_blocking_key_values`]).
    pub fn write_block_of_values(&self, values: &[Value], out: &mut String) {
        out.clear();
        write_blocking_key_values(values, &self.key_attrs, out);
        if let BlockingStrategy::Prefix(n) = self.strategy {
            if let Some((cut, _)) = out.char_indices().nth(n) {
                out.truncate(cut);
            }
        }
    }

    /// Partition record indices into blocks.  Records whose blocking key is
    /// empty (all key attributes null) each get a singleton block: with no key
    /// evidence at all it is safer to leave them unmerged than to lump them
    /// together.
    pub fn blocks(&self, tuples: &[Tuple]) -> Vec<Vec<usize>> {
        let mut by_key: HashMap<String, Vec<usize>> = HashMap::new();
        let mut singletons: Vec<Vec<usize>> = Vec::new();
        let mut key = String::new();
        for (idx, tuple) in tuples.iter().enumerate() {
            self.write_block_of(tuple, &mut key);
            if key.is_empty() {
                singletons.push(vec![idx]);
            } else if let Some(block) = by_key.get_mut(key.as_str()) {
                block.push(idx);
            } else {
                // the key string is only cloned once per distinct block
                by_key.insert(key.clone(), vec![idx]);
            }
        }
        let mut blocks: Vec<Vec<usize>> = by_key.into_values().collect();
        blocks.extend(singletons);
        // deterministic output order: by smallest member index
        blocks.sort_by_key(|b| b.iter().copied().min().unwrap_or(usize::MAX));
        blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(name: &str, team: &str) -> Tuple {
        Tuple::new(vec![Value::text(name), Value::text(team)])
    }

    #[test]
    fn blocking_key_normalizes_case_and_whitespace() {
        let a = t("Michael  Jordan", "Bulls");
        let b = t("michael jordan", "bulls");
        assert_eq!(
            blocking_key(&a, &[AttrId(0)]),
            blocking_key(&b, &[AttrId(0)])
        );
        assert_eq!(blocking_key(&a, &[AttrId(0)]), "michael jordan");
        assert_eq!(
            blocking_key(&a, &[AttrId(0), AttrId(1)]),
            "michael jordan|bulls"
        );
    }

    #[test]
    fn nulls_contribute_nothing_to_the_key() {
        let a = Tuple::new(vec![Value::Null, Value::text("Bulls")]);
        assert_eq!(blocking_key(&a, &[AttrId(0), AttrId(1)]), "bulls");
        assert_eq!(blocking_key(&a, &[AttrId(0)]), "");
    }

    #[test]
    fn exact_key_blocks_group_identical_keys() {
        let tuples = vec![
            t("Michael Jordan", "x"),
            t("Scottie Pippen", "y"),
            t("michael jordan", "z"),
        ];
        let blocker = Blocker::new(vec![AttrId(0)], BlockingStrategy::ExactKey);
        let blocks = blocker.blocks(&tuples);
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[0], vec![0, 2]);
        assert_eq!(blocks[1], vec![1]);
    }

    #[test]
    fn prefix_blocks_tolerate_suffix_noise() {
        let tuples = vec![
            t("Michael Jordan", "x"),
            t("Michael Jordan Jr", "y"),
            t("Scottie Pippen", "z"),
        ];
        let blocker = Blocker::new(vec![AttrId(0)], BlockingStrategy::Prefix(10));
        let blocks = blocker.blocks(&tuples);
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[0], vec![0, 1]);
    }

    #[test]
    fn write_block_of_reuses_one_buffer() {
        let tuples = vec![
            t("Michael  Jordan", "Bulls"),
            Tuple::new(vec![Value::Int(42), Value::Bool(true)]),
            Tuple::new(vec![Value::Null, Value::text("  Spaced   Out  ")]),
        ];
        let blocker = Blocker::new(vec![AttrId(0), AttrId(1)], BlockingStrategy::Prefix(9));
        let mut buf = String::from("stale content from the previous record");
        for tuple in &tuples {
            blocker.write_block_of(tuple, &mut buf);
            assert_eq!(buf, blocker.block_of(tuple), "buffer and fresh key agree");
        }
        // the last record: null contributes nothing, text is trimmed/collapsed
        assert_eq!(buf, "spaced ou");
    }

    #[test]
    fn all_null_keys_stay_singletons() {
        let tuples = vec![
            Tuple::new(vec![Value::Null, Value::text("a")]),
            Tuple::new(vec![Value::Null, Value::text("b")]),
        ];
        let blocker = Blocker::new(vec![AttrId(0)], BlockingStrategy::ExactKey);
        let blocks = blocker.blocks(&tuples);
        assert_eq!(blocks.len(), 2);
        assert!(blocks.iter().all(|b| b.len() == 1));
    }
}
