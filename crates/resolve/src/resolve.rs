//! Entity resolution: split a dirty relation into per-entity instances.
//!
//! The paper assumes its input `Ie` has already been "identified by entity
//! resolution techniques" (Section 2.1).  This module provides that substrate:
//! blocking (so only plausible pairs are compared), pairwise record matching on
//! a similarity threshold, and union-find clustering so that matching is
//! transitive within a block.

use crate::blocking::{Blocker, BlockingStrategy};
use crate::similarity::{record_similarity_with, SimilarityScratch};
use relacc_model::{AttrId, EntityInstance, Tuple};
use relacc_store::Relation;

/// Configuration of the resolution pass.
#[derive(Debug, Clone)]
pub struct ResolveConfig {
    /// Names of the attributes records are matched on (typically the key /
    /// identifying attributes).  Unknown names are ignored.
    pub match_attrs: Vec<String>,
    /// Minimum record similarity for two records to be declared a match.
    pub threshold: f64,
    /// Blocking strategy (defaults to a 6-character key prefix, which tolerates
    /// typographic noise while keeping blocks small).
    pub strategy: BlockingStrategy,
}

impl ResolveConfig {
    /// A configuration matching on the given attributes with the default
    /// threshold (0.82) and prefix blocking.
    pub fn on_attrs(match_attrs: Vec<String>) -> Self {
        ResolveConfig {
            match_attrs,
            threshold: 0.82,
            strategy: BlockingStrategy::Prefix(6),
        }
    }

    /// Override the match threshold.
    pub fn with_threshold(mut self, threshold: f64) -> Self {
        self.threshold = threshold;
        self
    }

    /// Override the blocking strategy.
    pub fn with_strategy(mut self, strategy: BlockingStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// The [`Blocker`] this configuration partitions a relation of `schema`
    /// with: the match attributes resolved to ids (unknown names ignored,
    /// like [`resolve_relation`] does) under the configured strategy.
    ///
    /// Exposed so callers that need block identities *outside* a resolution
    /// pass — the incremental engine's dirty-block index, the sharded
    /// router's key-based dispatch — construct the exact same blocker and
    /// can never drift from the resolution pipeline.
    pub fn blocker(&self, schema: &relacc_model::SchemaRef) -> Blocker {
        let match_attrs: Vec<AttrId> = self
            .match_attrs
            .iter()
            .filter_map(|name| schema.attr_id(name))
            .collect();
        Blocker::new(match_attrs, self.strategy.clone())
    }
}

/// The decision made for one compared record pair (exposed for diagnostics and
/// threshold tuning).
#[derive(Debug, Clone, PartialEq)]
pub struct MatchDecision {
    /// Index of the first record in the input relation.
    pub left: usize,
    /// Index of the second record.
    pub right: usize,
    /// Their record similarity.
    pub similarity: f64,
    /// Whether the pair was merged.
    pub matched: bool,
}

/// The output of [`resolve_relation`].
#[derive(Debug, Clone)]
pub struct ResolvedEntities {
    /// One entity instance per discovered cluster, in order of the smallest
    /// contained record index.
    pub entities: Vec<EntityInstance>,
    /// For every entity, the indices of the input records it contains.
    pub members: Vec<Vec<usize>>,
    /// Every pairwise comparison that was performed.
    pub decisions: Vec<MatchDecision>,
}

impl ResolvedEntities {
    /// Number of input records that were compared at least once.
    pub fn compared_pairs(&self) -> usize {
        self.decisions.len()
    }

    /// The entity index a given input record ended up in.
    pub fn entity_of_record(&self, record: usize) -> Option<usize> {
        self.members.iter().position(|m| m.contains(&record))
    }
}

/// Disjoint-set forest with path compression and union by size.
struct UnionFind {
    parent: Vec<usize>,
    size: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            size: vec![1; n],
        }
    }

    fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        // path compression
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big;
        self.size[big] += self.size[small];
    }
}

/// Resolve a relation into entity instances.
///
/// Records are blocked on the match attributes, every pair inside a block is
/// compared with [`record_similarity`](crate::similarity::record_similarity), pairs at or above the threshold are
/// merged, and the transitive closure of the merges (union-find) defines the
/// entities.  Each entity instance keeps the full rows of its records under the
/// input schema, ready to be wrapped in a `Specification`.
pub fn resolve_relation(relation: &Relation, config: &ResolveConfig) -> ResolvedEntities {
    let schema = relation.schema().clone();
    let match_attrs: Vec<AttrId> = config
        .match_attrs
        .iter()
        .filter_map(|name| schema.attr_id(name))
        .collect();
    let rows: &[Tuple] = relation.rows();

    let blocker = Blocker::new(match_attrs.clone(), config.strategy.clone());
    let blocks = blocker.blocks(rows);

    let mut uf = UnionFind::new(rows.len());
    let mut decisions = Vec::new();
    // whole-record fallback attributes, computed once instead of per pair
    let all_attrs: Vec<AttrId> = if match_attrs.is_empty() {
        schema.attr_ids().collect()
    } else {
        Vec::new()
    };
    // one similarity scratch serves every O(block²) comparison of the pass
    let mut scratch = SimilarityScratch::new();
    for block in &blocks {
        for i in 0..block.len() {
            for j in (i + 1)..block.len() {
                let (a, b) = (block[i], block[j]);
                let attrs = if match_attrs.is_empty() {
                    &all_attrs
                } else {
                    &match_attrs
                };
                let similarity = record_similarity_with(&rows[a], &rows[b], attrs, &mut scratch);
                let matched = similarity >= config.threshold;
                if matched {
                    uf.union(a, b);
                }
                decisions.push(MatchDecision {
                    left: a,
                    right: b,
                    similarity,
                    matched,
                });
            }
        }
    }

    // collect clusters in order of their smallest member
    let mut cluster_of_root: std::collections::HashMap<usize, usize> =
        std::collections::HashMap::new();
    let mut members: Vec<Vec<usize>> = Vec::new();
    for idx in 0..rows.len() {
        let root = uf.find(idx);
        let cluster = *cluster_of_root.entry(root).or_insert_with(|| {
            members.push(Vec::new());
            members.len() - 1
        });
        members[cluster].push(idx);
    }

    let mut entities = Vec::with_capacity(members.len());
    for cluster in &members {
        let mut instance = EntityInstance::new(schema.clone());
        for &idx in cluster {
            instance
                .push_tuple(rows[idx].clone())
                .expect("rows conform to their own schema");
        }
        entities.push(instance);
    }

    ResolvedEntities {
        entities,
        members,
        decisions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relacc_model::{DataType, Schema, Value};

    fn player_relation() -> Relation {
        let schema = Schema::builder("stat")
            .attr("name", DataType::Text)
            .attr("team", DataType::Text)
            .attr("rnds", DataType::Int)
            .build();
        Relation::from_rows(
            schema,
            vec![
                vec![
                    Value::text("Michael Jordan"),
                    Value::text("Chicago"),
                    Value::Int(16),
                ],
                vec![
                    Value::text("Michael  Jordan"),
                    Value::text("Chicago Bulls"),
                    Value::Int(27),
                ],
                vec![
                    Value::text("M. Jordan"),
                    Value::text("Chicago Bulls"),
                    Value::Int(1),
                ],
                vec![
                    Value::text("Scottie Pippen"),
                    Value::text("Chicago Bulls"),
                    Value::Int(27),
                ],
                vec![
                    Value::text("Patrick Ewing"),
                    Value::text("New York Knicks"),
                    Value::Int(30),
                ],
            ],
        )
        .unwrap()
    }

    #[test]
    fn resolves_obvious_duplicates_and_keeps_distinct_players_apart() {
        let relation = player_relation();
        let config = ResolveConfig::on_attrs(vec!["name".into()]).with_threshold(0.6);
        let resolved = resolve_relation(&relation, &config);
        // "M. Jordan" lands in a different block (prefix differs), so we expect
        // the two spelled-out Jordans together and everyone else apart.
        assert_eq!(resolved.entity_of_record(0), resolved.entity_of_record(1));
        assert_ne!(resolved.entity_of_record(0), resolved.entity_of_record(3));
        assert_ne!(resolved.entity_of_record(3), resolved.entity_of_record(4));
        // every record is in exactly one entity
        let total: usize = resolved.members.iter().map(|m| m.len()).sum();
        assert_eq!(total, relation.len());
    }

    #[test]
    fn high_threshold_keeps_everything_separate() {
        let relation = player_relation();
        let config = ResolveConfig::on_attrs(vec!["name".into()]).with_threshold(1.1);
        let resolved = resolve_relation(&relation, &config);
        assert_eq!(resolved.entities.len(), relation.len());
        assert!(resolved.decisions.iter().all(|d| !d.matched));
    }

    #[test]
    fn exact_key_strategy_merges_only_identical_keys() {
        let relation = player_relation();
        let config = ResolveConfig::on_attrs(vec!["name".into()])
            .with_strategy(BlockingStrategy::ExactKey)
            .with_threshold(0.9);
        let resolved = resolve_relation(&relation, &config);
        // exact keys differ for every row except via normalization of spaces
        assert_eq!(resolved.entity_of_record(0), resolved.entity_of_record(1));
        assert_eq!(resolved.entities.len(), 4);
    }

    #[test]
    fn blocking_limits_the_number_of_comparisons() {
        let relation = player_relation();
        let config = ResolveConfig::on_attrs(vec!["name".into()]);
        let resolved = resolve_relation(&relation, &config);
        let n = relation.len();
        assert!(resolved.compared_pairs() < n * (n - 1) / 2);
    }

    #[test]
    fn unknown_match_attributes_fall_back_to_whole_record() {
        let relation = player_relation();
        let config = ResolveConfig::on_attrs(vec!["no_such_attr".into()]).with_threshold(0.95);
        let resolved = resolve_relation(&relation, &config);
        // nothing merges at such a high whole-record threshold, but the call
        // must not panic and must still cover every record
        let total: usize = resolved.members.iter().map(|m| m.len()).sum();
        assert_eq!(total, relation.len());
    }

    #[test]
    fn entity_instances_preserve_schema_and_rows() {
        let relation = player_relation();
        let config = ResolveConfig::on_attrs(vec!["name".into()]).with_threshold(0.6);
        let resolved = resolve_relation(&relation, &config);
        for (entity, members) in resolved.entities.iter().zip(resolved.members.iter()) {
            assert_eq!(entity.schema().name(), "stat");
            assert_eq!(entity.len(), members.len());
        }
    }
}
