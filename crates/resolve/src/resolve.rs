//! Entity resolution: split a dirty relation into per-entity instances.
//!
//! The paper assumes its input `Ie` has already been "identified by entity
//! resolution techniques" (Section 2.1).  This module provides that substrate:
//! blocking (so only plausible pairs are compared), pairwise record matching on
//! a similarity threshold, and union-find clustering so that matching is
//! transitive within a block.

use crate::blocking::{Blocker, BlockingStrategy};
use crate::fingerprint::RecordFingerprint;
use crate::similarity::{record_similarity_with, SimilarityScratch};
use relacc_model::{AttrId, EntityInstance, Tuple};
use relacc_store::Relation;

/// Configuration of the resolution pass.
#[derive(Debug, Clone)]
pub struct ResolveConfig {
    /// Names of the attributes records are matched on (typically the key /
    /// identifying attributes).  Unknown names are ignored.
    pub match_attrs: Vec<String>,
    /// Minimum record similarity for two records to be declared a match.
    pub threshold: f64,
    /// Blocking strategy (defaults to a 6-character key prefix, which tolerates
    /// typographic noise while keeping blocks small).
    pub strategy: BlockingStrategy,
    /// Run the fingerprint cascade (length/popcount upper bounds, see
    /// [`crate::fingerprint`]) before any string alignment.  The cascade is
    /// exact — identical clustering either way — so this is on by default
    /// and exists as a switch for differential tests and baseline
    /// benchmarks.
    pub cascade: bool,
}

impl ResolveConfig {
    /// A configuration matching on the given attributes with the default
    /// threshold (0.82) and prefix blocking.
    pub fn on_attrs(match_attrs: Vec<String>) -> Self {
        ResolveConfig {
            match_attrs,
            threshold: 0.82,
            strategy: BlockingStrategy::Prefix(6),
            cascade: true,
        }
    }

    /// Override the match threshold.
    pub fn with_threshold(mut self, threshold: f64) -> Self {
        self.threshold = threshold;
        self
    }

    /// Override the blocking strategy.
    pub fn with_strategy(mut self, strategy: BlockingStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Disable the fingerprint cascade: every in-block pair goes straight to
    /// the full similarity computation.  Output is identical (the cascade is
    /// exact); only [`ResolveStats`] and per-pair costs differ.
    pub fn without_cascade(mut self) -> Self {
        self.cascade = false;
        self
    }

    /// The attribute ids record similarity is computed over: the resolved
    /// match attributes, falling back to *all* attributes when none of the
    /// names resolve — exactly the list [`resolve_relation`] compares (and
    /// fingerprints) with, exposed so callers caching fingerprints use the
    /// identical attribute order.
    pub fn similarity_attrs(&self, schema: &relacc_model::SchemaRef) -> Vec<AttrId> {
        let resolved: Vec<AttrId> = self
            .match_attrs
            .iter()
            .filter_map(|name| schema.attr_id(name))
            .collect();
        if resolved.is_empty() {
            schema.attr_ids().collect()
        } else {
            resolved
        }
    }

    /// The [`Blocker`] this configuration partitions a relation of `schema`
    /// with: the match attributes resolved to ids (unknown names ignored,
    /// like [`resolve_relation`] does) under the configured strategy.
    ///
    /// Exposed so callers that need block identities *outside* a resolution
    /// pass — the incremental engine's dirty-block index, the sharded
    /// router's key-based dispatch — construct the exact same blocker and
    /// can never drift from the resolution pipeline.
    pub fn blocker(&self, schema: &relacc_model::SchemaRef) -> Blocker {
        let match_attrs: Vec<AttrId> = self
            .match_attrs
            .iter()
            .filter_map(|name| schema.attr_id(name))
            .collect();
        Blocker::new(match_attrs, self.strategy.clone())
    }
}

/// Which cascade stage pruned a pair short of the full similarity
/// computation (see [`crate::fingerprint`] for the bounds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PruneStage {
    /// Stage 1: count-only bounds (char lengths, distinct-token counts,
    /// null pattern, scalar hash).
    Length,
    /// Stage 2: popcount set bounds over the packed fingerprints.
    Fingerprint,
}

/// The decision made for one compared record pair (exposed for diagnostics and
/// threshold tuning).
#[derive(Debug, Clone, PartialEq)]
pub struct MatchDecision {
    /// Index of the first record in the input relation.
    pub left: usize,
    /// Index of the second record.
    pub right: usize,
    /// Their record similarity — exact for pairs that reached the full
    /// computation, the pruning stage's **upper bound** for pruned pairs
    /// (the bound is below the threshold, which is all a non-match needs).
    pub similarity: f64,
    /// Whether the pair was merged.
    pub matched: bool,
    /// `Some(stage)` when the cascade pruned the pair before any string
    /// alignment; `None` for fully computed pairs.
    pub pruned: Option<PruneStage>,
}

/// Counters of one resolution pass — how far each compared pair made it
/// through the cascade.  Pruning is observable, not assumed: benchmarks and
/// the CI gate read these instead of trusting the speedup to imply them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResolveStats {
    /// Record pairs compared (all in-block pairs).
    pub pairs_considered: usize,
    /// Pairs discarded by the stage-1 count bounds.
    pub pruned_by_length: usize,
    /// Pairs discarded by the stage-2 popcount fingerprint bounds.
    pub pruned_by_fingerprint: usize,
    /// Pairs that ran the full similarity computation (bit-parallel or DP
    /// alignment plus token Jaccard).
    pub dp_runs: usize,
}

impl ResolveStats {
    /// Fold another pass's counters into this one (block-wise aggregation).
    pub fn merge(&mut self, other: &ResolveStats) {
        self.pairs_considered += other.pairs_considered;
        self.pruned_by_length += other.pruned_by_length;
        self.pruned_by_fingerprint += other.pruned_by_fingerprint;
        self.dp_runs += other.dp_runs;
    }

    /// Fraction of considered pairs pruned before the full computation
    /// (0.0 when nothing was considered).
    pub fn pruned_fraction(&self) -> f64 {
        if self.pairs_considered == 0 {
            0.0
        } else {
            (self.pruned_by_length + self.pruned_by_fingerprint) as f64
                / self.pairs_considered as f64
        }
    }
}

/// The output of [`resolve_relation`].
#[derive(Debug, Clone)]
pub struct ResolvedEntities {
    /// One entity instance per discovered cluster, in order of the smallest
    /// contained record index.
    pub entities: Vec<EntityInstance>,
    /// For every entity, the indices of the input records it contains.
    pub members: Vec<Vec<usize>>,
    /// Every pairwise comparison that was performed.
    pub decisions: Vec<MatchDecision>,
    /// Cascade counters of the pass that produced this output.
    pub stats: ResolveStats,
    /// record index → entity index, derived from `members` at construction
    /// so [`Self::entity_of_record`] is O(1) instead of a scan per call.
    entity_by_record: Vec<usize>,
}

impl ResolvedEntities {
    /// Assemble from parts, deriving the record → entity map.  `members`
    /// must partition the input record indices (every resolution output
    /// does); records not covered report no entity.
    pub fn from_parts(
        entities: Vec<EntityInstance>,
        members: Vec<Vec<usize>>,
        decisions: Vec<MatchDecision>,
        stats: ResolveStats,
    ) -> Self {
        let n = members
            .iter()
            .flat_map(|m| m.iter())
            .max()
            .map_or(0, |&max| max + 1);
        let mut entity_by_record = vec![usize::MAX; n];
        for (entity, records) in members.iter().enumerate() {
            for &record in records {
                entity_by_record[record] = entity;
            }
        }
        ResolvedEntities {
            entities,
            members,
            decisions,
            stats,
            entity_by_record,
        }
    }

    /// Number of input records that were compared at least once.
    pub fn compared_pairs(&self) -> usize {
        self.decisions.len()
    }

    /// The entity index a given input record ended up in.
    pub fn entity_of_record(&self, record: usize) -> Option<usize> {
        self.entity_by_record
            .get(record)
            .copied()
            .filter(|&entity| entity != usize::MAX)
    }
}

/// Disjoint-set forest with path compression and union by size.
struct UnionFind {
    parent: Vec<usize>,
    size: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            size: vec![1; n],
        }
    }

    fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        // path compression
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big;
        self.size[big] += self.size[small];
    }
}

/// Resolve a relation into entity instances.
///
/// Records are blocked on the match attributes; every pair inside a block
/// runs the three-stage similarity cascade: (1) count bounds (length, token
/// counts, nulls), (2) popcount fingerprint bounds, (3) the full
/// [`record_similarity`](crate::similarity::record_similarity) — bit-parallel
/// Levenshtein for strings up to 64 chars, two-row DP above.  Stages 1 and 2
/// are exact filters (a pruned pair is provably below the threshold, see
/// [`crate::fingerprint`]), so the clustering is identical to comparing
/// every pair in full.  Pairs at or above the threshold are merged, and the
/// transitive closure of the merges (union-find) defines the entities.  Each
/// entity instance keeps the full rows of its records under the input
/// schema, ready to be wrapped in a `Specification`.
///
/// Fingerprints are computed here, once per record.  Callers that already
/// hold fingerprints for these rows (the incremental engine's block cache)
/// use [`resolve_relation_with_fingerprints`] instead.
pub fn resolve_relation(relation: &Relation, config: &ResolveConfig) -> ResolvedEntities {
    if !config.cascade {
        return resolve_inner(relation, config, None);
    }
    let attrs = config.similarity_attrs(relation.schema());
    let fingerprints: Vec<RecordFingerprint> = relation
        .rows()
        .iter()
        .map(|row| RecordFingerprint::of_tuple(row, &attrs))
        .collect();
    resolve_inner(relation, config, Some(&fingerprints))
}

/// [`resolve_relation`] over caller-supplied fingerprints — one per row of
/// `relation`, computed with [`RecordFingerprint::of_tuple`] over
/// [`ResolveConfig::similarity_attrs`].  This is the steady-state streaming
/// entry point: the incremental engine caches fingerprints per block so only
/// freshly inserted rows ever pay the fingerprinting cost.
///
/// # Panics
/// If `fingerprints` is not parallel to `relation.rows()`.
pub fn resolve_relation_with_fingerprints(
    relation: &Relation,
    config: &ResolveConfig,
    fingerprints: &[RecordFingerprint],
) -> ResolvedEntities {
    assert_eq!(
        fingerprints.len(),
        relation.len(),
        "one fingerprint per row"
    );
    resolve_inner(relation, config, Some(fingerprints))
}

fn resolve_inner(
    relation: &Relation,
    config: &ResolveConfig,
    fingerprints: Option<&[RecordFingerprint]>,
) -> ResolvedEntities {
    let schema = relation.schema().clone();
    let match_attrs: Vec<AttrId> = config
        .match_attrs
        .iter()
        .filter_map(|name| schema.attr_id(name))
        .collect();
    let rows: &[Tuple] = relation.rows();

    let blocker = Blocker::new(match_attrs.clone(), config.strategy.clone());
    let blocks = blocker.blocks(rows);

    let mut uf = UnionFind::new(rows.len());
    let mut decisions = Vec::new();
    let mut stats = ResolveStats::default();
    // whole-record fallback attributes, computed once instead of per pair
    let all_attrs: Vec<AttrId> = if match_attrs.is_empty() {
        schema.attr_ids().collect()
    } else {
        Vec::new()
    };
    // one similarity scratch serves every O(block²) comparison of the pass
    let mut scratch = SimilarityScratch::new();
    for block in &blocks {
        for i in 0..block.len() {
            for j in (i + 1)..block.len() {
                let (a, b) = (block[i], block[j]);
                let attrs = if match_attrs.is_empty() {
                    &all_attrs
                } else {
                    &match_attrs
                };
                stats.pairs_considered += 1;
                // the cascade: prune on an upper bound strictly below the
                // threshold (`matched` tests `>=`, so `ub < threshold`
                // proves the pair unmatched), else fall through
                let (similarity, matched, pruned) = match fingerprints {
                    Some(fps) => {
                        let stage1 = fps[a].stage1_upper_bound(&fps[b]);
                        if stage1 < config.threshold {
                            stats.pruned_by_length += 1;
                            (stage1, false, Some(PruneStage::Length))
                        } else {
                            let stage2 = fps[a].stage2_upper_bound(&fps[b]);
                            if stage2 < config.threshold {
                                stats.pruned_by_fingerprint += 1;
                                (stage2, false, Some(PruneStage::Fingerprint))
                            } else {
                                stats.dp_runs += 1;
                                let similarity =
                                    record_similarity_with(&rows[a], &rows[b], attrs, &mut scratch);
                                (similarity, similarity >= config.threshold, None)
                            }
                        }
                    }
                    None => {
                        stats.dp_runs += 1;
                        let similarity =
                            record_similarity_with(&rows[a], &rows[b], attrs, &mut scratch);
                        (similarity, similarity >= config.threshold, None)
                    }
                };
                if matched {
                    uf.union(a, b);
                }
                decisions.push(MatchDecision {
                    left: a,
                    right: b,
                    similarity,
                    matched,
                    pruned,
                });
            }
        }
    }

    // collect clusters in order of their smallest member
    let mut cluster_of_root: std::collections::HashMap<usize, usize> =
        std::collections::HashMap::new();
    let mut members: Vec<Vec<usize>> = Vec::new();
    for idx in 0..rows.len() {
        let root = uf.find(idx);
        let cluster = *cluster_of_root.entry(root).or_insert_with(|| {
            members.push(Vec::new());
            members.len() - 1
        });
        members[cluster].push(idx);
    }

    let mut entities = Vec::with_capacity(members.len());
    for cluster in &members {
        let mut instance = EntityInstance::new(schema.clone());
        for &idx in cluster {
            instance
                .push_tuple(rows[idx].clone())
                .expect("rows conform to their own schema");
        }
        entities.push(instance);
    }

    ResolvedEntities::from_parts(entities, members, decisions, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use relacc_model::{DataType, Schema, Value};

    fn player_relation() -> Relation {
        let schema = Schema::builder("stat")
            .attr("name", DataType::Text)
            .attr("team", DataType::Text)
            .attr("rnds", DataType::Int)
            .build();
        Relation::from_rows(
            schema,
            vec![
                vec![
                    Value::text("Michael Jordan"),
                    Value::text("Chicago"),
                    Value::Int(16),
                ],
                vec![
                    Value::text("Michael  Jordan"),
                    Value::text("Chicago Bulls"),
                    Value::Int(27),
                ],
                vec![
                    Value::text("M. Jordan"),
                    Value::text("Chicago Bulls"),
                    Value::Int(1),
                ],
                vec![
                    Value::text("Scottie Pippen"),
                    Value::text("Chicago Bulls"),
                    Value::Int(27),
                ],
                vec![
                    Value::text("Patrick Ewing"),
                    Value::text("New York Knicks"),
                    Value::Int(30),
                ],
            ],
        )
        .unwrap()
    }

    #[test]
    fn resolves_obvious_duplicates_and_keeps_distinct_players_apart() {
        let relation = player_relation();
        let config = ResolveConfig::on_attrs(vec!["name".into()]).with_threshold(0.6);
        let resolved = resolve_relation(&relation, &config);
        // "M. Jordan" lands in a different block (prefix differs), so we expect
        // the two spelled-out Jordans together and everyone else apart.
        assert_eq!(resolved.entity_of_record(0), resolved.entity_of_record(1));
        assert_ne!(resolved.entity_of_record(0), resolved.entity_of_record(3));
        assert_ne!(resolved.entity_of_record(3), resolved.entity_of_record(4));
        // every record is in exactly one entity
        let total: usize = resolved.members.iter().map(|m| m.len()).sum();
        assert_eq!(total, relation.len());
    }

    #[test]
    fn high_threshold_keeps_everything_separate() {
        let relation = player_relation();
        let config = ResolveConfig::on_attrs(vec!["name".into()]).with_threshold(1.1);
        let resolved = resolve_relation(&relation, &config);
        assert_eq!(resolved.entities.len(), relation.len());
        assert!(resolved.decisions.iter().all(|d| !d.matched));
    }

    #[test]
    fn exact_key_strategy_merges_only_identical_keys() {
        let relation = player_relation();
        let config = ResolveConfig::on_attrs(vec!["name".into()])
            .with_strategy(BlockingStrategy::ExactKey)
            .with_threshold(0.9);
        let resolved = resolve_relation(&relation, &config);
        // exact keys differ for every row except via normalization of spaces
        assert_eq!(resolved.entity_of_record(0), resolved.entity_of_record(1));
        assert_eq!(resolved.entities.len(), 4);
    }

    #[test]
    fn blocking_limits_the_number_of_comparisons() {
        let relation = player_relation();
        let config = ResolveConfig::on_attrs(vec!["name".into()]);
        let resolved = resolve_relation(&relation, &config);
        let n = relation.len();
        assert!(resolved.compared_pairs() < n * (n - 1) / 2);
    }

    #[test]
    fn unknown_match_attributes_fall_back_to_whole_record() {
        let relation = player_relation();
        let config = ResolveConfig::on_attrs(vec!["no_such_attr".into()]).with_threshold(0.95);
        let resolved = resolve_relation(&relation, &config);
        // nothing merges at such a high whole-record threshold, but the call
        // must not panic and must still cover every record
        let total: usize = resolved.members.iter().map(|m| m.len()).sum();
        assert_eq!(total, relation.len());
    }

    #[test]
    fn cascade_and_baseline_agree_and_stats_add_up() {
        let relation = player_relation();
        for threshold in [0.3, 0.6, 0.82, 0.95] {
            let config = ResolveConfig::on_attrs(vec!["name".into()]).with_threshold(threshold);
            let cascade = resolve_relation(&relation, &config);
            let baseline = resolve_relation(&relation, &config.clone().without_cascade());
            assert_eq!(cascade.members, baseline.members, "threshold {threshold}");
            assert_eq!(cascade.decisions.len(), baseline.decisions.len());
            for (c, b) in cascade.decisions.iter().zip(baseline.decisions.iter()) {
                assert_eq!((c.left, c.right, c.matched), (b.left, b.right, b.matched));
                if c.pruned.is_none() {
                    assert_eq!(c.similarity, b.similarity, "unpruned pairs are exact");
                } else {
                    assert!(!c.matched, "pruned pairs are never matches");
                    assert!(c.similarity < threshold, "prune bound is below threshold");
                }
            }
            let s = cascade.stats;
            assert_eq!(
                s.pruned_by_length + s.pruned_by_fingerprint + s.dp_runs,
                s.pairs_considered
            );
            assert_eq!(baseline.stats.dp_runs, baseline.stats.pairs_considered);
            assert_eq!(baseline.stats.pruned_fraction(), 0.0);
        }
    }

    #[test]
    fn entity_of_record_matches_member_scan() {
        let relation = player_relation();
        let config = ResolveConfig::on_attrs(vec!["name".into()]).with_threshold(0.6);
        let resolved = resolve_relation(&relation, &config);
        for record in 0..relation.len() {
            let scanned = resolved.members.iter().position(|m| m.contains(&record));
            assert_eq!(resolved.entity_of_record(record), scanned);
        }
        assert_eq!(resolved.entity_of_record(relation.len() + 5), None);
    }

    #[test]
    fn entity_instances_preserve_schema_and_rows() {
        let relation = player_relation();
        let config = ResolveConfig::on_attrs(vec!["name".into()]).with_threshold(0.6);
        let resolved = resolve_relation(&relation, &config);
        for (entity, members) in resolved.entities.iter().zip(resolved.members.iter()) {
            assert_eq!(entity.schema().name(), "stat");
            assert_eq!(entity.len(), members.len());
        }
    }
}
