//! Incremental blocking: map an update batch to the set of dirty blocks.
//!
//! Blocking partitions the records of a relation, and [`resolve_relation`]
//! only ever merges records *within* a block — the pairwise comparisons and
//! the union-find closure both stay inside block boundaries.  Entities are
//! therefore per-block objects, which is what makes repair incremental: a
//! record insert or delete can only change the entities of the block its
//! blocking key maps to, so re-resolving (and re-repairing) the **dirty
//! blocks** of an update batch reproduces exactly what a full re-resolution
//! of the updated relation would produce for those blocks, while every other
//! block's entities are untouched.
//!
//! [`IncrementalBlockingIndex`] maintains the row-id → block-key mapping of a
//! live (versioned) relation.  Per update it returns the dirty [`BlockKey`]s:
//! the blocks gaining an inserted record plus the blocks that held a deleted
//! one.  Records whose blocking key is empty (all key attributes null) are
//! singleton blocks in [`crate::Blocker::blocks`]; the index mirrors that by
//! giving each of them a [`BlockKey::Singleton`] of its own, so they can
//! never be lumped together by key equality.
//!
//! [`resolve_relation`]: crate::resolve_relation

use crate::blocking::Blocker;
use relacc_model::Tuple;
use relacc_store::RowId;
use std::collections::{BTreeSet, HashMap};

/// Identity of one block of the live relation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BlockKey {
    /// A non-empty blocking key shared by every record of the block.
    Key(String),
    /// A record with an empty blocking key: its own singleton block, named by
    /// the record's stable row id.
    Singleton(RowId),
}

impl BlockKey {
    /// Build the key for a row: its blocking key, or a singleton when empty.
    fn of(blocker: &Blocker, id: RowId, tuple: &Tuple, buf: &mut String) -> Self {
        blocker.write_block_of(tuple, buf);
        if buf.is_empty() {
            BlockKey::Singleton(id)
        } else {
            BlockKey::Key(buf.clone())
        }
    }

    /// The block key a row gets under `blocker` — the **routing** primitive of
    /// sharded repair: a record's block (and therefore its shard) is a pure
    /// function of its blocking key, with empty-key rows falling back to a
    /// [`BlockKey::Singleton`] of the row's id.  This is exactly the key an
    /// [`IncrementalBlockingIndex`] over the same blocker assigns to the row,
    /// so an external router and the per-shard indices can never disagree.
    pub fn of_row(blocker: &Blocker, id: RowId, tuple: &Tuple) -> Self {
        BlockKey::of_values(blocker, id, tuple.values())
    }

    /// [`BlockKey::of_row`] over a raw value slice — for routing batch
    /// inserts that no relation has wrapped in a [`Tuple`] yet.
    pub fn of_values(blocker: &Blocker, id: RowId, values: &[relacc_model::Value]) -> Self {
        let mut buf = String::new();
        blocker.write_block_of_values(values, &mut buf);
        if buf.is_empty() {
            BlockKey::Singleton(id)
        } else {
            BlockKey::Key(buf)
        }
    }
}

/// The dirty-block output of one applied update.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DirtyBlocks {
    /// Keys of every block whose membership changed (gained an insert, lost a
    /// delete, or both), in deterministic order.
    pub blocks: BTreeSet<BlockKey>,
}

impl DirtyBlocks {
    /// Number of dirty blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True when the update touched no block.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }
}

/// A maintained row-id → block mapping for incremental resolution.
#[derive(Debug, Clone)]
pub struct IncrementalBlockingIndex {
    blocker: Blocker,
    /// Block of every live row.
    by_row: HashMap<RowId, BlockKey>,
    /// Live member count per block (blocks with zero members are dropped).
    members: HashMap<BlockKey, usize>,
    key_buf: String,
}

impl IncrementalBlockingIndex {
    /// Build the index over the live rows of a relation.
    pub fn build<'a>(blocker: Blocker, rows: impl IntoIterator<Item = (RowId, &'a Tuple)>) -> Self {
        let mut index = IncrementalBlockingIndex {
            blocker,
            by_row: HashMap::new(),
            members: HashMap::new(),
            key_buf: String::new(),
        };
        for (id, tuple) in rows {
            index.add(id, tuple);
        }
        index
    }

    /// The blocker the index partitions with.
    pub fn blocker(&self) -> &Blocker {
        &self.blocker
    }

    /// Number of live rows tracked.
    pub fn rows(&self) -> usize {
        self.by_row.len()
    }

    /// Number of non-empty blocks.
    pub fn blocks(&self) -> usize {
        self.members.len()
    }

    /// The block of a live row, if tracked.
    pub fn block_of_row(&self, id: RowId) -> Option<&BlockKey> {
        self.by_row.get(&id)
    }

    /// The block a tuple *would* land in (without registering it).  Inserts
    /// with an empty blocking key land in their own singleton block.
    pub fn block_of(&mut self, id: RowId, tuple: &Tuple) -> BlockKey {
        BlockKey::of(&self.blocker, id, tuple, &mut self.key_buf)
    }

    fn add(&mut self, id: RowId, tuple: &Tuple) -> BlockKey {
        let key = BlockKey::of(&self.blocker, id, tuple, &mut self.key_buf);
        self.by_row.insert(id, key.clone());
        *self.members.entry(key.clone()).or_insert(0) += 1;
        key
    }

    fn remove(&mut self, id: RowId) -> Option<BlockKey> {
        let key = self.by_row.remove(&id)?;
        if let Some(count) = self.members.get_mut(&key) {
            *count -= 1;
            if *count == 0 {
                self.members.remove(&key);
            }
        }
        Some(key)
    }

    /// Register an applied update — deleted row ids plus inserted rows — and
    /// return the dirty blocks: every block that lost a deleted record or
    /// gained an inserted one.  Unknown delete ids are ignored (the versioned
    /// relation has already validated the batch).
    pub fn apply<'a>(
        &mut self,
        deletes: impl IntoIterator<Item = RowId>,
        inserts: impl IntoIterator<Item = (RowId, &'a Tuple)>,
    ) -> DirtyBlocks {
        let mut dirty = DirtyBlocks::default();
        for id in deletes {
            if let Some(key) = self.remove(id) {
                dirty.blocks.insert(key);
            }
        }
        for (id, tuple) in inserts {
            let key = self.add(id, tuple);
            dirty.blocks.insert(key);
        }
        dirty
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocking::BlockingStrategy;
    use relacc_model::{AttrId, Value};

    fn t(name: &str) -> Tuple {
        Tuple::new(vec![Value::text(name)])
    }

    fn index() -> IncrementalBlockingIndex {
        let blocker = Blocker::new(vec![AttrId(0)], BlockingStrategy::ExactKey);
        let rows = [t("Jordan"), t("Pippen"), t("jordan")];
        IncrementalBlockingIndex::build(
            blocker,
            rows.iter()
                .enumerate()
                .map(|(i, tuple)| (RowId(i as u64), tuple))
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn build_groups_rows_by_normalized_key() {
        let index = index();
        assert_eq!(index.rows(), 3);
        assert_eq!(index.blocks(), 2);
        assert_eq!(index.block_of_row(RowId(0)), index.block_of_row(RowId(2)));
        assert_ne!(index.block_of_row(RowId(0)), index.block_of_row(RowId(1)));
    }

    #[test]
    fn inserts_and_deletes_mark_their_blocks_dirty() {
        let mut index = index();
        let row = t("Jordan");
        let dirty = index.apply([RowId(1)], [(RowId(3), &row)]);
        assert_eq!(dirty.len(), 2);
        assert!(dirty.blocks.contains(&BlockKey::Key("pippen".into())));
        assert!(dirty.blocks.contains(&BlockKey::Key("jordan".into())));
        // the pippen block lost its only member and is gone
        assert_eq!(index.blocks(), 1);
        assert_eq!(index.rows(), 3);
    }

    #[test]
    fn empty_keys_stay_singleton_blocks() {
        let mut index = index();
        let null_row = Tuple::new(vec![Value::Null]);
        let dirty = index.apply([], [(RowId(7), &null_row), (RowId(8), &null_row)]);
        assert_eq!(dirty.len(), 2);
        assert_eq!(
            index.block_of_row(RowId(7)),
            Some(&BlockKey::Singleton(RowId(7)))
        );
        assert_ne!(index.block_of_row(RowId(7)), index.block_of_row(RowId(8)));
    }

    #[test]
    fn untouched_blocks_never_come_back_dirty() {
        let mut index = index();
        let row = t("Rodman");
        let dirty = index.apply([], [(RowId(9), &row)]);
        assert_eq!(dirty.len(), 1);
        assert_eq!(
            dirty.blocks.iter().next(),
            Some(&BlockKey::Key("rodman".into()))
        );
        // applying an empty update dirties nothing
        let empty = index.apply([], []);
        assert!(empty.is_empty());
    }
}
