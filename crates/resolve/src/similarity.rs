//! String and record similarity measures used by entity resolution.
//!
//! These are the standard measures used throughout the duplicate-detection
//! literature the paper cites for identifying entity instances (Elmagarmid et
//! al., TKDE 2007; Naumann & Herschel 2010): edit distance for typographic
//! variation, token Jaccard for word reordering, and a null-aware attribute
//! aggregate for whole records.

use relacc_model::{Tuple, Value};

/// Caller-reusable buffers for the string-similarity hot path: the two DP
/// rows and the two decoded-`char` buffers of [`levenshtein_with`].
///
/// Entity resolution compares `O(block²)` record pairs; with one scratch
/// threaded through [`record_similarity_with`] the whole pass touches the
/// allocator a constant number of times instead of four times per string
/// comparison.
#[derive(Debug, Clone, Default)]
pub struct SimilarityScratch {
    prev: Vec<usize>,
    curr: Vec<usize>,
    a_chars: Vec<char>,
    b_chars: Vec<char>,
}

impl SimilarityScratch {
    /// Fresh, empty buffers.
    pub fn new() -> Self {
        SimilarityScratch::default()
    }
}

/// Classic dynamic-programming Levenshtein edit distance between two strings.
///
/// Runs in `O(|a| · |b|)` time and `O(min(|a|, |b|))` space.  Convenience
/// wrapper over [`levenshtein_with`] paying one scratch allocation per call;
/// hot paths keep a [`SimilarityScratch`] and call the `_with` form.
pub fn levenshtein(a: &str, b: &str) -> usize {
    levenshtein_with(a, b, &mut SimilarityScratch::new())
}

/// [`levenshtein`] over caller-reusable buffers: two-row DP, no per-call
/// allocations once the scratch has warmed up.
pub fn levenshtein_with(a: &str, b: &str, scratch: &mut SimilarityScratch) -> usize {
    let SimilarityScratch {
        prev,
        curr,
        a_chars,
        b_chars,
    } = scratch;
    a_chars.clear();
    a_chars.extend(a.chars());
    b_chars.clear();
    b_chars.extend(b.chars());
    if a_chars.is_empty() {
        return b_chars.len();
    }
    if b_chars.is_empty() {
        return a_chars.len();
    }
    // keep the shorter string in the inner dimension to bound the row length
    let (outer, inner) = if a_chars.len() >= b_chars.len() {
        (&*a_chars, &*b_chars)
    } else {
        (&*b_chars, &*a_chars)
    };
    prev.clear();
    prev.extend(0..=inner.len());
    curr.clear();
    curr.resize(inner.len() + 1, 0);
    for (i, oc) in outer.iter().enumerate() {
        curr[0] = i + 1;
        for (j, ic) in inner.iter().enumerate() {
            let substitution = prev[j] + usize::from(oc != ic);
            curr[j + 1] = substitution.min(prev[j + 1] + 1).min(curr[j] + 1);
        }
        std::mem::swap(prev, curr);
    }
    prev[inner.len()]
}

/// Levenshtein distance normalized to a similarity in `[0, 1]`
/// (1.0 = identical, 0.0 = nothing in common).
pub fn normalized_levenshtein(a: &str, b: &str) -> f64 {
    normalized_levenshtein_with(a, b, &mut SimilarityScratch::new())
}

/// [`normalized_levenshtein`] over caller-reusable buffers.
pub fn normalized_levenshtein_with(a: &str, b: &str, scratch: &mut SimilarityScratch) -> f64 {
    let distance = levenshtein_with(a, b, scratch);
    // the char buffers still hold both decoded strings
    let longest = scratch.a_chars.len().max(scratch.b_chars.len());
    if longest == 0 {
        return 1.0;
    }
    1.0 - distance as f64 / longest as f64
}

/// Jaccard similarity of the whitespace-delimited, lower-cased token sets of
/// two strings.  Robust to word reordering ("Jordan, Michael" vs
/// "Michael Jordan").
pub fn jaccard_tokens(a: &str, b: &str) -> f64 {
    let tokens = |s: &str| {
        s.split_whitespace()
            .map(|t| t.to_lowercase())
            .collect::<std::collections::BTreeSet<String>>()
    };
    let ta = tokens(a);
    let tb = tokens(b);
    if ta.is_empty() && tb.is_empty() {
        return 1.0;
    }
    let intersection = ta.intersection(&tb).count();
    let union = ta.union(&tb).count();
    intersection as f64 / union as f64
}

/// Similarity of two attribute values in `[0, 1]`.
///
/// * both null → no evidence either way (`None`);
/// * exactly one null → weak evidence against a match (0.0, but callers
///   typically weight nulls down);
/// * text values → the maximum of normalized Levenshtein and token Jaccard;
/// * other types → 1.0 on equality, 0.0 otherwise.
pub fn value_similarity(a: &Value, b: &Value) -> Option<f64> {
    value_similarity_with(a, b, &mut SimilarityScratch::new())
}

/// [`value_similarity`] over caller-reusable buffers.
pub fn value_similarity_with(a: &Value, b: &Value, scratch: &mut SimilarityScratch) -> Option<f64> {
    match (a, b) {
        (Value::Null, Value::Null) => None,
        (Value::Null, _) | (_, Value::Null) => Some(0.0),
        (Value::Str(x), Value::Str(y)) => {
            Some(normalized_levenshtein_with(x, y, scratch).max(jaccard_tokens(x, y)))
        }
        _ => Some(if a.same(b) { 1.0 } else { 0.0 }),
    }
}

/// Similarity of two records restricted to the given attribute indices:
/// the mean of the per-attribute value similarities, ignoring attribute pairs
/// where both sides are null.  Returns 0.0 when no attribute provides evidence.
pub fn record_similarity(a: &Tuple, b: &Tuple, attrs: &[relacc_model::AttrId]) -> f64 {
    record_similarity_with(a, b, attrs, &mut SimilarityScratch::new())
}

/// [`record_similarity`] over caller-reusable buffers — the form
/// [`crate::resolve_relation`] threads through its `O(block²)` comparison
/// loop.
pub fn record_similarity_with(
    a: &Tuple,
    b: &Tuple,
    attrs: &[relacc_model::AttrId],
    scratch: &mut SimilarityScratch,
) -> f64 {
    let mut total = 0.0;
    let mut counted = 0usize;
    for &attr in attrs {
        if let Some(sim) = value_similarity_with(a.value(attr), b.value(attr), scratch) {
            total += sim;
            counted += 1;
        }
    }
    if counted == 0 {
        0.0
    } else {
        total / counted as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relacc_model::AttrId;

    #[test]
    fn levenshtein_matches_known_distances() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("jordan", "jordan"), 0);
        assert_eq!(levenshtein("Jordan", "jordan"), 1);
    }

    #[test]
    fn levenshtein_is_symmetric() {
        let pairs = [("abcdef", "azced"), ("michael", "michele"), ("", "x")];
        for (a, b) in pairs {
            assert_eq!(levenshtein(a, b), levenshtein(b, a));
        }
    }

    #[test]
    fn shared_scratch_matches_fresh_buffers() {
        // one scratch across differently-sized comparisons must not leak rows
        let mut scratch = SimilarityScratch::new();
        let pairs = [
            ("kitten", "sitting"),
            ("", "abc"),
            ("a much longer string than before", "short"),
            ("flaw", "lawn"),
            ("", ""),
            ("Jordan", "jordan"),
        ];
        for (a, b) in pairs {
            assert_eq!(levenshtein_with(a, b, &mut scratch), levenshtein(a, b));
            assert_eq!(
                normalized_levenshtein_with(a, b, &mut scratch),
                normalized_levenshtein(a, b)
            );
        }
        let x = Tuple::new(vec![Value::text("Michael Jordan"), Value::Int(23)]);
        let y = Tuple::new(vec![Value::text("Michael  Jordan"), Value::Int(23)]);
        let attrs = [AttrId(0), AttrId(1)];
        assert_eq!(
            record_similarity_with(&x, &y, &attrs, &mut scratch),
            record_similarity(&x, &y, &attrs)
        );
    }

    #[test]
    fn normalized_levenshtein_bounds() {
        assert_eq!(normalized_levenshtein("", ""), 1.0);
        assert_eq!(normalized_levenshtein("abc", "abc"), 1.0);
        assert_eq!(normalized_levenshtein("abc", "xyz"), 0.0);
        let mid = normalized_levenshtein("michael", "michele");
        assert!(mid > 0.5 && mid < 1.0);
    }

    #[test]
    fn jaccard_ignores_token_order_and_case() {
        assert_eq!(jaccard_tokens("Michael Jordan", "jordan michael"), 1.0);
        assert_eq!(jaccard_tokens("", ""), 1.0);
        assert_eq!(jaccard_tokens("a b", "c d"), 0.0);
        let half = jaccard_tokens("chicago bulls", "chicago stadium");
        assert!((half - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn value_similarity_null_handling() {
        assert_eq!(value_similarity(&Value::Null, &Value::Null), None);
        assert_eq!(value_similarity(&Value::Null, &Value::Int(3)), Some(0.0));
        assert_eq!(value_similarity(&Value::Int(3), &Value::Int(3)), Some(1.0));
        assert_eq!(value_similarity(&Value::Int(3), &Value::Int(4)), Some(0.0));
        let sim = value_similarity(&Value::text("Bulls"), &Value::text("Buls")).unwrap();
        assert!(sim > 0.7);
    }

    #[test]
    fn record_similarity_averages_over_informative_attrs() {
        let a = Tuple::new(vec![
            Value::text("Michael Jordan"),
            Value::Null,
            Value::Int(23),
        ]);
        let b = Tuple::new(vec![
            Value::text("Michael Jordan"),
            Value::Null,
            Value::Int(45),
        ]);
        let attrs = [AttrId(0), AttrId(1), AttrId(2)];
        // attr 1 is uninformative (both null); attrs 0 and 2 average to 0.5
        let sim = record_similarity(&a, &b, &attrs);
        assert!((sim - 0.5).abs() < 1e-9);
        // restricted to the name attribute the records look identical
        assert_eq!(record_similarity(&a, &b, &[AttrId(0)]), 1.0);
        // no informative attribute at all
        assert_eq!(record_similarity(&a, &b, &[AttrId(1)]), 0.0);
    }
}
