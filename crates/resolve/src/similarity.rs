//! String and record similarity measures used by entity resolution.
//!
//! These are the standard measures used throughout the duplicate-detection
//! literature the paper cites for identifying entity instances (Elmagarmid et
//! al., TKDE 2007; Naumann & Herschel 2010): edit distance for typographic
//! variation, token Jaccard for word reordering, and a null-aware attribute
//! aggregate for whole records.

use relacc_model::{Tuple, Value};

/// Caller-reusable buffers for the string-similarity hot path: the two DP
/// rows and the two decoded-`char` buffers of [`levenshtein_with`].
///
/// Entity resolution compares `O(block²)` record pairs; with one scratch
/// threaded through [`record_similarity_with`] the whole pass touches the
/// allocator a constant number of times instead of four times per string
/// comparison.
#[derive(Debug, Clone, Default)]
pub struct SimilarityScratch {
    prev: Vec<usize>,
    curr: Vec<usize>,
    a_chars: Vec<char>,
    b_chars: Vec<char>,
    /// Myers `Peq` table for ASCII pattern chars, indexed by code point.
    /// Invariant: all-zero between calls (each run clears exactly the
    /// entries it set), so stale masks can never leak into the next pattern.
    ascii_peq: Vec<u64>,
    /// Myers `Peq` entries for non-ASCII pattern chars (≤64, linear scan).
    wide_peq: Vec<(char, u64)>,
}

impl SimilarityScratch {
    /// Fresh, empty buffers.
    pub fn new() -> Self {
        SimilarityScratch::default()
    }
}

/// Levenshtein edit distance between two strings.
///
/// Bit-parallel (Myers 1999) when the shorter string fits a 64-bit word,
/// classic `O(|a| · |b|)` two-row DP above that — both exact.  Convenience
/// wrapper over [`levenshtein_with`] paying one scratch allocation per call;
/// hot paths keep a [`SimilarityScratch`] and call the `_with` form.
pub fn levenshtein(a: &str, b: &str) -> usize {
    levenshtein_with(a, b, &mut SimilarityScratch::new())
}

/// [`levenshtein`] over caller-reusable buffers, no per-call allocations once
/// the scratch has warmed up.
///
/// Dispatches on the shorter (pattern) string: at most 64 chars it runs
/// Myers' bit-parallel algorithm — the whole DP column lives in one `u64`
/// pair, `O(|text|)` word operations total — otherwise it falls back to the
/// classic two-row DP ([`levenshtein_dp_with`]).  Both paths compute the
/// exact same integer distance; `tests` and `tests/resolve_cascade.rs` pin
/// the equivalence on Unicode, empty and >64-char inputs.
pub fn levenshtein_with(a: &str, b: &str, scratch: &mut SimilarityScratch) -> usize {
    scratch.a_chars.clear();
    scratch.a_chars.extend(a.chars());
    scratch.b_chars.clear();
    scratch.b_chars.extend(b.chars());
    if scratch.a_chars.is_empty() {
        return scratch.b_chars.len();
    }
    if scratch.b_chars.is_empty() {
        return scratch.a_chars.len();
    }
    let SimilarityScratch {
        prev,
        curr,
        a_chars,
        b_chars,
        ascii_peq,
        wide_peq,
    } = scratch;
    // the shorter string is the pattern (Myers) / inner DP dimension
    let (text, pattern) = if a_chars.len() >= b_chars.len() {
        (&*a_chars, &*b_chars)
    } else {
        (&*b_chars, &*a_chars)
    };
    if pattern.len() <= 64 {
        myers_distance(pattern, text, ascii_peq, wide_peq)
    } else {
        levenshtein_dp(pattern, text, prev, curr)
    }
}

/// The classic two-row dynamic-programming Levenshtein over caller buffers:
/// `O(|a| · |b|)` time, `O(min(|a|, |b|))` space.  This is the reference
/// implementation [`levenshtein_with`] falls back to when both strings
/// exceed 64 chars, kept `pub` so tests and benchmarks can pin the
/// bit-parallel path against it on arbitrary inputs.
pub fn levenshtein_dp_with(a: &str, b: &str, scratch: &mut SimilarityScratch) -> usize {
    scratch.a_chars.clear();
    scratch.a_chars.extend(a.chars());
    scratch.b_chars.clear();
    scratch.b_chars.extend(b.chars());
    if scratch.a_chars.is_empty() {
        return scratch.b_chars.len();
    }
    if scratch.b_chars.is_empty() {
        return scratch.a_chars.len();
    }
    let (outer, inner) = if scratch.a_chars.len() >= scratch.b_chars.len() {
        (&scratch.a_chars[..], &scratch.b_chars[..])
    } else {
        (&scratch.b_chars[..], &scratch.a_chars[..])
    };
    levenshtein_dp(inner, outer, &mut scratch.prev, &mut scratch.curr)
}

/// Two-row DP core over decoded chars; `inner` must be the shorter slice.
fn levenshtein_dp(
    inner: &[char],
    outer: &[char],
    prev: &mut Vec<usize>,
    curr: &mut Vec<usize>,
) -> usize {
    prev.clear();
    prev.extend(0..=inner.len());
    curr.clear();
    curr.resize(inner.len() + 1, 0);
    for (i, oc) in outer.iter().enumerate() {
        curr[0] = i + 1;
        for (j, ic) in inner.iter().enumerate() {
            let substitution = prev[j] + usize::from(oc != ic);
            curr[j + 1] = substitution.min(prev[j + 1] + 1).min(curr[j] + 1);
        }
        std::mem::swap(prev, curr);
    }
    prev[inner.len()]
}

/// Myers' bit-parallel Levenshtein (Myers 1999, in Hyyrö's formulation):
/// the DP column for a pattern of `m ≤ 64` chars is encoded as two `u64`
/// delta vectors `Pv`/`Mv` and advanced one text char at a time with a
/// constant number of word operations, tracking the exact distance at the
/// column's last bit.
///
/// `peq(c)` — the mask of pattern positions holding char `c` — is served
/// from an ASCII-indexed table plus a short spill list for wider chars;
/// both are caller buffers and are restored to empty before returning.
fn myers_distance(
    pattern: &[char],
    text: &[char],
    ascii_peq: &mut Vec<u64>,
    wide_peq: &mut Vec<(char, u64)>,
) -> usize {
    let m = pattern.len();
    debug_assert!((1..=64).contains(&m), "pattern must fit one u64 column");
    if ascii_peq.is_empty() {
        ascii_peq.resize(128, 0);
    }
    wide_peq.clear();
    for (i, &c) in pattern.iter().enumerate() {
        let mask = 1u64 << i;
        if (c as u32) < 128 {
            ascii_peq[c as usize] |= mask;
        } else if let Some(entry) = wide_peq.iter_mut().find(|(w, _)| *w == c) {
            entry.1 |= mask;
        } else {
            wide_peq.push((c, mask));
        }
    }

    let mut pv = !0u64;
    let mut mv = 0u64;
    let mut score = m;
    let msb = 1u64 << (m - 1);
    for &c in text {
        let eq = if (c as u32) < 128 {
            ascii_peq[c as usize]
        } else {
            wide_peq
                .iter()
                .find(|(w, _)| *w == c)
                .map_or(0, |&(_, mask)| mask)
        };
        let xv = eq | mv;
        let xh = (((eq & pv).wrapping_add(pv)) ^ pv) | eq;
        let mut ph = mv | !(xh | pv);
        let mut mh = pv & xh;
        if ph & msb != 0 {
            score += 1;
        } else if mh & msb != 0 {
            score -= 1;
        }
        ph = (ph << 1) | 1;
        mh <<= 1;
        pv = mh | !(xv | ph);
        mv = ph & xv;
    }

    // restore the all-zero invariant of the ASCII table
    for &c in pattern {
        if (c as u32) < 128 {
            ascii_peq[c as usize] = 0;
        }
    }
    score
}

/// Levenshtein distance normalized to a similarity in `[0, 1]`
/// (1.0 = identical, 0.0 = nothing in common).
pub fn normalized_levenshtein(a: &str, b: &str) -> f64 {
    normalized_levenshtein_with(a, b, &mut SimilarityScratch::new())
}

/// [`normalized_levenshtein`] over caller-reusable buffers.
pub fn normalized_levenshtein_with(a: &str, b: &str, scratch: &mut SimilarityScratch) -> f64 {
    let distance = levenshtein_with(a, b, scratch);
    // the char buffers still hold both decoded strings
    let longest = scratch.a_chars.len().max(scratch.b_chars.len());
    if longest == 0 {
        return 1.0;
    }
    1.0 - distance as f64 / longest as f64
}

/// Jaccard similarity of the whitespace-delimited, lower-cased token sets of
/// two strings.  Robust to word reordering ("Jordan, Michael" vs
/// "Michael Jordan").
pub fn jaccard_tokens(a: &str, b: &str) -> f64 {
    let tokens = |s: &str| {
        s.split_whitespace()
            .map(|t| t.to_lowercase())
            .collect::<std::collections::BTreeSet<String>>()
    };
    let ta = tokens(a);
    let tb = tokens(b);
    if ta.is_empty() && tb.is_empty() {
        return 1.0;
    }
    let intersection = ta.intersection(&tb).count();
    let union = ta.union(&tb).count();
    intersection as f64 / union as f64
}

/// Similarity of two attribute values in `[0, 1]`.
///
/// * both null → no evidence either way (`None`);
/// * exactly one null → weak evidence against a match (0.0, but callers
///   typically weight nulls down);
/// * text values → the maximum of normalized Levenshtein and token Jaccard;
/// * other types → 1.0 on equality, 0.0 otherwise.
pub fn value_similarity(a: &Value, b: &Value) -> Option<f64> {
    value_similarity_with(a, b, &mut SimilarityScratch::new())
}

/// [`value_similarity`] over caller-reusable buffers.
pub fn value_similarity_with(a: &Value, b: &Value, scratch: &mut SimilarityScratch) -> Option<f64> {
    match (a, b) {
        (Value::Null, Value::Null) => None,
        (Value::Null, _) | (_, Value::Null) => Some(0.0),
        (Value::Str(x), Value::Str(y)) => {
            Some(normalized_levenshtein_with(x, y, scratch).max(jaccard_tokens(x, y)))
        }
        _ => Some(if a.same(b) { 1.0 } else { 0.0 }),
    }
}

/// Similarity of two records restricted to the given attribute indices:
/// the mean of the per-attribute value similarities, ignoring attribute pairs
/// where both sides are null.  Returns 0.0 when no attribute provides evidence.
pub fn record_similarity(a: &Tuple, b: &Tuple, attrs: &[relacc_model::AttrId]) -> f64 {
    record_similarity_with(a, b, attrs, &mut SimilarityScratch::new())
}

/// [`record_similarity`] over caller-reusable buffers — the form
/// [`crate::resolve_relation`] threads through its `O(block²)` comparison
/// loop.
pub fn record_similarity_with(
    a: &Tuple,
    b: &Tuple,
    attrs: &[relacc_model::AttrId],
    scratch: &mut SimilarityScratch,
) -> f64 {
    let mut total = 0.0;
    let mut counted = 0usize;
    for &attr in attrs {
        if let Some(sim) = value_similarity_with(a.value(attr), b.value(attr), scratch) {
            total += sim;
            counted += 1;
        }
    }
    if counted == 0 {
        0.0
    } else {
        total / counted as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relacc_model::AttrId;

    #[test]
    fn levenshtein_matches_known_distances() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("jordan", "jordan"), 0);
        assert_eq!(levenshtein("Jordan", "jordan"), 1);
    }

    #[test]
    fn levenshtein_is_symmetric() {
        let pairs = [("abcdef", "azced"), ("michael", "michele"), ("", "x")];
        for (a, b) in pairs {
            assert_eq!(levenshtein(a, b), levenshtein(b, a));
        }
    }

    #[test]
    fn shared_scratch_matches_fresh_buffers() {
        // one scratch across differently-sized comparisons must not leak rows
        let mut scratch = SimilarityScratch::new();
        let pairs = [
            ("kitten", "sitting"),
            ("", "abc"),
            ("a much longer string than before", "short"),
            ("flaw", "lawn"),
            ("", ""),
            ("Jordan", "jordan"),
        ];
        for (a, b) in pairs {
            assert_eq!(levenshtein_with(a, b, &mut scratch), levenshtein(a, b));
            assert_eq!(
                normalized_levenshtein_with(a, b, &mut scratch),
                normalized_levenshtein(a, b)
            );
        }
        let x = Tuple::new(vec![Value::text("Michael Jordan"), Value::Int(23)]);
        let y = Tuple::new(vec![Value::text("Michael  Jordan"), Value::Int(23)]);
        let attrs = [AttrId(0), AttrId(1)];
        assert_eq!(
            record_similarity_with(&x, &y, &attrs, &mut scratch),
            record_similarity(&x, &y, &attrs)
        );
    }

    #[test]
    fn myers_matches_dp_on_unicode_empty_and_long_inputs() {
        let long_a = "a".repeat(70) + &"b".repeat(10); // both >64: DP fallback
        let long_b = "a".repeat(70) + &"c".repeat(12);
        let mixed = "x".repeat(80); // one side >64, pattern ≤64: Myers
        let pairs = [
            ("", ""),
            ("", "abc"),
            ("naïve", "naive"),
            ("über", "uber"),
            ("日本語のテキスト", "日本語テキスト"),
            ("Ελλάδα", "ελλαδα"),
            ("résumé writer", "resume writer"),
            ("abcdefghijklmnopqrstuvwxyz", "abcdefghijklmnoqprstuvwxyz"),
            (long_a.as_str(), long_b.as_str()),
            (mixed.as_str(), "xxx"),
            ("mañana", "manana"),
        ];
        let mut scratch = SimilarityScratch::new();
        for (a, b) in pairs {
            let dp = levenshtein_dp_with(a, b, &mut scratch);
            assert_eq!(
                levenshtein_with(a, b, &mut scratch),
                dp,
                "dispatch vs DP on {a:?} / {b:?}"
            );
            assert_eq!(
                levenshtein_with(b, a, &mut scratch),
                dp,
                "symmetry on {a:?} / {b:?}"
            );
        }
    }

    #[test]
    fn myers_boundary_at_64_chars() {
        // pattern of exactly 64 chars exercises the msb == bit 63 edge
        let p64: String = ('a'..='z').cycle().take(64).collect();
        let mut q = p64.clone();
        q.replace_range(0..1, "zz"); // one substitution + one insert
        let mut scratch = SimilarityScratch::new();
        assert_eq!(
            levenshtein_with(&p64, &q, &mut scratch),
            levenshtein_dp_with(&p64, &q, &mut scratch)
        );
        assert_eq!(levenshtein_with(&p64, &p64, &mut scratch), 0);
        // 65-char pair takes the DP fallback and still agrees with itself
        let p65: String = ('a'..='z').cycle().take(65).collect();
        assert_eq!(levenshtein_with(&p65, &p64, &mut scratch), 1);
    }

    #[test]
    fn myers_scratch_does_not_leak_between_calls() {
        let mut scratch = SimilarityScratch::new();
        // first call seeds the ASCII peq table with 'k'/'i'/'t'... masks
        assert_eq!(levenshtein_with("kitten", "sitting", &mut scratch), 3);
        // a second pattern without those chars must see a clean table even
        // though its *text* contains them
        assert_eq!(levenshtein_with("abc", "kitten", &mut scratch), 6);
        // and non-ASCII spill entries reset too
        assert_eq!(levenshtein_with("日本", "日本", &mut scratch), 0);
        assert_eq!(levenshtein_with("ab", "日本", &mut scratch), 2);
    }

    #[test]
    fn normalized_levenshtein_bounds() {
        assert_eq!(normalized_levenshtein("", ""), 1.0);
        assert_eq!(normalized_levenshtein("abc", "abc"), 1.0);
        assert_eq!(normalized_levenshtein("abc", "xyz"), 0.0);
        let mid = normalized_levenshtein("michael", "michele");
        assert!(mid > 0.5 && mid < 1.0);
    }

    #[test]
    fn jaccard_ignores_token_order_and_case() {
        assert_eq!(jaccard_tokens("Michael Jordan", "jordan michael"), 1.0);
        assert_eq!(jaccard_tokens("", ""), 1.0);
        assert_eq!(jaccard_tokens("a b", "c d"), 0.0);
        let half = jaccard_tokens("chicago bulls", "chicago stadium");
        assert!((half - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn value_similarity_null_handling() {
        assert_eq!(value_similarity(&Value::Null, &Value::Null), None);
        assert_eq!(value_similarity(&Value::Null, &Value::Int(3)), Some(0.0));
        assert_eq!(value_similarity(&Value::Int(3), &Value::Int(3)), Some(1.0));
        assert_eq!(value_similarity(&Value::Int(3), &Value::Int(4)), Some(0.0));
        let sim = value_similarity(&Value::text("Bulls"), &Value::text("Buls")).unwrap();
        assert!(sim > 0.7);
    }

    #[test]
    fn record_similarity_averages_over_informative_attrs() {
        let a = Tuple::new(vec![
            Value::text("Michael Jordan"),
            Value::Null,
            Value::Int(23),
        ]);
        let b = Tuple::new(vec![
            Value::text("Michael Jordan"),
            Value::Null,
            Value::Int(45),
        ]);
        let attrs = [AttrId(0), AttrId(1), AttrId(2)];
        // attr 1 is uninformative (both null); attrs 0 and 2 average to 0.5
        let sim = record_similarity(&a, &b, &attrs);
        assert!((sim - 0.5).abs() < 1e-9);
        // restricted to the name attribute the records look identical
        assert_eq!(record_similarity(&a, &b, &[AttrId(0)]), 1.0);
        // no informative attribute at all
        assert_eq!(record_similarity(&a, &b, &[AttrId(1)]), 0.0);
    }
}
