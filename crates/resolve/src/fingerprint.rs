//! Packed record fingerprints: per-record digests whose pairwise comparison
//! yields a provable **upper bound** on record similarity, so the resolution
//! cascade can discard most pairs without running any string alignment.
//!
//! A fingerprint is computed once per record (`O(record size)`) and compared
//! per pair in `O(words)` popcounts via [`relacc_model::BitSet`], replacing
//! the `O(|a| · |b|)` Levenshtein DP for every pair the bound already rules
//! out.  The bound is *exact* in the pruning direction: whenever
//! [`RecordFingerprint::stage1_upper_bound`] or
//! [`RecordFingerprint::stage2_upper_bound`] is below the match threshold,
//! the true [`record_similarity`](crate::similarity::record_similarity) is
//! also below it, so pruning never changes the clustering.
//!
//! # Why the bounds are sound
//!
//! Per text attribute, the true similarity is
//! `max(normalized_levenshtein, jaccard_tokens)` (see
//! [`value_similarity`](crate::similarity::value_similarity)), so an upper
//! bound needs one sound bound per component, combined with `max`.
//!
//! **Edit-distance lower bounds** (each gives `lev ≤ 1 − lb/max_len`):
//!
//! * *Length*: one edit operation changes the char length by at most one, so
//!   `ed(a, b) ≥ |len(a) − len(b)|`.
//! * *Character sets*: one edit removes at most one distinct char from
//!   `set(a) \ set(b)` and introduces at most one into `set(b) \ set(a)`
//!   (a substitution can do both at once), so
//!   `ed(a, b) ≥ max(|set(a) \ set(b)|, |set(b) \ set(a)|)`.
//! * *Bigram sets*: a single edit touches at most two adjacent char pairs,
//!   so it removes at most two distinct bigrams from `Q(a) \ Q(b)` (and
//!   introduces at most two), giving
//!   `ed(a, b) ≥ ⌈max(|Q(a) \ Q(b)|, |Q(b) \ Q(a)|) / 2⌉`.
//!
//! Chars and bigrams are *hashed* into fixed-width bitsets ([`CHAR_BITS`],
//! [`QGRAM_BITS`]).  Hashing only **weakens** these bounds, never breaks
//! them: distinct buckets have disjoint preimages, so every bucket in
//! `φ(a) \ φ(b)` contains at least one element of `set(a) \ set(b)`, hence
//! `|φ(a) \ φ(b)| ≤ |set(a) \ set(b)|` — the hashed difference count is
//! still a valid edit-distance lower bound.
//!
//! **Token-Jaccard upper bounds** (`J = |ta ∩ tb| / |ta ∪ tb|` over distinct
//! lower-cased whitespace tokens):
//!
//! * *Counts*: with the **exact** distinct-token counts `na`, `nb` stored in
//!   the fingerprint, `|∩| ≤ min(na, nb)` and `|∪| ≥ max(na, nb)`, so
//!   `J ≤ min(na, nb) / max(na, nb)`.
//! * *Union*: with `U = popcount(Ta | Tb)` over the hashed token bitsets,
//!   `|∪| ≥ U` (disjoint preimages again), hence
//!   `|∩| = na + nb − |∪| ≤ na + nb − U` and `J ≤ (na + nb − U) / U`.
//!   Note the intersection popcount is *not* used — two distinct common
//!   tokens can share a bucket, so `popcount(Ta & Tb)` bounds nothing;
//!   deriving `|∩|` from the union side is what keeps this exact.
//!
//! **Non-text values** compare by [`Value::same`], which treats `Int(3)` and
//! `Float(3.0)` as equal (total-order comparison after an `as f64` cast).
//! The fingerprint stores a hash with the matching contract —
//! `same(a, b) ⇒ hash(a) = hash(b)`, achieved by hashing both numeric
//! widths through `(x as f64).to_bits()` — so differing hashes prove the
//! similarity is exactly `0.0`, while equal hashes conservatively bound it
//! by `1.0`.
//!
//! **Record level**: [`record_similarity`](crate::similarity::record_similarity)
//! averages per-attribute similarities over the informative (not
//! both-null) attribute pairs, and a fingerprint determines exactly which
//! pairs are informative.  The bounds are combined in the *same* attribute
//! order with the same `+`/`/` operations; since correctly-rounded IEEE-754
//! addition and division are monotone, the accumulated bound dominates the
//! accumulated similarity in `f64` arithmetic too — not just over the reals
//! — which is what makes `upper_bound < threshold ⇒ similarity < threshold`
//! safe as an exact `f64` comparison.

use relacc_model::{AttrId, BitSet, Tuple, Value};

/// Width of the hashed character-set bitset (ASCII maps identity, wider
/// chars hash into the same space).
pub const CHAR_BITS: usize = 128;
/// Width of the hashed bigram-set bitset.  Wider than [`CHAR_BITS`] because
/// the bigram alphabet is quadratically larger: at 128 buckets a pair of
/// unrelated ~90-char strings already collides enough to halve the measured
/// set difference (the bound weakens with saturation, `≈ W·(1 − e^{−n/W})`
/// occupied buckets for `n` distinct bigrams), which is exactly the
/// long-string regime where pruning pays the most.
pub const QGRAM_BITS: usize = 256;
/// Width of the hashed token-set bitset.
pub const TOKEN_BITS: usize = 64;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut hash = FNV_OFFSET;
    for b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

fn char_bucket(c: char) -> usize {
    let cp = c as u32;
    if cp < 128 {
        cp as usize
    } else {
        (fnv1a(cp.to_le_bytes()) % CHAR_BITS as u64) as usize
    }
}

fn bigram_bucket(a: char, b: char) -> usize {
    let mut bytes = [0u8; 8];
    bytes[..4].copy_from_slice(&(a as u32).to_le_bytes());
    bytes[4..].copy_from_slice(&(b as u32).to_le_bytes());
    (fnv1a(bytes) % QGRAM_BITS as u64) as usize
}

/// Hash of a non-text, non-null scalar with the [`Value::same`] contract:
/// values `same` to each other hash equal (numerics of either width go
/// through their `f64` bit pattern, mirroring `Value::compare`).
fn scalar_hash(value: &Value) -> u64 {
    match value {
        Value::Bool(b) => 0x9e37_79b9_7f4a_7c15 ^ (*b as u64),
        Value::Int(i) => (*i as f64).to_bits() ^ 0x517c_c1b7_2722_0a95,
        Value::Float(f) => f.to_bits() ^ 0x517c_c1b7_2722_0a95,
        Value::Null | Value::Str(_) => unreachable!("handled by AttrFingerprint::of_value"),
    }
}

/// The fingerprint of one attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrFingerprint {
    /// A null value (uninformative when paired with another null, exact
    /// similarity 0.0 against anything else).
    Null,
    /// A text value: hashed char/bigram/token sets plus the exact char and
    /// distinct-token counts the bounds need.
    Text {
        /// Distinct chars, hashed into [`CHAR_BITS`] buckets.
        chars: BitSet,
        /// Distinct adjacent char pairs, hashed into [`QGRAM_BITS`] buckets.
        bigrams: BitSet,
        /// Distinct lower-cased whitespace tokens, hashed into
        /// [`TOKEN_BITS`] buckets.
        tokens: BitSet,
        /// Exact char count of the string.
        len: u32,
        /// Exact number of distinct lower-cased tokens (the same distinct
        /// set [`crate::similarity::jaccard_tokens`] builds).
        n_tokens: u32,
    },
    /// Any other (scalar) value, reduced to a [`Value::same`]-compatible
    /// hash: unequal hashes prove similarity 0.0.
    Scalar {
        /// See `scalar_hash`'s contract (private helper in this module).
        vhash: u64,
    },
}

impl AttrFingerprint {
    /// Fingerprint one attribute value.
    pub fn of_value(value: &Value) -> Self {
        match value {
            Value::Null => AttrFingerprint::Null,
            Value::Str(s) => {
                let mut chars = BitSet::with_capacity(CHAR_BITS);
                let mut bigrams = BitSet::with_capacity(QGRAM_BITS);
                let mut tokens = BitSet::with_capacity(TOKEN_BITS);
                let mut len = 0u32;
                let mut prev: Option<char> = None;
                for c in s.chars() {
                    len += 1;
                    chars.insert(char_bucket(c));
                    if let Some(p) = prev {
                        bigrams.insert(bigram_bucket(p, c));
                    }
                    prev = Some(c);
                }
                // exact distinct-token count under the same lower-casing as
                // jaccard_tokens (str::to_lowercase, not char-wise — they
                // differ on e.g. final sigma, and the count must be exact)
                let distinct: std::collections::BTreeSet<String> =
                    s.split_whitespace().map(|t| t.to_lowercase()).collect();
                let n_tokens = distinct.len() as u32;
                for tok in &distinct {
                    tokens.insert((fnv1a(tok.bytes()) % TOKEN_BITS as u64) as usize);
                }
                AttrFingerprint::Text {
                    chars,
                    bigrams,
                    tokens,
                    len,
                    n_tokens,
                }
            }
            other => AttrFingerprint::Scalar {
                vhash: scalar_hash(other),
            },
        }
    }

    /// Stage-1 upper bound on
    /// [`value_similarity`](crate::similarity::value_similarity) of the
    /// underlying values, using only counts (lengths, token counts) and the
    /// scalar hash — no bitset work.  `None` mirrors the both-null
    /// "uninformative" case.
    fn stage1_upper_bound(&self, other: &Self) -> Option<f64> {
        use AttrFingerprint::*;
        match (self, other) {
            (Null, Null) => None,
            (Null, _) | (_, Null) => Some(0.0),
            (
                Text {
                    len: la,
                    n_tokens: na,
                    ..
                },
                Text {
                    len: lb,
                    n_tokens: nb,
                    ..
                },
            ) => Some(
                lev_bound_from_distance(la.abs_diff(*lb), *la, *lb)
                    .max(jaccard_count_bound(*na, *nb)),
            ),
            (Scalar { vhash: ha }, Scalar { vhash: hb }) => Some(if ha == hb { 1.0 } else { 0.0 }),
            // mixed text/scalar: Value::same across types is always false
            (Text { .. }, Scalar { .. }) | (Scalar { .. }, Text { .. }) => Some(0.0),
        }
    }

    /// Stage-2 upper bound, refining stage 1 with the popcount set bounds
    /// (char/bigram differences for edit distance, token union for Jaccard).
    fn stage2_upper_bound(&self, other: &Self) -> Option<f64> {
        use AttrFingerprint::*;
        match (self, other) {
            (
                Text {
                    chars: ca,
                    bigrams: qa,
                    tokens: ta,
                    len: la,
                    n_tokens: na,
                },
                Text {
                    chars: cb,
                    bigrams: qb,
                    tokens: tb,
                    len: lb,
                    n_tokens: nb,
                },
            ) => {
                let char_diff = ca.difference_count(cb).max(cb.difference_count(ca));
                let bigram_diff = qa.difference_count(qb).max(qb.difference_count(qa));
                let ed_lb = (la.abs_diff(*lb) as usize)
                    .max(char_diff)
                    .max(bigram_diff.div_ceil(2));
                let lev_ub = lev_bound_from_distance(ed_lb as u32, *la, *lb);
                let mut jac_ub = jaccard_count_bound(*na, *nb);
                let union = ta.union_count(tb);
                if union > 0 {
                    // |∩| ≤ na + nb − U (see module docs); never negative
                    // since every occupied bucket has a preimage token
                    let inter_ub = (*na as usize + *nb as usize).saturating_sub(union);
                    jac_ub = jac_ub.min(inter_ub as f64 / union as f64);
                }
                Some(lev_ub.max(jac_ub))
            }
            _ => self.stage1_upper_bound(other),
        }
    }
}

/// `1 − d / max(la, lb)` as a similarity upper bound from an edit-distance
/// lower bound `d`, with the same `max_len == 0 → 1.0` convention as
/// [`crate::similarity::normalized_levenshtein`].
fn lev_bound_from_distance(d: u32, la: u32, lb: u32) -> f64 {
    let longest = la.max(lb);
    if longest == 0 {
        1.0
    } else {
        1.0 - d as f64 / longest as f64
    }
}

/// `J ≤ min(na, nb) / max(na, nb)` with the `both empty → 1.0` convention
/// of [`crate::similarity::jaccard_tokens`].
fn jaccard_count_bound(na: u32, nb: u32) -> f64 {
    if na == 0 && nb == 0 {
        1.0
    } else {
        na.min(nb) as f64 / na.max(nb) as f64
    }
}

/// The fingerprint of one record, restricted to the match attributes —
/// one [`AttrFingerprint`] per attribute, in the attribute order the
/// resolution pass compares with.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordFingerprint {
    attrs: Vec<AttrFingerprint>,
}

impl RecordFingerprint {
    /// Fingerprint a record over the given attributes (the same list, in the
    /// same order, that [`crate::resolve_relation`] hands to
    /// [`record_similarity`](crate::similarity::record_similarity)).
    pub fn of_tuple(tuple: &Tuple, attrs: &[AttrId]) -> Self {
        RecordFingerprint {
            attrs: attrs
                .iter()
                .map(|&attr| AttrFingerprint::of_value(tuple.value(attr)))
                .collect(),
        }
    }

    /// Stage-1 upper bound on the record similarity of the underlying
    /// records: count-only per-attribute bounds, averaged exactly like
    /// [`record_similarity`](crate::similarity::record_similarity) (same
    /// attribute order, same informative-pair filter, same `f64` ops).
    pub fn stage1_upper_bound(&self, other: &Self) -> f64 {
        self.record_bound(other, AttrFingerprint::stage1_upper_bound)
    }

    /// Stage-2 upper bound: stage 1 refined with the popcount set bounds.
    pub fn stage2_upper_bound(&self, other: &Self) -> f64 {
        self.record_bound(other, AttrFingerprint::stage2_upper_bound)
    }

    fn record_bound(
        &self,
        other: &Self,
        bound: impl Fn(&AttrFingerprint, &AttrFingerprint) -> Option<f64>,
    ) -> f64 {
        debug_assert_eq!(
            self.attrs.len(),
            other.attrs.len(),
            "fingerprints must cover the same attribute list"
        );
        let mut total = 0.0;
        let mut counted = 0usize;
        for (a, b) in self.attrs.iter().zip(other.attrs.iter()) {
            if let Some(ub) = bound(a, b) {
                total += ub;
                counted += 1;
            }
        }
        if counted == 0 {
            0.0
        } else {
            total / counted as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::{record_similarity, value_similarity};
    use relacc_model::Tuple;

    fn text_pair_bounds(a: &str, b: &str) -> (f64, f64, f64) {
        let fa = RecordFingerprint::of_tuple(&Tuple::new(vec![Value::text(a)]), &[AttrId(0)]);
        let fb = RecordFingerprint::of_tuple(&Tuple::new(vec![Value::text(b)]), &[AttrId(0)]);
        let actual = value_similarity(&Value::text(a), &Value::text(b)).unwrap();
        (
            fa.stage1_upper_bound(&fb),
            fa.stage2_upper_bound(&fb),
            actual,
        )
    }

    #[test]
    fn bounds_dominate_actual_similarity() {
        let pairs = [
            ("Michael Jordan", "Michael  Jordan"),
            ("Michael Jordan", "Scottie Pippen"),
            ("kitten", "sitting"),
            ("", ""),
            ("", "abc"),
            ("résumé", "resume"),
            ("chicago bulls", "bulls chicago"),
            ("aaaa", "aaaab"),
            ("日本語", "日本"),
            ("one two three", "three two one four"),
        ];
        for (a, b) in pairs {
            let (s1, s2, actual) = text_pair_bounds(a, b);
            assert!(s1 >= actual, "stage1 {s1} < actual {actual} on {a:?}/{b:?}");
            assert!(s2 >= actual, "stage2 {s2} < actual {actual} on {a:?}/{b:?}");
            assert!(s2 <= s1 + 1e-12, "stage2 {s2} looser than stage1 {s1}");
        }
    }

    #[test]
    fn stage2_separates_dissimilar_strings() {
        // long random-ish strings with a shared prefix: stage 1 (equal
        // lengths, equal token counts) cannot prune, stage 2 must
        let (s1, s2, actual) = text_pair_bounds(
            "block001 qwertyuiopasdfghjklzxcvbnm123456",
            "block001 mnbvcxzlkjhgfdsapoiuytrewq654321",
        );
        assert!(s1 > 0.9, "stage1 is count-only and stays loose: {s1}");
        assert!(
            s2 < 0.82,
            "stage2 must prune at the default threshold: {s2}"
        );
        assert!(s2 >= actual);
    }

    #[test]
    fn scalar_hash_follows_value_same() {
        // Int/Float cross-width equality must hash equal (Value::same does)
        assert_eq!(scalar_hash(&Value::Int(3)), scalar_hash(&Value::Float(3.0)));
        assert_ne!(scalar_hash(&Value::Int(3)), scalar_hash(&Value::Int(4)));
        assert_ne!(
            scalar_hash(&Value::Bool(true)),
            scalar_hash(&Value::Bool(false))
        );
        // -0.0 and +0.0 are not `same` under total_cmp and must stay apart
        assert_ne!(
            scalar_hash(&Value::Float(0.0)),
            scalar_hash(&Value::Float(-0.0))
        );
        let a = Tuple::new(vec![Value::Int(3)]);
        let b = Tuple::new(vec![Value::Float(3.0)]);
        let fa = RecordFingerprint::of_tuple(&a, &[AttrId(0)]);
        let fb = RecordFingerprint::of_tuple(&b, &[AttrId(0)]);
        assert_eq!(fa.stage1_upper_bound(&fb), 1.0);
        assert_eq!(record_similarity(&a, &b, &[AttrId(0)]), 1.0);
    }

    #[test]
    fn null_handling_mirrors_value_similarity() {
        let both_null = Tuple::new(vec![Value::Null, Value::Int(1)]);
        let one_null = Tuple::new(vec![Value::text("x"), Value::Int(1)]);
        let attrs = [AttrId(0), AttrId(1)];
        let fa = RecordFingerprint::of_tuple(&both_null, &attrs);
        let fb = RecordFingerprint::of_tuple(&one_null, &attrs);
        // attr 0 contributes 0.0 (one-sided null), attr 1 contributes 1.0
        let expected = record_similarity(&both_null, &one_null, &attrs);
        assert!(fa.stage1_upper_bound(&fb) >= expected);
        assert!(fa.stage2_upper_bound(&fb) >= expected);
        // both-null on every attr: no evidence, bound is 0.0 like the actual
        let fc = RecordFingerprint::of_tuple(&both_null, &[AttrId(0)]);
        assert_eq!(fc.stage1_upper_bound(&fc), 0.0);
    }

    #[test]
    fn identical_records_are_never_prunable() {
        let t = Tuple::new(vec![Value::text("Michael Jordan"), Value::Int(23)]);
        let attrs = [AttrId(0), AttrId(1)];
        let f = RecordFingerprint::of_tuple(&t, &attrs);
        assert_eq!(f.stage1_upper_bound(&f), 1.0);
        assert_eq!(f.stage2_upper_bound(&f), 1.0);
    }
}
