//! # relacc-resolve
//!
//! Entity resolution for *"Determining the Relative Accuracy of Attributes"*
//! (SIGMOD 2013).
//!
//! The paper's model starts from an **entity instance** `Ie` — a set of tuples
//! already known to describe the same real-world entity, "identified by entity
//! resolution techniques" (Section 2.1).  This crate provides that substrate
//! as a dependency-light layer (it depends only on `relacc-model` and
//! `relacc-store`, never on the chase or the engine, so `relacc-engine` can
//! build on it without a cycle):
//!
//! * [`similarity`] — string similarity measures (normalized Levenshtein,
//!   token Jaccard, exact/null-aware equality) used to compare records;
//! * [`blocking`] — cheap key-based blocking so that resolution never compares
//!   all `O(n²)` record pairs of a large relation;
//! * [`resolve`] — pairwise matching plus union-find clustering that splits a
//!   dirty [`relacc_store::Relation`] into per-entity
//!   [`relacc_model::EntityInstance`]s;
//! * [`incremental`] — a maintained row → block index that maps an update
//!   batch (inserts/deletes of a versioned relation) to the set of dirty
//!   blocks, the unit of incremental re-resolution and re-repair.
//!
//! ```
//! use relacc_resolve::{resolve_relation, ResolveConfig};
//! use relacc_store::Relation;
//! use relacc_model::{DataType, Schema, Value};
//!
//! let schema = Schema::builder("stat")
//!     .attr("name", DataType::Text)
//!     .attr("rnds", DataType::Int)
//!     .build();
//! let relation = Relation::from_rows(schema, vec![
//!     vec![Value::text("Michael Jordan"), Value::Int(16)],
//!     vec![Value::text("Michael  Jordan"), Value::Int(27)],
//!     vec![Value::text("Scottie Pippen"), Value::Int(27)],
//! ]).unwrap();
//! let resolved = resolve_relation(&relation, &ResolveConfig::on_attrs(vec!["name".into()]));
//! assert_eq!(resolved.entities.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blocking;
pub mod fingerprint;
pub mod incremental;
pub mod resolve;
pub mod similarity;

pub use blocking::{
    blocking_key, write_blocking_key, write_blocking_key_values, Blocker, BlockingStrategy,
};
pub use fingerprint::{AttrFingerprint, RecordFingerprint};
pub use incremental::{BlockKey, DirtyBlocks, IncrementalBlockingIndex};
pub use resolve::{
    resolve_relation, resolve_relation_with_fingerprints, MatchDecision, PruneStage, ResolveConfig,
    ResolveStats, ResolvedEntities,
};
pub use similarity::{
    jaccard_tokens, levenshtein, levenshtein_with, normalized_levenshtein, record_similarity,
    record_similarity_with, SimilarityScratch,
};
