//! A max-oriented pairing heap.
//!
//! Algorithm `TopKCT` (Fig. 5 of the paper) keeps the frontier of candidate
//! targets in a *Brodal queue* \[6\], a worst-case efficient priority queue with
//! `O(1)` insert and `O(log n)` delete-max.  A pairing heap offers the same
//! interface with amortized `O(1)` insert / meld and `O(log n)` amortized
//! delete-max, which is all the complexity argument of Section 6.2 relies on,
//! and is dramatically simpler; DESIGN.md records this substitution.
//!
//! Keys are compared through a caller-provided [`HeapKey`] so that floating
//! point scores (the preference model's `p(·)`) can be used safely.

use std::cmp::Ordering;

/// Types usable as priorities in the pairing heap.
///
/// The ordering must be total.  A blanket implementation is provided for every
/// `Ord` type; [`F64Key`] adapts IEEE-754 scores via `total_cmp`.
pub trait HeapKey {
    /// Total-order comparison.
    fn cmp_key(&self, other: &Self) -> Ordering;
}

impl<T: Ord> HeapKey for T {
    fn cmp_key(&self, other: &Self) -> Ordering {
        self.cmp(other)
    }
}

/// An `f64` priority ordered by `total_cmp` (NaN-safe, usable as a heap key).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct F64Key(pub f64);

impl HeapKey for F64Key {
    fn cmp_key(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[derive(Debug)]
struct Node<K, T> {
    key: K,
    item: T,
    children: Vec<Node<K, T>>,
}

/// A max-oriented pairing heap over `(key, item)` pairs.
///
/// `push` is `O(1)`; `pop` (delete-max) is `O(log n)` amortized; `meld` is
/// `O(1)`.  Ties are broken arbitrarily (the top-k algorithms never rely on a
/// particular tie order).
#[derive(Debug, Default)]
pub struct PairingHeap<K, T> {
    root: Option<Box<Node<K, T>>>,
    len: usize,
}

impl<K: HeapKey, T> PairingHeap<K, T> {
    /// An empty heap.
    pub fn new() -> Self {
        PairingHeap { root: None, len: 0 }
    }

    /// Number of items in the heap.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the heap holds no items.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert an item with the given priority.
    pub fn push(&mut self, key: K, item: T) {
        let node = Box::new(Node {
            key,
            item,
            children: Vec::new(),
        });
        self.root = Some(match self.root.take() {
            None => node,
            Some(root) => Self::meld_nodes(root, node),
        });
        self.len += 1;
    }

    /// The highest-priority entry, if any.
    pub fn peek(&self) -> Option<(&K, &T)> {
        self.root.as_ref().map(|n| (&n.key, &n.item))
    }

    /// Remove and return the highest-priority entry.
    pub fn pop(&mut self) -> Option<(K, T)> {
        let root = self.root.take()?;
        self.len -= 1;
        let Node {
            key,
            item,
            children,
        } = *root;
        self.root = Self::merge_pairs(children);
        Some((key, item))
    }

    /// Merge another heap into this one in `O(1)`.
    pub fn meld(&mut self, other: PairingHeap<K, T>) {
        self.len += other.len;
        self.root = match (self.root.take(), other.root) {
            (None, r) => r,
            (r, None) => r,
            (Some(a), Some(b)) => Some(Self::meld_nodes(a, b)),
        };
    }

    /// Drain the heap into a vector sorted by descending priority.
    pub fn into_sorted_vec(mut self) -> Vec<(K, T)> {
        let mut out = Vec::with_capacity(self.len);
        while let Some(entry) = self.pop() {
            out.push(entry);
        }
        out
    }

    fn meld_nodes(mut a: Box<Node<K, T>>, mut b: Box<Node<K, T>>) -> Box<Node<K, T>> {
        if a.key.cmp_key(&b.key) == Ordering::Less {
            std::mem::swap(&mut a, &mut b);
        }
        a.children.push(*b);
        a
    }

    /// Two-pass pairing of the root's children after a pop.
    fn merge_pairs(children: Vec<Node<K, T>>) -> Option<Box<Node<K, T>>> {
        let mut paired: Vec<Box<Node<K, T>>> = Vec::with_capacity(children.len().div_ceil(2));
        let mut iter = children.into_iter();
        while let Some(first) = iter.next() {
            match iter.next() {
                Some(second) => {
                    paired.push(Self::meld_nodes(Box::new(first), Box::new(second)));
                }
                None => paired.push(Box::new(first)),
            }
        }
        let mut result: Option<Box<Node<K, T>>> = None;
        while let Some(node) = paired.pop() {
            result = Some(match result {
                None => node,
                Some(acc) => Self::meld_nodes(acc, node),
            });
        }
        result
    }
}

impl<K: HeapKey, T> FromIterator<(K, T)> for PairingHeap<K, T> {
    fn from_iter<I: IntoIterator<Item = (K, T)>>(iter: I) -> Self {
        let mut heap = PairingHeap::new();
        for (k, t) in iter {
            heap.push(k, t);
        }
        heap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_descending_key_order() {
        let mut h = PairingHeap::new();
        for k in [5, 1, 9, 3, 7, 9] {
            h.push(k, format!("v{k}"));
        }
        assert_eq!(h.len(), 6);
        assert_eq!(h.peek().unwrap().0, &9);
        let keys: Vec<i32> = h.into_sorted_vec().into_iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![9, 9, 7, 5, 3, 1]);
    }

    #[test]
    fn empty_heap_behaviour() {
        let mut h: PairingHeap<i32, ()> = PairingHeap::new();
        assert!(h.is_empty());
        assert_eq!(h.pop(), None);
        assert!(h.peek().is_none());
    }

    #[test]
    fn meld_combines_heaps() {
        let mut a: PairingHeap<i32, &str> = [(1, "a"), (5, "b")].into_iter().collect();
        let b: PairingHeap<i32, &str> = [(3, "c"), (7, "d")].into_iter().collect();
        a.meld(b);
        assert_eq!(a.len(), 4);
        let order: Vec<&str> = a.into_sorted_vec().into_iter().map(|(_, v)| v).collect();
        assert_eq!(order, vec!["d", "b", "c", "a"]);
    }

    #[test]
    fn float_keys_via_f64key() {
        let mut h = PairingHeap::new();
        h.push(F64Key(1.5), 'a');
        h.push(F64Key(2.25), 'b');
        h.push(F64Key(-0.5), 'c');
        assert_eq!(h.pop().unwrap().1, 'b');
        assert_eq!(h.pop().unwrap().1, 'a');
        assert_eq!(h.pop().unwrap().1, 'c');
    }

    #[test]
    fn interleaved_push_pop() {
        let mut h = PairingHeap::new();
        h.push(2, 2);
        h.push(8, 8);
        assert_eq!(h.pop().unwrap().0, 8);
        h.push(5, 5);
        h.push(1, 1);
        assert_eq!(h.pop().unwrap().0, 5);
        assert_eq!(h.pop().unwrap().0, 2);
        assert_eq!(h.pop().unwrap().0, 1);
        assert!(h.pop().is_none());
    }
}
