//! Ranked-value heaps: the per-attribute heaps `H_i` consumed by `TopKCT`, and
//! the pre-sorted ranked lists `L_i` consumed by `RankJoinCT`.
//!
//! `TopKCT` (Section 6.2) deliberately does *not* require its input domains to
//! be sorted — it takes a heap per attribute, "able to pop up the top value in
//! `O(log |Hi|)` time, and can be pre-constructed in linear time".  This module
//! provides exactly that: a binary max-heap over `(score, item)` pairs built
//! with Floyd's linear-time heapify, plus a [`RankedList`] that materializes
//! the fully sorted order (what `RankJoinCT` assumes to be given).

use std::cmp::Ordering;

/// An entry of a scored heap: an item with an `f64` score.
#[derive(Debug, Clone, PartialEq)]
pub struct Scored<T> {
    /// The score (higher pops first).
    pub score: f64,
    /// The payload.
    pub item: T,
}

impl<T> Scored<T> {
    /// Convenience constructor.
    pub fn new(score: f64, item: T) -> Self {
        Scored { score, item }
    }
}

/// A binary max-heap over scored items, built in linear time.
///
/// This is the `H_i` of algorithm `TopKCT`: it supports `pop` of the current
/// best value in `O(log n)` and counts how many pops have been performed —
/// the cost metric of the instance-optimality claim (Proposition 7).
#[derive(Debug, Clone, Default)]
pub struct ScoredHeap<T> {
    entries: Vec<Scored<T>>,
    pops: usize,
}

impl<T> ScoredHeap<T> {
    /// An empty heap.
    pub fn new() -> Self {
        ScoredHeap {
            entries: Vec::new(),
            pops: 0,
        }
    }

    /// Build a heap from arbitrary scored items in `O(n)` (Floyd heapify).
    pub fn heapify(entries: Vec<Scored<T>>) -> Self {
        let mut heap = ScoredHeap { entries, pops: 0 };
        let n = heap.entries.len();
        for i in (0..n / 2).rev() {
            heap.sift_down(i);
        }
        heap
    }

    /// Number of items remaining.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no items remain.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of `pop` calls performed so far (the instance-optimality metric).
    pub fn pop_count(&self) -> usize {
        self.pops
    }

    /// The current best entry without removing it.
    pub fn peek(&self) -> Option<&Scored<T>> {
        self.entries.first()
    }

    /// Insert an item in `O(log n)`.
    pub fn push(&mut self, score: f64, item: T) {
        self.entries.push(Scored::new(score, item));
        self.sift_up(self.entries.len() - 1);
    }

    /// Remove and return the highest-scored entry.
    pub fn pop(&mut self) -> Option<Scored<T>> {
        if self.entries.is_empty() {
            return None;
        }
        self.pops += 1;
        let last = self.entries.len() - 1;
        self.entries.swap(0, last);
        let top = self.entries.pop();
        if !self.entries.is_empty() {
            self.sift_down(0);
        }
        top
    }

    fn cmp(a: &Scored<T>, b: &Scored<T>) -> Ordering {
        a.score.total_cmp(&b.score)
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if Self::cmp(&self.entries[i], &self.entries[parent]) == Ordering::Greater {
                self.entries.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.entries.len();
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut best = i;
            if l < n && Self::cmp(&self.entries[l], &self.entries[best]) == Ordering::Greater {
                best = l;
            }
            if r < n && Self::cmp(&self.entries[r], &self.entries[best]) == Ordering::Greater {
                best = r;
            }
            if best == i {
                break;
            }
            self.entries.swap(i, best);
            i = best;
        }
    }
}

impl<T> FromIterator<(f64, T)> for ScoredHeap<T> {
    fn from_iter<I: IntoIterator<Item = (f64, T)>>(iter: I) -> Self {
        ScoredHeap::heapify(iter.into_iter().map(|(s, t)| Scored::new(s, t)).collect())
    }
}

/// A fully sorted (descending-score) list of scored items with cursor access —
/// the ranked lists `L_1..L_m` assumed as input by `RankJoinCT` (Section 6.1).
#[derive(Debug, Clone)]
pub struct RankedList<T> {
    entries: Vec<Scored<T>>,
    cursor: usize,
}

impl<T> RankedList<T> {
    /// Sort the given items by descending score (stable w.r.t. input order for
    /// equal scores, so deterministic across runs).
    pub fn from_scored(mut entries: Vec<Scored<T>>) -> Self {
        entries.sort_by(|a, b| b.score.total_cmp(&a.score));
        RankedList { entries, cursor: 0 }
    }

    /// Total number of entries (seen and unseen).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the list has no entries at all.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of entries already consumed via [`RankedList::next_entry`].
    pub fn seen(&self) -> usize {
        self.cursor
    }

    /// Entry at rank `i` (0-based), regardless of the cursor.
    pub fn get(&self, i: usize) -> Option<&Scored<T>> {
        self.entries.get(i)
    }

    /// The score of the next unseen entry — the "upper bound" used by rank-join
    /// threshold computations; `None` when exhausted.
    pub fn next_score(&self) -> Option<f64> {
        self.entries.get(self.cursor).map(|e| e.score)
    }

    /// Advance the cursor and return the next unseen entry.
    pub fn next_entry(&mut self) -> Option<&Scored<T>> {
        let entry = self.entries.get(self.cursor);
        if entry.is_some() {
            self.cursor += 1;
        }
        entry
    }

    /// Reset the cursor to the start.
    pub fn rewind(&mut self) {
        self.cursor = 0;
    }
}

impl<T> FromIterator<(f64, T)> for RankedList<T> {
    fn from_iter<I: IntoIterator<Item = (f64, T)>>(iter: I) -> Self {
        RankedList::from_scored(iter.into_iter().map(|(s, t)| Scored::new(s, t)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heapify_then_pop_is_sorted() {
        let heap: ScoredHeap<&str> = [(1.0, "a"), (3.0, "c"), (2.0, "b"), (5.0, "e")]
            .into_iter()
            .collect();
        assert_eq!(heap.len(), 4);
        let mut heap = heap;
        let order: Vec<&str> = std::iter::from_fn(|| heap.pop().map(|s| s.item)).collect();
        assert_eq!(order, vec!["e", "c", "b", "a"]);
        assert_eq!(heap.pop_count(), 4);
    }

    #[test]
    fn push_and_peek() {
        let mut heap = ScoredHeap::new();
        assert!(heap.is_empty());
        heap.push(1.0, 'x');
        heap.push(4.0, 'y');
        heap.push(2.0, 'z');
        assert_eq!(heap.peek().unwrap().item, 'y');
        assert_eq!(heap.pop().unwrap().item, 'y');
        assert_eq!(heap.peek().unwrap().item, 'z');
        assert_eq!(heap.len(), 2);
    }

    #[test]
    fn ranked_list_cursor_and_bounds() {
        let mut list: RankedList<&str> = [(2.0, "b"), (9.0, "a"), (4.0, "c")].into_iter().collect();
        assert_eq!(list.len(), 3);
        assert_eq!(list.next_score(), Some(9.0));
        assert_eq!(list.next_entry().unwrap().item, "a");
        assert_eq!(list.seen(), 1);
        assert_eq!(list.next_score(), Some(4.0));
        assert_eq!(list.get(2).unwrap().item, "b");
        assert_eq!(list.next_entry().unwrap().item, "c");
        assert_eq!(list.next_entry().unwrap().item, "b");
        assert_eq!(list.next_entry().map(|e| e.item), None);
        assert_eq!(list.next_score(), None);
        list.rewind();
        assert_eq!(list.seen(), 0);
        assert_eq!(list.next_score(), Some(9.0));
    }

    #[test]
    fn ties_are_stable_in_ranked_list() {
        let list: RankedList<u32> = [(1.0, 10), (1.0, 20), (1.0, 30)].into_iter().collect();
        let items: Vec<u32> = (0..3).map(|i| list.get(i).unwrap().item).collect();
        assert_eq!(items, vec![10, 20, 30]);
    }
}
