//! # relacc-heap
//!
//! Priority-queue substrate for the top-k candidate-target algorithms of
//! *"Determining the Relative Accuracy of Attributes"* (SIGMOD 2013):
//!
//! * [`PairingHeap`] — a max-oriented pairing heap standing in for the Brodal
//!   queue used by algorithm `TopKCT` (Fig. 5);
//! * [`ScoredHeap`] — linear-time-buildable binary max-heaps over `f64`-scored
//!   items: the per-attribute heaps `H_i` of `TopKCT`, with a pop counter
//!   backing the instance-optimality measurements;
//! * [`RankedList`] — fully sorted score lists with cursors: the ranked inputs
//!   `L_i` assumed by `RankJoinCT`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pairing;
pub mod ranked;

pub use pairing::{F64Key, HeapKey, PairingHeap};
pub use ranked::{RankedList, Scored, ScoredHeap};
